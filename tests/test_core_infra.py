"""Tests for repro.core context, techniques, backends, library, overflow."""

import pytest

from repro.core.backends import HardwareBackend, IdealBackend
from repro.core.context import CheckEvent, SCKContext, current_context
from repro.core.library import CheckerDescriptor, CheckerLibrary, default_library
from repro.core.overflow import OVERFLOW_POLICIES, get_policy
from repro.core.techniques import available_techniques, get_checker
from repro.core.value import SCK
from repro.errors import CheckError, ReproError


class TestContext:
    def test_default_ambient_context(self):
        ctx = current_context()
        assert ctx.width == 16

    def test_nesting(self):
        with SCKContext(width=8) as outer:
            assert current_context() is outer
            with SCKContext(width=4) as inner:
                assert current_context() is inner
            assert current_context() is outer

    def test_out_of_order_exit_rejected(self):
        a = SCKContext(width=8)
        b = SCKContext(width=8)
        a.__enter__()
        b.__enter__()
        with pytest.raises(ReproError):
            a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        a.__exit__(None, None, None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            SCKContext(backend="quantum")

    def test_width_mismatch_with_instance(self):
        with pytest.raises(ReproError):
            SCKContext(width=8, backend=IdealBackend(16))

    def test_technique_override_validated(self):
        ctx = SCKContext(techniques={"add": "both"})
        assert ctx.techniques["add"] == "both"
        with pytest.raises(ReproError):
            SCKContext(techniques={"xor": "tech1"})

    def test_allocation_validated(self):
        with pytest.raises(ReproError):
            SCKContext(check_allocation="sometimes")

    def test_reset_log(self):
        with SCKContext(width=8) as ctx:
            SCK(1) + SCK(2)
            assert ctx.operations == 1
            ctx.reset_log()
            assert ctx.operations == 0 and not ctx.log

    def test_describe_mentions_backend(self):
        assert "ideal" in SCKContext().describe()
        assert "hardware" in SCKContext(backend="hardware").describe()

    def test_strict_raises_via_record(self):
        ctx = SCKContext(strict=True)
        with pytest.raises(CheckError):
            ctx.record(CheckEvent("add", "tech1", (1, 2), 3, True))


class TestTechniques:
    def test_every_registered_checker_accepts_clean_result(self):
        ctx = SCKContext(width=16)
        for operator in ("add", "sub", "mul"):
            for technique in available_techniques(operator):
                checker = get_checker(operator, technique)
                op1, op2 = 13, 5
                nominal = {
                    "add": op1 + op2,
                    "sub": op1 - op2,
                    "mul": op1 * op2,
                }[operator]
                assert checker(ctx, op1, op2, nominal) is False

    def test_div_checkers_clean(self):
        ctx = SCKContext(width=16)
        for technique in available_techniques("div"):
            checker = get_checker("div", technique)
            assert checker(ctx, -17, 5, -3, -2) is False

    def test_checkers_flag_wrong_results(self):
        ctx = SCKContext(width=16)
        assert get_checker("add", "tech1")(ctx, 13, 5, 19) is True
        assert get_checker("sub", "tech2")(ctx, 13, 5, 9) is True
        assert get_checker("mul", "both")(ctx, 13, 5, 66) is True
        assert get_checker("div", "tech1")(ctx, 17, 5, 4, 2) is True
        assert get_checker("neg", "tech1")(ctx, 5, -4) is True

    def test_div_tech2_rejects_out_of_range_remainder(self):
        """The precision check: q*b + r == a but r >= b."""
        ctx = SCKContext(width=16)
        # 17 = 2*5 + 7 : identity holds, remainder out of range.
        assert get_checker("div", "tech1")(ctx, 17, 5, 2, 7) is False
        assert get_checker("div", "tech2")(ctx, 17, 5, 2, 7) is True

    def test_unknown_checker(self):
        with pytest.raises(ReproError):
            get_checker("add", "tech9")
        with pytest.raises(ReproError):
            available_techniques("pow")


class TestBackends:
    def test_ideal_exact(self):
        backend = IdealBackend(8)
        assert backend.add(100, 100) == 200  # unwrapped; SCK layer wraps
        assert backend.divmod(-7, 2) == (-3, -1)
        assert backend.is_faulty is False

    def test_hardware_wraps(self):
        backend = HardwareBackend(8)
        assert backend.add(100, 100) == -56
        assert backend.divmod(-7, 2) == (-3, -1)
        assert backend.neg(-128) == -128

    def test_hardware_width_consistency(self):
        from repro.arch.alu import FaultableALU

        with pytest.raises(Exception):
            HardwareBackend(8, alu=FaultableALU(16))


class TestCheckerLibrary:
    def test_default_library_matches_table1(self):
        library = default_library()
        assert library.get("add", "tech1").coverage_percent == 97.25
        assert library.get("div", "tech2").coverage_percent == 97.16

    def test_selection_by_coverage(self):
        library = default_library()
        best = library.select("add", min_coverage=99.0)
        assert best.technique == "both"
        cheap = library.select("add", min_coverage=97.0)
        # tech1 and tech2 tie on cost; the higher-coverage one wins.
        assert cheap.technique == "tech2"

    def test_infeasible_selection_raises(self):
        library = default_library()
        with pytest.raises(ReproError):
            library.select("add", min_coverage=99.99)
        with pytest.raises(ReproError):
            library.select("add", min_coverage=99.0, max_extra_operations=1)

    def test_plan(self):
        plan = default_library().plan(min_coverage=96.0)
        assert set(plan) == {"add", "sub", "mul", "div"}
        assert plan["add"] in ("tech1", "tech2", "both")

    def test_custom_registration(self):
        library = CheckerLibrary()
        library.register(CheckerDescriptor("add", "custom", 99.9, 3, 3))
        assert library.select("add", min_coverage=99.5).technique == "custom"

    def test_unknown_lookup(self):
        with pytest.raises(ReproError):
            CheckerLibrary().get("add", "tech1")


class TestOverflowPolicies:
    def test_policy_names(self):
        assert set(OVERFLOW_POLICIES) == {"wrap", "flag", "raise", "saturate"}

    def test_wrap(self):
        assert get_policy("wrap")(130, 8) == (-126, False)

    def test_flag(self):
        value, flagged = get_policy("flag")(130, 8)
        assert value == -126 and flagged

    def test_saturate(self):
        assert get_policy("saturate")(130, 8) == (127, False)
        assert get_policy("saturate")(-300, 8) == (-128, False)

    def test_in_range_untouched(self):
        for name in OVERFLOW_POLICIES:
            assert get_policy(name)(57, 8) == (57, False)

    def test_unknown_policy(self):
        with pytest.raises(ReproError):
            get_policy("hope")
