"""Tests for repro.codesign.dfg and the enrichment passes."""

import pytest

from repro.apps.fir import FirSpec, fir_graph
from repro.codesign.dfg import DataflowGraph
from repro.codesign.sck_transform import (
    balance_accumulation,
    embed_output_checks,
    enrich_with_sck,
)
from repro.errors import SpecificationError


def tiny_graph():
    g = DataflowGraph("tiny")
    g.add_input("a")
    g.add_input("b")
    g.add_op("s", "add", ("a", "b"))
    g.add_output("y", "s")
    return g


class TestDfg:
    def test_construction_and_queries(self):
        g = tiny_graph()
        assert len(g) == 4
        assert [n.name for n in g.inputs] == ["a", "b"]
        assert [n.name for n in g.outputs] == ["y"]
        assert g.operation_counts() == {"add": 1}
        assert g.unit_demand() == {"alu": 1}

    def test_duplicate_name_rejected(self):
        g = tiny_graph()
        with pytest.raises(SpecificationError):
            g.add_input("a")

    def test_unknown_arg_rejected(self):
        g = tiny_graph()
        with pytest.raises(SpecificationError):
            g.add_op("t", "add", ("a", "ghost"))

    def test_arity_checked(self):
        g = tiny_graph()
        with pytest.raises(SpecificationError):
            g.add_op("t", "add", ("a",))
        with pytest.raises(SpecificationError):
            g.add_op("t", "neg", ("a", "b"))

    def test_const_needs_value(self):
        g = DataflowGraph("t")
        with pytest.raises(SpecificationError):
            g.add_const("c", None)

    def test_dead_operation_detected(self):
        g = tiny_graph()
        g.add_op("dead", "add", ("a", "b"))
        with pytest.raises(SpecificationError):
            g.validate()

    def test_no_output_detected(self):
        g = DataflowGraph("t")
        g.add_input("a")
        with pytest.raises(SpecificationError):
            g.validate()

    def test_evaluate(self):
        g = tiny_graph()
        assert g.evaluate({"a": 3, "b": 4}) == {"y": 7}

    def test_evaluate_wraps(self):
        g = tiny_graph()
        out = g.evaluate({"a": 100, "b": 100}, width=8)
        assert out["y"] == -56

    def test_evaluate_c_division(self):
        g = DataflowGraph("d")
        g.add_input("a")
        g.add_const("two", 2)
        g.add_op("q", "div", ("a", "two"))
        g.add_output("y", "q")
        assert g.evaluate({"a": -7})["y"] == -3

    def test_copy_independent(self):
        g = tiny_graph()
        h = g.copy("clone")
        h.add_op("extra", "mul", ("a", "b"))
        assert "extra" not in g


class TestSckEnrichment:
    def test_fir_enrichment_structure(self):
        plain = fir_graph()
        enriched = enrich_with_sck(plain)
        counts = enriched.operation_counts()
        plain_counts = plain.operation_counts()
        # Each of the 4 muls gains a check mul (+add), each of the 3
        # adds gains a check sub; coefficients' negations fold to consts.
        assert counts["mul"] == 2 * plain_counts["mul"]
        assert counts["sub"] == plain_counts["add"]
        assert counts.get("neg", 0) == 0  # folded: coefficients are consts
        assert counts["cmpne"] == plain_counts["mul"] + plain_counts["add"]
        error_outputs = [o for o in enriched.outputs if o.role == "error"]
        assert len(error_outputs) == 1

    def test_data_outputs_preserved(self):
        plain = fir_graph()
        enriched = enrich_with_sck(plain)
        inputs = {f"x{i}": v for i, v in enumerate([3, -1, 2, 5])}
        plain_out = plain.evaluate(inputs)
        enriched_out = enriched.evaluate(inputs)
        assert enriched_out["y"] == plain_out["y"]

    def test_clean_evaluation_reports_no_error(self):
        enriched = enrich_with_sck(fir_graph())
        inputs = {f"x{i}": v for i, v in enumerate([9, 4, -6, 1])}
        outputs = enriched.evaluate(inputs)
        error_name = [o.name for o in enriched.outputs if o.role == "error"][0]
        assert outputs[error_name] == 0

    def test_technique_both_doubles_checks(self):
        plain = fir_graph()
        t1 = enrich_with_sck(plain, {"add": "tech1", "mul": "tech1"})
        both = enrich_with_sck(plain, {"add": "both", "mul": "both"})
        assert both.operation_counts()["cmpne"] > t1.operation_counts()["cmpne"]

    def test_division_check_materialises_sibling(self):
        g = DataflowGraph("d")
        g.add_input("a")
        g.add_input("b")
        g.add_op("q", "div", ("a", "b"))
        g.add_output("y", "q")
        enriched = enrich_with_sck(g)
        assert enriched.operation_counts().get("mod", 0) == 1
        outputs = enriched.evaluate({"a": 17, "b": 5})
        assert outputs["y"] == 3


class TestEmbeddedChecks:
    def test_embedded_cheaper_than_sck(self):
        plain = fir_graph()
        sck = enrich_with_sck(plain)
        embedded = embed_output_checks(plain)
        assert len(embedded) < len(sck)
        assert len(embedded) > len(plain)

    def test_embedded_preserves_data(self):
        plain = fir_graph()
        embedded = embed_output_checks(plain)
        inputs = {f"x{i}": v for i, v in enumerate([7, 0, -3, 2])}
        assert embedded.evaluate(inputs)["y"] == plain.evaluate(inputs)["y"]

    def test_embedded_clean_error(self):
        embedded = embed_output_checks(fir_graph())
        inputs = {f"x{i}": v for i, v in enumerate([1, 2, 3, 4])}
        error_name = [o.name for o in embedded.outputs if o.role == "error"][0]
        assert embedded.evaluate(inputs)[error_name] == 0

    def test_embedded_reuses_products(self):
        plain = fir_graph()
        embedded = embed_output_checks(plain)
        assert (
            embedded.operation_counts()["mul"]
            == plain.operation_counts()["mul"]
        )


class TestBalanceAccumulation:
    def test_balances_chain(self):
        from repro.codesign.scheduling import asap_schedule

        plain = fir_graph(FirSpec(coefficients=(1, 2, 3, 4, 5, 6, 7, 8)))
        balanced = balance_accumulation(plain)
        chain_depth = asap_schedule(plain).length
        tree_depth = asap_schedule(balanced).length
        assert tree_depth < chain_depth

    def test_preserves_semantics(self):
        plain = fir_graph()
        balanced = balance_accumulation(plain)
        inputs = {f"x{i}": v for i, v in enumerate([5, -2, 9, 3])}
        assert balanced.evaluate(inputs)["y"] == plain.evaluate(inputs)["y"]

    def test_mixed_signs(self):
        g = DataflowGraph("m")
        for name in ("a", "b", "c", "d"):
            g.add_input(name)
        g.add_op("s1", "add", ("a", "b"))
        g.add_op("s2", "sub", ("s1", "c"))
        g.add_op("s3", "sub", ("s2", "d"))
        g.add_output("y", "s3")
        balanced = balance_accumulation(g)
        inputs = {"a": 10, "b": 4, "c": 3, "d": 1}
        assert balanced.evaluate(inputs)["y"] == g.evaluate(inputs)["y"] == 10

    def test_shared_intermediate_not_rebalanced(self):
        g = DataflowGraph("shared")
        for name in ("a", "b", "c"):
            g.add_input(name)
        g.add_op("s1", "add", ("a", "b"))
        g.add_op("s2", "add", ("s1", "c"))
        g.add_output("y", "s2")
        g.add_output("partial", "s1")  # s1 observable -> no rebalance
        balanced = balance_accumulation(g)
        assert "s1" in balanced
