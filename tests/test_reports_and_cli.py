"""Tests for the report renderers, CLI entry points and HDL emitters."""

import pytest

from repro.coverage import report as coverage_report
from repro.gates.builders import full_adder, half_adder, ripple_carry_adder
from repro.gates.emit import to_verilog, to_vhdl
from repro.gates.simulate import simulate


class TestCoverageReportCli:
    def test_table2_main(self, capsys):
        assert coverage_report.main(["table2", "--widths", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "128" in out

    def test_twobit_main(self, capsys):
        assert coverage_report.main(["twobit"]) == 0
        assert "2-bit" in capsys.readouterr().out

    def test_table1_main_small(self, capsys):
        assert (
            coverage_report.main(["table1", "--width", "3", "--samples", "256"]) == 0
        )
        out = capsys.readouterr().out
        assert "add" in out and "div" in out

    def test_bad_table_rejected(self):
        with pytest.raises(SystemExit):
            coverage_report.main(["table9"])


class TestCodesignReportCli:
    def test_table3_main(self, capsys):
        from repro.codesign import report as codesign_report

        assert codesign_report.main(["table3", "--samples", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "2 + 7n" in out


class TestVhdlEmission:
    def test_vhdl_structure(self):
        text = to_vhdl(full_adder())
        assert "entity fa is" in text
        assert "architecture structural of fa" in text
        assert "s <= p xor cin;" in text
        assert "cout <= g1 or g2;" in text

    def test_vhdl_ports_complete(self):
        nl = ripple_carry_adder(2)
        text = to_vhdl(nl)
        for net in nl.primary_inputs:
            assert f"{net} : in" in text
        for net in nl.primary_outputs:
            assert f"{net} : out" in text

    def test_verilog_structure(self):
        text = to_verilog(half_adder())
        assert text.startswith("module ha(")
        assert "assign s = a ^ b;" in text
        assert text.rstrip().endswith("endmodule")

    def test_verilog_not_and_xnor(self):
        from repro.gates.cells import CellType
        from repro.gates.netlist import Netlist

        nl = Netlist("inv")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.NOT, ["a"], "na")
        nl.add_gate(CellType.XNOR, ["na", "b"], "y")
        nl.mark_output("y")
        text = to_verilog(nl)
        assert "~a" in text and "~(na ^ b)" in text
        # Emitted logic is consistent with simulation.
        assert simulate(nl, {"a": 0, "b": 1})["y"] == 1  # xnor(1, 1)


class TestRenderersWithCustomData:
    def test_table2_handles_sampled_rows(self):
        from repro.coverage.engine import evaluate_adder

        stats = {5: evaluate_adder(5, exhaustive_limit=16, samples=64)}
        text = coverage_report.render_table2(widths=(5,), results=stats)
        assert "sampled" in text  # provenance column states the mode

    def test_table1_unpublished_cell(self):
        from repro.coverage.engine import evaluate_adder

        # Render with an operator/technique combo lacking paper data by
        # reusing add stats under a fake key path: simply confirm the
        # renderer falls back to "-" for missing keys via div/both
        # absence (div rows only have tech1/tech2).
        from repro.coverage.engine import evaluate_divider

        results = {"div": evaluate_divider(2)}
        text = coverage_report.render_table1(width=2, operators=("div",), results=results)
        assert "div" in text
