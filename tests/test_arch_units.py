"""Tests for repro.arch: cells, adders, multiplier, divider, ALU."""

import numpy as np
import pytest

from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.alu import FaultableALU
from repro.arch.bitops import mask_of, ones_complement, to_signed, to_unsigned
from repro.arch.cell import (
    NUM_FA_FAULTS,
    effective_faulty_cells,
    faulty_cell_library,
    reference_cell,
)
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.errors import FaultError, SimulationError


class TestBitops:
    def test_mask(self):
        assert mask_of(4) == 15

    def test_width_bounds(self):
        with pytest.raises(SimulationError):
            mask_of(0)
        with pytest.raises(SimulationError):
            mask_of(63)

    @pytest.mark.parametrize("value,width,expected", [(7, 3, -1), (3, 3, 3), (-1, 4, -1)])
    def test_signed_roundtrip(self, value, width, expected):
        assert to_signed(to_unsigned(value, width), width) == expected

    def test_signed_array(self):
        arr = np.array([7, 3, 0], dtype=np.uint64)
        out = to_signed(arr, 3)
        assert list(out) == [-1, 3, 0]

    def test_ones_complement(self):
        assert ones_complement(0b1010, 4) == 0b0101


class TestCellLibrary:
    def test_reference_cell_truth(self):
        ref = reference_cell()
        for idx in range(8):
            a, b, c = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
            s, co = ref.evaluate(a, b, c)
            assert s == (a + b + c) & 1
            assert co == (a + b + c) >> 1

    def test_library_size(self):
        assert len(faulty_cell_library()) == NUM_FA_FAULTS
        assert len(faulty_cell_library("two_xor")) == NUM_FA_FAULTS

    def test_effective_cells_differ(self):
        ref = reference_cell()
        for cell in effective_faulty_cells():
            assert cell.differs_from(ref)

    def test_unknown_style_rejected(self):
        with pytest.raises(FaultError):
            faulty_cell_library("bogus")

    def test_library_cached_copies(self):
        first = faulty_cell_library()
        second = faulty_cell_library()
        assert first == second
        assert first is not second


class TestRippleCarryAdderUnit:
    def test_fault_free_exhaustive(self):
        unit = RippleCarryAdderUnit(4)
        a = np.arange(16, dtype=np.uint64).repeat(16)
        b = np.tile(np.arange(16, dtype=np.uint64), 16)
        total, carry = unit.add(a, b)
        assert (total == ((a + b) & np.uint64(15))).all()
        assert (carry == ((a + b) >> np.uint64(4))).all()

    def test_sub_identity(self):
        unit = RippleCarryAdderUnit(5)
        a = np.arange(32, dtype=np.uint64)
        b = np.uint64(13)
        total, _ = unit.add(a, b)
        diff, _ = unit.sub(total, b)
        assert (diff == a).all()

    def test_neg(self):
        unit = RippleCarryAdderUnit(4)
        values = np.arange(16, dtype=np.uint64)
        neg = unit.neg(values)
        assert (neg == ((-values) & np.uint64(15))).all()

    def test_faulty_cell_changes_behaviour(self):
        cells = effective_faulty_cells()
        changed = 0
        a = np.arange(16, dtype=np.uint64).repeat(16)
        b = np.tile(np.arange(16, dtype=np.uint64), 16)
        golden = (a + b) & np.uint64(15)
        for cell in cells[:8]:
            unit = RippleCarryAdderUnit(4, cell, 1)
            total, _ = unit.add(a, b)
            if (total != golden).any():
                changed += 1
        assert changed > 0

    def test_fault_position_validated(self):
        cell = faulty_cell_library()[0]
        with pytest.raises(FaultError):
            RippleCarryAdderUnit(4, cell, 4)
        with pytest.raises(FaultError):
            RippleCarryAdderUnit(4, cell, None)

    def test_operand_range_checked(self):
        unit = RippleCarryAdderUnit(3)
        with pytest.raises(SimulationError):
            unit.add(np.array([9], dtype=np.uint64), np.array([0], dtype=np.uint64))

    def test_bad_carry_in(self):
        unit = RippleCarryAdderUnit(3)
        with pytest.raises(SimulationError):
            unit.add(1, 1, cin=2)


class TestArrayMultiplierUnit:
    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_fault_free(self, width):
        unit = ArrayMultiplierUnit(width)
        mask = np.uint64((1 << width) - 1)
        a = np.arange(1 << width, dtype=np.uint64).repeat(1 << width)
        b = np.tile(np.arange(1 << width, dtype=np.uint64), 1 << width)
        assert (unit.mul(a, b) == ((a * b) & mask)).all()

    def test_cell_positions(self):
        positions = ArrayMultiplierUnit.cell_positions(4)
        assert len(positions) == 6  # 3 + 2 + 1
        assert (1, 0) in positions and (3, 0) in positions

    def test_faulty_cell_validated(self):
        cell = faulty_cell_library()[0]
        with pytest.raises(FaultError):
            ArrayMultiplierUnit(4, cell, 0, 0)  # row 0 invalid
        with pytest.raises(FaultError):
            ArrayMultiplierUnit(4, cell, 3, 1)  # col out of range

    def test_faulty_cell_changes_some_product(self):
        a = np.arange(16, dtype=np.uint64).repeat(16)
        b = np.tile(np.arange(16, dtype=np.uint64), 16)
        golden = (a * b) & np.uint64(15)
        seen_change = False
        for cell in effective_faulty_cells()[:16]:
            unit = ArrayMultiplierUnit(4, cell, 1, 0)
            if (unit.mul(a, b) != golden).any():
                seen_change = True
                break
        assert seen_change


class TestRestoringDividerUnit:
    @pytest.mark.parametrize("width", [3, 4, 5])
    def test_fault_free_exhaustive(self, width):
        unit = RestoringDividerUnit(width)
        size = 1 << width
        a = np.arange(size, dtype=np.uint64).repeat(size - 1)
        b = np.tile(np.arange(1, size, dtype=np.uint64), size)
        q, r = unit.divmod(a, b)
        assert (q == a // b).all()
        assert (r == a % b).all()

    def test_division_by_zero(self):
        unit = RestoringDividerUnit(4)
        with pytest.raises(SimulationError):
            unit.divmod(np.array([4], dtype=np.uint64), np.array([0], dtype=np.uint64))

    def test_faulty_cell_corrupts_consistently(self):
        cells = effective_faulty_cells()
        unit = RestoringDividerUnit(4, cells[0], 0)
        a = np.arange(16, dtype=np.uint64)
        b = np.full(16, 3, dtype=np.uint64)
        q, r = unit.divmod(a, b)
        assert q.shape == a.shape and r.shape == a.shape

    def test_width_boundary(self):
        """The 63-bit guard-bit chain of a width-62 divider fits uint64,
        so every width the generic unit limit allows is supported."""
        unit = RestoringDividerUnit(62)
        a = np.array([(1 << 62) - 1, 123456789012345678, 5], dtype=np.uint64)
        b = np.array([3, 987654321, 7], dtype=np.uint64)
        q, r = unit.divmod(a, b)
        assert (q == a // b).all() and (r == a % b).all()
        # A faulty cell at the top of the 63-cell chain is legal too.
        faulty = RestoringDividerUnit(62, effective_faulty_cells()[0], 62)
        fq, fr = faulty.divmod(a, b)
        assert fq.shape == a.shape and fr.shape == a.shape
        with pytest.raises(SimulationError):
            RestoringDividerUnit(63)  # the generic 62-bit unit limit


class TestFaultableALU:
    def test_signed_semantics(self):
        alu = FaultableALU(8)
        assert alu.add(100, 50) == to_signed(150, 8)
        assert alu.sub(-100, 50) == to_signed(-150, 8)
        assert alu.mul(-5, 3) == -15
        assert alu.neg(-128) == -128  # two's complement edge

    def test_c_division_semantics(self):
        alu = FaultableALU(16)
        assert alu.div(7, 2) == 3
        assert alu.div(-7, 2) == -3
        assert alu.mod(-7, 2) == -1
        assert alu.div(7, -2) == -3
        assert alu.mod(7, -2) == 1

    def test_divide_by_zero(self):
        alu = FaultableALU(8)
        with pytest.raises(SimulationError):
            alu.div(1, 0)

    def test_fault_injection_and_clear(self):
        alu = FaultableALU(8)
        cell = effective_faulty_cells()[0]
        alu.inject_fault("adder", cell, position=2)
        assert alu.faulty_unit == "adder"
        corrupted = any(alu.add(a, 13) != to_signed(a + 13, 8) for a in range(-40, 40))
        assert corrupted
        alu.clear_fault()
        assert alu.faulty_unit is None
        assert all(alu.add(a, 13) == to_signed(a + 13, 8) for a in range(-40, 40))

    def test_single_unit_failure_model(self):
        """Injecting into one unit leaves the others fault-free."""
        alu = FaultableALU(8)
        cell = effective_faulty_cells()[0]
        alu.inject_fault("multiplier", cell, position=1, column=0)
        assert all(alu.add(a, 9) == to_signed(a + 9, 8) for a in range(-30, 30))

    def test_unknown_unit_rejected(self):
        alu = FaultableALU(8)
        with pytest.raises(FaultError):
            alu.inject_fault("shifter", effective_faulty_cells()[0])

    def test_logic_ops(self):
        alu = FaultableALU(8)
        assert alu.bit_and(0b1100, 0b1010) == 0b1000
        assert alu.bit_or(0b1100, 0b1010) == 0b1110
        assert alu.bit_xor(0b1100, 0b1010) == 0b0110
