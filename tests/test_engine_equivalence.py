"""Differential tests: compiled bit-parallel engine vs the reference
interpreter.

The compiled engine (:mod:`repro.gates.compile` +
:mod:`repro.gates.engine`) must be bit-identical to
:class:`~repro.gates.simulate.ReferenceSimulator` -- on random netlists,
random vectors, and every stem/branch stuck-at fault, including the
paper's 32-fault full-adder universe.  Also covers the satellite
behaviours: netlist index invalidation, simulator caching, iterative
topological sort depth, and structural collapsing soundness.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gates import builders
from repro.gates.cells import CellType
from repro.gates.compile import compile_netlist
from repro.gates.engine import (
    exhaustive_words,
    pack_bits,
    run_stuck_at_campaign,
    unpack_bits,
)
from repro.gates.faults import (
    full_fault_list,
    structural_equivalence_groups,
)
from repro.gates.netlist import Netlist
from repro.gates.simulate import (
    NetlistSimulator,
    ReferenceSimulator,
    get_simulator,
    simulate,
)

_GATE_CHOICES = [
    (CellType.AND, 2),
    (CellType.AND, 3),
    (CellType.OR, 2),
    (CellType.XOR, 2),
    (CellType.XOR, 3),
    (CellType.NAND, 2),
    (CellType.NOR, 3),
    (CellType.XNOR, 2),
    (CellType.NOT, 1),
    (CellType.BUF, 1),
]


def random_netlist(seed: int, n_inputs: int = 4, n_gates: int = 12) -> Netlist:
    """A random acyclic netlist; every declared net is driven."""
    rng = random.Random(seed)
    nl = Netlist(f"rand{seed}")
    nets = [nl.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        cell, arity = rng.choice(_GATE_CHOICES)
        ins = [rng.choice(nets) for _ in range(arity)]
        out = f"n{g}"
        nl.add_gate(cell, ins, out)
        nets.append(out)
    # Observe a random sample of nets plus the final one so no gate
    # cone is trivially empty.
    outs = set(rng.sample(nets[n_inputs:], k=max(1, n_gates // 3)))
    outs.add(nets[-1])
    for net in sorted(outs):
        nl.mark_output(net)
    return nl


def random_vectors(nl: Netlist, seed: int, n: int = 100) -> dict:
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 2, size=n, dtype=np.uint8)
        for name in nl.primary_inputs
    }


class TestPacking:
    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip(self, n, seed):
        bits = np.random.default_rng(seed).integers(0, 2, size=n, dtype=np.uint8)
        assert (unpack_bits(pack_bits(bits), n) == bits).all()

    @pytest.mark.parametrize("n_inputs", [0, 1, 3, 6, 8])
    def test_exhaustive_words_match_convention(self, n_inputs):
        packed = exhaustive_words(n_inputs)
        combos = np.arange(1 << n_inputs, dtype=np.uint32)
        for k in range(n_inputs):
            expected = ((combos >> k) & 1).astype(np.uint8)
            assert (unpack_bits(packed.words[k], packed.n_vectors) == expected).all()


class TestRandomNetlistEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_fault_free_random_vectors(self, seed):
        nl = random_netlist(seed)
        vectors = random_vectors(nl, seed)
        ref = ReferenceSimulator(nl).run(vectors)
        got = NetlistSimulator(nl).run(vectors)
        assert set(got) == set(ref)
        for net in ref:
            assert (got[net] == ref[net]).all(), net

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_every_stuck_at_fault_matches(self, seed):
        nl = random_netlist(seed, n_gates=8)
        sim = NetlistSimulator(nl)
        ref = ReferenceSimulator(nl)
        for fault in full_fault_list(nl):
            assert (
                sim.truth_table(fault) == ref.truth_table(fault)
            ).all(), fault.describe()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_campaign_matches_per_fault_loop(self, seed):
        nl = random_netlist(seed, n_gates=10)
        ref = ReferenceSimulator(nl)
        golden = ref.truth_table()
        faults = full_fault_list(nl)
        expected = [bool((ref.truth_table(f) != golden).any()) for f in faults]
        result = run_stuck_at_campaign(nl, faults=faults)
        assert result.classifications() == [
            "detected" if hit else "undetected" for hit in expected
        ]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_collapsing_and_dropping_do_not_change_verdicts(self, seed):
        nl = random_netlist(seed, n_gates=10)
        baseline = run_stuck_at_campaign(nl, collapse=False, fault_dropping=False)
        for collapse in (True, False):
            for word_chunk in (1, 512):
                result = run_stuck_at_campaign(
                    nl, collapse=collapse, word_chunk=word_chunk
                )
                assert (result.detected == baseline.detected).all()
                assert (result.first_detected == baseline.first_detected).all()
                assert result.n_simulated_runs <= baseline.n_simulated_runs


class TestFullAdderUniverse:
    @pytest.mark.parametrize("builder", [builders.full_adder, builders.full_adder_xor3])
    def test_all_32_faults_bit_identical(self, builder):
        nl = builder()
        faults = full_fault_list(nl)
        assert len(faults) == 32
        sim = NetlistSimulator(nl)
        ref = ReferenceSimulator(nl)
        engine_tables = sim.engine.truth_tables(faults)
        for fault, table in zip(faults, engine_tables):
            expected = ref.truth_table(fault)
            assert (table == expected).all(), fault.describe()
            assert (sim.truth_table(fault) == expected).all(), fault.describe()

    @pytest.mark.parametrize("builder", [builders.full_adder, builders.full_adder_xor3])
    def test_campaign_classifications_match_reference(self, builder):
        nl = builder()
        ref = ReferenceSimulator(nl)
        golden = ref.truth_table()
        faults = full_fault_list(nl)
        expected = np.array(
            [bool((ref.truth_table(f) != golden).any()) for f in faults]
        )
        result = run_stuck_at_campaign(nl)
        assert (result.detected == expected).all()
        assert result.n_vectors == 8
        assert result.n_faults == 32

    @pytest.mark.parametrize("builder", [builders.full_adder, builders.full_adder_xor3])
    def test_structural_groups_are_behaviorally_identical(self, builder):
        nl = builder()
        ref = ReferenceSimulator(nl)
        faults = full_fault_list(nl)
        groups = structural_equivalence_groups(nl, faults)
        assert sorted(i for g in groups for i in g) == list(range(len(faults)))
        assert len(groups) < len(faults)  # collapsing actually collapses
        for group in groups:
            signatures = {ref.behavior_signature(faults[i]) for i in group}
            assert len(signatures) == 1, [faults[i].describe() for i in group]


class TestAdapterSemantics:
    def test_scalar_inputs_yield_scalar_outputs(self):
        nl = builders.half_adder()
        outs = NetlistSimulator(nl).outputs({"a": 1, "b": 1})
        assert outs["s"].shape == ()
        assert int(outs["cout"]) == 1

    def test_mixed_scalar_vector_broadcasts(self):
        nl = builders.half_adder()
        a = np.array([0, 1, 0, 1], dtype=np.uint8)
        got = NetlistSimulator(nl).outputs({"a": a, "b": 1})
        ref = ReferenceSimulator(nl).outputs({"a": a, "b": 1})
        assert got["s"].shape == (4,)
        assert (got["s"] == ref["s"]).all()
        assert (got["cout"] == ref["cout"]).all()

    def test_long_vector_crosses_word_boundary(self):
        nl = builders.ripple_carry_adder(3)
        vectors = random_vectors(nl, seed=7, n=257)  # 5 words, partial tail
        got = NetlistSimulator(nl).run(vectors)
        ref = ReferenceSimulator(nl).run(vectors)
        for net in ref:
            assert (got[net] == ref[net]).all(), net


class TestBatchedEntryPoints:
    def test_injector_gate_level_campaign(self):
        from repro.faults.injector import run_gate_level_campaign

        nl = builders.full_adder()
        result, raw = run_gate_level_campaign(nl)
        assert result.total == 32
        assert result.count("detected") == raw.detected_count
        assert result.count("escaped") == raw.n_faults - raw.detected_count
        # Exhaustive vectors detect the whole full-adder universe.
        assert result.count("detected") == 32
        assert "detected" in result.summary()

    def test_injector_campaign_with_partial_vectors(self):
        from repro.faults.injector import run_gate_level_campaign

        nl = builders.full_adder()
        # A single all-zero vector cannot detect every fault.
        vectors = {name: np.zeros(1, dtype=np.uint8) for name in nl.primary_inputs}
        result, raw = run_gate_level_campaign(nl, vectors=vectors)
        assert raw.n_vectors == 1
        assert 0 < result.count("detected") < 32
        ref = ReferenceSimulator(nl)
        zeros = {name: 0 for name in nl.primary_inputs}
        golden = ref.outputs(zeros)
        for fault, hit in zip(raw.faults, raw.detected):
            faulty = ref.outputs(zeros, fault)
            expected = any(
                int(faulty[k]) != int(golden[k]) for k in golden
            )
            assert bool(hit) == expected, fault.describe()

    def test_coverage_gate_level_stats(self):
        from repro.coverage.engine import evaluate_gate_level

        nl = builders.full_adder_xor3()
        stats, raw = evaluate_gate_level(nl)
        assert stats.total == 32
        assert stats.detected == raw.detected_count
        assert stats.exhaustive
        assert stats.equivalence_groups == len(raw.groups)
        assert stats.simulated_runs <= stats.total
        assert 0.0 <= stats.coverage <= 1.0
        assert "gate-level" in stats.describe()

    def test_first_detected_vector_is_a_real_detection(self):
        nl = builders.full_adder()
        ref = ReferenceSimulator(nl)
        golden = ref.truth_table()
        result = run_stuck_at_campaign(nl)
        for fault, hit, vec in zip(
            result.faults, result.detected, result.first_detected
        ):
            if not hit:
                assert vec == -1
                continue
            table = ref.truth_table(fault)
            diffs = np.nonzero((table != golden).any(axis=1))[0]
            assert vec == diffs[0], fault.describe()

    def test_first_detected_earliest_across_chunks_without_dropping(self):
        # Multi-word exhaustive set (9 inputs -> 512 vectors, 8 words):
        # re-detection in later chunks must not overwrite the earliest
        # detecting vector when fault dropping is off.
        nl = builders.ripple_carry_adder(4)
        ref = ReferenceSimulator(nl)
        golden = ref.truth_table()
        result = run_stuck_at_campaign(
            nl, word_chunk=1, fault_dropping=False, collapse=False
        )
        for fault, hit, vec in zip(
            result.faults, result.detected, result.first_detected
        ):
            if not hit:
                assert vec == -1
                continue
            diffs = np.nonzero((ref.truth_table(fault) != golden).any(axis=1))[0]
            assert vec == diffs[0], fault.describe()


class TestCachesAndIndices:
    def test_simulate_reuses_cached_simulator(self):
        nl = builders.full_adder()
        simulate(nl, {"a": 0, "b": 0, "cin": 0})
        first = get_simulator(nl)
        simulate(nl, {"a": 1, "b": 0, "cin": 0})
        assert get_simulator(nl) is first

    def test_mutation_invalidates_simulator_cache(self):
        nl = builders.half_adder()
        before = get_simulator(nl)
        nl.add_gate(CellType.NOT, ["s"], "ns")
        nl.mark_output("ns")
        after = get_simulator(nl)
        assert after is not before
        assert simulate(nl, {"a": 1, "b": 0})["ns"] == 0

    def test_compile_cache_hit_and_invalidation(self):
        nl = builders.full_adder()
        first = compile_netlist(nl)
        assert compile_netlist(nl) is first
        nl.add_gate(CellType.NOT, ["s"], "ns")
        assert compile_netlist(nl) is not first

    def test_indices_track_add_gate(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.AND, ["a", "b"], "x")
        assert nl.fanout_count("a") == 1
        assert nl.driver_of("x").cell_type is CellType.AND
        nl.add_gate(CellType.OR, ["a", "x"], "y")
        assert nl.fanout_count("a") == 2
        assert nl.driver_of("y").cell_type is CellType.OR
        assert [pin for _, pin in nl.fanout("a")] == [0, 0]

    def test_deep_chain_does_not_hit_recursion_limit(self):
        nl = Netlist("deep")
        net = nl.add_input("a")
        for k in range(5000):
            nxt = f"n{k}"
            nl.add_gate(CellType.NOT, [net], nxt)
            net = nxt
        nl.mark_output(net)
        order = nl.topological_gates()
        assert len(order) == 5000
        # A 5000-deep inverter chain: output = input for even length.
        assert simulate(nl, {"a": 1})[net] == 1

    def test_cycle_error_names_a_gate_on_the_cycle(self):
        from repro.errors import NetlistError
        from repro.gates.netlist import Gate

        nl = Netlist("cyc")
        nl.add_input("a")
        # Downstream consumer declared first; the cycle is x <-> y.
        nl.gates.append(Gate("downstream", CellType.AND, ("a", "x"), "z"))
        nl.gates.append(Gate("gx", CellType.AND, ("a", "y"), "x"))
        nl.gates.append(Gate("gy", CellType.NOT, ("x",), "y"))
        with pytest.raises(NetlistError) as err:
            nl.topological_gates()
        assert "'gx'" in str(err.value) or "'gy'" in str(err.value)

    def test_compiled_fanout_csr_matches_netlist(self):
        nl = builders.full_adder()
        compiled = compile_netlist(nl)
        for net in nl.nets:
            expected = sorted(
                (compiled.gate_names.index(g.name), pin) for g, pin in nl.fanout(net)
            )
            assert sorted(compiled.fanout_of(net)) == expected
