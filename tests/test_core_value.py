"""Tests for repro.core.value: the SCK self-checking type."""

import pytest

from repro.arch.cell import effective_faulty_cells
from repro.core.backends import HardwareBackend
from repro.core.context import SCKContext
from repro.core.value import SCK
from repro.errors import CheckError, OverflowPolicyError, ReproError, SimulationError


@pytest.fixture
def ctx():
    with SCKContext(width=16) as context:
        yield context


class TestBasics:
    def test_construction_and_accessors(self, ctx):
        v = SCK(42)
        assert v.value == 42
        assert v.GetID() == 42
        assert v.error is False
        assert v.GetError() is False
        assert int(v) == 42

    def test_non_integer_rejected(self, ctx):
        with pytest.raises(ReproError):
            SCK(1.5)
        with pytest.raises(ReproError):
            SCK(True)

    def test_copy_construction_keeps_error(self, ctx):
        tainted = SCK(5, error=True)
        copied = SCK(tainted)
        assert copied.error is True
        assert copied.value == 5

    def test_repr_marks_error(self, ctx):
        assert repr(SCK(3)) == "SCK(3)"
        assert repr(SCK(3, error=True)) == "SCK(3, E)"

    def test_wrap_on_construction(self, ctx):
        v = SCK(40000)  # > 2**15 - 1 at width 16
        assert v.value == 40000 - 65536


class TestArithmetic:
    def test_add_sub_mul(self, ctx):
        a, b = SCK(1200), SCK(-34)
        assert (a + b).value == 1166
        assert (a - b).value == 1234
        assert (a * SCK(3)).value == 3600

    def test_int_coercion_both_sides(self, ctx):
        a = SCK(10)
        assert (a + 5).value == 15
        assert (5 + a).value == 15
        assert (a - 3).value == 7
        assert (3 - a).value == -7
        assert (a * 2).value == 20
        assert (2 * a).value == 20

    def test_division_c_semantics(self, ctx):
        assert (SCK(7) / SCK(2)).value == 3
        assert (SCK(-7) / SCK(2)).value == -3
        assert (SCK(7) % SCK(-2)).value == 1
        assert (SCK(-7) % SCK(2)).value == -1
        assert (SCK(7) // SCK(2)).value == 3
        assert (100 / SCK(7)).value == 14
        assert (100 % SCK(7)).value == 2

    def test_division_by_zero(self, ctx):
        with pytest.raises(SimulationError):
            SCK(5) / SCK(0)
        with pytest.raises(SimulationError):
            SCK(5) % 0

    def test_neg_abs(self, ctx):
        assert (-SCK(9)).value == -9
        assert abs(SCK(-9)).value == 9
        assert (+SCK(4)).value == 4

    def test_unsupported_operand(self, ctx):
        with pytest.raises(TypeError):
            SCK(1) + "x"

    def test_comparisons(self, ctx):
        assert SCK(3) == SCK(3)
        assert SCK(3) == 3
        assert SCK(3) != 4
        assert SCK(2) < SCK(3) <= SCK(3)
        assert SCK(5) > 4 >= SCK(4)

    def test_bool_and_hash(self, ctx):
        assert bool(SCK(1)) and not bool(SCK(0))
        assert hash(SCK(3)) == hash(SCK(3))


class TestErrorPropagation:
    def test_clean_ops_stay_clean(self, ctx):
        result = (SCK(3) + SCK(4)) * SCK(2) - SCK(1)
        assert result.error is False
        assert ctx.errors_detected == 0

    def test_error_bit_propagates(self, ctx):
        tainted = SCK(5, error=True)
        clean = SCK(2)
        assert (tainted + clean).error is True
        assert (clean * tainted).error is True
        assert (-tainted).error is True
        assert (tainted / SCK(2)).error is True

    def test_operation_and_check_counted(self, ctx):
        SCK(1) + SCK(2)
        assert ctx.operations == 1
        assert ctx.checks == 1
        assert len(ctx.log) == 1


class TestFaultyHardware:
    def _faulty_backend(self, width=8, cell_index=0, position=2):
        backend = HardwareBackend(width)
        cell = effective_faulty_cells()[cell_index]
        backend.alu.inject_fault("adder", cell, position=position)
        return backend

    def test_same_unit_detection_sets_error(self):
        backend = self._faulty_backend()
        with SCKContext(width=8, backend=backend) as ctx:
            flagged = 0
            wrong_undetected = 0
            for a in range(-30, 30, 3):
                result = SCK(a) + SCK(17)
                expected = a + 17
                if result.error:
                    flagged += 1
                elif result.value != expected:
                    wrong_undetected += 1
            assert flagged > 0
            # tech1 at width 8 leaves few escapes; certainly not all
            assert wrong_undetected < flagged

    def test_different_unit_catches_every_observable_error(self):
        backend = self._faulty_backend()
        with SCKContext(
            width=8, backend=backend, check_allocation="different_unit"
        ) as ctx:
            for a in range(-40, 40):
                result = SCK(a) + SCK(17)
                if result.value != a + 17:
                    assert result.error, f"escape at a={a}"

    def test_strict_mode_raises(self):
        backend = self._faulty_backend()
        with SCKContext(
            width=8,
            backend=backend,
            check_allocation="different_unit",
            strict=True,
        ):
            with pytest.raises(CheckError):
                for a in range(-40, 40):
                    SCK(a) + SCK(17)


class TestOverflowPolicies:
    def test_wrap_silent(self):
        with SCKContext(width=8, overflow="wrap"):
            v = SCK(100) + SCK(100)
            assert v.value == 200 - 256
            assert v.error is False

    def test_flag_sets_error(self):
        with SCKContext(width=8, overflow="flag"):
            v = SCK(100) + SCK(100)
            assert v.error is True

    def test_raise_policy(self):
        with SCKContext(width=8, overflow="raise"):
            with pytest.raises(OverflowPolicyError):
                SCK(100) + SCK(100)

    def test_saturate(self):
        with SCKContext(width=8, overflow="saturate"):
            v = SCK(100) + SCK(100)
            assert v.value == 127
            assert v.error is False


class TestContextMixing:
    def test_same_width_contexts_interoperate(self):
        with SCKContext(width=8):
            a = SCK(3)
        with SCKContext(width=8):
            b = SCK(4)
            assert (a + b).value == 7

    def test_width_mismatch_rejected(self):
        with SCKContext(width=8):
            a = SCK(3)
        with SCKContext(width=16):
            b = SCK(4)
            with pytest.raises(ReproError):
                a + b
