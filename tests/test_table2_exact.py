"""Exactness, parity and shard-invariance of the batched Table 2 paths.

Three independent evaluators exist for the chain operators: the seed
functional LUT-splicing loop, the batched gate-level sweep (multi-site
fault groups over word-packed exhaustive vectors) and the carry-state
transfer matrix.  They model the same experiment, so their integer
situation counts must agree bit-for-bit -- these tests pin that, plus
the explicit-opt-in semantics of sampling and the bit-identical merges
of process-sharded campaigns.
"""

import numpy as np
import pytest

from repro.arch.cell import collapsed_cell_library, faulty_cell_library
from repro.arch.testbench import table2_architecture
from repro.coverage.engine import (
    evaluate_adder,
    evaluate_divider,
    evaluate_multiplier,
    evaluate_operator,
    evaluate_subtractor,
    theoretical_situations,
)
from repro.errors import SimulationError
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.faults.sharding import shard_bounds
from repro.gates import builders


def _key(stats):
    return {
        name: (
            s.situations,
            s.covered,
            s.observable_errors,
            s.detected_while_correct,
            s.per_case_min,
            s.per_case_max,
        )
        for name, s in stats.items()
    }


class TestMethodParity:
    @pytest.mark.parametrize("evaluate", [evaluate_adder, evaluate_subtractor])
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_three_methods_bit_identical(self, evaluate, width):
        """gate == functional == transfer, integer for integer."""
        gate = evaluate(width, method="gate")
        functional = evaluate(width, method="functional")
        transfer = evaluate(width, method="transfer")
        assert _key(gate) == _key(functional) == _key(transfer)

    def test_gate_matches_transfer_at_n8(self):
        """The full 16.7M-situation n = 8 universe, two exact engines."""
        assert _key(evaluate_adder(8, method="gate")) == _key(
            evaluate_adder(8, method="transfer")
        )

    def test_two_xor_cell_style_parity(self):
        """The alternative five-gate cell collapses/translates correctly too."""
        gate = evaluate_adder(2, cell_netlist="two_xor", method="gate")
        functional = evaluate_adder(2, cell_netlist="two_xor", method="functional")
        assert _key(gate) == _key(functional)


class TestMethodResolution:
    def test_default_n8_is_exhaustive_gate_sweep(self):
        stats = evaluate_adder(8)
        assert stats["tech1"].method == "gate"
        assert stats["tech1"].exhaustive
        assert stats["tech1"].situations == theoretical_situations("add", 8)

    def test_default_wide_width_is_exact_transfer(self):
        stats = evaluate_adder(16)
        assert stats["tech1"].method == "transfer"
        assert stats["tech1"].exhaustive
        assert stats["tech1"].situations == 32 * 16 * (1 << 32)

    def test_sampling_requires_explicit_opt_in(self):
        sampled = evaluate_adder(16, samples=512)
        assert not sampled["tech1"].exhaustive
        assert sampled["tech1"].method == "sampled"
        assert sampled["tech1"].situations == 32 * 16 * 512

    def test_forced_sampled_method(self):
        stats = evaluate_adder(3, samples=128, method="sampled")
        assert not stats["tech1"].exhaustive
        assert stats["tech1"].situations == 32 * 3 * 128

    def test_gate_method_covers_array_operators(self):
        """Since PR 3 the gate sweep serves mul/div too; only the
        transfer DP remains chain-only (no chain decomposition)."""
        stats = evaluate_multiplier(3, method="gate")
        assert stats["tech1"].method == "gate" and stats["tech1"].exhaustive
        with pytest.raises(SimulationError):
            evaluate_operator("div", 2, method="transfer")

    def test_default_muldiv_n8_is_gate_not_sampled(self):
        """Acceptance: wide mul/div rows no longer silently sample."""
        mul = evaluate_multiplier(8)
        div = evaluate_divider(8)
        for stats, op in ((mul, "mul"), (div, "div")):
            assert stats["tech1"].method == "gate"
            assert stats["tech1"].exhaustive
            assert stats["tech1"].situations == theoretical_situations(op, 8)

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError):
            evaluate_adder(2, method="warp")


class TestExactVsSampled:
    def test_exact_dominates_seeded_estimate_at_n8(self):
        """With the default seed the exact coverage bounds the estimate
        from above for every technique, and the two agree closely."""
        exact = evaluate_adder(8)
        sampled = evaluate_adder(8, samples=4096, method="sampled")
        for technique in ("tech1", "tech2", "both"):
            assert exact[technique].coverage >= sampled[technique].coverage
            assert (
                abs(
                    exact[technique].coverage_percent
                    - sampled[technique].coverage_percent
                )
                < 0.5
            )


class TestShardInvariance:
    def test_gate_sweep_workers_bit_identical(self):
        """Acceptance: 1 vs 4 workers give bit-identical Table 2 cells."""
        assert _key(evaluate_adder(4, workers=1)) == _key(
            evaluate_adder(4, workers=4)
        )

    def test_functional_workers_bit_identical(self):
        assert _key(evaluate_multiplier(3, method="functional", workers=1)) == _key(
            evaluate_multiplier(3, method="functional", workers=3)
        )

    def test_sampled_estimator_workers_bit_identical(self):
        """The seeded Monte-Carlo path reseeds per shard from the same
        seed, so its merged runs are as worker-invariant as the exact
        paths -- for every operator, including the masked divider."""
        for evaluate, kwargs in (
            (evaluate_adder, {}),
            (evaluate_multiplier, {}),
            (evaluate_divider, {}),
            (evaluate_adder, {"seed": 7}),
        ):
            solo = evaluate(5, samples=256, method="sampled", workers=1, **kwargs)
            sharded = evaluate(5, samples=256, method="sampled", workers=3, **kwargs)
            assert _key(solo) == _key(sharded)
            assert solo["tech1"].method == "sampled"
            assert not solo["tech1"].exhaustive

    def test_campaign_workers_bit_identical(self):
        netlist = builders.ripple_carry_adder(4)
        solo = run_sharded_stuck_at_campaign(netlist, workers=1)
        sharded = run_sharded_stuck_at_campaign(netlist, workers=3)
        assert solo.faults == sharded.faults
        assert (solo.detected == sharded.detected).all()
        assert (solo.first_detected == sharded.first_detected).all()

    def test_campaign_sampled_vectors_workers_bit_identical(self):
        """Fault-list shards all see the same sampled vector set, so
        sampled campaigns merge bit-identically too."""
        netlist = builders.ripple_carry_adder(5)
        rng = np.random.default_rng(20050307)
        vectors = {
            name: rng.integers(0, 2, size=96, dtype=np.uint8).astype(np.uint8)
            for name in netlist.primary_inputs
        }
        solo = run_sharded_stuck_at_campaign(netlist, vectors=vectors, workers=1)
        sharded = run_sharded_stuck_at_campaign(netlist, vectors=vectors, workers=3)
        assert solo.faults == sharded.faults
        assert (solo.detected == sharded.detected).all()
        assert (solo.first_detected == sharded.first_detected).all()

    def test_shard_bounds_partition(self):
        for n, k in ((10, 3), (7, 7), (5, 8), (0, 4), (1, 1)):
            bounds = shard_bounds(n, k)
            covered = [i for lo, hi in bounds for i in range(lo, hi)]
            assert covered == list(range(n))


class TestCollapsingAndTranslation:
    def test_collapsed_library_spans_full_universe(self):
        groups = collapsed_cell_library()
        assert sum(g.multiplicity for g in groups) == 32
        assert len(groups) < 32  # collapsing actually helps

    def test_fault_groups_replicate_across_chains(self):
        arch = table2_architecture("add", 3)
        cell = faulty_cell_library()[0]
        group = arch.fault_group(cell.fault.fault, 1)
        # One translated site set per replica of the faulty unit.
        assert len(group) % len(arch.chains) == 0
        nets = set(arch.netlist.nets)
        for fault in group:
            assert fault.site.net in nets

    def test_fault_group_position_validated(self):
        arch = table2_architecture("add", 2)
        cell = faulty_cell_library()[0]
        with pytest.raises(SimulationError):
            arch.fault_group(cell.fault.fault, 2)


class TestGoldenRow:
    def test_golden_row_matches_reference_sum(self):
        """The sweep's shared golden row really is the fault-free unit."""
        arch = table2_architecture("add", 3)
        from repro.gates.engine import engine_for, unpack_bits

        engine = engine_for(arch.netlist)
        rows = arch.input_rows(0, arch.n_words)
        out = engine.run_fault_groups(rows, [])
        bits = unpack_bits(out[: 3, 0, :], arch.n_vectors)
        ris = sum(bits[i].astype(np.uint64) << np.uint64(i) for i in range(3))
        v = np.arange(arch.n_vectors, dtype=np.uint64)
        a, b = v & np.uint64(7), (v >> np.uint64(3)) & np.uint64(7)
        assert (ris == ((a + b) & np.uint64(7))).all()
