"""Tests for repro.coverage: situations, engine, report.

The structural assertions pin the reproduction to the paper:
situation-count formulas, monotone coverage growth, technique ordering,
100 % coverage with a fault-free check unit.
"""

import pytest

from repro.coverage.engine import (
    evaluate_adder,
    evaluate_divider,
    evaluate_multiplier,
    evaluate_operator,
    evaluate_subtractor,
    theoretical_situations,
)
from repro.coverage.report import (
    PAPER_TABLE2,
    render_table1,
    render_table2,
    render_two_bit_analysis,
)
from repro.coverage.situations import (
    adder_situations,
    divider_situations,
    multiplier_situations,
)
from repro.coverage.techniques import TECHNIQUES, techniques_for
from repro.errors import FaultError, SimulationError


class TestSituationCounts:
    def test_paper_formula_rows(self):
        """Table 2's printed counts for n = 1..3 match the formula."""
        assert adder_situations(1) == 128
        assert adder_situations(2) == 1024
        assert adder_situations(3) == 6144

    def test_formula_general(self):
        assert adder_situations(8) == 32 * 8 * (1 << 16)

    def test_multiplier_counts(self):
        assert multiplier_situations(4) == 32 * 6 * 256

    def test_divider_counts(self):
        assert divider_situations(2) == 32 * 3 * (4 * 3)

    def test_invalid_width(self):
        with pytest.raises(FaultError):
            adder_situations(0)


class TestTechniqueRegistry:
    def test_all_operators_covered(self):
        for operator in ("add", "sub", "mul"):
            names = [t.name for t in techniques_for(operator)]
            assert names == ["tech1", "tech2", "both"]

    def test_div_has_no_both(self):
        names = [t.name for t in techniques_for("div")]
        assert names == ["tech1", "tech2"]

    def test_paper_coverages_recorded(self):
        assert TECHNIQUES[("add", "tech1")].paper_coverage == 97.25
        assert TECHNIQUES[("sub", "both")].paper_coverage == 99.58

    def test_unknown_operator(self):
        with pytest.raises(FaultError):
            techniques_for("xor")


@pytest.fixture(scope="module")
def adder_stats():
    return {n: evaluate_adder(n) for n in (1, 2, 3)}


class TestAdderCoverage:
    def test_exhaustive_counts(self, adder_stats):
        for n, stats in adder_stats.items():
            assert stats["tech1"].situations == adder_situations(n)
            assert stats["tech1"].exhaustive

    def test_monotone_in_width(self, adder_stats):
        """Paper Table 2: coverage grows with operand width."""
        for technique in ("tech1", "tech2", "both"):
            values = [adder_stats[n][technique].coverage for n in (1, 2, 3)]
            assert values == sorted(values)

    def test_technique_ordering(self, adder_stats):
        """Paper Table 2: tech2 >= tech1, both >= each."""
        for n in (1, 2, 3):
            s = adder_stats[n]
            assert s["tech2"].coverage >= s["tech1"].coverage
            assert s["both"].coverage >= s["tech2"].coverage

    def test_band_close_to_paper(self, adder_stats):
        """Within 3.5 points of the paper's percentages (shape match)."""
        for n in (1, 2, 3):
            paper = PAPER_TABLE2[n]
            ours = [
                adder_stats[n][t].coverage_percent
                for t in ("tech1", "tech2", "both")
            ]
            for measured, published in zip(ours, paper):
                assert abs(measured - published) < 3.5

    def test_detect_while_correct_positive(self, adder_stats):
        """The early-detection property the paper highlights."""
        s = adder_stats[2]
        assert s["tech1"].detected_while_correct > 0
        assert s["both"].detected_while_correct > s["tech1"].detected_while_correct

    def test_per_case_range_includes_perfect(self, adder_stats):
        both = adder_stats[2]["both"]
        assert both.per_case_max == 1.0
        assert both.per_case_min < 1.0

    def test_sampling_path(self):
        stats = evaluate_adder(8, exhaustive_limit=1 << 10, samples=256)
        assert not stats["tech1"].exhaustive
        assert stats["tech1"].situations == 32 * 8 * 256
        assert stats["tech1"].coverage > 0.9


class TestOtherOperators:
    def test_subtractor(self):
        stats = evaluate_subtractor(3)
        assert stats["both"].coverage >= stats["tech1"].coverage
        assert stats["tech1"].coverage > 0.9

    def test_multiplier(self):
        stats = evaluate_multiplier(3)
        # Tiny 3-bit arrays leave more compensation room; Table 1's
        # published figures are for wider operands.
        assert stats["tech1"].coverage > 0.8
        assert stats["both"].coverage >= stats["tech2"].coverage

    def test_divider(self):
        stats = evaluate_divider(3)
        assert set(stats) == {"tech1", "tech2"}
        assert stats["tech2"].coverage >= stats["tech1"].coverage

    def test_dispatch(self):
        stats = evaluate_operator("add", 2)
        assert stats["tech1"].operator == "add"
        with pytest.raises(SimulationError):
            evaluate_operator("pow", 2)

    def test_theoretical_dispatch(self):
        assert theoretical_situations("add", 2) == 1024
        assert theoretical_situations("sub", 2) == 1024
        with pytest.raises(SimulationError):
            theoretical_situations("pow", 2)


class TestReports:
    def test_table2_renders(self, adder_stats):
        text = render_table2(widths=(1, 2, 3), results=adder_stats)
        assert "Table 2" in text
        assert "128" in text and "1024" in text and "6144" in text

    def test_two_bit_analysis(self, adder_stats):
        text = render_two_bit_analysis(stats=adder_stats[2])
        assert "1024" in text
        assert "paper: 216" in text

    def test_table1_renders_from_precomputed(self):
        results = {"add": evaluate_adder(2)}
        text = render_table1(width=2, operators=("add",), results=results)
        assert "add" in text and "tech1" in text and "97.25" in text
