module fa(a, b, cin, s, cout);
  input a;
  input b;
  input cin;
  output s;
  output cout;
  wire p;
  wire g1;
  wire g2;
  assign p = a ^ b;  // x1
  assign g1 = a & b;  // a1
  assign s = p ^ cin;  // x2
  assign g2 = p & cin;  // a2
  assign cout = g1 | g2;  // o1
endmodule
