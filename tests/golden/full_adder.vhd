library ieee;
use ieee.std_logic_1164.all;

entity fa is
  port (
    a : in  std_logic;
    b : in  std_logic;
    cin : in  std_logic;
    s : out std_logic;
    cout : out std_logic
  );
end entity fa;

architecture structural of fa is
  signal p, g1, g2 : std_logic;
begin
  p <= a xor b;  -- x1
  g1 <= a and b;  -- a1
  s <= p xor cin;  -- x2
  g2 <= p and cin;  -- a2
  cout <= g1 or g2;  -- o1
end architecture structural;
