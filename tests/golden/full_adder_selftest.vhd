library ieee;
use ieee.std_logic_1164.all;

entity fa is
  port (
    a : in  std_logic;
    b : in  std_logic;
    cin : in  std_logic;
    s : out std_logic;
    cout : out std_logic
  );
end entity fa;

architecture structural of fa is
  signal p, g1, g2 : std_logic;
begin
  p <= a xor b;  -- x1
  g1 <= a and b;  -- a1
  s <= p xor cin;  -- x2
  g2 <= p and cin;  -- a2
  cout <= g1 or g2;  -- o1
end architecture structural;

library ieee;
use ieee.std_logic_1164.all;

entity fa_selftest is
  port (
    clk  : in  std_logic;
    ok   : out std_logic;
    done : out std_logic
  );
end entity fa_selftest;

architecture behavioural of fa_selftest is
  component fa is
    port (
      a : in  std_logic;
      b : in  std_logic;
      cin : in  std_logic;
      s : out std_logic;
      cout : out std_logic
    );
  end component;
  constant TEST_COUNT : natural := 5;
  subtype stim_word_t is std_logic_vector(2 downto 0);
  subtype resp_word_t is std_logic_vector(1 downto 0);
  type stim_rom_t is array (0 to TEST_COUNT - 1) of stim_word_t;
  type resp_rom_t is array (0 to TEST_COUNT - 1) of resp_word_t;
  -- compact test set: fa: 5 tests cover 32/32 faults (100.00%, greedy-dictionary)
  constant STIM_ROM : stim_rom_t := (
    "001",  -- 0: +14 fault(s)
    "110",  -- 1: +11 fault(s)
    "011",  -- 2: +5 fault(s)
    "010",  -- 3: +1 fault(s)
    "100"  -- 4: +1 fault(s)
  );
  constant RESP_ROM : resp_rom_t := (
    "01",
    "10",
    "10",
    "01",
    "01"
  );
  signal index_q : natural range 0 to TEST_COUNT := 0;
  signal stim    : stim_word_t;
  signal resp    : resp_word_t;
  signal ok_q    : std_logic := '1';
  signal done_q  : std_logic := '0';
begin
  stim <= STIM_ROM(index_q) when index_q < TEST_COUNT else (others => '0');
  dut : fa
    port map (
      a => stim(0),
      b => stim(1),
      cin => stim(2),
      s => resp(0),
      cout => resp(1)
    );
  check : process (clk)
  begin
    if rising_edge(clk) then
      if index_q < TEST_COUNT then
        if resp /= RESP_ROM(index_q) then
          ok_q <= '0';
        end if;
        index_q <= index_q + 1;
      else
        done_q <= '1';
      end if;
    end if;
  end process check;
  ok   <= ok_q;
  done <= done_q;
end architecture behavioural;
