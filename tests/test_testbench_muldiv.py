"""Differential tests for the multiplier/divider Table 2 architectures.

The gate-level test architectures lower the truncated ripple-row
multiplier and the unrolled restoring divider (plus their fault-free
checking logic) to flat netlists; a cell-level fault at an array
position becomes a multi-site fault group over every replica /
iteration.  These tests sweep *every* collapsed faulty-cell class at
*every* fault site (n = 3 and 4) and assert the swept netlist outputs
are bit-identical to the functional LUT-splicing units
(:class:`~repro.arch.multiplier.ArrayMultiplierUnit`,
:class:`~repro.arch.divider.RestoringDividerUnit`), including the
detection flags and the zero-divisor-excluded universe size.
"""

import numpy as np
import pytest

from repro.arch.cell import collapsed_cell_library, faulty_cell_library
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.arch.testbench import (
    Table2DividerArchitecture,
    Table2MultiplierArchitecture,
    table2_architecture,
)
from repro.coverage.engine import (
    _gate_case_counts,
    _merge_gate_shards,
    evaluate_divider,
    evaluate_multiplier,
    theoretical_situations,
)
from repro.errors import SimulationError
from repro.faults.sharding import shard_grid
from repro.gates.engine import engine_for, unpack_bits


def _stats_key(stats):
    return {
        name: (
            s.situations,
            s.covered,
            s.observable_errors,
            s.detected_while_correct,
            s.per_case_min,
            s.per_case_max,
        )
        for name, s in stats.items()
    }


def _sweep_outputs(arch, groups):
    """Unpacked output bits of the whole sweep for a batch of fault groups.

    Returns ``(n_outputs, len(groups) + 1, n_vectors)`` uint8 bits; the
    last fault row is the shared golden run.
    """
    engine = engine_for(arch.netlist)
    rows = arch.input_rows(0, arch.n_words)
    out = engine.run_fault_groups(rows, groups)
    return unpack_bits(out, arch.n_vectors)


def _word(bits, rows):
    """Assemble packed bit rows into uint64 values, LSB first."""
    return sum(
        bits[r].astype(np.uint64) << np.uint64(j) for j, r in enumerate(rows)
    )


def _operands(width):
    v = np.arange(1 << (2 * width), dtype=np.uint64)
    mask = np.uint64((1 << width) - 1)
    return v & mask, (v >> np.uint64(width)) & mask


class TestMultiplierArchitecture:
    @pytest.mark.parametrize("width", [3, 4])
    def test_every_class_every_site_matches_functional_unit(self, width):
        arch = table2_architecture("mul", width)
        a, b = _operands(width)
        mask = np.uint64((1 << width) - 1)
        neg_a = (np.uint64(0) - a) & mask
        neg_b = (np.uint64(0) - b) & mask
        cases = [
            (group, pos)
            for group in collapsed_cell_library()
            if not group.is_reference
            for pos in arch.positions
        ]
        groups = [
            arch.fault_group(g.representative.fault.fault, pos) for g, pos in cases
        ]
        bits = _sweep_outputs(arch, groups)
        res_rows = list(range(width))
        for row, (group, (frow, fcol)) in enumerate(cases):
            unit = ArrayMultiplierUnit(width, group.representative, frow, fcol)
            ris = unit.mul(a, b)
            got = _word(bits[:, row, :], res_rows)
            assert (got == ris).all(), (group.representative.fault, frow, fcol)
            det1 = ((ris + unit.mul(neg_a, b)) & mask) != 0
            det2 = ((ris + unit.mul(a, neg_b)) & mask) != 0
            assert (bits[arch.detect_rows["tech1"], row, :] == det1).all()
            assert (bits[arch.detect_rows["tech2"], row, :] == det2).all()

    def test_golden_row_is_fault_free_product(self):
        arch = table2_architecture("mul", 4)
        a, b = _operands(4)
        bits = _sweep_outputs(arch, [])
        got = _word(bits[:, 0, :], range(4))
        assert (got == (a * b) & np.uint64(15)).all()
        # The fault-free unit never fires a check.
        assert not bits[arch.detect_rows["tech1"], 0, :].any()
        assert not bits[arch.detect_rows["tech2"], 0, :].any()

    def test_positions_and_replicas(self):
        arch = Table2MultiplierArchitecture(4)
        assert list(arch.positions) == ArrayMultiplierUnit.cell_positions(4)
        assert len(arch.chains) == 3  # nominal + two checking products
        cell = faulty_cell_library()[0]
        group = arch.fault_group(cell.fault.fault, (1, 0))
        assert len(group) % len(arch.chains) == 0
        nets = set(arch.netlist.nets)
        assert all(f.site.net in nets for f in group)

    def test_fault_position_validated(self):
        arch = Table2MultiplierArchitecture(3)
        cell = faulty_cell_library()[0]
        with pytest.raises(SimulationError):
            arch.fault_group(cell.fault.fault, (0, 0))  # row 0 has no cells
        with pytest.raises(SimulationError):
            arch.fault_group(cell.fault.fault, (2, 2))  # outside the triangle

    def test_width_one_rejected(self):
        with pytest.raises(SimulationError):
            Table2MultiplierArchitecture(1)


class TestDividerArchitecture:
    @pytest.mark.parametrize("width", [3, 4])
    def test_every_class_every_site_matches_functional_unit(self, width):
        arch = table2_architecture("div", width)
        a, b = _operands(width)
        keep = b != 0
        mask = np.uint64((1 << width) - 1)
        cases = [
            (group, pos)
            for group in collapsed_cell_library()
            if not group.is_reference
            for pos in arch.positions
        ]
        groups = [
            arch.fault_group(g.representative.fault.fault, pos) for g, pos in cases
        ]
        bits = _sweep_outputs(arch, groups)
        q_rows = list(range(width))
        r_rows = list(range(width, 2 * width))
        for row, (group, pos) in enumerate(cases):
            unit = RestoringDividerUnit(width, group.representative, pos)
            q, r = unit.divmod(a[keep], b[keep])
            got_q = _word(bits[:, row, :], q_rows)[keep]
            got_r = _word(bits[:, row, :], r_rows)[keep]
            assert (got_q == q).all(), (group.representative.fault, pos)
            assert (got_r == r).all(), (group.representative.fault, pos)
            det1 = ((q * b[keep] + r) & mask) != a[keep]
            det2 = det1 | (r >= b[keep])
            assert (bits[arch.detect_rows["tech1"], row, :][keep] == det1).all()
            assert (bits[arch.detect_rows["tech2"], row, :][keep] == det2).all()

    def test_golden_row_is_true_divmod(self):
        arch = table2_architecture("div", 4)
        a, b = _operands(4)
        keep = b != 0
        bits = _sweep_outputs(arch, [])
        q = _word(bits[:, 0, :], range(4))[keep]
        r = _word(bits[:, 0, :], range(4, 8))[keep]
        assert (q == a[keep] // b[keep]).all()
        assert (r == a[keep] % b[keep]).all()
        assert not bits[arch.detect_rows["tech1"], 0, :][keep].any()
        assert not bits[arch.detect_rows["tech2"], 0, :][keep].any()

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_zero_divisor_excluded_universe(self, width):
        """The masked sweep spans exactly 2**n * (2**n - 1) situations."""
        arch = Table2DividerArchitecture(width)
        total = arch.valid_count(0, arch.n_words)
        assert total == (1 << width) * ((1 << width) - 1)
        # Partial word ranges partition the same universe.
        split = max(1, arch.n_words // 2)
        assert total == arch.valid_count(0, split) + arch.valid_count(
            split, arch.n_words
        )
        stats = evaluate_divider(width)
        assert stats["tech1"].situations == theoretical_situations("div", width)
        assert stats["tech1"].situations == 32 * (width + 1) * total

    def test_iteration_unrolling(self):
        """One chain replica per quotient bit, width + 1 cells each."""
        arch = Table2DividerArchitecture(3)
        assert len(arch.chains) == 3
        assert all(sorted(tags) == [0, 1, 2, 3] for tags in arch.chains)
        cell = faulty_cell_library()[0]
        group = arch.fault_group(cell.fault.fault, 3)
        assert len(group) % len(arch.chains) == 0

    def test_fault_position_validated(self):
        arch = Table2DividerArchitecture(2)
        cell = faulty_cell_library()[0]
        with pytest.raises(SimulationError):
            arch.fault_group(cell.fault.fault, 3)  # chain has positions 0..2


class TestEvaluatorParity:
    """The gate sweep and the functional LUT evaluators agree integer
    for integer on the full (masked) operand universe."""

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplier_gate_matches_functional(self, width):
        gate = evaluate_multiplier(width, method="gate")
        functional = evaluate_multiplier(width, method="functional")
        assert _stats_key(gate) == _stats_key(functional)
        assert gate["tech1"].method == "gate"

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_divider_gate_matches_functional(self, width):
        gate = evaluate_divider(width, method="gate")
        functional = evaluate_divider(width, method="functional")
        assert _stats_key(gate) == _stats_key(functional)
        assert set(gate) == {"tech1", "tech2"}

    def test_default_method_is_gate(self):
        assert evaluate_multiplier(4)["tech1"].method == "gate"
        assert evaluate_divider(4)["tech1"].method == "gate"

    def test_two_xor_cell_style(self):
        gate = evaluate_multiplier(3, cell_netlist="two_xor", method="gate")
        functional = evaluate_multiplier(3, cell_netlist="two_xor", method="functional")
        assert _stats_key(gate) == _stats_key(functional)


class TestWordRangeSharding:
    """Tiling the sweep by (case, word) rectangle merges bit-identically."""

    def test_shard_grid_covers_rectangle(self):
        for n_cases, n_words, workers in ((10, 4, 3), (3, 100, 8), (1, 7, 4), (5, 1, 9)):
            tiles = shard_grid(n_cases, n_words, workers)
            assert len(tiles) <= max(1, workers)
            seen = set()
            for c_lo, c_hi, w_lo, w_hi in tiles:
                for c in range(c_lo, c_hi):
                    for w in range(w_lo, w_hi):
                        assert (c, w) not in seen
                        seen.add((c, w))
            assert len(seen) == n_cases * n_words
        assert shard_grid(0, 8, 4) == []

    @pytest.mark.parametrize("operator,width", [("mul", 4), ("div", 4), ("add", 5)])
    def test_word_tiles_merge_bit_identically(self, operator, width):
        arch = table2_architecture(operator, width, "xor3_majority")
        n_cases = len(collapsed_cell_library()) * len(arch.positions)
        n_words = arch.n_words
        full = _gate_case_counts(
            operator, width, "xor3_majority", 256, 64, 0, n_cases, 0, n_words
        )
        cuts = sorted({0, max(1, n_words // 3), max(1, (2 * n_words) // 3), n_words})
        grid = [
            (c_lo, c_hi, w_lo, w_hi)
            for c_lo, c_hi in ((0, n_cases // 2), (n_cases // 2, n_cases))
            for w_lo, w_hi in zip(cuts, cuts[1:])
        ]
        shards = [
            _gate_case_counts(operator, width, "xor3_majority", 256, 64, *tile)
            for tile in grid
        ]
        assert _merge_gate_shards(grid, shards) == full

    def test_worker_counts_bit_identical(self):
        assert _stats_key(evaluate_multiplier(3, workers=1)) == _stats_key(
            evaluate_multiplier(3, workers=3)
        )
        assert _stats_key(evaluate_divider(3, workers=1)) == _stats_key(
            evaluate_divider(3, workers=4)
        )
