"""Cross-module integration tests: the paper's claims end to end."""


from repro.apps.fir import FirSpec, fir_graph, fir_reference, fir_sck, make_input_streams
from repro.arch.alu import FaultableALU
from repro.arch.cell import effective_faulty_cells, faulty_cell_library
from repro.codesign.flow import ReliableCoDesignFlow
from repro.codesign.sck_transform import enrich_with_sck
from repro.core.backends import HardwareBackend
from repro.core.context import SCKContext
from repro.core.value import SCK
from repro.coverage.engine import evaluate_adder
from repro.vm.compiler import ERROR_FLAG_ADDR, compile_dfg
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize


class TestSection21Claims:
    """Paper Section 2.1: allocation decides the coverage guarantee."""

    def test_different_units_give_complete_coverage(self):
        """Every observable error is detected when the check runs on a
        fault-free unit -- for every fault in the universe."""
        samples = [(3, 9), (-12, 5), (100, -101), (77, 77)]
        for cell in faulty_cell_library():
            backend = HardwareBackend(8)
            backend.alu.inject_fault("adder", cell, position=1)
            with SCKContext(
                width=8, backend=backend, check_allocation="different_unit"
            ):
                for a, b in samples:
                    result = SCK(a) + SCK(b)
                    expected_wrapped = SCK(a + b).value
                    if result.value != expected_wrapped:
                        assert result.error

    def test_same_unit_coverage_below_complete_but_high(self):
        stats = evaluate_adder(2)
        assert 0.90 < stats["tech1"].coverage < 1.0


class TestFirSckEndToEnd:
    """The methodology applied to the paper's FIR, specification level."""

    def test_fault_free_run_is_clean_and_correct(self):
        samples = list(range(-8, 8))
        with SCKContext(width=16, backend="hardware") as ctx:
            outputs = fir_sck(samples)
        assert [o.value for o in outputs] == fir_reference(samples)
        assert not any(o.error for o in outputs)

    def test_faulty_multiplier_flagged(self):
        samples = list(range(1, 20))
        detected_any = False
        for cell in effective_faulty_cells()[:8]:
            backend = HardwareBackend(16)
            backend.alu.inject_fault("multiplier", cell, position=2, column=1)
            with SCKContext(width=16, backend=backend):
                outputs = fir_sck(samples)
            golden = fir_reference(samples)
            for out, expected in zip(outputs, golden):
                if out.value != expected:
                    assert out.error, "corrupted FIR output not flagged"
                if out.error:
                    detected_any = True
        assert detected_any


class TestHardwareSoftwareConsistency:
    """The same specification gives identical results in the hardware
    simulation (SCK over the faultable ALU) and the compiled software
    (VM over the same ALU), fault by fault."""

    def test_fir_consistent_across_targets(self):
        samples = [5, -3, 12, 7, -9, 1, 0, 4]
        spec = FirSpec()
        graph = fir_graph(spec)
        program, memory_map = compile_dfg(graph, len(samples))
        memory = {}
        for name, stream in make_input_streams(samples, spec).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        for cell in effective_faulty_cells()[:6]:
            # Software target.
            alu = FaultableALU(16)
            alu.inject_fault("adder", cell, position=2)
            sw = Machine(16, alu=alu).run(program, dict(memory))
            base = memory_map.stream_for_output("y")
            sw_out = [sw.memory.get(base + k, 0) for k in range(len(samples))]
            # Specification-level target on an equally-faulty backend.
            backend = HardwareBackend(16)
            backend.alu.inject_fault("adder", cell, position=2)
            with SCKContext(width=16, backend=backend):
                spec_out = [o.value for o in fir_sck(samples, spec)]
            assert sw_out == spec_out


class TestCampaignOnCompiledSoftware:
    """Fault campaign over the compiled SCK FIR: the error flag must
    catch silent corruptions (software implementation of Table 3)."""

    def test_checked_software_detects_errors(self):
        samples = list(range(1, 25))
        graph = enrich_with_sck(fir_graph())
        program, memory_map = compile_dfg(graph, len(samples))
        program = optimize(program)
        memory = {}
        for name, stream in make_input_streams(samples).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        base = memory_map.stream_for_output("y")
        golden = Machine(16).run(program, dict(memory))
        golden_out = [golden.memory.get(base + k, 0) for k in range(len(samples))]

        escapes = 0
        detections = 0
        corruptions = 0
        for cell in effective_faulty_cells():
            alu = FaultableALU(16)
            alu.inject_fault("adder", cell, position=4)
            run = Machine(16, alu=alu).run(program, dict(memory))
            out = [run.memory.get(base + k, 0) for k in range(len(samples))]
            flagged = bool(run.memory.get(ERROR_FLAG_ADDR, 0))
            if out != golden_out:
                corruptions += 1
                if flagged:
                    detections += 1
                else:
                    escapes += 1
        assert corruptions > 0
        assert detections > 0
        # Worst case (same ALU runs the checks): high but possibly
        # imperfect coverage -- the paper's Table 2 story.
        assert detections / corruptions > 0.8


class TestFlowCoversPaperTable3:
    def test_flow_summary_shape(self):
        results = ReliableCoDesignFlow(fir_graph(), samples=5_000).run()
        plain = results["plain"]
        sck = results["sck"]
        embedded = results["embedded"]
        # Latency: checked variants never beat plain; min-latency ties.
        assert sck.hw_min_area.cycles_per_sample > plain.hw_min_area.cycles_per_sample
        assert sck.hw_min_latency.cycles_per_sample == plain.hw_min_latency.cycles_per_sample
        # Software overhead ordering with SCK < 2.6x (paper: 1.47x).
        ratio_sck = sck.software.seconds / plain.software.seconds
        ratio_embedded = embedded.software.seconds / plain.software.seconds
        assert 1.0 < ratio_embedded < ratio_sck < 2.6
