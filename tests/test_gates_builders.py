"""Tests for repro.gates.builders: every block must compute correctly."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.gates import builders
from repro.gates.simulate import NetlistSimulator, simulate


def exhaustive_inputs(width):
    mask = (1 << width) - 1
    for a in range(1 << width):
        for b in range(1 << width):
            yield a, b, mask


def assign_operands(width, a, b, cin=None):
    values = {}
    for i in range(width):
        values[f"a{i}"] = (a >> i) & 1
        values[f"b{i}"] = (b >> i) & 1
    if cin is not None:
        values["cin"] = cin
    return values


def read_sum(outs, width, prefix="fa"):
    total = 0
    for i in range(width):
        total |= outs[f"{prefix}{i}_s"] << i
    return total


class TestFullAdders:
    @pytest.mark.parametrize("builder", [builders.full_adder, builders.full_adder_xor3])
    def test_truth_table(self, builder):
        nl = builder()
        for a, b, c in itertools.product((0, 1), repeat=3):
            outs = simulate(nl, {"a": a, "b": b, "cin": c})
            assert outs["s"] == (a + b + c) & 1
            assert outs["cout"] == (a + b + c) >> 1

    @pytest.mark.parametrize("builder", [builders.full_adder, builders.full_adder_xor3])
    def test_both_netlists_have_same_behaviour(self, builder):
        reference = builders.full_adder()
        table_ref = NetlistSimulator(reference).truth_table()
        table = NetlistSimulator(builder()).truth_table()
        assert (table == table_ref).all()

    def test_half_adder(self):
        nl = builders.half_adder()
        for a, b in itertools.product((0, 1), repeat=2):
            outs = simulate(nl, {"a": a, "b": b})
            assert outs["s"] == a ^ b
            assert outs["cout"] == a & b


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        nl = builders.ripple_carry_adder(width)
        sim = NetlistSimulator(nl)
        for a, b, mask in exhaustive_inputs(width):
            outs = {
                k: int(v)
                for k, v in sim.outputs(assign_operands(width, a, b, 0)).items()
            }
            assert read_sum(outs, width) == (a + b) & mask
            assert outs[f"fa{width - 1}_cout"] == ((a + b) >> width) & 1

    def test_carry_in(self):
        nl = builders.ripple_carry_adder(3)
        outs = simulate(nl, assign_operands(3, 5, 2, 1))
        assert read_sum(outs, 3) == (5 + 2 + 1) & 7

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            builders.ripple_carry_adder(0)


class TestCarryLookaheadAdder:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_matches_ripple(self, width):
        cla = builders.carry_lookahead_adder(width)
        sim = NetlistSimulator(cla)
        mask = (1 << width) - 1
        for a, b, _ in exhaustive_inputs(width):
            for cin in (0, 1):
                outs = sim.outputs(assign_operands(width, a, b, cin))
                total = 0
                for i in range(width):
                    total |= int(outs[f"s{i}"]) << i
                assert total == (a + b + cin) & mask
                assert int(outs[f"c{width}"]) == ((a + b + cin) >> width) & 1


class TestSubtractorAndNegator:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_subtractor_two_complement(self, width):
        nl = builders.ripple_borrow_subtractor(width)
        sim = NetlistSimulator(nl)
        mask = (1 << width) - 1
        for a, b, _ in exhaustive_inputs(width):
            outs = sim.outputs(assign_operands(width, a, b, 1))
            total = read_sum({k: int(v) for k, v in outs.items()}, width)
            assert total == (a - b) & mask

    @pytest.mark.parametrize("width", [2, 4])
    def test_negator(self, width):
        nl = builders.negator(width)
        sim = NetlistSimulator(nl)
        mask = (1 << width) - 1
        for a in range(1 << width):
            values = {f"a{i}": (a >> i) & 1 for i in range(width)}
            values["zero"] = 0
            values["one"] = 1
            outs = {k: int(v) for k, v in sim.outputs(values).items()}
            assert read_sum(outs, width) == (-a) & mask


class TestComparator:
    @pytest.mark.parametrize("width", [1, 3])
    def test_equality(self, width):
        nl = builders.equality_comparator(width)
        sim = NetlistSimulator(nl)
        for a, b, _ in exhaustive_inputs(width):
            values = {}
            for i in range(width):
                values[f"a{i}"] = (a >> i) & 1
                values[f"b{i}"] = (b >> i) & 1
            outs = sim.outputs(values)
            assert int(outs["eq"]) == int(a == b)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive(self, width):
        nl = builders.array_multiplier(width)
        sim = NetlistSimulator(nl)
        for a in range(1 << width):
            for b in range(1 << width):
                values = {}
                for i in range(width):
                    values[f"a{i}"] = (a >> i) & 1
                    values[f"b{i}"] = (b >> i) & 1
                values["zero"] = 0
                outs = sim.outputs(values)
                product = 0
                for k in range(2 * width):
                    product |= int(outs[f"p_{k}"]) << k
                assert product == a * b, f"{a}*{b}"


class TestFaultSiteCounts:
    def test_five_gate_fa_has_32_faults(self):
        from repro.gates.faults import full_fault_list

        assert len(full_fault_list(builders.full_adder())) == 32

    def test_xor3_fa_has_32_faults(self):
        from repro.gates.faults import full_fault_list

        assert len(full_fault_list(builders.full_adder_xor3())) == 32
