"""Tests for repro.apps and repro.hdlgen."""

import pytest

from repro.apps.dct import dct_graph, dct_matrix, dct_reference
from repro.apps.fir import (
    FirSpec,
    fir_graph,
    fir_reference,
    fir_sck,
    make_input_streams,
)
from repro.apps.iir import BiquadSpec, biquad_graph, biquad_reference
from repro.apps.matmul import matmul_graph, matmul_reference
from repro.codesign.allocation import bind
from repro.codesign.scheduling import asap_schedule, list_schedule
from repro.codesign.sck_transform import enrich_with_sck
from repro.core.context import SCKContext
from repro.errors import ReproError, SpecificationError
from repro.hdlgen.datapath import emit_datapath_rtl
from repro.hdlgen.flow_diagram import emit_flow_ascii, emit_flow_dot
from repro.hdlgen.sck_class import (
    emit_sck_class,
    emit_sck_interface,
    emit_sck_operator,
)
from repro.hdlgen.testarch import emit_test_architecture


class TestFirApp:
    def test_graph_matches_reference(self):
        spec = FirSpec()
        graph = fir_graph(spec)
        samples = [4, -1, 7, 2, -5, 3]
        streams = make_input_streams(samples, spec)
        expected = fir_reference(samples, spec)
        for k in range(len(samples)):
            inputs = {name: stream[k] for name, stream in streams.items()}
            assert graph.evaluate(inputs, width=16)["y"] == expected[k]

    def test_sck_implementation_matches(self):
        spec = FirSpec()
        samples = [1, 2, 3, -4, 5]
        with SCKContext(width=16):
            outputs = fir_sck(samples, spec)
        assert [o.value for o in outputs] == fir_reference(samples, spec)
        assert not any(o.error for o in outputs)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(SpecificationError):
            FirSpec(coefficients=())

    def test_window_streams(self):
        streams = make_input_streams([1, 2, 3], FirSpec(coefficients=(1, 1)))
        assert streams["x0"] == [1, 2, 3]
        assert streams["x1"] == [0, 1, 2]


class TestOtherApps:
    def test_biquad_graph_matches_reference(self):
        spec = BiquadSpec()
        graph = biquad_graph(spec)
        samples = [10, 20, -5, 7, 0, 3]
        expected = biquad_reference(samples, spec)
        x1 = x2 = y1 = y2 = 0
        for k, x in enumerate(samples):
            inputs = {"x0": x, "x1": x1, "x2": x2, "yd1": y1, "yd2": y2}
            y = graph.evaluate(inputs, width=16)["y"]
            assert y == expected[k]
            x2, x1 = x1, x
            y2, y1 = y1, y

    def test_matmul_matches_reference(self):
        matrix = [[1, 2], [3, -4]]
        graph = matmul_graph(matrix)
        vector = [5, -6]
        outputs = graph.evaluate({"x0": 5, "x1": -6})
        expected = matmul_reference(matrix, vector)
        assert [outputs["y0"], outputs["y1"]] == expected

    def test_matmul_validation(self):
        with pytest.raises(SpecificationError):
            matmul_graph([[1, 2], [3]])

    def test_dct_matrix_row0_constant(self):
        matrix = dct_matrix(4)
        assert len(set(matrix[0])) == 1  # DC row is flat

    def test_dct_graph_matches_reference(self):
        graph = dct_graph(4)
        block = [10, 20, 30, 40]
        outputs = graph.evaluate({f"x{i}": v for i, v in enumerate(block)})
        expected = dct_reference(block)
        assert [outputs[f"y{i}"] for i in range(4)] == expected

    def test_apps_survive_sck_enrichment(self):
        for graph in (biquad_graph(), matmul_graph([[1, 2], [3, 4]]), dct_graph(4)):
            enriched = enrich_with_sck(graph)
            enriched.validate()
            assert any(o.role == "error" for o in enriched.outputs)


class TestSckClassEmitter:
    def test_interface_figure1(self):
        text = emit_sck_interface(("add",))
        assert "template <class TYPE>" in text
        assert "bool E;" in text and "TYPE ID;" in text
        assert "GetID" in text and "GetError" in text
        assert "operator+" in text
        assert "SCK() {}" in text  # empty constructor for synthesis

    def test_operator_figure2(self):
        text = emit_sck_operator("add", "tech1")
        assert "ris.ID = op1.ID + op2.ID" in text
        assert "ris.ID - op1.ID" in text  # hidden inverse
        assert "err = op1.E || op2.E" in text  # error propagation

    def test_all_registered_techniques_emit(self):
        for operator in ("add", "sub", "mul"):
            for technique in ("tech1", "tech2", "both"):
                assert emit_sck_operator(operator, technique)
        assert emit_sck_operator("div", "tech1")
        assert emit_sck_operator("div", "tech2")

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            emit_sck_operator("pow", "tech1")
        with pytest.raises(ReproError):
            emit_sck_class(("add",), technique="tech9")

    def test_full_class(self):
        text = emit_sck_class()
        assert text.count("template <class TYPE>") == 5  # interface + 4 ops


class TestDiagramsAndVhdl:
    def test_flow_ascii_mentions_stages(self):
        text = emit_flow_ascii()
        for keyword in ("SystemC-Plus", "OFFIS", "CoCentric", "g++", "Table 3"):
            assert keyword in text

    def test_flow_dot_valid_shape(self):
        text = emit_flow_dot()
        assert text.startswith("digraph")
        assert "spec -> synth" in text

    def test_test_architecture_contains_fault_list(self):
        text = emit_test_architecture(width=2)
        assert "SA0" in text and "SA1" in text
        assert text.count("SA0") == 16
        assert "entity test_architecture" in text
        assert "cin => '1'" in text  # the g-function carry-in

    def test_datapath_rtl_for_fir(self):
        graph = enrich_with_sck(fir_graph())
        schedule = asap_schedule(graph)
        rtl = emit_datapath_rtl(bind(schedule))
        assert "error_latch" in rtl
        assert "case state is" in rtl
        assert "entity" in rtl

    def test_datapath_rtl_notes_sharing(self):
        graph = fir_graph()
        schedule = list_schedule(graph, {"alu": 1, "mult": 1, "io": 1})
        rtl = emit_datapath_rtl(bind(schedule))
        assert "shared by" in rtl
