"""Tests for repro.faults: model, universe, injector."""

import pytest

from repro.arch.alu import FaultableALU
from repro.arch.cell import NUM_FA_FAULTS, effective_faulty_cells, faulty_cell_library
from repro.errors import CheckError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultDescriptor, intermittent, permanent, transient
from repro.faults.universe import (
    adder_fault_cases,
    divider_fault_cases,
    multiplier_fault_cases,
)


class TestSchedules:
    def test_permanent_always_active(self):
        schedule = permanent()
        assert all(schedule.active_at(i) for i in range(10))

    def test_transient_window(self):
        schedule = transient(at=3, duration=2)
        assert [schedule.active_at(i) for i in range(6)] == [
            False, False, False, True, True, False,
        ]

    def test_transient_validation(self):
        with pytest.raises(FaultError):
            transient(at=-1)
        with pytest.raises(FaultError):
            transient(at=0, duration=0)

    def test_intermittent_deterministic_and_memoised(self):
        schedule = intermittent(0.5, seed=7)
        first = [schedule.active_at(i) for i in range(50)]
        second = [schedule.active_at(i) for i in range(50)]
        assert first == second
        assert any(first) and not all(first)

    def test_intermittent_probability_bounds(self):
        with pytest.raises(FaultError):
            intermittent(1.5)

    def test_negative_index_rejected(self):
        with pytest.raises(FaultError):
            permanent().active_at(-1)


class TestUniverse:
    def test_adder_case_count(self):
        assert len(adder_fault_cases(4)) == NUM_FA_FAULTS * 4

    def test_multiplier_case_count(self):
        assert len(multiplier_fault_cases(4)) == NUM_FA_FAULTS * 6

    def test_divider_case_count(self):
        assert len(divider_fault_cases(4)) == NUM_FA_FAULTS * 5

    def test_invalid_width(self):
        with pytest.raises(FaultError):
            adder_fault_cases(0)
        with pytest.raises(FaultError):
            multiplier_fault_cases(1)


def simple_workload(alu: FaultableALU):
    """(a+b)*c with an SCK-style inverse check on the addition."""
    a, b, c = 37, -12, 3
    total = alu.add(a, b)
    product = alu.mul(total, c)
    check = alu.sub(total, a)
    error = check != b
    return (int(product),), bool(error)


class TestInjector:
    def test_golden_run_clean(self):
        injector = FaultInjector(width=8)
        outputs, error = injector.golden_run(simple_workload)
        assert error is False
        assert outputs == (75,)

    def test_campaign_classifications(self):
        injector = FaultInjector(width=8)
        cells = effective_faulty_cells()
        faults = [
            FaultDescriptor("adder", cell, position=pos)
            for cell in cells[:10]
            for pos in (0, 3)
        ]
        result = injector.run(simple_workload, faults)
        assert result.total == len(faults)
        counted = sum(
            result.count(c)
            for c in ("correct", "detected", "escaped", "false_alarm")
        )
        assert counted == result.total
        assert 0.0 <= result.coverage <= 1.0

    def test_checked_workload_beats_unchecked(self):
        """The SCK check must strictly reduce escapes vs no check."""

        def unchecked(alu):
            total = alu.add(37, -12)
            product = alu.mul(total, 3)
            return (int(product),), False

        injector = FaultInjector(width=8)
        faults = [
            FaultDescriptor("adder", cell, position=pos)
            for cell in faulty_cell_library()
            for pos in range(8)
        ]
        checked = injector.run(simple_workload, faults)
        bare = injector.run(unchecked, faults)
        assert checked.count("escaped") < bare.count("escaped")
        assert checked.coverage > bare.coverage

    def test_noisy_golden_rejected(self):
        def broken(alu):
            return (0,), True

        injector = FaultInjector(width=8)
        with pytest.raises(CheckError):
            injector.run(broken, [])

    def test_descriptor_describe(self):
        cell = effective_faulty_cells()[0]
        descriptor = FaultDescriptor("multiplier", cell, 2, 1)
        text = descriptor.describe()
        assert "multiplier[2,1]" in text
        assert "permanent" in text

    def test_summary_format(self):
        injector = FaultInjector(width=8)
        result = injector.run(simple_workload, [])
        assert "coverage" in result.summary()
