"""Tests for scheduling, allocation, area, timing, flow, partition."""

import pytest

from repro.apps.fir import fir_graph
from repro.codesign.allocation import bind
from repro.codesign.area import AreaModel, estimate_area
from repro.codesign.flow import MIN_AREA_RESOURCES, ReliableCoDesignFlow
from repro.codesign.partition import partition
from repro.codesign.scheduling import (
    alap_schedule,
    asap_schedule,
    list_schedule,
)
from repro.codesign.sck_transform import enrich_with_sck
from repro.codesign.timing import estimate_clock
from repro.errors import SchedulingError, SpecificationError


@pytest.fixture(scope="module")
def fir():
    return fir_graph()


@pytest.fixture(scope="module")
def fir_sck_graph(fir):
    return enrich_with_sck(fir)


class TestScheduling:
    def test_asap_respects_dependencies(self, fir):
        schedule = asap_schedule(fir)
        schedule.verify()
        assert schedule.length >= 4  # in + mul + adds + out on the path

    def test_alap_matches_asap_horizon(self, fir):
        asap = asap_schedule(fir)
        alap = alap_schedule(fir)
        assert alap.length <= asap.length
        alap.verify()

    def test_alap_with_slack(self, fir):
        relaxed = alap_schedule(fir, deadline=asap_schedule(fir).length + 5)
        relaxed.verify()

    def test_alap_infeasible_deadline(self, fir):
        with pytest.raises(SchedulingError):
            alap_schedule(fir, deadline=1)

    def test_list_schedule_meets_resources(self, fir):
        schedule = list_schedule(fir, MIN_AREA_RESOURCES)
        schedule.verify()
        usage = schedule.unit_usage()
        for unit, peak in usage.items():
            assert peak <= MIN_AREA_RESOURCES.get(unit, peak)

    def test_min_area_fir_is_seven_cycles(self, fir):
        """The paper's plain FIR min-area point: 2 + 7n."""
        schedule = list_schedule(fir, MIN_AREA_RESOURCES)
        assert schedule.length == 7

    def test_min_latency_fir_is_five_cycles(self, fir):
        """The paper's min-latency point: 2 + 5n (balanced tree)."""
        from repro.codesign.sck_transform import balance_accumulation

        schedule = asap_schedule(balance_accumulation(fir))
        assert schedule.length == 5

    def test_more_resources_never_slower(self, fir_sck_graph):
        tight = list_schedule(fir_sck_graph, MIN_AREA_RESOURCES, dedicated_checkers=False)
        rich = list_schedule(
            fir_sck_graph,
            {"alu": 4, "mult": 4, "io": 2, "checker": 4},
            dedicated_checkers=False,
        )
        assert rich.length <= tight.length

    def test_zero_allocation_rejected(self, fir):
        with pytest.raises(SchedulingError):
            list_schedule(fir, {"mult": 0})


class TestAllocation:
    def test_binding_is_conflict_free(self, fir_sck_graph):
        schedule = list_schedule(fir_sck_graph, MIN_AREA_RESOURCES, dedicated_checkers=False)
        allocation = bind(schedule)
        busy = {}
        for binding in allocation.bindings.values():
            key = (binding.unit_class, binding.instance)
            for other in busy.get(key, []):
                assert binding.finish <= other.start or other.finish <= binding.start
            busy.setdefault(key, []).append(binding)

    def test_min_area_sharing_conflicts_reported(self, fir_sck_graph):
        schedule = list_schedule(fir_sck_graph, MIN_AREA_RESOURCES, dedicated_checkers=False)
        allocation = bind(schedule)
        assert not allocation.fully_separated

    def test_dedicated_checkers_fully_separate(self, fir_sck_graph):
        schedule = asap_schedule(fir_sck_graph)
        allocation = bind(schedule)
        assert allocation.fully_separated

    def test_sharing_degree(self, fir):
        schedule = list_schedule(fir, MIN_AREA_RESOURCES)
        degree = bind(schedule).sharing_degree()
        assert degree[("mult", 0)] == 4  # four products on one multiplier


class TestAreaAndTiming:
    def test_area_breakdown_sums(self, fir):
        allocation = bind(list_schedule(fir, MIN_AREA_RESOURCES))
        report = estimate_area(allocation)
        assert report.total == sum(report.breakdown.values())
        assert report.breakdown["units"] > 0
        assert report.breakdown["controller"] > 0

    def test_checked_design_costs_more(self, fir, fir_sck_graph):
        plain = estimate_area(bind(list_schedule(fir, MIN_AREA_RESOURCES)))
        checked = estimate_area(
            bind(list_schedule(fir_sck_graph, MIN_AREA_RESOURCES, dedicated_checkers=False))
        )
        assert checked.total > plain.total
        assert checked.breakdown["error_logic"] > 0

    def test_constant_mult_detection(self, fir):
        allocation = bind(list_schedule(fir, MIN_AREA_RESOURCES))
        report = estimate_area(allocation)
        model = AreaModel()
        # FIR multiplies by constants only -> cheap KCM, not generic.
        assert report.breakdown["units"] < (
            model.generic_mult_slices + model.alu_slices + model.io_slices + 10
        )

    def test_clock_degrades_with_shared_checks(self, fir, fir_sck_graph):
        plain = estimate_clock(bind(list_schedule(fir, MIN_AREA_RESOURCES)))
        checked = estimate_clock(
            bind(list_schedule(fir_sck_graph, MIN_AREA_RESOURCES, dedicated_checkers=False))
        )
        assert checked["frequency_mhz"] < plain["frequency_mhz"]


class TestFlow:
    @pytest.fixture(scope="class")
    def results(self, fir):
        return ReliableCoDesignFlow(fir, samples=10_000).run()

    def test_all_variants_present(self, results):
        assert set(results) == {"plain", "sck", "embedded"}

    def test_latency_formulas(self, results):
        assert results["plain"].hw_min_area.latency_formula == "2 + 7n"
        assert results["plain"].hw_min_latency.latency_formula == "2 + 5n"
        assert results["sck"].hw_min_latency.latency_formula == "2 + 5n"
        assert results["embedded"].hw_min_latency.latency_formula == "2 + 5n"
        assert results["sck"].hw_min_area.latency_formula == "2 + 10n"

    def test_area_ordering(self, results):
        """Paper Table 3: plain < embedded < SCK in both objectives."""
        for objective in ("hw_min_area", "hw_min_latency"):
            plain = getattr(results["plain"], objective).slices
            embedded = getattr(results["embedded"], objective).slices
            sck = getattr(results["sck"], objective).slices
            assert plain < embedded < sck

    def test_clock_ordering(self, results):
        assert (
            results["sck"].hw_min_area.frequency_mhz
            < results["plain"].hw_min_area.frequency_mhz
        )
        assert (
            results["embedded"].hw_min_area.frequency_mhz
            < results["plain"].hw_min_area.frequency_mhz
        )

    def test_coverage_claims(self, results):
        assert "none" in results["plain"].hw_min_area.coverage_claim
        assert "worst-case" in results["sck"].hw_min_area.coverage_claim
        assert "complete" in results["sck"].hw_min_latency.coverage_claim

    def test_software_ordering(self, results):
        plain = results["plain"].software
        sck = results["sck"].software
        embedded = results["embedded"].software
        assert plain.seconds < embedded.seconds < sck.seconds
        assert sck.image_bytes - plain.image_bytes >= 4096
        assert plain.error_flag == 0 and sck.error_flag == 0

    def test_unknown_variant_rejected(self, fir):
        flow = ReliableCoDesignFlow(fir)
        with pytest.raises(SpecificationError):
            flow.variant_graph("quantum")


class TestPartition:
    def test_no_constraint_prefers_software(self, fir):
        decision = partition(fir)
        assert decision.target == "software"

    def test_tight_constraint_forces_hardware(self, fir):
        decision = partition(fir, sample_rate_hz=5e6)
        assert decision.target == "hardware"

    def test_loose_constraint_allows_software(self, fir):
        decision = partition(fir, sample_rate_hz=1e5)
        assert decision.target == "software"
        assert "sustains" in decision.reason

    def test_invalid_preference(self, fir):
        with pytest.raises(SpecificationError):
            partition(fir, prefer="firmware")
