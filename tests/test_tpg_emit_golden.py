"""Golden-file pins for the emitted self-test benches.

The full adder's compact test set comes from the RNG-free dictionary
path (full-universe greedy cover with lowest-index tie-breaks), so the
emitted VHDL/Verilog self-test benches are fully deterministic; these
tests pin their bytes alongside the plain structural goldens in
``tests/golden/``.
"""

import pathlib

from repro.gates.builders import full_adder
from repro.tpg import (
    compact_test_set,
    emit_self_test_verilog,
    emit_self_test_vhdl,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _compact_set():
    return compact_test_set(full_adder(), method="dictionary")


class TestGoldenSelfTestBench:
    def test_vhdl_byte_identical(self):
        nl = full_adder()
        text = emit_self_test_vhdl(nl, _compact_set())
        assert text == (GOLDEN / "full_adder_selftest.vhd").read_text()

    def test_verilog_byte_identical(self):
        nl = full_adder()
        text = emit_self_test_verilog(nl, _compact_set())
        assert text == (GOLDEN / "full_adder_selftest.v").read_text()

    def test_bench_embeds_the_structural_golden(self):
        """The DUT half of the bench is exactly the plain emitter's output."""
        nl = full_adder()
        vhdl = emit_self_test_vhdl(nl, _compact_set())
        vlog = emit_self_test_verilog(nl, _compact_set())
        assert vhdl.startswith((GOLDEN / "full_adder.vhd").read_text().rstrip("\n"))
        assert vlog.startswith((GOLDEN / "full_adder.v").read_text().rstrip("\n"))
