"""Property-based tests (hypothesis) on the core invariants.

These pin the algebra the whole methodology rests on: fixed-width
datapath units agree with reference integer arithmetic, inverse-check
identities hold on fault-free units for *all* operands, error bits are
monotone (never silently cleared), and the optimiser preserves program
semantics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.bitops import to_signed, to_unsigned
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.core.context import SCKContext
from repro.core.value import SCK
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize
from repro.vm.program import ProgramBuilder

WIDTH = 12
MASK = (1 << WIDTH) - 1

u12 = st.integers(min_value=0, max_value=MASK)
s12 = st.integers(min_value=-(1 << (WIDTH - 1)), max_value=(1 << (WIDTH - 1)) - 1)
small_int = st.integers(min_value=-500, max_value=500)


class TestDatapathAgainstReference:
    @given(a=u12, b=u12, cin=st.integers(min_value=0, max_value=1))
    def test_adder_matches_integer_addition(self, a, b, cin):
        unit = RippleCarryAdderUnit(WIDTH)
        total, carry = unit.add(np.uint64(a), np.uint64(b), cin)
        assert int(total) == (a + b + cin) & MASK
        assert int(carry) == (a + b + cin) >> WIDTH

    @given(a=u12, b=u12)
    def test_sub_matches(self, a, b):
        unit = RippleCarryAdderUnit(WIDTH)
        diff, _ = unit.sub(np.uint64(a), np.uint64(b))
        assert int(diff) == (a - b) & MASK

    @given(a=u12, b=u12)
    def test_multiplier_matches(self, a, b):
        unit = ArrayMultiplierUnit(WIDTH)
        assert int(unit.mul(np.uint64(a), np.uint64(b))) == (a * b) & MASK

    @given(a=u12, b=st.integers(min_value=1, max_value=MASK))
    def test_divider_matches(self, a, b):
        unit = RestoringDividerUnit(WIDTH)
        q, r = unit.divmod(np.uint64(a), np.uint64(b))
        assert int(q) == a // b
        assert int(r) == a % b

    @given(value=st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_signed_unsigned_roundtrip(self, value):
        wrapped = to_signed(to_unsigned(value, WIDTH), WIDTH)
        assert (wrapped - value) % (1 << WIDTH) == 0
        assert -(1 << (WIDTH - 1)) <= wrapped < (1 << (WIDTH - 1))


class TestCheckIdentities:
    """On a fault-free unit the hidden checks must never fire."""

    @given(a=s12, b=s12)
    def test_add_checks_silent(self, a, b):
        with SCKContext(width=WIDTH) as ctx:
            (SCK(a) + SCK(b))
            assert ctx.errors_detected == 0

    @given(a=s12, b=s12)
    def test_sub_mul_checks_silent(self, a, b):
        with SCKContext(
            width=WIDTH, techniques={"sub": "both", "mul": "both"}
        ) as ctx:
            SCK(a) - SCK(b)
            SCK(a) * SCK(b)
            assert ctx.errors_detected == 0

    @given(a=s12, b=s12.filter(lambda v: v != 0))
    def test_div_checks_silent(self, a, b):
        with SCKContext(width=WIDTH, techniques={"div": "tech2"}) as ctx:
            SCK(a) / SCK(b)
            assert ctx.errors_detected == 0

    @given(a=s12, b=s12.filter(lambda v: v != 0))
    def test_div_identity(self, a, b):
        with SCKContext(width=WIDTH):
            q = SCK(a) / SCK(b)
            r = SCK(a) % SCK(b)
            assert q.value * b + r.value == a

    @given(a=s12, b=s12)
    def test_hardware_and_ideal_backends_agree(self, a, b):
        with SCKContext(width=WIDTH) as ideal_ctx:
            ideal = ((SCK(a) + SCK(b)) * SCK(3) - SCK(b)).value
        with SCKContext(width=WIDTH, backend="hardware") as hw_ctx:
            hardware = ((SCK(a) + SCK(b)) * SCK(3) - SCK(b)).value
            assert hw_ctx.errors_detected == 0
        assert ideal == hardware


class TestErrorBitMonotone:
    @given(a=s12, b=s12, data=st.data())
    def test_error_never_clears(self, a, b, data):
        with SCKContext(width=WIDTH):
            value = SCK(a, error=True)
            operations = data.draw(
                st.lists(
                    st.sampled_from(["add", "sub", "mul", "neg"]),
                    min_size=1,
                    max_size=5,
                )
            )
            for op in operations:
                if op == "add":
                    value = value + b
                elif op == "sub":
                    value = value - b
                elif op == "mul":
                    value = value * 2
                else:
                    value = -value
                assert value.error is True


class TestOptimizerSemantics:
    @given(
        values=st.lists(small_int, min_size=2, max_size=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40)
    def test_optimized_straightline_equivalent(self, values, seed):
        """Random straight-line programs survive CSE+DCE unchanged in
        observable behaviour."""
        rng = np.random.default_rng(seed)
        builder = ProgramBuilder("rand")
        registers = []
        for i, v in enumerate(values):
            builder.ldi(4 + i, int(v))
            registers.append(4 + i)
        ops = ("add", "sub", "mul")
        dest = 4 + len(values)
        for k in range(4):
            op = ops[int(rng.integers(0, 3))]
            ra = registers[int(rng.integers(0, len(registers)))]
            rb = registers[int(rng.integers(0, len(registers)))]
            getattr(builder, op)(dest + k, ra, rb)
            registers.append(dest + k)
        builder.st(2, registers[-1], offset=50)
        builder.st(2, registers[-2], offset=51)
        builder.halt()
        program = builder.build()
        plain = Machine(16).run(program)
        slim = optimize(program)
        optimized = Machine(16).run(slim)
        assert optimized.memory.get(50) == plain.memory.get(50)
        assert optimized.memory.get(51) == plain.memory.get(51)
        assert len(slim.instructions) <= len(program.instructions)


class TestDfgEvaluationConsistency:
    @given(xs=st.lists(s12, min_size=4, max_size=4))
    def test_fir_graph_vs_sck_vs_reference(self, xs):
        from repro.apps.fir import FirSpec, fir_graph, fir_reference, fir_sck

        spec = FirSpec()
        graph = fir_graph(spec)
        # One-shot window evaluation equals the reference's first output
        # when the history is pre-loaded with the same window.
        inputs = {f"x{i}": xs[i] for i in range(4)}
        graph_out = graph.evaluate(inputs, width=16)["y"]
        window_as_stream = list(reversed(xs))
        assert fir_reference(window_as_stream, spec, width=16)[-1] == graph_out
        with SCKContext(width=16):
            sck_out = fir_sck(window_as_stream, spec)[-1].value
        assert sck_out == graph_out
