"""The unified telemetry subsystem (:mod:`repro.obs`).

Covers the lock-striped metrics registry (exact totals under a
multi-thread hammer and under real ThreadedBackend tile concurrency),
span nesting and ring-buffer overflow, kernel-profiling hooks (one
observation per top-level kernel call, gated off by default), the
campaign lifecycle events (shard balance, checkpoint resume/write,
store corruption, tuning plans with verbatim reasons and the
plan-log-dropped counter), the bit-identity of traced vs untraced
campaigns, the exporters, the dump-on-exit file, and the report tool.
"""

import json
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.faults.sharding import run_sharded
from repro.gates import builders
from repro.gates.backends.fused import FusedBackend
from repro.gates.backends.plan import OverridePlan
from repro.gates.backends.threaded import ThreadedBackend
from repro.gates.compile import compile_netlist
from repro.gates.engine import exhaustive_word_range, run_stuck_at_campaign
from repro.gates.faults import default_fault_universe
from repro.gates.tune import (
    PLAN_LOG_MAX,
    clear_plan_log,
    last_plan,
    resolve_plan,
)
from repro.obs import events, metrics, trace
from repro.obs import report as obs_report
from repro.obs.metrics import MetricsRegistry
from repro.store import CacheKey, ResultStore
from repro.store.checkpoint import run_checkpointed, shard_hook
from repro.store.store import StoreCorruptionWarning


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Isolate every test: fresh registry series, default-size ring."""
    metrics.registry().reset()
    trace.clear_ring(trace.RING_CAPACITY)
    yield
    metrics.set_kernel_profiling(None)
    metrics.registry().reset()
    trace.clear_ring(trace.RING_CAPACITY)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.inc("ops_total", tag="a")
    reg.inc("ops_total", 2.0, tag="a")
    reg.inc("ops_total", tag="b")
    reg.set_gauge("depth", 3, unit="rca")
    reg.set_gauge("depth", 7, unit="rca")
    for value in (0.001, 0.01, 5.0):
        reg.observe("lat_seconds", value)
    snap = reg.snapshot()
    assert snap["counters"]["ops_total{tag=a}"] == 3.0
    assert snap["counters"]["ops_total{tag=b}"] == 1.0
    assert snap["gauges"]["depth{unit=rca}"] == 7.0
    hist = snap["histograms"]["lat_seconds"]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(5.011)
    assert hist["min"] == pytest.approx(0.001)
    assert hist["max"] == pytest.approx(5.0)
    assert reg.get_counter("ops_total", tag="a") == 3.0
    assert reg.get_counter("missing") == 0.0
    assert reg.counter_total("ops_total") == 4.0


def test_thread_hammer_exact_totals():
    reg = MetricsRegistry()
    n_threads, n_incs = 16, 5000

    def hammer(tid):
        for i in range(n_incs):
            reg.inc("hammer_total", worker=tid % 4)
            reg.observe("hammer_seconds", 0.001)

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter_total("hammer_total") == n_threads * n_incs
    total = sum(
        h["count"] for k, h in reg.snapshot()["histograms"].items()
        if k.startswith("hammer_seconds")
    )
    assert total == n_threads * n_incs


def test_merge_raw_and_snapshot_roundtrip():
    reg = MetricsRegistry()
    reg.inc("a_total", 3, k="v")
    reg.observe("h_seconds", 0.5)
    raw = reg.raw_series()
    other = MetricsRegistry()
    other.merge_raw(raw)
    other.merge_raw(raw)
    assert other.get_counter("a_total", k="v") == 6.0
    hist = other.snapshot()["histograms"]["h_seconds"]
    assert hist["count"] == 2 and hist["sum"] == pytest.approx(1.0)
    # snapshot-form merge (the dump/report path)
    third = MetricsRegistry()
    metrics.merge_snapshot(third, reg.snapshot())
    assert third.get_counter("a_total", k="v") == 3.0


def test_exporters():
    reg = MetricsRegistry()
    reg.inc("x_total", tag="t")
    reg.observe("y_seconds", 0.25, backend="fused")
    prom = reg.to_prometheus()
    assert "x_total{tag=t} 1" in prom
    assert "y_seconds_count{backend=fused} 1" in prom
    assert "y_seconds_sum{backend=fused} 0.25" in prom
    decoded = json.loads(reg.to_json())
    assert decoded["counters"]["x_total{tag=t}"] == 1.0


def test_collector_gauges_surface_in_snapshot():
    reg = MetricsRegistry()
    reg.register_collector("probe", lambda: {"probe_gauge": 42.0})
    try:
        assert reg.snapshot()["gauges"]["probe_gauge"] == 42.0
    finally:
        reg.register_collector("probe", None)
    assert "probe_gauge" not in reg.snapshot()["gauges"]


# ----------------------------------------------------------------------
# Tracing spans and the ring
# ----------------------------------------------------------------------
def test_span_nesting_and_record_shape():
    with trace.span("outer", netlist="rca") as outer_id:
        assert trace.current_span() == outer_id
        with trace.span("inner") as inner_id:
            assert trace.current_span() == inner_id
            trace.emit_event("probe", k=1)
    assert trace.current_span() is None
    records = trace.ring_records()
    by_name = {r.get("name"): r for r in records}
    inner, outer = by_name["inner"], by_name["outer"]
    assert inner["parent"] == outer_id and outer["parent"] is None
    assert inner["span"] == inner_id
    # inner closes first, so it precedes outer in emission order
    assert records.index(inner) < records.index(outer)
    assert outer["dur"] >= inner["dur"] >= 0.0
    assert by_name["probe"]["span"] == inner_id
    assert by_name["probe"]["type"] == "event"
    assert outer["attrs"] == {"netlist": "rca"}
    assert outer["pid"] and outer["thread"]


def test_span_error_annotation():
    with pytest.raises(ValueError):
        with trace.span("doomed"):
            raise ValueError("boom")
    (record,) = trace.ring_records()
    assert record["error"] == "ValueError"


def test_ring_overflow_drops_oldest_and_counts():
    trace.clear_ring(8)
    assert trace.ring_capacity() == 8
    before = metrics.get_counter("repro_trace_ring_dropped_total")
    for i in range(20):
        trace.emit_event("tick", i=i)
    records = trace.ring_records()
    assert len(records) == 8
    assert [r["attrs"]["i"] for r in records] == list(range(12, 20))
    assert metrics.get_counter("repro_trace_ring_dropped_total") - before == 12


def test_read_trace_rejects_garbage(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"type": "event", "name": "ok"}\nnot json\n')
    with pytest.raises(ValueError, match="t.jsonl:2"):
        trace.read_trace(str(path))
    path.write_text('{"no_type": 1}\n')
    with pytest.raises(ValueError, match="not a trace record"):
        trace.read_trace(str(path))


# ----------------------------------------------------------------------
# Kernel profiling hooks
# ----------------------------------------------------------------------
def _rca_probe(width=8, n_words=512, n_faults=64):
    net = builders.ripple_carry_adder(width)
    compiled = compile_netlist(net)
    words = exhaustive_word_range(compiled.n_inputs, 0, n_words)
    faults = default_fault_universe(net)[:n_faults]
    return compiled, words, OverridePlan(compiled, [[f] for f in faults])


def test_kernel_profiling_off_by_default(monkeypatch):
    monkeypatch.delenv(metrics.METRICS_ENV, raising=False)
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    assert not metrics.kernel_profiling_enabled()
    compiled, words, plan = _rca_probe()
    FusedBackend(compiled).run_detect(words, plan, plan.n_rows)
    assert metrics.registry().snapshot()["histograms"] == {}
    monkeypatch.setenv(trace.TRACE_ENV, "/dev/null")
    assert metrics.kernel_profiling_enabled()


def test_kernel_profiling_records_once_per_toplevel_call():
    metrics.set_kernel_profiling(True)
    compiled, words, plan = _rca_probe()
    be = FusedBackend(compiled)
    for _ in range(3):
        # run_detect delegates to run_matrix internally on some
        # backends; only the outermost call may record.
        be.run_detect(words, plan, plan.n_rows)
    hists = metrics.registry().snapshot()["histograms"]
    assert list(hists) == ["repro_kernel_seconds{backend=fused,kernel=run_detect}"]
    assert hists["repro_kernel_seconds{backend=fused,kernel=run_detect}"]["count"] == 3


@pytest.mark.parametrize("threads", [1, 2, 3])
def test_threaded_tiles_hammer_counters(threads, monkeypatch):
    """Exact metric totals under real pool-thread concurrency: every
    tile of every ThreadedBackend kernel call increments counters from
    its worker thread; totals must match a lock-protected shadow count
    and results must stay bit-identical to the fused backend."""
    compiled, words, plan = _rca_probe()
    # Force profiling off for the reference call: the fused histogram
    # must stay empty even when REPRO_METRICS/REPRO_TRACE is exported
    # (the CI observability leg runs this suite fully instrumented).
    metrics.set_kernel_profiling(False)
    expected = FusedBackend(compiled).run_detect(words, plan, plan.n_rows)
    metrics.set_kernel_profiling(True)

    shadow = []
    shadow_lock = threading.Lock()
    original = FusedBackend.run_detect

    def counting(self, w, p, n):
        for _ in range(10):
            metrics.inc("tile_hammer_total", kernel="run_detect")
        with shadow_lock:
            shadow.append(threading.current_thread().name)
        return original(self, w, p, n)

    monkeypatch.setattr(FusedBackend, "run_detect", counting)
    be = ThreadedBackend(compiled, threads=threads)
    n_calls = 4
    for _ in range(n_calls):
        got = be.run_detect(words, plan, plan.n_rows)
        assert np.array_equal(got, expected)
    assert metrics.get_counter("tile_hammer_total", kernel="run_detect") == 10 * len(shadow)
    assert len(shadow) >= n_calls  # >= one tile per call; more when pooled
    # The threaded kernel records exactly one timing per top-level call
    # (inner per-tile backends are exempt).
    hists = metrics.registry().snapshot()["histograms"]
    key = "repro_kernel_seconds{backend=threaded,kernel=run_detect}"
    assert hists[key]["count"] == n_calls
    assert not any("backend=fused" in k for k in hists)


# ----------------------------------------------------------------------
# Lifecycle events
# ----------------------------------------------------------------------
def test_run_sharded_emits_balanced_events():
    seen = []
    result = run_sharded(
        _square, [(3,), (4,), (5,)], on_event=lambda name, f: seen.append((name, f))
    )
    assert result == [9, 16, 25]
    names = [name for name, _ in seen]
    assert names.count(events.SHARD_SUBMITTED) == 3
    assert names.count(events.SHARD_COMPLETED) == 3
    assert names.count(events.SHARDS_MERGED) == 1
    completed = [f for name, f in seen if name == events.SHARD_COMPLETED]
    assert {f["shard"] for f in completed} == {0, 1, 2}
    assert all(f["seconds"] >= 0.0 for f in completed)
    assert all(f["worker_pid"] for f in completed)
    # the counters saw the same balance (worker metrics merged back)
    assert metrics.get_counter("repro_events_total", event=events.SHARD_SUBMITTED) == 3
    assert metrics.get_counter("repro_events_total", event=events.SHARD_COMPLETED) == 3


def _square(x):
    return x * x


def _boxed_square(x):
    return {"v": x * x}  # a shape the store's JSON codec accepts


def test_single_shard_path_emits_events_too():
    seen = []
    assert run_sharded(_square, [(6,)], on_event=lambda n, f: seen.append(n)) == [36]
    assert seen == [events.SHARD_SUBMITTED, events.SHARD_COMPLETED, events.SHARDS_MERGED]


def test_checkpoint_events(tmp_path):
    store = ResultStore(tmp_path)
    keys = [
        CacheKey(kind="test", netlist="n", universe="u", space="s",
                 method="m", backend="b", params=str(i))
        for i in range(3)
    ]
    with shard_hook(lambda i: None):  # sequential, in-process
        run_checkpointed(_boxed_square, [(1,), (2,), (3,)], keys, store)
    assert metrics.get_counter("repro_events_total", event=events.CHECKPOINT_WRITTEN) == 3
    with shard_hook(lambda i: None):
        again = run_checkpointed(_boxed_square, [(1,), (2,), (3,)], keys, store)
    assert again == [{"v": 1}, {"v": 4}, {"v": 9}]
    assert metrics.get_counter("repro_events_total", event=events.CHECKPOINT_RESUMED) == 3


def test_store_corruption_counted_and_traced(tmp_path):
    store = ResultStore(tmp_path, lru_size=0)  # force the disk read path
    key = CacheKey(kind="campaign", netlist="n", universe="u", space="s",
                   method="m", backend="b", params="p")
    store.put(key, np.arange(4))
    npz_path, _ = store.paths(key)
    with open(npz_path, "wb") as handle:
        handle.write(b"garbage")
    with pytest.warns(StoreCorruptionWarning):
        assert store.get(key) is None
    assert metrics.get_counter("repro_store_corrupt_total", kind="campaign") == 1.0
    corrupt = [
        r for r in trace.ring_records() if r.get("name") == events.STORE_CORRUPT
    ]
    assert len(corrupt) == 1
    assert corrupt[0]["attrs"]["kind"] == "campaign"
    assert corrupt[0]["attrs"]["digest"] == key.digest[:12]


def test_store_stats_surface_as_gauges(tmp_path):
    from repro.store import open_store

    store = open_store(tmp_path)
    key = CacheKey(kind="probe", netlist="n", universe="u", space="s",
                   method="m", backend="b", params="p")
    store.put(key, {"v": 7})
    assert store.get(key) == {"v": 7}
    gauges = metrics.registry().snapshot()["gauges"]
    assert gauges["repro_store_open"] >= 1.0
    assert gauges["repro_store_stats_puts"] >= 1.0
    assert gauges["repro_store_stats_hits"] >= 1.0


# ----------------------------------------------------------------------
# Tuning-plan telemetry
# ----------------------------------------------------------------------
def test_tuning_plan_event_carries_reason_verbatim():
    clear_plan_log()
    compiled = compile_netlist(builders.ripple_carry_adder(4))
    resolve_plan(compiled, backend="fused", n_words=17)
    plan = last_plan()
    assert plan is not None
    plans = [
        r for r in trace.ring_records() if r.get("name") == events.TUNING_PLAN
    ]
    assert plans, "resolve_plan emitted no tuning_plan event"
    attrs = plans[-1]["attrs"]
    assert attrs["reason"] == plan.reason
    assert attrs["backend"] == plan.backend
    assert attrs["source"] == plan.source


def test_plan_log_overflow_counted():
    clear_plan_log()
    compiled = compile_netlist(builders.ripple_carry_adder(4))
    before = metrics.get_counter("repro_plan_log_dropped_total")
    extra = 5
    # Distinct n_words values defeat the resolution memo, so every call
    # appends a fresh plan.
    for n_words in range(1, PLAN_LOG_MAX + extra + 1):
        resolve_plan(compiled, backend="fused", n_words=n_words)
    dropped = metrics.get_counter("repro_plan_log_dropped_total") - before
    assert dropped == extra
    from repro.gates.tune import plan_log

    assert len(plan_log()) == PLAN_LOG_MAX
    clear_plan_log()


# ----------------------------------------------------------------------
# Campaign bit-identity and trace integrity
# ----------------------------------------------------------------------
def test_traced_campaign_bit_identical_and_balanced(tmp_path, monkeypatch):
    net = builders.ripple_carry_adder(4)
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    plain = run_sharded_stuck_at_campaign(net, workers=2, store=False)

    trace_path = tmp_path / "campaign.jsonl"
    monkeypatch.setenv(trace.TRACE_ENV, str(trace_path))
    traced = run_sharded_stuck_at_campaign(net, workers=2, store=False)

    assert np.array_equal(plain.detected, traced.detected)
    assert np.array_equal(plain.first_detected, traced.first_detected)
    assert plain.n_simulated_runs == traced.n_simulated_runs

    records = trace.read_trace(str(trace_path))  # strict parse
    names = [r.get("name") for r in records if r.get("type") == "event"]
    submitted = names.count(events.SHARD_SUBMITTED)
    assert submitted == 2
    assert submitted == names.count(events.SHARD_COMPLETED) + names.count(
        events.SHARD_FAILED
    )
    assert names.count(events.SHARDS_MERGED) == 1
    span_names = [r["name"] for r in records if r.get("type") == "span"]
    assert "sharded_campaign" in span_names

    summary = obs_report.summarize(records)
    assert summary["shards"]["balanced"] is True
    assert summary["shards"]["completed"] == 2
    campaigns = [
        c for c in summary["campaigns"] if c["span"] == "sharded_campaign"
    ]
    assert campaigns and campaigns[0]["netlist"] == net.name


def test_engine_campaign_span_and_event():
    net = builders.ripple_carry_adder(4)
    result = run_stuck_at_campaign(net)
    records = trace.ring_records()
    spans = [r for r in records if r.get("type") == "span" and r["name"] == "campaign"]
    assert spans and spans[-1]["attrs"]["netlist"] == net.name
    done = [r for r in records if r.get("name") == events.CAMPAIGN_COMPLETED]
    assert done[-1]["attrs"]["n_faults"] == len(result.faults)
    assert done[-1]["attrs"]["n_simulated_runs"] == result.n_simulated_runs
    # the completion event is attributed to the campaign span
    assert done[-1]["span"] == spans[-1]["span"]


# ----------------------------------------------------------------------
# Dump-on-exit and the report tool
# ----------------------------------------------------------------------
def test_metrics_dump_on_exit(tmp_path):
    dump_path = tmp_path / "metrics.jsonl"
    code = (
        "from repro.obs import metrics\n"
        "metrics.inc('probe_total', 5, leg='x')\n"
    )
    subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        env={**_clean_env(), metrics.METRICS_ENV: str(dump_path)},
    )
    merged = metrics.load_dump(str(dump_path))
    assert merged["counters"]["probe_total{leg=x}"] == 5.0


def _clean_env():
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop(trace.TRACE_ENV, None)
    return env


def test_report_cli_renders_trace(tmp_path, monkeypatch, capsys):
    trace_path = tmp_path / "t.jsonl"
    monkeypatch.setenv(trace.TRACE_ENV, str(trace_path))
    net = builders.ripple_carry_adder(4)
    run_sharded_stuck_at_campaign(net, workers=2, store=False)
    monkeypatch.delenv(trace.TRACE_ENV)

    assert obs_report.main([str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "shards: submitted=2 completed=2" in out
    assert "balanced=yes" in out
    assert obs_report.main([str(trace_path), "--json"]) == 0
    decoded = json.loads(capsys.readouterr().out)
    assert decoded["shards"]["balanced"] is True


def test_live_summary_uses_ring_and_registry():
    metrics.set_kernel_profiling(True)
    compiled, words, plan = _rca_probe(n_words=64)
    FusedBackend(compiled).run_detect(words, plan, plan.n_rows)
    with trace.span("campaign", netlist="probe", backend="fused"):
        pass
    summary = obs_report.live_summary()
    assert summary["campaigns"][0]["netlist"] == "probe"
    assert summary["kernels"][0]["backend"] == "fused"
    assert summary["kernels"][0]["calls"] == 1
