"""Test-generation subsystem: dictionaries, compaction, ATPG, emission.

The load-bearing properties:

* dictionary rows agree with the campaign engine and the reference
  simulator (differential);
* word-range sharding and merging are bit-identical;
* ATPG is deterministic per seed;
* every unit's compact set, replayed through the campaign engine,
  detects exactly the faults its dictionary claims -- bit for bit --
  at n = 3 and 4, for the raw unit netlists and the Table 2
  architectures;
* the coverage-engine satellites (word-first grid sharding, auto-sized
  matrix budget) change nothing about the numbers.
"""

import numpy as np
import pytest

from repro.arch.alu import FaultableALU
from repro.arch.cell import faulty_cell_library, reference_cell
from repro.arch.testbench import table2_architecture
from repro.coverage.engine import evaluate_adder, evaluate_multiplier
from repro.errors import SimulationError
from repro.faults.sharding import shard_grid
from repro.gates import builders
from repro.gates.engine import (
    GATE_MATRIX_BUDGET_ENV,
    GATE_MATRIX_BUDGET_MAX,
    GATE_MATRIX_BUDGET_MIN,
    resolve_matrix_budget,
    run_stuck_at_campaign,
)
from repro.gates.simulate import ReferenceSimulator
from repro.tpg import (
    CompactTestSet,
    FaultDictionary,
    TestSpace,
    build_fault_dictionary,
    compact_from_dictionary,
    compact_test_set,
    emit_alu_self_test,
    emit_self_test_verilog,
    emit_self_test_vhdl,
    emit_vm_self_test,
    generate_tests,
    greedy_cover,
    render_tpg_report,
    replay_detected,
    reverse_compact,
    unit_netlist,
    unit_space,
    unit_test_set,
)

UNITS = ("add", "sub", "mul", "div")


# ----------------------------------------------------------------------
# TestSpace
# ----------------------------------------------------------------------
class TestTestSpace:
    def test_full_space_covers_every_input(self):
        nl = builders.full_adder()
        space = TestSpace.full(nl)
        assert space.n_free == 3
        assert space.n_vectors == 8
        rows = space.input_rows(0, space.n_words)
        assert rows.shape == (3, 1)

    def test_unknown_input_rejected(self):
        nl = builders.full_adder()
        with pytest.raises(SimulationError):
            TestSpace(nl, ("a", "b"))  # cin neither swept nor pinned
        with pytest.raises(SimulationError):
            TestSpace(nl, ("a", "b", "cin", "bogus"))

    def test_free_inputs_must_follow_netlist_order(self):
        nl = builders.full_adder()
        with pytest.raises(SimulationError):
            TestSpace(nl, ("b", "a", "cin"))

    def test_constants_are_pinned_in_rows(self):
        nl = builders.truncated_array_multiplier(2)
        space = TestSpace(nl, tuple(nl.primary_inputs[:4]), (("zero", 0),))
        rows = space.input_rows(0, space.n_words)
        assert rows[4].max() == 0  # the zero rail never rises

    def test_nonzero_field_masks_lanes(self):
        nl = builders.restoring_divider(2)
        space = TestSpace(
            nl, tuple(nl.primary_inputs[:4]), (("zero", 0), ("one", 1)), (2, 4)
        )
        # 16-vector universe, 4 of them have b == 0.
        assert space.valid_count(0, space.n_words) == 12

    def test_bits_from_indices_roundtrip(self):
        nl = builders.full_adder()
        space = TestSpace.full(nl)
        bits = space.bits_from_indices([5])  # 0b101 -> a=1, b=0, cin=1
        assert bits.tolist() == [[1, 0, 1]]


# ----------------------------------------------------------------------
# Fault dictionaries
# ----------------------------------------------------------------------
class TestFaultDictionary:
    def test_full_adder_dictionary_matches_campaign(self):
        nl = builders.full_adder()
        d = build_fault_dictionary(nl)
        raw = run_stuck_at_campaign(nl)
        assert d.faults == raw.faults
        assert np.array_equal(d.detected, raw.detected)
        # The campaign's first detecting vector is set in every row.
        for i, first in enumerate(raw.first_detected):
            if first >= 0:
                assert d.column_bits(int(first))[i] == 1

    def test_rows_match_reference_simulator(self):
        nl = builders.ripple_carry_adder(2)
        d = build_fault_dictionary(nl)
        ref = ReferenceSimulator(nl)
        golden = ref.truth_table()
        for fi in (0, 7, len(d.faults) // 2, len(d.faults) - 1):
            faulty = ref.truth_table(d.faults[fi])
            expect = (faulty != golden).any(axis=1)
            got = np.array(
                [d.column_bits(v)[fi] for v in range(d.n_vectors)], dtype=bool
            )
            assert np.array_equal(got, expect)

    def test_worker_sharding_is_bit_identical(self):
        nl = builders.ripple_carry_adder(3)
        base = build_fault_dictionary(nl, workers=1)
        sharded = build_fault_dictionary(nl, workers=3)
        assert np.array_equal(base.words, sharded.words)
        assert base.faults == sharded.faults

    def test_word_range_merge_is_bit_identical(self):
        nl = builders.ripple_carry_adder(3)  # 7 inputs -> 2 words
        full = build_fault_dictionary(nl)
        parts = [
            FaultDictionary(
                netlist_name=full.netlist_name,
                faults=full.faults,
                groups=full.groups,
                words=full.words[:, lo:hi],
                n_vectors=(hi - lo) * 64,
                vector_base=lo * 64,
            )
            for lo, hi in ((0, 1), (1, 2))
        ]
        merged = FaultDictionary.merge(parts)
        assert np.array_equal(merged.words, full.words)
        assert merged.n_vectors == full.n_vectors

    def test_merge_rejects_gaps(self):
        nl = builders.full_adder()
        d = build_fault_dictionary(nl)
        shifted = FaultDictionary(
            d.netlist_name, d.faults, d.groups, d.words, d.n_vectors, vector_base=128
        )
        with pytest.raises(SimulationError):
            FaultDictionary.merge([d, shifted])

    def test_npz_roundtrip(self, tmp_path):
        nl = builders.ripple_carry_adder(2)
        d = build_fault_dictionary(nl)
        path = tmp_path / "rca2.npz"
        d.save(path)
        loaded = FaultDictionary.load(path)
        assert loaded.netlist_name == d.netlist_name
        assert loaded.faults == d.faults
        assert loaded.groups == d.groups
        assert np.array_equal(loaded.words, d.words)
        assert loaded.n_vectors == d.n_vectors

    def test_masked_lanes_never_detect(self):
        space = unit_space("div", 2)
        d = build_fault_dictionary(space.netlist, space)
        # Vectors with b == 0 (free bits 2..3 clear) are masked out.
        for v in range(d.n_vectors):
            if (v >> 2) & 0b11 == 0:
                assert d.column_bits(v).max() == 0


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_greedy_covers_everything_detectable(self):
        nl = builders.ripple_carry_adder(2)
        d = build_fault_dictionary(nl)
        cover = greedy_cover(d)
        assert np.array_equal(cover.detected, d.detected)
        assert sum(cover.marginal) == d.detected_count
        # Marginal gains are non-increasing for greedy set cover.
        assert all(a >= b for a, b in zip(cover.marginal, cover.marginal[1:]))

    def test_greedy_is_much_smaller_than_the_universe(self):
        nl = builders.ripple_carry_adder(4)
        d = build_fault_dictionary(nl)
        cover = greedy_cover(d)
        assert len(cover.order) * 10 <= d.n_vectors

    def test_reverse_compact_preserves_coverage(self):
        nl = builders.ripple_carry_adder(2)
        d = build_fault_dictionary(nl)
        kept = reverse_compact(d)
        assert len(kept) < d.n_vectors
        assert np.array_equal(d.covered_by(kept), d.detected)

    def test_reverse_compact_full_universe_stays_cheap(self):
        # The packed-transpose path: a 2**11-vector universe compacts
        # without materialising per-vector int64 columns.
        nl = builders.ripple_carry_adder(5)
        d = build_fault_dictionary(nl)
        kept = reverse_compact(d)
        assert np.array_equal(d.covered_by(kept), d.detected)
        # Explicit sub-orders agree with the generic counting path.
        sub = reverse_compact(d, order=list(kept))
        assert np.array_equal(d.covered_by(sub), d.covered_by(kept))

    def test_reverse_compact_respects_given_order(self):
        nl = builders.full_adder()
        res = generate_tests(nl, seed=3)
        kept = reverse_compact(res.dictionary)
        assert set(kept) <= set(range(res.dictionary.n_vectors))
        assert np.array_equal(
            res.dictionary.covered_by(kept), res.dictionary.detected
        )

    def test_compact_from_dictionary_replays(self):
        nl = builders.full_adder()
        space = TestSpace.full(nl)
        d = build_fault_dictionary(nl, space)
        cs = compact_from_dictionary(d, space)
        assert isinstance(cs, CompactTestSet)
        assert np.array_equal(replay_detected(nl, cs.vectors), cs.detected)


# ----------------------------------------------------------------------
# ATPG generation
# ----------------------------------------------------------------------
class TestGeneration:
    def test_same_seed_same_compact_set(self):
        nl = builders.ripple_carry_adder(3)
        a = generate_tests(nl, seed=11)
        b = generate_tests(nl, seed=11)
        assert np.array_equal(a.tests, b.tests)
        assert np.array_equal(a.compact.vectors, b.compact.vectors)
        assert a.compact.marginal == b.compact.marginal
        assert np.array_equal(a.dictionary.words, b.dictionary.words)

    def test_residual_faults_are_proven_redundant(self):
        space = unit_space("mul", 3)
        res = generate_tests(space.netlist, space, seed=5)
        assert res.exhausted
        # Nothing the exhaustive sweep of the constrained space can
        # detect is left: the full dictionary agrees.
        full = build_fault_dictionary(space.netlist, space)
        assert np.array_equal(res.dictionary.detected, full.detected)

    def test_compact_never_worse_than_generated(self):
        nl = builders.ripple_carry_adder(3)
        res = generate_tests(nl, seed=2)
        assert res.compact.n_tests <= res.n_tests
        assert np.array_equal(res.compact.detected, res.dictionary.detected)

    def test_method_dispatch(self):
        nl = builders.full_adder()
        by_dict = compact_test_set(nl, method="dictionary")
        by_atpg = compact_test_set(nl, method="atpg")
        assert by_dict.source == "greedy-dictionary"
        assert by_atpg.source == "atpg+greedy"
        assert np.array_equal(by_dict.detected, by_atpg.detected)
        with pytest.raises(SimulationError):
            compact_test_set(nl, method="bogus")


# ----------------------------------------------------------------------
# End-to-end: replay == dictionary claim, every unit, n = 3 and 4
# ----------------------------------------------------------------------
class TestReplayMatchesClaim:
    @pytest.mark.parametrize("unit", UNITS)
    @pytest.mark.parametrize("width", (3, 4))
    @pytest.mark.parametrize("method", ("dictionary", "atpg"))
    def test_unit_compact_set_replays_bit_identically(self, unit, width, method):
        netlist = unit_netlist(unit, width)
        ts = unit_test_set(unit, width, method=method)
        replay = replay_detected(netlist, ts.vectors)
        assert np.array_equal(replay, ts.detected)
        # And the claim is complete: no vector of the constrained
        # universe detects anything the compact set misses.
        full = build_fault_dictionary(netlist, unit_space(unit, width))
        assert np.array_equal(ts.detected, full.detected)

    @pytest.mark.parametrize("operator", UNITS)
    def test_table2_architecture_compact_set_replays(self, operator):
        arch = table2_architecture(operator, 3)
        space = arch.test_space()
        ts = compact_test_set(arch.netlist, space, method="atpg")
        replay = replay_detected(arch.netlist, ts.vectors)
        assert np.array_equal(replay, ts.detected)
        if operator == "div":
            b_cols = ts.vectors[:, arch.width : 2 * arch.width]
            assert (b_cols.sum(axis=1) > 0).all()


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
class TestEmission:
    def test_vhdl_and_verilog_benches_carry_the_set(self):
        nl = builders.full_adder()
        cs = compact_test_set(nl)
        vhdl = emit_self_test_vhdl(nl, cs)
        vlog = emit_self_test_verilog(nl, cs)
        assert f"constant TEST_COUNT : natural := {cs.n_tests};" in vhdl
        assert f"localparam TEST_COUNT = {cs.n_tests};" in vlog
        assert "entity fa_selftest is" in vhdl
        assert "module fa_selftest(clk, ok, done);" in vlog
        # The structural DUT rides along.
        assert "architecture structural of fa is" in vhdl
        assert "module fa(" in vlog

    def test_single_test_vhdl_uses_named_association(self):
        # A one-entry positional aggregate is illegal VHDL.
        nl = builders.full_adder()
        cs = compact_test_set(nl)
        single = CompactTestSet(
            cs.netlist_name,
            cs.input_names,
            cs.vectors[:1],
            cs.faults,
            cs.detected,
            cs.marginal[:1],
            cs.source,
        )
        vhdl = emit_self_test_vhdl(nl, single)
        assert '0 => "' in vhdl
        assert "0 => " not in emit_self_test_vhdl(nl, cs)  # positional for real sets

    def test_vm_emission_rejects_missing_operand_columns(self):
        ts = unit_test_set("add", 3)
        with pytest.raises(SimulationError):
            emit_vm_self_test(ts, "add", 4)  # needs a3/b3 columns

    def test_empty_set_refuses_to_emit(self):
        nl = builders.full_adder()
        cs = compact_test_set(nl)
        empty = CompactTestSet(
            cs.netlist_name,
            cs.input_names,
            cs.vectors[:0],
            cs.faults,
            np.zeros(len(cs.faults), dtype=bool),
            (),
            "greedy-dictionary",
        )
        with pytest.raises(SimulationError):
            emit_self_test_vhdl(nl, empty)

    def test_vm_self_test_passes_fault_free_and_flags_faults(self):
        width = 4
        ts = unit_test_set("add", width)
        prog = emit_vm_self_test(ts, "add", width)
        assert prog.run() is False
        cells = [
            c for c in faulty_cell_library() if c.differs_from(reference_cell())
        ]
        flagged = 0
        for cell in cells[:6]:
            alu = FaultableALU(width)
            alu.inject_fault("adder", cell, 1)
            flagged += prog.run(alu)
        assert flagged > 0

    def test_alu_self_test_covers_every_unit(self):
        width = 3
        sets = {u: unit_test_set(u, width) for u in UNITS}
        prog = emit_alu_self_test(sets, width)
        assert prog.run() is False
        cells = [
            c for c in faulty_cell_library() if c.differs_from(reference_cell())
        ]
        for unit, args in (
            ("adder", ()),
            ("multiplier", (0,)),
            ("divider", ()),
        ):
            alu = FaultableALU(width)
            alu.inject_fault(unit, cells[0], 1, *args)
            assert prog.run(alu) is True, unit

    def test_report_renders_all_units(self):
        text = render_tpg_report(width=3)
        for unit in UNITS:
            assert f"\n{unit} " in text
        assert "compact" in text


# ----------------------------------------------------------------------
# Coverage-engine satellites
# ----------------------------------------------------------------------
class TestShardGridWordFirst:
    def test_word_first_spans_all_cases(self):
        tiles = shard_grid(10, 64, 4, word_first=True)
        assert len(tiles) == 4
        assert all(c_lo == 0 and c_hi == 10 for c_lo, c_hi, _, _ in tiles)
        covered = sorted((w_lo, w_hi) for _, _, w_lo, w_hi in tiles)
        assert covered[0][0] == 0 and covered[-1][1] == 64
        assert all(a[1] == b[0] for a, b in zip(covered, covered[1:]))

    def test_word_first_falls_back_when_words_are_scarce(self):
        assert shard_grid(10, 2, 4, word_first=True) == shard_grid(10, 2, 4)

    def test_word_first_gate_sweep_is_bit_identical(self, monkeypatch):
        import repro.coverage.engine as ce

        def key(stats):
            return {
                name: (s.situations, s.covered, s.observable_errors,
                       s.detected_while_correct)
                for name, s in stats.items()
            }

        base = evaluate_adder(3, method="gate")
        monkeypatch.setattr(ce, "GATE_GRID_WORD_FIRST", 1)
        forced = evaluate_adder(3, method="gate", workers=2)
        assert key(base) == key(forced)


class TestMatrixBudget:
    def test_auto_budget_scales_with_row_cells(self):
        assert resolve_matrix_budget(1) == GATE_MATRIX_BUDGET_MIN
        assert resolve_matrix_budget(1 << 30) == GATE_MATRIX_BUDGET_MAX
        mid = 50_000
        assert resolve_matrix_budget(mid) == mid * 8 * 256

    def test_explicit_budget_wins(self):
        assert resolve_matrix_budget(1 << 30, budget=12345) == 12345

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(GATE_MATRIX_BUDGET_ENV, str(1 << 21))
        assert resolve_matrix_budget(1 << 30) == 1 << 21
        monkeypatch.setenv(GATE_MATRIX_BUDGET_ENV, "not-bytes")
        with pytest.raises(SimulationError):
            resolve_matrix_budget(1)

    def test_budget_keyword_changes_nothing_about_the_numbers(self):
        def key(stats):
            return {
                name: (s.situations, s.covered, s.observable_errors,
                       s.detected_while_correct)
                for name, s in stats.items()
            }

        base = evaluate_multiplier(3, method="gate")
        tiny = evaluate_multiplier(3, method="gate", matrix_budget=1 << 20)
        assert key(base) == key(tiny)

    def test_dictionary_budget_keyword_is_bit_identical(self):
        nl = builders.ripple_carry_adder(3)
        base = build_fault_dictionary(nl)
        tiny = build_fault_dictionary(nl, matrix_budget=1 << 12)
        assert np.array_equal(base.words, tiny.words)
