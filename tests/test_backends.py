"""Differential suite over the execution-backend registry.

Every registered backend must be *bit-identical* on every evaluation
path: exhaustive campaigns, fault-group output matrices, detection
words, coverage sweeps and dictionary builds.  Tests enumerate
:func:`repro.gates.backends.list_backends` instead of hand-listing
oracles, so a newly registered backend is differentially tested for
free (including the optional numba backend wherever it is installed).
"""

import numpy as np
import pytest

from repro.coverage.engine import evaluate_operator
from repro.errors import SimulationError
from repro.gates import builders
from repro.gates.backends import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    backend_unavailable_reason,
    create_backend,
    list_backends,
    resolve_backend_name,
)
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import compile_netlist
from repro.gates.engine import (
    BitParallelEngine,
    engine_for,
    exhaustive_words,
    resolve_matrix_budget,
    run_stuck_at_campaign,
)
from repro.gates.faults import default_fault_universe
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.tpg.dictionary import FaultDictionary, build_fault_dictionary
from repro.tpg.generate import table2_space, unit_netlist, unit_space
from repro.arch.testbench import table2_architecture

ALL_BACKENDS = list_backends()
#: The packed word-parallel backends (the interpreting oracle is
#: exercised separately on the smaller cases to keep runtime sane).
FAST_BACKENDS = tuple(n for n in ALL_BACKENDS if n != "reference")

UNITS = ("add", "sub", "mul", "div")


def _unit_netlists(width):
    return [unit_netlist(unit, width) for unit in UNITS]


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_core_backends_registered(self):
        assert "python_loop" in ALL_BACKENDS
        assert "fused" in ALL_BACKENDS
        assert "reference" in ALL_BACKENDS

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_name() == DEFAULT_BACKEND

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python_loop")
        assert resolve_backend_name() == "python_loop"

    def test_keyword_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python_loop")
        assert resolve_backend_name("fused") == "fused"

    def test_unknown_backend_errors(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend_name("no_such_backend")

    def test_unknown_env_backend_errors(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "no_such_backend")
        with pytest.raises(SimulationError, match=BACKEND_ENV):
            resolve_backend_name()

    def test_unavailable_backend_has_clear_error(self):
        # Wherever numba is absent the backend must degrade gracefully:
        # listed as unavailable with a reason, clear error on selection.
        if "numba" in ALL_BACKENDS:
            pytest.skip("numba installed here; unavailability not testable")
        reason = backend_unavailable_reason("numba")
        assert reason is not None and "numba" in reason
        with pytest.raises(SimulationError, match="unavailable"):
            resolve_backend_name("numba")

    def test_engine_records_backend(self):
        netlist = builders.full_adder()
        for name in ALL_BACKENDS:
            assert engine_for(netlist, name).backend_name == name

    def test_env_switches_engine_default(self, monkeypatch):
        netlist = builders.full_adder()
        monkeypatch.setenv(BACKEND_ENV, "python_loop")
        assert engine_for(netlist).backend_name == "python_loop"


# ----------------------------------------------------------------------
# Bit-identity: campaigns
# ----------------------------------------------------------------------
class TestCampaignEquivalence:
    @pytest.mark.parametrize("width", (3, 4))
    @pytest.mark.parametrize("unit", UNITS)
    def test_exhaustive_campaigns_bit_identical(self, unit, width):
        netlist = unit_netlist(unit, width)
        results = {
            name: run_stuck_at_campaign(netlist, backend=name)
            for name in FAST_BACKENDS
        }
        baseline = results["python_loop"]
        for name, result in results.items():
            assert np.array_equal(result.detected, baseline.detected), name
            assert np.array_equal(
                result.first_detected, baseline.first_detected
            ), name

    @pytest.mark.parametrize("unit", UNITS)
    def test_reference_backend_campaign(self, unit):
        # The interpreting oracle, through the same campaign machinery.
        netlist = unit_netlist(unit, 3)
        got = run_stuck_at_campaign(netlist, backend="reference")
        want = run_stuck_at_campaign(netlist, backend="python_loop")
        assert np.array_equal(got.detected, want.detected)
        assert np.array_equal(got.first_detected, want.first_detected)

    def test_campaign_without_collapsing_or_dropping(self):
        netlist = builders.ripple_carry_adder(3)
        for name in FAST_BACKENDS:
            result = run_stuck_at_campaign(
                netlist, backend=name, collapse=False, fault_dropping=False
            )
            baseline = run_stuck_at_campaign(
                netlist, backend="python_loop", collapse=False, fault_dropping=False
            )
            assert np.array_equal(result.detected, baseline.detected), name
            assert np.array_equal(
                result.first_detected, baseline.first_detected
            ), name

    def test_big_fault_batches_bit_identical(self):
        # One batch carrying the whole universe exercises the fused
        # prefix walk's permutation on every site class at once.
        netlist = builders.ripple_carry_adder(8)
        baseline = run_stuck_at_campaign(
            netlist, backend="python_loop", fault_chunk=512
        )
        for name in FAST_BACKENDS:
            result = run_stuck_at_campaign(netlist, backend=name, fault_chunk=512)
            assert np.array_equal(result.detected, baseline.detected), name
            assert np.array_equal(
                result.first_detected, baseline.first_detected
            ), name


# ----------------------------------------------------------------------
# Bit-identity: fault-group matrices (the Table 2 path)
# ----------------------------------------------------------------------
class TestFaultGroupEquivalence:
    @pytest.mark.parametrize("operator", UNITS)
    def test_table2_architecture_matrices(self, operator):
        arch = table2_architecture(operator, 3, "xor3_majority")
        space = table2_space(arch)
        rows = space.input_rows(0, space.n_words)
        # A handful of multi-site fault groups spanning the replicas.
        from repro.arch.cell import collapsed_cell_library

        groups = []
        for group in collapsed_cell_library("xor3_majority"):
            if group.is_reference:
                continue
            groups.append(
                arch.fault_group(group.representative.fault.fault, arch.positions[0])
            )
            if len(groups) >= 6:
                break
        engines = {
            name: engine_for(arch.netlist, name) for name in FAST_BACKENDS
        }
        outs = {
            name: eng.run_fault_groups(rows, groups)
            for name, eng in engines.items()
        }
        detects = {
            name: eng.detect_words(rows, groups) for name, eng in engines.items()
        }
        base_out = outs["python_loop"]
        base_det = detects["python_loop"]
        for name in FAST_BACKENDS:
            assert np.array_equal(outs[name], base_out), name
            assert np.array_equal(detects[name], base_det), name

    def test_reference_backend_fault_groups(self):
        netlist = builders.ripple_carry_adder(3)
        faults = default_fault_universe(netlist)
        groups = [faults[0], (faults[1], faults[7]), (faults[2], faults[9])]
        packed = engine_for(netlist).exhaustive()
        want = engine_for(netlist, "python_loop").run_fault_groups(
            packed.words, groups
        )
        got = engine_for(netlist, "reference").run_fault_groups(
            packed.words, groups
        )
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("width", (3, 4))
    def test_coverage_sweep_bit_identical(self, width):
        baseline = None
        for name in FAST_BACKENDS:
            stats = evaluate_operator(
                "add", width, method="gate", workers=1, backend=name
            )
            key = {
                tech: (s.situations, s.covered, s.detected_while_correct)
                for tech, s in stats.items()
            }
            if baseline is None:
                baseline = key
            else:
                assert key == baseline, name


# ----------------------------------------------------------------------
# Sharding invariance under a non-default backend
# ----------------------------------------------------------------------
class TestShardingInvariance:
    def test_sharded_campaign_matches_unsharded(self):
        netlist = builders.ripple_carry_adder(4)
        non_default = next(
            n for n in FAST_BACKENDS if n != resolve_backend_name()
        )
        lone = run_sharded_stuck_at_campaign(
            netlist, workers=1, backend=non_default
        )
        sharded = run_sharded_stuck_at_campaign(
            netlist, workers=3, backend=non_default
        )
        assert np.array_equal(lone.detected, sharded.detected)
        assert np.array_equal(lone.first_detected, sharded.first_detected)

    def test_sharded_dictionary_matches_unsharded(self):
        netlist = unit_netlist("add", 4)
        space = unit_space("add", 4)
        non_default = next(
            n for n in FAST_BACKENDS if n != resolve_backend_name()
        )
        lone = build_fault_dictionary(
            netlist, space, workers=1, backend=non_default
        )
        sharded = build_fault_dictionary(
            netlist, space, workers=3, backend=non_default
        )
        assert np.array_equal(lone.words, sharded.words)
        assert lone.backend == sharded.backend == non_default


# ----------------------------------------------------------------------
# Dictionary provenance
# ----------------------------------------------------------------------
class TestDictionaryBackendRecording:
    def test_builder_backend_recorded_and_persisted(self, tmp_path):
        netlist = unit_netlist("add", 3)
        dictionary = build_fault_dictionary(
            netlist, unit_space("add", 3), backend="python_loop"
        )
        assert dictionary.backend == "python_loop"
        path = tmp_path / "add3.npz"
        dictionary.save(path)
        loaded = FaultDictionary.load(path)
        assert loaded.backend == "python_loop"
        assert np.array_equal(loaded.words, dictionary.words)

    def test_dictionaries_bit_identical_across_backends(self):
        netlist = unit_netlist("div", 3)
        space = unit_space("div", 3)
        words = {
            name: build_fault_dictionary(netlist, space, backend=name).words
            for name in FAST_BACKENDS
        }
        base = words["python_loop"]
        for name, got in words.items():
            assert np.array_equal(got, base), name


# ----------------------------------------------------------------------
# The exhaustive-set cache guard
# ----------------------------------------------------------------------
class TestExhaustiveCacheGuard:
    def test_small_sets_are_cached(self):
        engine = BitParallelEngine(compile_netlist(builders.full_adder()))
        first = engine.exhaustive()
        assert engine.exhaustive() is first

    def test_oversized_sets_are_not_cached(self, monkeypatch):
        netlist = builders.ripple_carry_adder(8)
        compiled = compile_netlist(netlist)
        packed_bytes = exhaustive_words(compiled.n_inputs).words.nbytes
        monkeypatch.setenv("REPRO_GATE_MATRIX_BUDGET", str(packed_bytes - 1))
        assert resolve_matrix_budget(compiled.n_nets) < packed_bytes
        engine = BitParallelEngine(compiled)
        first = engine.exhaustive()
        second = engine.exhaustive()
        assert first is not second  # rebuilt, not pinned
        assert np.array_equal(first.words, second.words)

    def test_guard_preserves_results(self, monkeypatch):
        netlist = builders.ripple_carry_adder(4)
        want = run_stuck_at_campaign(netlist)
        monkeypatch.setenv("REPRO_GATE_MATRIX_BUDGET", "1")
        engine = BitParallelEngine(compile_netlist(netlist))
        got = engine.campaign()
        assert np.array_equal(got.detected, want.detected)
        assert np.array_equal(got.first_detected, want.first_detected)


# ----------------------------------------------------------------------
# Optional numba backend (runs only where numba is installed)
# ----------------------------------------------------------------------
class TestNumbaBackend:
    def test_numba_campaign_bit_identical(self):
        pytest.importorskip("numba")
        assert "numba" in ALL_BACKENDS
        netlist = builders.ripple_carry_adder(4)
        got = run_stuck_at_campaign(netlist, backend="numba")
        want = run_stuck_at_campaign(netlist, backend="python_loop")
        assert np.array_equal(got.detected, want.detected)
        assert np.array_equal(got.first_detected, want.first_detected)

    def test_numba_fault_groups_bit_identical(self):
        pytest.importorskip("numba")
        netlist = unit_netlist("mul", 3)
        faults = default_fault_universe(netlist)
        groups = [faults[0], (faults[1], faults[5])]
        packed = engine_for(netlist).exhaustive()
        want = engine_for(netlist, "python_loop").run_fault_groups(
            packed.words, groups
        )
        got = engine_for(netlist, "numba").run_fault_groups(packed.words, groups)
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Single-fault simulation across backends
# ----------------------------------------------------------------------
class TestSimulatorEquivalence:
    def test_per_fault_truth_tables(self):
        netlist = builders.full_adder()
        faults = default_fault_universe(netlist)
        tables = {}
        for name in ALL_BACKENDS:
            engine = engine_for(netlist, name)
            tables[name] = engine.truth_tables(list(faults))
        base = tables["python_loop"]
        for name, got in tables.items():
            assert np.array_equal(got, base), name

    def test_backend_instances_run_words_agree(self):
        netlist = builders.ripple_carry_adder(3)
        compiled = compile_netlist(netlist)
        packed = engine_for(netlist).exhaustive()
        outs = {}
        for name in ALL_BACKENDS:
            backend = create_backend(name, compiled)
            outs[name] = np.array(backend.run_words(packed.words))
        base = outs["python_loop"]
        for name, got in outs.items():
            assert np.array_equal(got, base), name

    def test_inplace_word_mutation_invalidates_golden_cache(self):
        # The fused backend caches the golden run per words buffer; a
        # caller mutating its buffer in place must get fresh results.
        netlist = builders.ripple_carry_adder(4)
        faults = default_fault_universe(netlist)
        reps = list(faults[:8])
        packed = engine_for(netlist).exhaustive()
        words = packed.words.copy()
        fused = engine_for(netlist, "fused")
        loop = engine_for(netlist, "python_loop")
        first = fused.detect_words(words, reps)
        assert np.array_equal(first, loop.detect_words(words, reps))
        words[:] = np.roll(words, 3, axis=1)
        assert np.array_equal(
            fused.detect_words(words, reps), loop.detect_words(words, reps)
        )

    def test_workspace_reuse_does_not_corrupt(self):
        # Two consecutive fused matrix calls may share a workspace; the
        # second must not corrupt results derived from the first.
        netlist = builders.ripple_carry_adder(3)
        compiled = compile_netlist(netlist)
        backend = create_backend("fused", compiled)
        packed = engine_for(netlist).exhaustive()
        faults = default_fault_universe(netlist)
        plan_a = OverridePlan(compiled, [faults[0]])
        plan_b = OverridePlan(compiled, [faults[3]])
        first = np.array(backend.run_matrix(packed.words, plan_a, 2))
        second = np.array(backend.run_matrix(packed.words, plan_b, 2))
        again = np.array(backend.run_matrix(packed.words, plan_a, 2))
        assert np.array_equal(first, again)
        assert not np.array_equal(first, second)


# ----------------------------------------------------------------------
# Differential cache: cold vs warm store runs across the registry
# ----------------------------------------------------------------------
class TestStoreDifferential:
    """The result store must be invisible in the numbers: a warm run
    (every artifact served from the store) returns results bit-identical
    to the cold run that populated it, and to a store-free run, for all
    four units -- whose gate sweeps simulate the Table 2 test
    architectures -- on every available backend."""

    WIDTHS = (3, 4)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_cold_vs_warm_bit_identical(self, tmp_path, backend):
        from repro.store import ResultStore

        reason = backend_unavailable_reason(backend)
        if reason:
            pytest.skip(reason)
        store = ResultStore(tmp_path)
        cold = {
            (unit, width): evaluate_operator(
                unit, width, workers=1, backend=backend, store=store
            )
            for unit in UNITS
            for width in self.WIDTHS
        }
        after_cold = store.stats.snapshot()
        assert after_cold["puts"] > 0

        warm = {
            (unit, width): evaluate_operator(
                unit, width, workers=1, backend=backend, store=store
            )
            for unit in UNITS
            for width in self.WIDTHS
        }
        after_warm = store.stats.snapshot()
        # The second run is all hits: no new puts, no new misses.
        assert after_warm["puts"] == after_cold["puts"]
        assert after_warm["misses"] == after_cold["misses"]
        assert after_warm["hits"] > after_cold["hits"]
        assert warm == cold

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_warm_matches_store_free_run(self, tmp_path, backend):
        from repro.store import ResultStore

        reason = backend_unavailable_reason(backend)
        if reason:
            pytest.skip(reason)
        store = ResultStore(tmp_path)
        for unit in UNITS:
            plain = evaluate_operator(
                unit, 3, workers=1, backend=backend, store=False
            )
            evaluate_operator(unit, 3, workers=1, backend=backend, store=store)
            warm = evaluate_operator(unit, 3, workers=1, backend=backend, store=store)
            assert warm == plain

    def test_backends_do_not_share_cache_entries(self, tmp_path):
        from repro.store import ResultStore

        first, second = FAST_BACKENDS[0], FAST_BACKENDS[1 % len(FAST_BACKENDS)]
        if first == second:
            pytest.skip("registry has a single fast backend")
        for name in (first, second):
            reason = backend_unavailable_reason(name)
            if reason:
                pytest.skip(reason)
        store = ResultStore(tmp_path)
        a = run_sharded_stuck_at_campaign(
            builders.ripple_carry_adder(3), workers=1, backend=first, store=store
        )
        puts = store.stats.puts
        # A different backend must key -- and compute -- its own entry.
        b = run_sharded_stuck_at_campaign(
            builders.ripple_carry_adder(3), workers=1, backend=second, store=store
        )
        assert store.stats.puts > puts
        assert np.array_equal(np.asarray(a.detected), np.asarray(b.detected))

    def test_warm_dictionary_round_trip_via_store(self, tmp_path):
        from repro.store import ResultStore

        arch = table2_architecture("add", 3)
        netlist, space = arch.netlist, table2_space(arch)
        store = ResultStore(tmp_path)
        cold = build_fault_dictionary(netlist, space=space, store=store)
        store.clear_lru()  # force the warm run through the filesystem
        warm = build_fault_dictionary(netlist, space=space, store=store)
        assert warm.words.tobytes() == cold.words.tobytes()
        assert warm.faults == cold.faults
        assert warm.groups == cold.groups
