"""Tests for repro.gates.faults and repro.gates.simulate."""

import numpy as np
import pytest

from repro.errors import FaultError, SimulationError
from repro.gates import builders
from repro.gates.cells import CellType
from repro.gates.faults import (
    FaultSite,
    StuckAtFault,
    collapse_equivalent,
    enumerate_fault_sites,
    full_fault_list,
)
from repro.gates.netlist import Netlist
from repro.gates.simulate import NetlistSimulator, simulate, simulate_vector


class TestFaultSites:
    def test_stem_only_for_single_fanout(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate(CellType.NOT, ["a"], "y")
        nl.mark_output("y")
        sites = enumerate_fault_sites(nl)
        assert all(site.is_stem for site in sites)
        assert len(sites) == 2  # a, y

    def test_branches_for_multi_fanout(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.AND, ["a", "b"], "x")
        nl.add_gate(CellType.OR, ["a", "b"], "y")
        nl.mark_output("x")
        nl.mark_output("y")
        sites = enumerate_fault_sites(nl)
        # a, b: stem + 2 branches each; x, y: stems -> 3+3+1+1
        assert len(sites) == 8
        branch_sites = [s for s in sites if not s.is_stem]
        assert len(branch_sites) == 4

    def test_invalid_stuck_value(self):
        with pytest.raises(FaultError):
            StuckAtFault(FaultSite("a"), 2)

    def test_describe(self):
        fault = StuckAtFault(FaultSite("a", ("g", 1)), 0)
        assert "SA0" in fault.describe()
        assert "g.pin1" in fault.describe()


class TestFaultySimulation:
    def test_stem_fault_affects_all_readers(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.AND, ["a", "b"], "x", name="g_and")
        nl.add_gate(CellType.OR, ["a", "b"], "y", name="g_or")
        nl.mark_output("x")
        nl.mark_output("y")
        fault = StuckAtFault(FaultSite("a"), 1)
        outs = simulate(nl, {"a": 0, "b": 0}, fault)
        assert outs["x"] == 0  # 1 & 0
        assert outs["y"] == 1  # 1 | 0

    def test_branch_fault_affects_one_reader(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.AND, ["a", "b"], "x", name="g_and")
        nl.add_gate(CellType.OR, ["a", "b"], "y", name="g_or")
        nl.mark_output("x")
        nl.mark_output("y")
        fault = StuckAtFault(FaultSite("a", ("g_or", 0)), 1)
        outs = simulate(nl, {"a": 0, "b": 0}, fault)
        assert outs["x"] == 0  # unaffected
        assert outs["y"] == 1  # stuck branch

    def test_output_stem_fault(self):
        nl = builders.full_adder()
        fault = StuckAtFault(FaultSite("s"), 1)
        outs = simulate(nl, {"a": 0, "b": 0, "cin": 0}, fault)
        assert outs["s"] == 1

    def test_fault_free_matches_reference(self):
        nl = builders.full_adder_xor3()
        sim = NetlistSimulator(nl)
        table = sim.truth_table()
        for idx in range(8):
            a, b, c = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
            assert table[idx, 0] == (a + b + c) & 1
            assert table[idx, 1] == (a + b + c) >> 1


class TestVectorSimulation:
    def test_vector_matches_scalar(self):
        nl = builders.ripple_carry_adder(2)
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        inputs = {
            "a0": a,
            "a1": np.zeros(4, dtype=np.uint8),
            "b0": b,
            "b1": np.ones(4, dtype=np.uint8),
            "cin": np.zeros(4, dtype=np.uint8),
        }
        outs = simulate_vector(nl, inputs)
        for k in range(4):
            scalar = simulate(
                nl,
                {name: int(vals[k]) for name, vals in inputs.items()},
            )
            for net, values in outs.items():
                assert int(values[k]) == scalar[net]

    def test_length_mismatch_rejected(self):
        nl = builders.half_adder()
        with pytest.raises(SimulationError):
            simulate_vector(
                nl,
                {
                    "a": np.array([0, 1], dtype=np.uint8),
                    "b": np.array([0, 1, 1], dtype=np.uint8),
                },
            )

    def test_missing_input_rejected(self):
        nl = builders.half_adder()
        with pytest.raises(SimulationError):
            simulate(nl, {"a": 1})

    def test_non_binary_rejected(self):
        nl = builders.half_adder()
        with pytest.raises(SimulationError):
            simulate(nl, {"a": 2, "b": 0})


class TestCollapse:
    def test_collapse_reduces_list(self):
        nl = builders.full_adder()
        sim = NetlistSimulator(nl)
        faults = full_fault_list(nl)
        behaviors = {f: sim.behavior_signature(f) for f in faults}
        collapsed = collapse_equivalent(nl, faults, behaviors)
        assert 0 < len(collapsed) < len(faults)
        signatures = {behaviors[f] for f in collapsed}
        assert len(signatures) == len(collapsed)
