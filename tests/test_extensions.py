"""Tests for the extension blocks: carry-select adder, bit-flip cells."""

import pytest

from repro.arch.cell import bitflip_cell_library, reference_cell
from repro.arch.adders import RippleCarryAdderUnit
from repro.errors import NetlistError
from repro.gates.builders import carry_select_adder
from repro.gates.simulate import NetlistSimulator


def _assign(width, a, b, cin):
    values = {f"a{i}": (a >> i) & 1 for i in range(width)}
    values.update({f"b{i}": (b >> i) & 1 for i in range(width)})
    values["cin"] = cin
    values["zero"] = 0
    values["one"] = 1
    return values


class TestCarrySelectAdder:
    @pytest.mark.parametrize("width,block", [(2, 1), (3, 2), (4, 2), (5, 3)])
    def test_exhaustive(self, width, block):
        nl = carry_select_adder(width, block)
        sim = NetlistSimulator(nl)
        mask = (1 << width) - 1
        for a in range(1 << width):
            for b in range(1 << width):
                for cin in (0, 1):
                    outs = sim.outputs(_assign(width, a, b, cin))
                    total = 0
                    for i in range(width):
                        total |= int(outs[f"s{i}"]) << i
                    assert total == (a + b + cin) & mask, (a, b, cin)
                    assert int(outs["cout"]) == ((a + b + cin) >> width) & 1

    def test_validation(self):
        with pytest.raises(NetlistError):
            carry_select_adder(0)
        with pytest.raises(NetlistError):
            carry_select_adder(4, block=0)

    def test_has_speculative_sections(self):
        nl = carry_select_adder(4, 2)
        names = {g.name for g in nl.gates}
        assert any("c0_fa" in n for n in names)
        assert any("c1_fa" in n for n in names)


class TestBitflipCells:
    def test_three_variants(self):
        cells = bitflip_cell_library()
        assert len(cells) == 3
        ref = reference_cell()
        for cell in cells:
            assert cell.differs_from(ref)

    def test_sum_flip_behaviour(self):
        flip_s = bitflip_cell_library()[0]
        ref = reference_cell()
        for idx in range(8):
            a, b, c = idx & 1, (idx >> 1) & 1, (idx >> 2) & 1
            s_ref, c_ref = ref.evaluate(a, b, c)
            s, co = flip_s.evaluate(a, b, c)
            assert s == s_ref ^ 1
            assert co == c_ref

    def test_bitflip_in_adder_always_detected_by_check_on_clean_unit(self):
        import numpy as np

        cell = bitflip_cell_library()[0]
        unit = RippleCarryAdderUnit(4, cell, 2)
        clean = RippleCarryAdderUnit(4)
        a = np.arange(16, dtype=np.uint64).repeat(16)
        b = np.tile(np.arange(16, dtype=np.uint64), 16)
        ris, _ = unit.add(a, b)
        check, _ = clean.sub(ris, a)
        wrong = ris != ((a + b) & np.uint64(15))
        detected = check != b
        assert wrong.all()  # an unconditional sum flip corrupts everything
        assert (detected | ~wrong).all()
