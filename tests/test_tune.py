"""The shape-aware autotuner and the parallel kernel tier.

Covers the resolution rules (chunking precedence, the ``"auto"``
sentinel), determinism of the cost model, the calibration cache
round-trip, bit-identity of ``backend="auto"`` against every explicit
backend on all four units and the Table 2 architectures, thread-count
invariance of the threaded backend, and graceful registration of the
optional cupy backend.
"""

import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gates import builders
from repro.gates.backends import (
    AUTO_BACKEND,
    backend_unavailable_reason,
    list_backends,
    resolve_backend_name,
)
from repro.gates.backends.plan import OverridePlan
from repro.gates.backends.threaded import (
    THREADS_ENV,
    ThreadedBackend,
    resolve_threads,
    slice_plan,
)
from repro.gates.compile import compile_netlist
from repro.gates.engine import engine_for, run_stuck_at_campaign
from repro.gates.faults import default_fault_universe
from repro.gates.tune import (
    FAULT_CHUNK_ENV,
    TUNE_CACHE_ENV,
    WORD_CHUNK_ENV,
    clear_calibration_cache,
    clear_plan_log,
    last_plan,
    netlist_content_hash,
    plan_log,
    resolve_chunking,
    resolve_plan,
)
from repro.arch.testbench import table2_architecture
from repro.coverage.engine import evaluate_operator
from repro.tpg.dictionary import build_fault_dictionary
from repro.tpg.generate import table2_space, unit_netlist, unit_test_set

UNITS = ("add", "sub", "mul", "div")
CONCRETE = tuple(n for n in list_backends() if n != "reference")


# ----------------------------------------------------------------------
# Chunk resolution: one rule for the whole stack
# ----------------------------------------------------------------------
class TestResolveChunking:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(WORD_CHUNK_ENV, raising=False)
        monkeypatch.delenv(FAULT_CHUNK_ENV, raising=False)
        assert resolve_chunking() == (512, 64)
        assert resolve_chunking(
            default_word_chunk=256, default_fault_chunk=32
        ) == (256, 32)

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(WORD_CHUNK_ENV, "128")
        monkeypatch.setenv(FAULT_CHUNK_ENV, "16")
        assert resolve_chunking() == (128, 16)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORD_CHUNK_ENV, "128")
        monkeypatch.setenv(FAULT_CHUNK_ENV, "16")
        assert resolve_chunking(64, 8) == (64, 8)
        assert resolve_chunking(word_chunk=64) == (64, 16)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORD_CHUNK_ENV, "lots")
        with pytest.raises(SimulationError, match="not an integer"):
            resolve_chunking()
        monkeypatch.setenv(WORD_CHUNK_ENV, "0")
        with pytest.raises(SimulationError, match="positive"):
            resolve_chunking()

    def test_clamped_to_one(self):
        assert resolve_chunking(-5, -5) == (1, 1)


# ----------------------------------------------------------------------
# Plan resolution: the cost model
# ----------------------------------------------------------------------
class TestResolvePlan:
    def test_deterministic_for_fixed_shape(self):
        netlist = builders.ripple_carry_adder(4)
        clear_plan_log()
        first = resolve_plan(netlist, backend=AUTO_BACKEND)
        clear_plan_log()
        again = resolve_plan(netlist, backend=AUTO_BACKEND)
        assert first == again
        assert first.source == "model"
        assert first.backend in list_backends()
        assert first.reason

    def test_explicit_backend_passes_through(self):
        plan = resolve_plan(builders.full_adder(), backend="python_loop")
        assert plan.backend == "python_loop"
        assert plan.source == "explicit"

    def test_auto_sentinel_needs_allow_auto(self):
        assert resolve_backend_name("auto", allow_auto=True) == AUTO_BACKEND
        with pytest.raises(SimulationError, match="tuning sentinel"):
            resolve_backend_name("auto")

    def test_shape_uses_caller_universe_sizes(self):
        netlist = builders.ripple_carry_adder(4)
        plan = resolve_plan(
            netlist, backend=AUTO_BACKEND, n_groups=7, n_words=3
        )
        assert plan.shape.n_faults == 7
        assert plan.shape.n_words == 3
        assert plan.shape.total_cells == 21

    def test_chunk_knobs_respected(self):
        netlist = builders.ripple_carry_adder(4)
        plan = resolve_plan(
            netlist, backend=AUTO_BACKEND, word_chunk=32, fault_chunk=8
        )
        assert plan.fault_chunk == 8
        assert plan.word_chunk <= 32
        compiled = compile_netlist(netlist)
        assert plan.shape.row_cells == compiled.n_nets * 9

    def test_plan_log_records_and_memo_dedups(self):
        netlist = builders.ripple_carry_adder(3)
        clear_plan_log()
        plan = resolve_plan(netlist, backend=AUTO_BACKEND)
        assert last_plan() == plan
        assert len(plan_log()) == 1
        # A repeated identical resolution is served from the memo and
        # does not grow the log.
        assert resolve_plan(netlist, backend=AUTO_BACKEND) == plan
        assert len(plan_log()) == 1
        clear_plan_log()
        assert last_plan() is None

    def test_engine_for_accepts_auto(self):
        engine = engine_for(builders.full_adder(), "auto")
        assert engine.backend_name in list_backends()


# ----------------------------------------------------------------------
# Calibration cache round-trip
# ----------------------------------------------------------------------
class TestCalibration:
    def test_calibrated_plan_and_file_round_trip(self, tmp_path, monkeypatch):
        cache = tmp_path / "tune_cache.json"
        monkeypatch.setenv(TUNE_CACHE_ENV, str(cache))
        netlist = builders.ripple_carry_adder(3)
        clear_calibration_cache()
        plan = resolve_plan(netlist, backend=AUTO_BACKEND, calibrate=True)
        assert plan.source == "calibrated"
        assert plan.backend in list_backends()
        entries = json.loads(cache.read_text())
        content = netlist_content_hash(compile_netlist(netlist))
        assert any(key.startswith(content) for key in entries)
        assert plan.backend in entries.values()
        # Drop the in-process cache: the answer must come back from the
        # file, without re-probing a different winner.
        clear_calibration_cache()
        clear_plan_log()
        again = resolve_plan(netlist, backend=AUTO_BACKEND, calibrate=True)
        assert again.backend == plan.backend
        assert again.source == "calibrated"

    def test_content_hash_ignores_identity(self):
        one = compile_netlist(builders.ripple_carry_adder(3))
        two = compile_netlist(builders.ripple_carry_adder(3))
        assert one is not two
        assert netlist_content_hash(one) == netlist_content_hash(two)
        other = compile_netlist(builders.ripple_carry_adder(4))
        assert netlist_content_hash(one) != netlist_content_hash(other)


# ----------------------------------------------------------------------
# Bit-identity: auto vs every explicit backend
# ----------------------------------------------------------------------
class TestAutoBitIdentity:
    @pytest.mark.parametrize("unit", UNITS)
    @pytest.mark.parametrize("width", (3, 4))
    def test_unit_campaigns(self, unit, width):
        netlist = unit_netlist(unit, width)
        auto = run_stuck_at_campaign(netlist, backend="auto")
        for name in CONCRETE:
            explicit = run_stuck_at_campaign(netlist, backend=name)
            assert np.array_equal(auto.detected, explicit.detected), name
            assert np.array_equal(
                auto.first_detected, explicit.first_detected
            ), name

    @pytest.mark.parametrize("operator", UNITS)
    def test_table2_architectures(self, operator):
        arch = table2_architecture(operator, 3, "xor3_majority")
        space = table2_space(arch)
        rows = space.input_rows(0, space.n_words)
        auto = engine_for(arch.netlist, "auto")
        outs = {
            name: engine_for(arch.netlist, name).backend.run_words(rows)
            for name in CONCRETE
        }
        base = auto.backend.run_words(rows)
        for name, out in outs.items():
            assert np.array_equal(base, out), name

    def test_coverage_sweep(self):
        auto = evaluate_operator(
            "add", 3, method="gate", workers=1, backend="auto"
        )
        fused = evaluate_operator(
            "add", 3, method="gate", workers=1, backend="fused"
        )
        key = lambda stats: {
            tech: (s.situations, s.covered, s.detected_while_correct)
            for tech, s in stats.items()
        }
        assert key(auto) == key(fused)

    def test_dictionary_and_compact_set(self):
        netlist = unit_netlist("add", 3)
        auto = build_fault_dictionary(netlist, backend="auto")
        fused = build_fault_dictionary(netlist, backend="fused")
        assert np.array_equal(auto.words, fused.words)
        # The recorded provenance is the tuner's concrete resolution.
        assert auto.backend in list_backends()
        set_auto = unit_test_set("add", 3, backend="auto")
        set_fused = unit_test_set("add", 3, backend="fused")
        assert np.array_equal(set_auto.vectors, set_fused.vectors)
        assert np.array_equal(set_auto.detected, set_fused.detected)


# ----------------------------------------------------------------------
# Threaded backend: thread-count invariance
# ----------------------------------------------------------------------
class TestThreadedInvariance:
    def test_resolve_threads_precedence(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "3")
        assert resolve_threads() == 3
        assert resolve_threads(5) == 5
        monkeypatch.setenv(THREADS_ENV, "soon")
        with pytest.raises(SimulationError, match=THREADS_ENV):
            resolve_threads()
        monkeypatch.delenv(THREADS_ENV)
        assert resolve_threads() >= 1

    @pytest.mark.parametrize("threads", (1, 2, 3))
    def test_campaign_invariant_across_thread_counts(self, threads):
        netlist = builders.ripple_carry_adder(4)
        compiled = compile_netlist(netlist)
        faults = default_fault_universe(netlist)
        plan = OverridePlan(compiled, list(faults))
        words = engine_for(netlist).exhaustive().words
        fused = engine_for(netlist, "fused")
        want_detect = fused.backend.run_detect(words, plan, plan.n_rows)
        want_matrix = np.array(
            fused.backend.run_matrix(words, plan, plan.n_rows), copy=True
        )
        backend = ThreadedBackend(compiled, threads=threads)
        # Force tiling even at this size so >1 thread counts actually
        # exercise the grid path, not the sequential fallback.
        import repro.gates.backends.threaded as thr

        old = thr.PARALLEL_MIN_CELLS
        thr.PARALLEL_MIN_CELLS = 1
        try:
            got_detect = backend.run_detect(words, plan, plan.n_rows)
            got_matrix = backend.run_matrix(words, plan, plan.n_rows)
        finally:
            thr.PARALLEL_MIN_CELLS = old
        assert np.array_equal(got_detect, want_detect)
        assert np.array_equal(got_matrix, want_matrix)

    def test_slice_plan_partitions_rows(self):
        netlist = builders.ripple_carry_adder(3)
        compiled = compile_netlist(netlist)
        faults = default_fault_universe(netlist)
        plan = OverridePlan(compiled, list(faults))
        lo, hi = 2, plan.n_rows - 3
        sub = slice_plan(plan, lo, hi)
        assert sub.n_rows == hi - lo
        assert np.array_equal(sub.row_levels, plan.row_levels[lo:hi])
        for net_id, (rows, consts) in sub.stem.items():
            full_rows, full_consts = plan.stem[net_id]
            for row, const in zip(rows, consts):
                idx = full_rows.index(row + lo)
                assert full_consts[idx] == const


# ----------------------------------------------------------------------
# Optional backends: graceful registration
# ----------------------------------------------------------------------
class TestOptionalRegistration:
    @pytest.mark.parametrize("name", ("numba", "cupy"))
    def test_registered_or_reasoned(self, name):
        if name in list_backends():
            assert backend_unavailable_reason(name) is None
        else:
            reason = backend_unavailable_reason(name)
            assert reason, name
            with pytest.raises(SimulationError, match="unavailable"):
                resolve_backend_name(name)

    def test_model_never_picks_unavailable(self):
        # Even a huge shape must resolve to something registered.
        plan = resolve_plan(
            builders.ripple_carry_adder(4),
            backend=AUTO_BACKEND,
            n_groups=1 << 12,
            n_words=1 << 12,
        )
        assert plan.backend in list_backends()
