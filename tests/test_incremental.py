"""Incremental campaign recomputation: diff, reuse proof, bit-identity.

The load-bearing property is that
:func:`repro.faults.incremental.incremental_stuck_at_campaign` over an
edited netlist equals a from-scratch
:func:`~repro.gates.engine.run_stuck_at_campaign` in every verdict
field -- ``faults`` / ``detected`` / ``first_detected`` /
``n_vectors`` / ``groups`` -- with only the ``n_simulated_runs`` work
counter allowed to shrink.  Randomised single- and multi-gate edits
(cell-type swaps and input rewiring, which changes cone membership and
even the fault-universe size) exercise that differentially.
"""

import numpy as np
import pytest

from repro.errors import NetlistError, SimulationError
from repro.faults.incremental import (
    diff_netlists,
    dirty_outputs,
    incremental_stuck_at_campaign,
)
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.gates.engine import run_stuck_at_campaign
from repro.gates.netlist import CellType
from repro.store import ResultStore

SWAPPABLE = (
    CellType.AND,
    CellType.OR,
    CellType.XOR,
    CellType.NAND,
    CellType.NOR,
    CellType.XNOR,
)


def _random_edit(netlist, rng, n_gates=1, rewire=False):
    """Return an edited copy: cell-type swaps, optionally one rewiring."""
    new = netlist.copy()
    two_input = [g.name for g in new.gates if len(g.inputs) == 2]
    for name in rng.choice(two_input, size=n_gates, replace=False):
        gate = next(g for g in new.gates if g.name == name)
        choices = [c for c in SWAPPABLE if c is not gate.cell_type]
        new.replace_gate(name, cell_type=choices[int(rng.integers(len(choices)))])
    if rewire:
        name = str(rng.choice(two_input))
        gate = next(g for g in new.gates if g.name == name)
        new.replace_gate(
            name, inputs=(new.primary_inputs[0], gate.inputs[1])
        )
    return new


def _gate(netlist, name):
    return next(g for g in netlist.gates if g.name == name)


def _assert_same_verdicts(scratch, merged):
    assert scratch.faults == merged.faults
    assert np.array_equal(scratch.detected, merged.detected)
    assert np.array_equal(scratch.first_detected, merged.first_detected)
    assert scratch.n_vectors == merged.n_vectors
    assert scratch.groups == merged.groups


# ----------------------------------------------------------------------
# Netlist versioning primitives
# ----------------------------------------------------------------------
class TestNetlistEditing:
    def test_copy_is_independent(self):
        base = builders.ripple_carry_adder(3)
        dup = base.copy()
        assert [g.name for g in dup.gates] == [g.name for g in base.gates]
        dup.replace_gate("fa0_x1", cell_type=CellType.AND)
        assert _gate(base, "fa0_x1").cell_type is CellType.XOR
        assert _gate(dup, "fa0_x1").cell_type is CellType.AND

    def test_copy_rename(self):
        base = builders.full_adder()
        assert base.copy("v2").name == "v2"
        assert base.copy().name == base.name

    def test_replace_gate_keeps_name_and_output(self):
        netlist = builders.full_adder()
        before = _gate(netlist, "x2")
        gate = netlist.replace_gate("x2", cell_type=CellType.XNOR)
        assert gate.name == "x2"
        assert gate.output == before.output
        assert gate.cell_type is CellType.XNOR

    def test_replace_gate_bumps_version(self):
        netlist = builders.full_adder()
        version = netlist.version
        netlist.replace_gate("x1", cell_type=CellType.OR)
        assert netlist.version != version

    def test_replace_gate_unknown_name(self):
        with pytest.raises(NetlistError, match="no gate named"):
            builders.full_adder().replace_gate("nope", cell_type=CellType.AND)

    def test_replace_gate_undriven_input(self):
        netlist = builders.full_adder()
        with pytest.raises(NetlistError, match="not driven"):
            netlist.replace_gate("x2", inputs=("ghost_net", "cin"))


# ----------------------------------------------------------------------
# Structural diff
# ----------------------------------------------------------------------
class TestDiff:
    def test_identical(self):
        base = builders.ripple_carry_adder(3)
        diff = diff_netlists(base, base.copy())
        assert diff.is_empty
        assert diff.n_changed_gates == 0
        assert diff.describe() == "identical"

    def test_modified(self):
        base = builders.ripple_carry_adder(3)
        new = base.copy()
        new.replace_gate("fa1_x2", cell_type=CellType.XNOR)
        diff = diff_netlists(base, new)
        assert diff.modified == ("fa1_x2",)
        assert not (diff.added or diff.removed or diff.io_changed)
        assert "fa1_x2" in diff.describe()

    def test_added_and_removed(self):
        old = builders.full_adder()
        new = builders.ripple_carry_adder(2)
        diff = diff_netlists(old, new)
        assert set(diff.removed) == {g.name for g in old.gates}
        assert set(diff.added) == {g.name for g in new.gates}
        assert diff.io_changed

    def test_io_change_only(self):
        old = builders.ripple_carry_adder(2)
        new = builders.ripple_carry_adder(2)
        new.primary_outputs = list(reversed(new.primary_outputs))
        assert diff_netlists(old, new).io_changed

    def test_dirty_outputs_localised(self):
        base = builders.ripple_carry_adder(4)
        new = base.copy()
        # Bit-0 sum XOR reaches only s0; the carry chain is untouched.
        new.replace_gate("fa0_x2", cell_type=CellType.XNOR)
        dirty = dirty_outputs(base, new, diff_netlists(base, new))
        assert dirty == frozenset({"fa0_s"})
        # A carry-chain edit dirties every downstream output.
        deep = base.copy()
        deep.replace_gate("fa0_o1", cell_type=CellType.NAND)
        dirty = dirty_outputs(base, deep, diff_netlists(base, deep))
        assert dirty == frozenset({"fa1_s", "fa2_s", "fa3_s", "fa3_cout"})


# ----------------------------------------------------------------------
# Bit-identity against from-scratch campaigns
# ----------------------------------------------------------------------
class TestIncrementalBitIdentity:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_single_gate_edits(self, seed):
        rng = np.random.default_rng(seed)
        base = builders.ripple_carry_adder(4)
        old = run_stuck_at_campaign(base)
        new = _random_edit(base, rng, n_gates=1)
        inc = incremental_stuck_at_campaign(base, new, old_result=old)
        assert not inc.scratch
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_multi_gate_edits(self, seed):
        rng = np.random.default_rng(100 + seed)
        base = builders.carry_lookahead_adder(3)
        old = run_stuck_at_campaign(base)
        new = _random_edit(base, rng, n_gates=3)
        inc = incremental_stuck_at_campaign(base, new, old_result=old)
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    @pytest.mark.parametrize("seed", range(3))
    def test_rewiring_changes_cone_membership(self, seed):
        # Rewiring an input both moves cones and changes the fault
        # universe itself (branch fault sites follow the connections).
        rng = np.random.default_rng(200 + seed)
        base = builders.ripple_carry_adder(4)
        old = run_stuck_at_campaign(base)
        new = _random_edit(base, rng, n_gates=1, rewire=True)
        inc = incremental_stuck_at_campaign(base, new, old_result=old)
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    def test_identical_netlists_reuse_everything(self):
        base = builders.ripple_carry_adder(3)
        old = run_stuck_at_campaign(base)
        inc = incremental_stuck_at_campaign(base, base.copy(), old_result=old)
        assert inc.diff.is_empty
        assert inc.n_resimulated_faults == 0
        assert inc.reuse_fraction == 1.0
        assert inc.result.n_simulated_runs == 0
        _assert_same_verdicts(old, inc.result)

    def test_shallow_edit_reuses_most_of_the_universe(self):
        base = builders.ripple_carry_adder(4)
        old = run_stuck_at_campaign(base)
        new = base.copy()
        # Bit-0 sum XOR reaches only s0: everything not feeding s0
        # (the other stages' gates and operand bits) keeps its verdict.
        new.replace_gate("fa0_x2", cell_type=CellType.XNOR)
        inc = incremental_stuck_at_campaign(base, new, old_result=old)
        assert inc.n_reused_faults > inc.n_resimulated_faults
        assert inc.result.n_simulated_runs < old.n_simulated_runs
        assert "incremental: reused" in inc.reason
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    def test_collapse_none_mode(self):
        base = builders.ripple_carry_adder(3)
        old = run_stuck_at_campaign(base, collapse="none")
        new = base.copy()
        new.replace_gate("fa1_a1", cell_type=CellType.NOR)
        inc = incremental_stuck_at_campaign(
            base, new, old_result=old, collapse="none"
        )
        assert inc.n_reused_faults > 0
        _assert_same_verdicts(
            run_stuck_at_campaign(new, collapse="none"), inc.result
        )

    def test_no_fault_dropping(self):
        base = builders.ripple_carry_adder(3)
        old = run_stuck_at_campaign(base, fault_dropping=False)
        new = base.copy()
        new.replace_gate("fa2_x1", cell_type=CellType.XNOR)
        inc = incremental_stuck_at_campaign(
            base, new, old_result=old, fault_dropping=False
        )
        _assert_same_verdicts(
            run_stuck_at_campaign(new, fault_dropping=False), inc.result
        )

    def test_sparse_remainder_path(self):
        base = builders.ripple_carry_adder(4)
        old = run_stuck_at_campaign(base)
        new = base.copy()
        new.replace_gate("fa1_x2", cell_type=CellType.XNOR)
        inc = incremental_stuck_at_campaign(
            base, new, old_result=old, sparse=True
        )
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)


# ----------------------------------------------------------------------
# Scope fallbacks
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_dominance_rejected(self):
        base = builders.full_adder()
        with pytest.raises(SimulationError, match="dominance"):
            incremental_stuck_at_campaign(
                base, base.copy(), collapse="dominance"
            )

    def test_io_change_falls_back_to_scratch(self):
        old = builders.ripple_carry_adder(2)
        new = builders.ripple_carry_adder(2)
        new.primary_outputs = list(reversed(new.primary_outputs))
        inc = incremental_stuck_at_campaign(
            old, new, old_result=run_stuck_at_campaign(old)
        )
        assert inc.scratch
        assert "I/O" in inc.reason
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    def test_missing_old_result_falls_back(self):
        base = builders.ripple_carry_adder(2)
        new = base.copy()
        new.replace_gate("fa0_x1", cell_type=CellType.OR)
        inc = incremental_stuck_at_campaign(base, new)
        assert inc.scratch
        assert "no old campaign result" in inc.reason
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    def test_partial_old_result_falls_back(self):
        base = builders.ripple_carry_adder(2)
        from repro.gates.faults import default_fault_universe

        partial = run_stuck_at_campaign(
            base, faults=list(default_fault_universe(base))[:5], collapse="none"
        )
        new = base.copy()
        new.replace_gate("fa1_x1", cell_type=CellType.OR)
        inc = incremental_stuck_at_campaign(base, new, old_result=partial)
        assert inc.scratch
        assert "exhaustive default universe" in inc.reason
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)


# ----------------------------------------------------------------------
# Store integration
# ----------------------------------------------------------------------
class TestStoreFlow:
    def test_old_result_found_in_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        base = builders.ripple_carry_adder(3)
        run_sharded_stuck_at_campaign(base, workers=1, store=store)
        new = base.copy()
        new.replace_gate("fa2_x2", cell_type=CellType.XNOR)
        inc = incremental_stuck_at_campaign(base, new, store=store)
        assert not inc.scratch
        assert inc.n_reused_faults > 0
        _assert_same_verdicts(run_stuck_at_campaign(new), inc.result)

    def test_merged_result_lands_in_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        base = builders.ripple_carry_adder(3)
        run_sharded_stuck_at_campaign(base, workers=1, store=store)
        new = base.copy()
        new.replace_gate("fa0_a2", cell_type=CellType.OR)
        inc = incremental_stuck_at_campaign(base, new, store=store)
        # The merged result sits under the regular campaign key: a
        # plain store-backed campaign over `new` is now a pure hit.
        hit = run_sharded_stuck_at_campaign(new, workers=1, store=store)
        assert hit.n_simulated_runs == inc.result.n_simulated_runs
        _assert_same_verdicts(hit, inc.result)

    def test_incremental_chain(self, tmp_path):
        # v1 -> v2 -> v3, each step reusing the previous merged result.
        store = ResultStore(str(tmp_path))
        v1 = builders.ripple_carry_adder(3)
        run_sharded_stuck_at_campaign(v1, workers=1, store=store)
        v2 = v1.copy()
        v2.replace_gate("fa0_x2", cell_type=CellType.XNOR)
        step1 = incremental_stuck_at_campaign(v1, v2, store=store)
        assert not step1.scratch
        v3 = v2.copy()
        v3.replace_gate("fa2_x2", cell_type=CellType.XNOR)
        step2 = incremental_stuck_at_campaign(v2, v3, store=store)
        assert not step2.scratch
        assert step2.n_reused_faults > 0
        _assert_same_verdicts(run_stuck_at_campaign(v3), step2.result)


class TestObservability:
    def test_event_emitted(self):
        from repro.obs import registry

        reg = registry()
        before = reg.counter_total("repro_events_total")
        base = builders.ripple_carry_adder(2)
        old = run_stuck_at_campaign(base)
        incremental_stuck_at_campaign(base, base.copy(), old_result=old)
        counters = reg.snapshot()["counters"]
        assert "repro_events_total{event=incremental_campaign}" in counters
        assert reg.counter_total("repro_events_total") > before
