"""Tests for repro.vm: ISA, programs, machine, compiler, optimizer."""

import pytest

from repro.apps.fir import FirSpec, fir_graph, fir_reference, make_input_streams
from repro.arch.alu import FaultableALU
from repro.arch.cell import effective_faulty_cells
from repro.codesign.sck_transform import enrich_with_sck
from repro.errors import CompilationError, SimulationError
from repro.vm.compiler import ERROR_FLAG_ADDR, compile_dfg
from repro.vm.isa import CYCLE_COST, Instruction, Opcode
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize
from repro.vm.program import ProgramBuilder


class TestIsaAndProgram:
    def test_every_opcode_has_cost(self):
        for opcode in Opcode:
            assert opcode in CYCLE_COST

    def test_register_range_checked(self):
        with pytest.raises(CompilationError):
            Instruction(Opcode.ADD, rd=32, ra=0, rb=1)

    def test_labels_resolve(self):
        builder = ProgramBuilder("t")
        builder.label("start").ldi(4, 1).jmp("end").label("end").halt()
        program = builder.build()
        assert program.resolve("end") == 2

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder("t")
        builder.jmp("nowhere")
        with pytest.raises(CompilationError):
            builder.build()

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder("t")
        builder.label("x")
        with pytest.raises(CompilationError):
            builder.label("x")

    def test_image_size_model(self):
        builder = ProgramBuilder("t", uses_sck_template=True)
        builder.halt()
        program = builder.build()
        plain = ProgramBuilder("t2").halt().build()
        assert program.image_bytes - plain.image_bytes == 4096

    def test_listing(self):
        program = ProgramBuilder("t").label("loop").ldi(4, 7).halt().build()
        listing = program.listing()
        assert "loop:" in listing and "ldi r4 7" in listing


class TestMachine:
    def test_arithmetic_program(self):
        builder = ProgramBuilder("calc")
        builder.ldi(4, 20).ldi(5, 22).add(6, 4, 5).mul(7, 6, 4).halt()
        result = Machine(16).run(builder.build())
        assert result.registers[6] == 42
        assert result.registers[7] == 840
        assert result.halted

    def test_memory_and_branches(self):
        builder = ProgramBuilder("loop")
        # sum mem[100..104] into r5
        builder.ldi(4, 0).ldi(5, 0).ldi(6, 5)
        builder.label("top")
        builder.ld(7, 4, offset=100).add(5, 5, 7).inc(4).blt(4, 6, "top")
        builder.st(4, 5, offset=200).halt()
        memory = {100 + i: i + 1 for i in range(5)}
        result = Machine(16).run(builder.build(), memory)
        assert result.memory[205] == 15

    def test_cycle_counting(self):
        builder = ProgramBuilder("t")
        builder.ldi(4, 1).mul(5, 4, 4).halt()
        result = Machine(16).run(builder.build())
        assert result.cycles == CYCLE_COST[Opcode.LDI] + CYCLE_COST[Opcode.MUL] + CYCLE_COST[Opcode.HALT]

    def test_runaway_guard(self):
        builder = ProgramBuilder("spin")
        builder.label("top").jmp("top")
        with pytest.raises(SimulationError):
            Machine(16, max_steps=100).run(builder.build())

    def test_faulty_alu_corrupts_software(self):
        builder = ProgramBuilder("t")
        builder.ldi(4, 19).ldi(5, 23).add(6, 4, 5).halt()
        alu = FaultableALU(16)
        alu.inject_fault("adder", effective_faulty_cells()[1], position=1)
        faulty = Machine(16, alu=alu).run(builder.build())
        clean = Machine(16).run(builder.build())
        assert clean.registers[6] == 42
        # The specific fault may or may not hit this operand pair; at
        # least the machine ran to completion either way.
        assert faulty.halted

    def test_division_semantics(self):
        builder = ProgramBuilder("d")
        builder.ldi(4, -7).ldi(5, 2).div(6, 4, 5).mod(7, 4, 5).halt()
        result = Machine(16).run(builder.build())
        assert result.registers[6] == -3
        assert result.registers[7] == -1


class TestCompiler:
    def make_fir(self, samples):
        spec = FirSpec()
        graph = fir_graph(spec)
        program, memory_map = compile_dfg(graph, len(samples))
        memory = {}
        for name, stream in make_input_streams(samples, spec).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        return spec, graph, program, memory_map, memory

    def test_fir_outputs_match_reference(self):
        samples = [1, -2, 3, 5, 0, -7, 4, 2]
        spec, graph, program, memory_map, memory = self.make_fir(samples)
        result = Machine(16).run(program, memory)
        base = memory_map.stream_for_output("y")
        outputs = [result.memory.get(base + k, 0) for k in range(len(samples))]
        assert outputs == fir_reference(samples, spec)

    def test_error_flag_clean_without_faults(self):
        samples = [1, 2, 3, 4]
        graph = enrich_with_sck(fir_graph())
        program, memory_map = compile_dfg(graph, len(samples))
        memory = {}
        for name, stream in make_input_streams(samples).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        result = Machine(16).run(program, memory)
        assert result.memory.get(ERROR_FLAG_ADDR, 0) == 0

    def test_error_flag_raised_under_fault(self):
        samples = list(range(1, 17))
        graph = enrich_with_sck(fir_graph())
        program, memory_map = compile_dfg(graph, len(samples))
        memory = {}
        for name, stream in make_input_streams(samples).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        raised = 0
        for cell in effective_faulty_cells()[:12]:
            alu = FaultableALU(16)
            alu.inject_fault("adder", cell, position=3)
            result = Machine(16, alu=alu).run(program, dict(memory))
            golden = Machine(16).run(program, dict(memory))
            base = memory_map.stream_for_output("y")
            wrong = any(
                result.memory.get(base + k, 0) != golden.memory.get(base + k, 0)
                for k in range(len(samples))
            )
            if result.memory.get(ERROR_FLAG_ADDR, 0):
                raised += 1
            elif wrong:
                pytest.fail(f"silent corruption escaped for {cell.fault.describe()}")
        assert raised > 0

    def test_sck_template_flag_detected(self):
        plain, _ = compile_dfg(fir_graph(), 4)
        checked, _ = compile_dfg(enrich_with_sck(fir_graph()), 4)
        assert not plain.uses_sck_template
        assert checked.uses_sck_template

    def test_bad_sample_count(self):
        with pytest.raises(CompilationError):
            compile_dfg(fir_graph(), 0)


class TestOptimizer:
    def _run(self, program, memory=None):
        return Machine(16).run(program, memory or {})

    def test_cse_removes_recomputation(self):
        builder = ProgramBuilder("t")
        builder.ldi(4, 3).ldi(5, 4)
        builder.add(6, 4, 5).add(7, 4, 5)  # same expression twice
        builder.st(2, 6, offset=10).st(2, 7, offset=11).halt()
        before = builder.build()
        after = optimize(before)
        adds = [i for i in after.instructions if i.opcode is Opcode.ADD]
        assert len(adds) == 1  # second ADD collapsed to a MOV
        assert self._run(after).memory[10] == 7
        assert self._run(after).memory[11] == 7

    def test_dce_removes_dead_code(self):
        builder = ProgramBuilder("t")
        builder.ldi(4, 3).ldi(5, 4).add(6, 4, 5)  # r6 never used
        builder.ldi(7, 9).st(2, 7, offset=10).halt()
        after = optimize(builder.build())
        opcodes = [i.opcode for i in after.instructions]
        assert Opcode.ADD not in opcodes

    def test_checks_survive_default_pipeline(self):
        """Paper 5.1: redundant check operations are not simplified."""
        graph = enrich_with_sck(fir_graph())
        program, _ = compile_dfg(graph, 16)
        optimized = optimize(program)
        counts_before = sum(
            1 for i in program.instructions if i.opcode is Opcode.CMPNE
        )
        counts_after = sum(
            1 for i in optimized.instructions if i.opcode is Opcode.CMPNE
        )
        assert counts_after == counts_before
        # Size shrink, if any, stays marginal (the paper: "almost
        # unmodified").
        assert len(optimized.instructions) > 0.85 * len(program.instructions)

    def test_algebraic_mode_destroys_checks(self):
        """An over-aggressive compiler folds (a+b)-a -> b, nullifying
        the inverse-operation check."""
        builder = ProgramBuilder("t")
        builder.ldi(4, 3).ldi(5, 4)
        builder.add(6, 4, 5)      # ris = a + b
        builder.sub(7, 6, 4)      # chk = ris - a
        builder.cmpne(8, 7, 5)    # err = chk != b
        builder.st(2, 8, offset=10).st(2, 6, offset=11).halt()
        aggressive = optimize(builder.build(), algebraic=True)
        opcodes = [i.opcode for i in aggressive.instructions]
        assert Opcode.SUB not in opcodes
        assert Opcode.CMPNE not in opcodes
        result = self._run(aggressive)
        assert result.memory[10] == 0  # constant-folded "no error"
        assert result.memory[11] == 7

    def test_optimized_program_equivalent(self):
        samples = [5, -3, 8, 1, 0, 2]
        spec = FirSpec()
        graph = fir_graph(spec)
        program, memory_map = compile_dfg(graph, len(samples))
        memory = {}
        for name, stream in make_input_streams(samples, spec).items():
            base = memory_map.stream_for_input(name)
            for k, v in enumerate(stream):
                memory[base + k] = v
        plain = Machine(16).run(program, dict(memory))
        optimized = Machine(16).run(optimize(program), dict(memory))
        base = memory_map.stream_for_output("y")
        for k in range(len(samples)):
            assert plain.memory.get(base + k) == optimized.memory.get(base + k)
        assert optimized.cycles <= plain.cycles
