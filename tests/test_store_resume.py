"""Crash/replay hardening of the checkpointed campaign runtime.

A "crash" is simulated with :func:`repro.store.shard_hook`: the hook
fires *before* each shard executes (execution turns sequential and
in-process while one is installed), so a hook that raises after ``k``
successful calls kills the run with exactly ``k`` shard checkpoints on
disk and no final artifact.  The replay assertions are the PR's
acceptance bar: the resumed run loads those ``k`` shards, re-executes
exactly ``n - k``, and the merged result is byte-identical to an
uninterrupted run.  A corrupted checkpoint is detected by its payload
checksum, discarded with a :class:`StoreCorruptionWarning`, and
transparently recomputed.
"""

import glob
import os

import numpy as np
import pytest

from repro.coverage.engine import evaluate_adder
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.store import (
    CheckpointReport,
    ResultStore,
    StoreCorruptionWarning,
    last_checkpoint_report,
    shard_hook,
)
from repro.tpg.dictionary import build_fault_dictionary


class Bomb(RuntimeError):
    """The simulated crash."""


def crash_after(k):
    """A shard hook that lets ``k`` shards complete, then raises."""
    state = {"completed": 0}

    def hook(index):
        if state["completed"] >= k:
            raise Bomb(f"simulated crash before shard {index}")
        state["completed"] += 1

    return hook


def counting_hook():
    """A benign hook recording which shard indices execute."""
    fired = []

    def hook(index):
        fired.append(index)

    return hook, fired


def campaign_fingerprint(result):
    """Every byte of a campaign result that the merge must reproduce."""
    return (
        result.netlist_name,
        tuple(result.faults),
        tuple(result.groups),
        np.asarray(result.detected).tobytes(),
        np.asarray(result.first_detected).tobytes(),
        result.n_vectors,
        result.n_simulated_runs,
    )


class TestCampaignCrashReplay:
    WORKERS = 4  # -> 4 fault-range shards

    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        reference = run_sharded_stuck_at_campaign(
            netlist, workers=self.WORKERS, store=False
        )
        store = ResultStore(tmp_path)

        k = 2
        with shard_hook(crash_after(k)):
            with pytest.raises(Bomb):
                run_sharded_stuck_at_campaign(
                    netlist, workers=self.WORKERS, store=store
                )
        # Exactly k shard checkpoints landed; no final artifact.
        assert len(store) == k

        hook, fired = counting_hook()
        with shard_hook(hook):
            resumed = run_sharded_stuck_at_campaign(
                netlist, workers=self.WORKERS, store=store
            )
        report = last_checkpoint_report()
        assert report == CheckpointReport(
            total=self.WORKERS, loaded=k, executed=self.WORKERS - k
        )
        assert len(fired) == self.WORKERS - k  # only the missing shards ran
        assert campaign_fingerprint(resumed) == campaign_fingerprint(reference)

    def test_third_run_is_a_pure_final_hit(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        store = ResultStore(tmp_path)
        with shard_hook(crash_after(1)):
            with pytest.raises(Bomb):
                run_sharded_stuck_at_campaign(
                    netlist, workers=self.WORKERS, store=store
                )
        resumed = run_sharded_stuck_at_campaign(
            netlist, workers=self.WORKERS, store=store
        )
        hits = store.stats.hits
        again = run_sharded_stuck_at_campaign(
            netlist, workers=self.WORKERS, store=store
        )
        assert store.stats.hits == hits + 1  # final key, no shard traffic
        assert campaign_fingerprint(again) == campaign_fingerprint(resumed)


class TestDictionaryCrashReplay:
    WORKERS = 4  # rca(4): 8 sweep words -> 4 word-range shards

    def test_killed_dictionary_build_resumes_byte_identical(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        reference = build_fault_dictionary(
            netlist, workers=self.WORKERS, store=False
        )
        store = ResultStore(tmp_path)

        k = 1
        with shard_hook(crash_after(k)):
            with pytest.raises(Bomb):
                build_fault_dictionary(netlist, workers=self.WORKERS, store=store)
        assert len(store) == k

        hook, fired = counting_hook()
        with shard_hook(hook):
            resumed = build_fault_dictionary(
                netlist, workers=self.WORKERS, store=store
            )
        report = last_checkpoint_report()
        assert report.loaded == k
        assert report.executed == report.total - k
        assert len(fired) == report.executed
        assert resumed.words.tobytes() == reference.words.tobytes()
        assert resumed.words.dtype == reference.words.dtype
        assert resumed.faults == reference.faults
        assert resumed.groups == reference.groups


class TestGateSweepCrashReplay:
    def test_killed_evaluator_resumes_and_matches_plain_run(self, tmp_path):
        plain = evaluate_adder(3, workers=2, store=False)

        # Learn the total shard count from a clean checkpointed run.
        hook, fired = counting_hook()
        with shard_hook(hook):
            clean = evaluate_adder(3, workers=2, store=ResultStore(tmp_path / "a"))
        total = len(fired)
        assert total >= 2
        assert clean == plain

        k = 1
        store = ResultStore(tmp_path / "b")
        with shard_hook(crash_after(k)):
            with pytest.raises(Bomb):
                evaluate_adder(3, workers=2, store=store)

        hook, fired = counting_hook()
        with shard_hook(hook):
            resumed = evaluate_adder(3, workers=2, store=store)
        assert len(fired) == total - k  # exactly n - k shards re-execute
        assert resumed == plain


class TestCorruptedCheckpoint:
    def _corrupt_one_checkpoint(self, store, kind):
        payloads = sorted(
            glob.glob(os.path.join(store.root, "objects", kind, "*.npz"))
        )
        assert payloads, "expected shard checkpoints on disk"
        with open(payloads[0], "wb") as handle:
            handle.write(b"not an npz payload")
        return payloads[0]

    def test_corrupt_checkpoint_is_discarded_and_recomputed(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        reference = run_sharded_stuck_at_campaign(netlist, workers=4, store=False)
        store = ResultStore(tmp_path)
        k = 2
        with shard_hook(crash_after(k)):
            with pytest.raises(Bomb):
                run_sharded_stuck_at_campaign(netlist, workers=4, store=store)

        corrupted = self._corrupt_one_checkpoint(store, "campaign")
        store.clear_lru()  # force the resume through the disk path

        with pytest.warns(StoreCorruptionWarning, match="corrupt"):
            resumed = run_sharded_stuck_at_campaign(netlist, workers=4, store=store)
        report = last_checkpoint_report()
        # One of the k checkpoints was bad: detected, discarded, re-run.
        assert report == CheckpointReport(total=4, loaded=k - 1, executed=4 - k + 1)
        assert store.stats.corrupt == 1
        assert campaign_fingerprint(resumed) == campaign_fingerprint(reference)
        # The corrupt payload was replaced by the recomputed shard.
        assert os.path.exists(corrupted)
        store.clear_lru()
        final = run_sharded_stuck_at_campaign(netlist, workers=4, store=store)
        assert store.stats.corrupt == 1  # no further corruption events
        assert campaign_fingerprint(final) == campaign_fingerprint(reference)
