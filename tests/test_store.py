"""Property tests of the content-addressed result store.

Key discipline: every input that changes a campaign's numbers --
netlist structure, fault-universe order, backend, test space, method,
parameters -- must produce a distinct key, while semantically identical
inputs (the same netlist rebuilt from scratch, the same campaign under
any shard grid) must produce identical keys.  Artifacts round-trip
through the filesystem bit-identically, and a store-loaded dictionary
merges bit-identically with a live-built one (the regression guarding
:meth:`FaultDictionary.merge` against fresh-in-memory assumptions).
"""

import os

import numpy as np
import pytest

from repro.coverage.engine import evaluate_adder
from repro.errors import SimulationError
from repro.faults.injector import run_sharded_stuck_at_campaign
from repro.gates import builders
from repro.gates.faults import default_fault_universe
from repro.store import (
    SCHEMA_VERSION,
    CacheKey,
    ResultStore,
    StoreCorruptionWarning,
    digest_faults,
    digest_netlist,
    digest_params,
    digest_test_space,
    open_store,
    resolve_store,
)
from repro.store.store import STORE_DIR_ENV, STORE_ENV
from repro.tpg.dictionary import FaultDictionary, TestSpace, build_fault_dictionary
from repro.tpg.generate import unit_netlist, unit_space, unit_test_set


def _key(**overrides):
    fields = dict(
        kind="campaign",
        netlist="n" * 8,
        universe="u" * 8,
        space="s" * 8,
        method="stuck_at",
        backend="fused",
    )
    fields.update(overrides)
    return CacheKey(**fields)


# ----------------------------------------------------------------------
# Digest properties
# ----------------------------------------------------------------------
class TestDigests:
    def test_rebuilt_netlist_digests_equal(self):
        # Content, not identity: two independent builds hash the same.
        a = builders.ripple_carry_adder(4)
        b = builders.ripple_carry_adder(4)
        assert a is not b
        assert digest_netlist(a) == digest_netlist(b)

    def test_netlist_mutation_changes_digest(self):
        # Same declared name, different structure -> different digest.
        rca = builders.ripple_carry_adder(3, name="same")
        cla = builders.carry_lookahead_adder(3, name="same")
        assert digest_netlist(rca) != digest_netlist(cla)

    def test_netlist_width_changes_digest(self):
        assert digest_netlist(builders.ripple_carry_adder(3)) != digest_netlist(
            builders.ripple_carry_adder(4)
        )

    def test_fault_universe_reorder_changes_digest(self):
        faults = default_fault_universe(builders.ripple_carry_adder(3))
        reordered = faults[1:] + faults[:1]
        assert digest_faults(faults) != digest_faults(reordered)
        assert digest_faults(faults) == digest_faults(tuple(faults))

    def test_fault_subset_and_value_change_digests(self):
        faults = default_fault_universe(builders.ripple_carry_adder(3))
        assert digest_faults(faults) != digest_faults(faults[:-1])
        flipped = (faults[0].__class__(faults[0].site, 1 - faults[0].value),)
        assert digest_faults(faults[:1]) != digest_faults(flipped)

    def test_test_space_change_changes_digest(self):
        netlist = unit_netlist("div", 3)
        constrained = unit_space("div", 3)
        full = TestSpace.full(netlist)
        assert digest_test_space(constrained) != digest_test_space(full)
        # Dropping the non-zero-divisor constraint alone changes the key.
        relaxed = TestSpace(
            netlist, constrained.free_inputs, constrained.constants, None
        )
        assert digest_test_space(constrained) != digest_test_space(relaxed)
        # The same space rebuilt digests equal.
        again = TestSpace(
            netlist,
            constrained.free_inputs,
            constrained.constants,
            constrained.nonzero_field,
        )
        assert digest_test_space(constrained) == digest_test_space(again)

    def test_params_digest_is_order_insensitive(self):
        assert digest_params(a=1, b=2) == digest_params(b=2, a=1)
        assert digest_params(a=1) != digest_params(a=2)


class TestCacheKey:
    def test_backend_change_changes_key(self):
        assert _key(backend="fused").digest != _key(backend="python_loop").digest

    def test_every_field_is_load_bearing(self):
        base = _key()
        assert base.digest != _key(kind="dictionary").digest
        assert base.digest != _key(netlist="m" * 8).digest
        assert base.digest != _key(universe="v" * 8).digest
        assert base.digest != _key(space="t" * 8).digest
        assert base.digest != _key(method="other").digest
        assert base.digest != _key(params="p" * 8).digest

    def test_schema_version_invalidates(self):
        assert _key().digest != _key(schema=SCHEMA_VERSION + 1).digest

    def test_shard_scoping(self):
        base = _key()
        assert base.with_shard(0, 10).digest != base.digest
        assert base.with_shard(0, 10).digest != base.with_shard(10, 20).digest
        assert base.with_shard(0, 10) == base.with_shard(0, 10)

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError, match="netlist"):
            _key(netlist="")


# ----------------------------------------------------------------------
# Save/load round-trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_campaign_result_round_trip(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        result = run_sharded_stuck_at_campaign(netlist, workers=1)
        store = ResultStore(tmp_path)
        key = _key()
        store.put(key, result)
        store.clear_lru()  # force the disk path
        loaded = store.get(key)
        assert loaded is not result
        assert loaded.netlist_name == result.netlist_name
        assert loaded.faults == tuple(result.faults)
        assert loaded.groups == tuple(result.groups)
        assert np.asarray(loaded.detected).tobytes() == np.asarray(
            result.detected
        ).tobytes()
        assert np.asarray(loaded.first_detected).tobytes() == np.asarray(
            result.first_detected
        ).tobytes()
        assert loaded.n_vectors == result.n_vectors
        assert loaded.n_simulated_runs == result.n_simulated_runs

    def test_dictionary_round_trip(self, tmp_path):
        netlist = builders.ripple_carry_adder(3)
        dictionary = build_fault_dictionary(netlist, workers=1)
        store = ResultStore(tmp_path)
        key = _key(kind="dictionary")
        store.put(key, dictionary)
        store.clear_lru()
        loaded = store.get(key)
        assert loaded.faults == dictionary.faults
        assert loaded.groups == dictionary.groups
        assert loaded.words.dtype == dictionary.words.dtype
        assert loaded.words.tobytes() == dictionary.words.tobytes()
        assert loaded.vector_base == dictionary.vector_base
        assert loaded.backend == dictionary.backend

    def test_compact_set_round_trip(self, tmp_path):
        compact = unit_test_set("add", 3)
        store = ResultStore(tmp_path)
        key = _key(kind="compact")
        store.put(key, compact)
        store.clear_lru()
        loaded = store.get(key)
        assert loaded.netlist_name == compact.netlist_name
        assert loaded.input_names == tuple(compact.input_names)
        assert np.asarray(loaded.vectors).tobytes() == np.asarray(
            compact.vectors
        ).tobytes()
        assert loaded.faults == tuple(compact.faults)
        assert tuple(loaded.marginal) == tuple(compact.marginal)
        assert loaded.source == compact.source

    def test_coverage_stats_round_trip(self, tmp_path):
        stats = evaluate_adder(3, workers=1)
        store = ResultStore(tmp_path)
        key = _key(kind="coverage")
        store.put(key, stats)
        store.clear_lru()
        loaded = store.get(key)
        assert loaded == stats
        assert list(loaded) == list(stats)  # technique order preserved

    def test_provenance_recorded(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key()
        store.put(key, np.arange(4, dtype=np.uint64), {"workers": 3})
        record = store.provenance(key)
        assert record["schema"] == SCHEMA_VERSION
        assert record["key"] == key.to_dict()
        assert record["provenance"]["workers"] == 3
        assert record["payload_checksum"]


# ----------------------------------------------------------------------
# Grid invariance: the final artifact key is shard-free
# ----------------------------------------------------------------------
class TestGridInvariance:
    def test_campaign_final_key_invariant_to_worker_count(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        first = ResultStore(tmp_path)
        a = run_sharded_stuck_at_campaign(netlist, workers=3, store=first)
        # A different shard grid on a fresh store handle must *hit* the
        # same final entry -- never recompute, never re-put.
        second = ResultStore(tmp_path)
        b = run_sharded_stuck_at_campaign(netlist, workers=2, store=second)
        assert second.stats.hits == 1
        assert second.stats.puts == 0
        assert np.asarray(a.detected).tobytes() == np.asarray(b.detected).tobytes()
        assert np.asarray(a.first_detected).tobytes() == np.asarray(
            b.first_detected
        ).tobytes()

    def test_dictionary_final_key_invariant_to_worker_count(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        first = ResultStore(tmp_path)
        a = build_fault_dictionary(netlist, workers=4, store=first)
        second = ResultStore(tmp_path)
        b = build_fault_dictionary(netlist, workers=2, store=second)
        assert second.stats.hits == 1 and second.stats.puts == 0
        assert a.words.tobytes() == b.words.tobytes()

    def test_store_result_matches_plain_result(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)
        # store=False keeps this reference run store-free even when an
        # ambient REPRO_STORE is active (e.g. CI's warm tier-1 leg).
        plain = run_sharded_stuck_at_campaign(netlist, workers=2, store=False)
        stored = run_sharded_stuck_at_campaign(
            netlist, workers=2, store=ResultStore(tmp_path)
        )
        assert np.asarray(plain.detected).tobytes() == np.asarray(
            stored.detected
        ).tobytes()
        assert plain.groups == stored.groups
        assert plain.n_simulated_runs == stored.n_simulated_runs


# ----------------------------------------------------------------------
# Merge regression: store-loaded and live-built shards interchange
# ----------------------------------------------------------------------
class TestStoreLoadedMerge:
    def _split(self, dictionary, word_split):
        head = FaultDictionary(
            netlist_name=dictionary.netlist_name,
            faults=dictionary.faults,
            groups=dictionary.groups,
            words=dictionary.words[:, :word_split],
            n_vectors=word_split * 64,
            vector_base=0,
            backend=dictionary.backend,
        )
        tail = FaultDictionary(
            netlist_name=dictionary.netlist_name,
            faults=dictionary.faults,
            groups=dictionary.groups,
            words=dictionary.words[:, word_split:],
            n_vectors=dictionary.n_vectors - word_split * 64,
            vector_base=word_split * 64,
            backend=dictionary.backend,
        )
        return head, tail

    def test_store_loaded_part_merges_bit_identically(self, tmp_path):
        netlist = builders.ripple_carry_adder(4)  # 9 inputs, 8 sweep words
        full = build_fault_dictionary(netlist, workers=1)
        head, tail = self._split(full, 4)
        store = ResultStore(tmp_path)
        store.put(_key(kind="dictionary"), tail)
        store.clear_lru()
        loaded_tail = store.get(_key(kind="dictionary"))
        merged = FaultDictionary.merge([head, loaded_tail])
        assert merged.words.tobytes() == full.words.tobytes()
        assert merged.words.dtype == full.words.dtype
        assert merged.faults == full.faults
        assert merged.groups == full.groups
        assert merged.n_vectors == full.n_vectors
        assert merged.backend == full.backend

    def test_merge_rejects_mismatched_netlist(self):
        a = build_fault_dictionary(builders.ripple_carry_adder(4), workers=1)
        head, tail = self._split(a, 4)
        renamed = FaultDictionary(
            netlist_name="other",
            faults=tail.faults,
            groups=tail.groups,
            words=tail.words,
            n_vectors=tail.n_vectors,
            vector_base=tail.vector_base,
            backend=tail.backend,
        )
        with pytest.raises(SimulationError, match="netlist"):
            FaultDictionary.merge([head, renamed])

    def test_merge_rejects_mismatched_groups(self):
        a = build_fault_dictionary(builders.ripple_carry_adder(4), workers=1)
        head, tail = self._split(a, 4)
        regrouped = FaultDictionary(
            netlist_name=tail.netlist_name,
            faults=tail.faults,
            groups=tuple((i,) for i in range(len(tail.faults))),
            words=tail.words,
            n_vectors=tail.n_vectors,
            vector_base=tail.vector_base,
            backend=tail.backend,
        )
        with pytest.raises(SimulationError, match="equivalence groups"):
            FaultDictionary.merge([head, regrouped])

    def test_merge_records_mixed_backends(self):
        a = build_fault_dictionary(builders.ripple_carry_adder(4), workers=1)
        head, tail = self._split(a, 4)
        other = FaultDictionary(
            netlist_name=tail.netlist_name,
            faults=tail.faults,
            groups=tail.groups,
            words=tail.words,
            n_vectors=tail.n_vectors,
            vector_base=tail.vector_base,
            backend="python_loop" if head.backend != "python_loop" else "fused",
        )
        merged = FaultDictionary.merge([head, other])
        assert merged.backend == "mixed"
        assert merged.words.tobytes() == a.words.tobytes()


# ----------------------------------------------------------------------
# Store mechanics
# ----------------------------------------------------------------------
class TestStoreMechanics:
    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        store = ResultStore(tmp_path, lru_size=2)
        keys = [_key(netlist=f"n{i}" * 4) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, np.full(3, i, dtype=np.int64))
        assert len(store._lru) == 2
        # The evicted entry still loads (disk hit, not an LRU hit).
        lru_hits = store.stats.lru_hits
        value = store.get(keys[0])
        assert value is not None and int(value[0]) == 0
        assert store.stats.lru_hits == lru_hits

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key()
        assert key not in store
        store.put(key, np.arange(2))
        assert key in store
        assert len(store) == 1

    def test_corrupt_sidecar_is_discarded_with_warning(self, tmp_path):
        store = ResultStore(tmp_path)
        key = _key()
        store.put(key, np.arange(8, dtype=np.uint64))
        _, json_path = store.paths(key)
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        store.clear_lru()
        with pytest.warns(StoreCorruptionWarning):
            assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(json_path)

    def test_resolve_store_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert resolve_store(None) is None  # off by default
        monkeypatch.setenv(STORE_ENV, "0")
        assert resolve_store(None) is None
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "by-path"))
        by_path = resolve_store(None)
        assert by_path is not None
        assert by_path.root == str(tmp_path / "by-path")
        monkeypatch.setenv(STORE_ENV, "1")
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "by-flag"))
        by_flag = resolve_store(None)
        assert by_flag.root == str(tmp_path / "by-flag")
        # An explicit store=False keeps the store off despite the env.
        assert resolve_store(False) is None

    def test_open_store_is_shared_per_path(self, tmp_path):
        a = open_store(tmp_path / "shared")
        b = open_store(tmp_path / "shared")
        assert a is b
        explicit = resolve_store(tmp_path / "shared")
        assert explicit is a
