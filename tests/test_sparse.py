"""The cone-sparse execution tier: schedules, kernels, campaigns.

Three layers of bit-identity, differentially against the dense paths:

* structural -- gate cones match brute-force reachability, and every
  sparse schedule covers each member fault's full cone with an
  ascending (topological) gate list;
* kernel -- ``run_detect_sparse`` equals ``run_detect`` element-wise on
  every registered backend, for every batch of a real schedule;
* campaign -- ``sparse=True`` campaigns equal dense campaigns in every
  verdict field (``n_simulated_runs`` is a work counter and is the one
  field allowed to differ), across backends, collapse modes, the four
  paper units and the Table 2 test architectures.

Plus the decision layer: :func:`repro.gates.tune.resolve_sparse`
precedence (keyword > ``REPRO_SPARSE`` env > cone-density heuristic)
and the skip/early-exit observability counters.
"""

import numpy as np
import pytest

from repro.analysis.cones import analyze_cones, analyze_gate_cones
from repro.arch.testbench import table2_architecture
from repro.errors import SimulationError
from repro.gates import builders
from repro.gates.backends import create_backend, list_backends
from repro.gates.backends.plan import OverridePlan
from repro.gates.compile import compile_netlist
from repro.gates.engine import exhaustive_words, run_stuck_at_campaign
from repro.gates.faults import default_fault_universe
from repro.gates.sparse import build_schedule, fault_cone_mask
from repro.gates.tune import (
    SPARSE_DENSITY_MAX,
    SPARSE_ENV,
    SPARSE_MIN_WORDS,
    backend_supports_sparse,
    resolve_sparse,
)
from repro.obs import registry
from repro.tpg.dictionary import build_fault_dictionary
from repro.tpg.generate import unit_netlist, unit_test_set

ALL_BACKENDS = list_backends()
FAST_BACKENDS = tuple(n for n in ALL_BACKENDS if n != "reference")
UNITS = ("add", "sub", "mul", "div")


def _assert_same_verdicts(dense, sparse):
    """Every campaign field except the n_simulated_runs work counter."""
    assert dense.netlist_name == sparse.netlist_name
    assert dense.faults == sparse.faults
    assert np.array_equal(dense.detected, sparse.detected)
    assert np.array_equal(dense.first_detected, sparse.first_detected)
    assert dense.n_vectors == sparse.n_vectors
    assert dense.groups == sparse.groups


# ----------------------------------------------------------------------
# Gate-cone analysis
# ----------------------------------------------------------------------
def _brute_cone(netlist, start_net):
    """Gate names transitively reading ``start_net``, by graph walk."""
    reach = set()
    frontier = [start_net]
    while frontier:
        net = frontier.pop()
        for reader, _pin in netlist.fanout(net):
            if reader.name not in reach:
                reach.add(reader.name)
                frontier.append(reader.output)
    return reach


class TestGateCones:
    @pytest.mark.parametrize(
        "make",
        [
            builders.full_adder,
            lambda: builders.ripple_carry_adder(4),
            lambda: builders.carry_lookahead_adder(3),
        ],
    )
    def test_gate_cones_match_brute_force(self, make):
        netlist = make()
        cones = analyze_gate_cones(netlist)
        for gate in netlist.gates:
            assert set(cones.cone_of(gate.name)) == _brute_cone(
                netlist, gate.output
            )

    def test_net_cones_include_readers(self):
        netlist = builders.ripple_carry_adder(3)
        cones = analyze_gate_cones(netlist)
        for net in netlist.nets:
            readers = {g.name for g, _pin in netlist.fanout(net)}
            cone = set(cones.net_cone(net))
            assert readers <= cone
            assert cone == readers | _brute_cone(netlist, net)

    def test_ranking_and_density(self):
        netlist = builders.ripple_carry_adder(4)
        cones = analyze_gate_cones(netlist)
        ranked = cones.ranking()
        assert len(ranked) == cones.n_gates
        sizes = [
            int(cones.gate_cone_sizes[list(cones.gate_names).index(n)])
            for n in ranked
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert 0.0 < cones.mean_cone_fraction < 1.0

    def test_store_roundtrip(self, tmp_path):
        from repro.store import ResultStore

        netlist = builders.ripple_carry_adder(3)
        store = ResultStore(str(tmp_path))
        first = analyze_gate_cones(netlist, store=store)
        # The in-process memo is identity-keyed; a structural copy misses
        # it, so the second call must come back through the store.
        second = analyze_gate_cones(netlist.copy(), store=store)
        assert np.array_equal(first.gate_masks, second.gate_masks)
        assert np.array_equal(first.net_cone_masks, second.net_cone_masks)
        assert first.mean_cone_fraction == second.mean_cone_fraction


# ----------------------------------------------------------------------
# Schedule invariants
# ----------------------------------------------------------------------
class TestSchedule:
    @pytest.mark.parametrize("fault_chunk", [4, 16, 1000])
    def test_covers_every_cone_ascending(self, fault_chunk):
        netlist = unit_netlist("add", 4)
        compiled = compile_netlist(netlist)
        gate_cones = analyze_gate_cones(netlist)
        cones = analyze_cones(netlist)
        universe = default_fault_universe(netlist)
        sched = build_schedule(
            compiled, list(universe), fault_chunk, gate_cones, cones
        )
        assert sched.n_groups == len(universe)
        assert sched.n_gates == compiled.n_gates
        seen = set()
        for batch in sched.batches:
            assert len(batch.members) <= fault_chunk
            gates = batch.gates
            assert np.all(np.diff(gates) > 0)  # ascending == topological
            gate_set = {int(g) for g in gates}
            for m in batch.members:
                assert m not in seen
                seen.add(m)
                mask = fault_cone_mask(compiled, gate_cones, universe[m])
                bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
                member_cone = {
                    int(i)
                    for i in np.nonzero(bits)[0]
                    if i < compiled.n_gates
                }
                assert member_cone <= gate_set
        assert seen == set(range(len(universe)))

    def test_out_ids_are_reachable_outputs(self):
        netlist = unit_netlist("add", 3)
        compiled = compile_netlist(netlist)
        gate_cones = analyze_gate_cones(netlist)
        cones = analyze_cones(netlist)
        universe = default_fault_universe(netlist)
        sched = build_schedule(compiled, list(universe), 8, gate_cones, cones)
        all_outputs = {int(i) for i in compiled.output_ids}
        for batch in sched.batches:
            assert set(batch.out_ids) <= all_outputs
        # Without reach restriction every batch reduces over all outputs.
        full = build_schedule(compiled, list(universe), 8, gate_cones, None)
        for batch in full.batches:
            assert set(batch.out_ids) == all_outputs

    def test_density_matches_analysis_scale(self):
        netlist = builders.ripple_carry_adder(4)
        compiled = compile_netlist(netlist)
        gate_cones = analyze_gate_cones(netlist)
        universe = default_fault_universe(netlist)
        sched = build_schedule(compiled, list(universe), 16, gate_cones, None)
        assert 0.0 < sched.cone_density < 1.0


# ----------------------------------------------------------------------
# Kernel-level bit-identity across the registry
# ----------------------------------------------------------------------
class TestKernelDifferential:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("unit", UNITS)
    def test_run_detect_sparse_equals_dense(self, backend, unit):
        netlist = unit_netlist(unit, 3)
        compiled = compile_netlist(netlist)
        impl = create_backend(backend, compiled)
        packed = exhaustive_words(compiled.n_inputs)
        universe = default_fault_universe(netlist)
        gate_cones = analyze_gate_cones(netlist)
        cones = analyze_cones(netlist)
        sched = build_schedule(compiled, list(universe), 16, gate_cones, cones)
        for batch in sched.batches:
            faults = [universe[m] for m in batch.members]
            plan = OverridePlan(compiled, faults)
            dense = impl.run_detect(packed.words, plan, len(faults))
            sparse = impl.run_detect_sparse(
                packed.words, plan, len(faults), batch.gates, batch.out_ids
            )
            assert np.array_equal(dense, sparse)

    def test_base_fallback_on_unsupported_backend(self):
        # python_loop has no sparse kernels: the base-class default must
        # still accept a schedule and produce dense-identical words.
        assert not backend_supports_sparse("python_loop")
        netlist = builders.full_adder()
        compiled = compile_netlist(netlist)
        impl = create_backend("python_loop", compiled)
        packed = exhaustive_words(compiled.n_inputs)
        universe = default_fault_universe(netlist)
        gate_cones = analyze_gate_cones(netlist)
        sched = build_schedule(compiled, list(universe), 8, gate_cones, None)
        batch = sched.batches[0]
        faults = [universe[m] for m in batch.members]
        plan = OverridePlan(compiled, faults)
        assert np.array_equal(
            impl.run_detect(packed.words, plan, len(faults)),
            impl.run_detect_sparse(
                packed.words, plan, len(faults), batch.gates, batch.out_ids
            ),
        )


# ----------------------------------------------------------------------
# Campaign-level bit-identity
# ----------------------------------------------------------------------
class TestCampaignEquivalence:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("unit", UNITS)
    def test_unit_campaigns(self, backend, unit):
        netlist = unit_netlist(unit, 3)
        dense = run_stuck_at_campaign(netlist, backend=backend, sparse=False)
        sparse = run_stuck_at_campaign(netlist, backend=backend, sparse=True)
        _assert_same_verdicts(dense, sparse)

    @pytest.mark.parametrize("unit", ("add", "sub"))
    def test_unit_campaigns_width4(self, unit):
        netlist = unit_netlist(unit, 4)
        _assert_same_verdicts(
            run_stuck_at_campaign(netlist, sparse=False),
            run_stuck_at_campaign(netlist, sparse=True),
        )

    @pytest.mark.parametrize("collapse", ["equivalence", "none", "dominance"])
    def test_collapse_modes(self, collapse):
        netlist = builders.ripple_carry_adder(4)
        _assert_same_verdicts(
            run_stuck_at_campaign(netlist, collapse=collapse, sparse=False),
            run_stuck_at_campaign(netlist, collapse=collapse, sparse=True),
        )

    def test_no_fault_dropping(self):
        netlist = builders.carry_lookahead_adder(3)
        _assert_same_verdicts(
            run_stuck_at_campaign(netlist, fault_dropping=False, sparse=False),
            run_stuck_at_campaign(netlist, fault_dropping=False, sparse=True),
        )

    @pytest.mark.parametrize("operator", UNITS)
    def test_table2_architectures(self, operator):
        arch = table2_architecture(operator, 3)
        _assert_same_verdicts(
            run_stuck_at_campaign(arch.netlist, sparse=False),
            run_stuck_at_campaign(arch.netlist, sparse=True),
        )

    def test_odd_chunk_geometry(self):
        netlist = builders.ripple_carry_adder(5)
        for word_chunk, fault_chunk in ((1, 3), (2, 7), (512, 1)):
            _assert_same_verdicts(
                run_stuck_at_campaign(
                    netlist,
                    word_chunk=word_chunk,
                    fault_chunk=fault_chunk,
                    sparse=False,
                ),
                run_stuck_at_campaign(
                    netlist,
                    word_chunk=word_chunk,
                    fault_chunk=fault_chunk,
                    sparse=True,
                ),
            )

    def test_partial_vector_set(self):
        netlist = builders.ripple_carry_adder(4)
        rng = np.random.default_rng(11)
        inputs = {
            name: rng.integers(0, 2, 97, dtype=np.uint8)
            for name in netlist.primary_inputs
        }
        _assert_same_verdicts(
            run_stuck_at_campaign(netlist, inputs=inputs, sparse=False),
            run_stuck_at_campaign(netlist, inputs=inputs, sparse=True),
        )


class TestSparseEnvForcing:
    """REPRO_SPARSE=1 must be a safe global lever on every build path."""

    def test_dictionary_bit_identical(self, monkeypatch):
        netlist = unit_netlist("add", 3)
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        base = build_fault_dictionary(netlist)
        monkeypatch.setenv(SPARSE_ENV, "1")
        forced = build_fault_dictionary(netlist)
        assert base.faults == forced.faults
        assert np.array_equal(base.words, forced.words)
        assert base.groups == forced.groups

    def test_compact_test_set_identical(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        base = unit_test_set("add", 3)
        monkeypatch.setenv(SPARSE_ENV, "1")
        forced = unit_test_set("add", 3)
        assert len(base.vectors) == len(forced.vectors)
        for left, right in zip(base.vectors, forced.vectors):
            assert np.array_equal(left, right)
        assert np.array_equal(base.detected, forced.detected)


# ----------------------------------------------------------------------
# The sparse/dense decision
# ----------------------------------------------------------------------
class TestResolveSparse:
    def test_backend_support_flags(self):
        assert backend_supports_sparse("fused")
        assert backend_supports_sparse("threaded")
        assert not backend_supports_sparse("python_loop")
        assert not backend_supports_sparse("reference")

    def test_heuristic_prefers_sparse_on_low_density(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        netlist = builders.ripple_carry_adder(8)
        plan = resolve_sparse(netlist, "fused")
        assert plan.sparse
        assert plan.source == "sparse-model"
        assert plan.cone_density is not None
        assert plan.cone_density <= SPARSE_DENSITY_MAX
        assert "cone fraction" in plan.reason

    def test_heuristic_dense_on_small_vector_space(self, monkeypatch):
        # RCA-4 has 9 inputs -> 8 words: the slab early exit has no
        # word-dimension room, so the model must stay dense.
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        plan = resolve_sparse(builders.ripple_carry_adder(4), "fused")
        assert not plan.sparse
        assert plan.source == "sparse-model"
        assert f"< {SPARSE_MIN_WORDS}" in plan.reason
        big = resolve_sparse(
            builders.ripple_carry_adder(4), "fused", n_words=SPARSE_MIN_WORDS
        )
        assert big.sparse

    def test_heuristic_dense_without_kernels(self, monkeypatch):
        monkeypatch.delenv(SPARSE_ENV, raising=False)
        plan = resolve_sparse(builders.ripple_carry_adder(4), "python_loop")
        assert not plan.sparse
        assert "no sparse kernels" in plan.reason

    def test_env_beats_heuristic(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV, "1")
        plan = resolve_sparse(builders.ripple_carry_adder(4), "python_loop")
        assert plan.sparse and plan.source == "sparse-env"
        monkeypatch.setenv(SPARSE_ENV, "0")
        plan = resolve_sparse(builders.ripple_carry_adder(4), "fused")
        assert not plan.sparse and plan.source == "sparse-env"

    def test_keyword_beats_env(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV, "0")
        plan = resolve_sparse(
            builders.ripple_carry_adder(4), "fused", sparse=True
        )
        assert plan.sparse and plan.source == "sparse-explicit"

    def test_invalid_env_errors(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV, "maybe")
        with pytest.raises(SimulationError, match=SPARSE_ENV):
            resolve_sparse(builders.ripple_carry_adder(4), "fused")

    def test_forced_sparse_on_unsupported_backend_still_correct(self):
        # The tier is an optimisation: forcing it where no sparse
        # kernels exist must degrade to dense, not break.
        netlist = builders.ripple_carry_adder(3)
        _assert_same_verdicts(
            run_stuck_at_campaign(netlist, backend="python_loop", sparse=False),
            run_stuck_at_campaign(netlist, backend="python_loop", sparse=True),
        )


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestSparseObservability:
    def test_skip_counter_advances(self):
        # RCA-8 is wide enough that the post-probe slabs re-schedule
        # the surviving faults under tighter union cones -- those calls
        # must report skipped gates.
        reg = registry()
        before = reg.counter_total("repro_sparse_gates_skipped_total")
        run_stuck_at_campaign(
            builders.ripple_carry_adder(8), backend="fused", sparse=True
        )
        after = reg.counter_total("repro_sparse_gates_skipped_total")
        assert after > before

    def test_decision_is_logged(self):
        from repro.gates.tune import clear_plan_log, plan_log

        clear_plan_log()
        run_stuck_at_campaign(builders.full_adder(), sparse=True)
        sparse_plans = [
            p for p in plan_log() if p.source.startswith("sparse")
        ]
        assert sparse_plans
        assert sparse_plans[-1].sparse
        assert sparse_plans[-1].cone_density is not None
