"""Static-analysis subsystem: lint rules, cones, collapsing, SCOAP.

The collapsing tests are *differential*: dominance- and
equivalence-collapsed campaigns must expand back bit-identical to the
flat (uncollapsed) run -- per-fault detection verdicts, coverage stats
and campaign classifications -- across the execution-backend registry,
while simulating measurably fewer faults.  The lint tests build
deliberately broken netlists (a combinational loop, a floating net, a
multiply-driven net, ...) and check each lands on its expected rule.
"""

import numpy as np
import pytest

from repro.analysis.collapse import CollapseMap, collapse_faults
from repro.analysis.cones import analyze_cones
from repro.analysis.lint import assert_clean, lint_netlist
from repro.analysis.testability import (
    INFINITY,
    fault_efforts,
    hardest_faults,
    scoap,
)
from repro.arch.testbench import GATE_OPERATORS, table2_architecture
from repro.coverage.engine import evaluate_gate_level
from repro.errors import FaultError, NetlistError, SimulationError
from repro.gates.builders import (
    carry_select_adder,
    full_adder,
    ripple_carry_adder,
)
from repro.gates.cells import CellType
from repro.gates.engine import engine_for, run_stuck_at_campaign
from repro.gates.faults import (
    FaultSite,
    StuckAtFault,
    default_fault_universe,
    resolve_collapse_mode,
)
from repro.gates.netlist import Gate, Netlist
from repro.store import ResultStore
from repro.tpg.dictionary import build_fault_dictionary
from repro.tpg.generate import (
    UNIT_OPERATORS,
    compact_test_set,
    generate_tests,
    unit_netlist,
)

WIDTH = 4


# ----------------------------------------------------------------------
# Lint: broken netlists hit their expected rules
# ----------------------------------------------------------------------
class TestLintRules:
    def test_combinational_loop(self):
        nl = Netlist("loopy")
        a = nl.add_input("a")
        # g1 reads g2's output before it exists; add_gate allows reading
        # not-yet-driven nets, which is exactly how a loop sneaks in.
        nl.add_gate(CellType.AND, [a, "y"], "x", name="g1")
        nl.add_gate(CellType.OR, [a, "x"], "y", name="g2")
        nl.mark_output("y")
        report = lint_netlist(nl)
        hits = report.by_rule("combinational-loop")
        assert len(hits) == 1
        assert "g1" in hits[0].message and "g2" in hits[0].message
        assert not report.ok

    def test_floating_net(self):
        nl = Netlist("floaty")
        a = nl.add_input("a")
        nl.add_gate(CellType.AND, [a, "ghost"], "y", name="g1")
        nl.mark_output("y")
        report = lint_netlist(nl)
        hits = report.by_rule("undriven-net")
        assert [i.net for i in hits] == ["ghost"]
        assert "g1" in hits[0].message

    def test_undriven_primary_output(self):
        nl = Netlist("nodrv")
        nl.add_input("a")
        nl.mark_output("nothing")
        report = lint_netlist(nl)
        assert [i.net for i in report.by_rule("undriven-net")] == ["nothing"]

    def test_multiply_driven_net(self):
        nl = Netlist("multi")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate(CellType.AND, [a, b], "y", name="g1")
        # add_gate refuses a second driver, so corrupt the graph the way
        # a buggy builder would: append the gate record directly.
        nl.gates.append(Gate(name="g2", cell_type=CellType.OR, inputs=(a, b), output="y"))
        nl.mark_output("y")
        report = lint_netlist(nl)
        hits = report.by_rule("multiply-driven-net")
        assert [i.net for i in hits] == ["y"]
        assert "g1" in hits[0].message and "g2" in hits[0].message

    def test_gate_driving_a_primary_input_is_multiply_driven(self):
        nl = Netlist("incol")
        x = nl.add_input("x")
        nl.add_input("y")
        nl.gates.append(
            Gate(name="g", cell_type=CellType.BUF, inputs=(x,), output="y")
        )
        nl.mark_output("y")
        hits = lint_netlist(nl).by_rule("multiply-driven-net")
        assert len(hits) == 1 and "<input>" in hits[0].message

    def test_duplicate_gate_name(self):
        nl = Netlist("dups")
        a = nl.add_input("a")
        nl.add_gate(CellType.NOT, [a], "x", name="g")
        nl.gates.append(Gate(name="g", cell_type=CellType.NOT, inputs=(a,), output="y"))
        nl.mark_output("y")
        hits = lint_netlist(nl).by_rule("duplicate-gate-name")
        assert [i.gate for i in hits] == ["g"]

    def test_dangling_output_warning(self):
        nl = Netlist("dangle")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate(CellType.AND, [a, b], "y", name="g1")
        nl.add_gate(CellType.OR, [a, b], "z", name="g2")  # nothing reads z
        nl.mark_output("y")
        report = lint_netlist(nl)
        assert report.ok  # warnings only
        assert [i.net for i in report.by_rule("dangling-output")] == ["z"]

    def test_unreachable_logic_warning(self):
        nl = Netlist("unreach")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate(CellType.AND, [a, b], "dead", name="g1")
        nl.add_gate(CellType.NOT, ["dead"], "deader", name="g2")
        nl.add_gate(CellType.OR, [a, b], "y", name="g3")
        nl.mark_output("y")
        report = lint_netlist(nl)
        assert {i.gate for i in report.by_rule("unreachable-logic")} == {"g1"}
        assert {i.gate for i in report.by_rule("dangling-output")} == {"g2"}

    def test_unused_input_warning(self):
        nl = Netlist("unused")
        a = nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(CellType.NOT, [a], "y", name="g1")
        nl.mark_output("y")
        assert [i.net for i in lint_netlist(nl).by_rule("unused-input")] == ["b"]

    def test_rail_misuse_warning(self):
        nl = Netlist("rails")
        zero = nl.add_input("zero")
        one = nl.add_input("one")
        a = nl.add_input("a")
        nl.add_gate(CellType.AND, [zero, one], "const", name="g1")
        nl.add_gate(CellType.OR, [a, "const"], "y", name="g2")
        nl.mark_output("y")
        nl.mark_output("one")
        hits = lint_netlist(nl).by_rule("rail-misuse")
        assert {i.net for i in hits} == {"const", "one"}

    def test_assert_clean_raises_on_errors_only(self):
        nl = Netlist("bad")
        a = nl.add_input("a")
        nl.add_gate(CellType.AND, [a, "ghost"], "y", name="g1")
        nl.mark_output("y")
        with pytest.raises(NetlistError, match="undriven-net"):
            assert_clean(nl)
        report = assert_clean(nl, ignore=("undriven-net",))
        assert report.ok

    def test_ignore_unknown_rule_rejected(self):
        with pytest.raises(NetlistError, match="unknown lint rule"):
            lint_netlist(ripple_carry_adder(2), ignore=("no-such-rule",))

    def test_report_render_mentions_rules(self):
        nl = Netlist("bad")
        a = nl.add_input("a")
        nl.add_gate(CellType.AND, [a, "ghost"], "y", name="g1")
        nl.mark_output("y")
        text = lint_netlist(nl).render()
        assert "undriven-net" in text and "[error]" in text


class TestLintShippedNetlists:
    @pytest.mark.parametrize("unit", UNIT_OPERATORS)
    def test_units_error_clean(self, unit):
        assert lint_netlist(unit_netlist(unit, WIDTH)).ok

    @pytest.mark.parametrize("operator", GATE_OPERATORS)
    def test_table2_architectures_error_clean(self, operator):
        assert lint_netlist(table2_architecture(operator, WIDTH).netlist).ok

    def test_carry_select_adder_fully_clean(self):
        # The rails fix: a single-section CSA no longer declares unused
        # zero/one inputs, so the builder lints clean of warnings too.
        for width, block in ((2, 2), (4, 2), (8, 4)):
            report = lint_netlist(carry_select_adder(width, block))
            assert report.ok and not report.warnings, report.render()

    def test_lint_cli_passes_on_registered_netlists(self, capsys):
        from repro.analysis.lint import main

        assert main(["--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "FAIL" not in out


# ----------------------------------------------------------------------
# Collapsing: dominance is exact and actually smaller
# ----------------------------------------------------------------------
def _random_inputs(netlist, n_vectors, seed):
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 2, size=n_vectors, dtype=np.uint8)
        for name in netlist.primary_inputs
    }


class TestCollapse:
    def test_resolve_collapse_mode(self):
        assert resolve_collapse_mode(True) == "equivalence"
        assert resolve_collapse_mode(False) == "none"
        assert resolve_collapse_mode("dominance") == "dominance"
        with pytest.raises(FaultError, match="unknown collapse mode"):
            resolve_collapse_mode("bogus")
        with pytest.raises(FaultError):
            collapse_faults(ripple_carry_adder(2), mode="none")

    def test_rca8_reduction_floor(self):
        cmap = collapse_faults(ripple_carry_adder(8), mode="dominance")
        assert cmap.n_faults == 242
        assert cmap.reduction >= 0.25, cmap.summary()
        assert cmap.n_kept < cmap.n_classes < cmap.n_faults
        # Topological order: every predecessor of a dropped class is
        # resolvable (kept, or dropped earlier).
        resolved = set(cmap.kept)
        for ci in cmap.dropped:
            assert cmap.implied_by[ci]
            resolved.add(ci)
        assert resolved == set(range(cmap.n_classes))

    def test_equivalence_map_keeps_everything(self):
        netlist = ripple_carry_adder(4)
        cmap = collapse_faults(netlist, mode="equivalence")
        assert cmap.dropped == ()
        assert cmap.kept == tuple(range(cmap.n_classes))
        assert all(not p for p in cmap.implied_by)

    @pytest.mark.parametrize("backend", ("python_loop", "fused"))
    def test_dominance_exhaustive_bit_identical(self, backend):
        netlist = ripple_carry_adder(8)
        engine = engine_for(netlist, backend)
        flat = engine.campaign(collapse=False, fault_dropping=False)
        eq = engine.campaign(collapse="equivalence", fault_dropping=False)
        dom = engine.campaign(collapse="dominance", fault_dropping=False)
        assert np.array_equal(flat.detected, eq.detected)
        assert np.array_equal(flat.detected, dom.detected)
        # Equivalence keeps first_detected exact; dominance witnesses
        # must at least be valid detecting vectors.
        assert np.array_equal(flat.first_detected, eq.first_detected)
        hit = dom.detected
        assert np.all(dom.first_detected[hit] >= 0)
        assert np.all(dom.first_detected[~hit] == -1)
        # And it must actually be cheaper: 968 -> 712 runs on RCA-8.
        assert dom.n_simulated_runs <= 0.75 * flat.n_simulated_runs

    @pytest.mark.parametrize("backend", ("python_loop", "fused"))
    @pytest.mark.parametrize("fault_dropping", (False, True))
    def test_dominance_sparse_vectors_bit_identical(self, backend, fault_dropping):
        # Few random vectors leave many classes undetected, forcing the
        # residual-simulation waves (dominators whose predecessors all
        # came back undetected must still be simulated directly).
        netlist = ripple_carry_adder(6)
        inputs = _random_inputs(netlist, 4, seed=7)
        flat = run_stuck_at_campaign(
            netlist, inputs, collapse=False,
            fault_dropping=fault_dropping, backend=backend,
        )
        dom = run_stuck_at_campaign(
            netlist, inputs, collapse="dominance",
            fault_dropping=fault_dropping, backend=backend,
        )
        assert np.array_equal(flat.detected, dom.detected)
        assert 0 < flat.detected.sum() < flat.detected.size

    def test_dominance_witness_vectors_actually_detect(self):
        netlist = ripple_carry_adder(4)
        engine = engine_for(netlist)
        dom = engine.campaign(collapse="dominance", fault_dropping=False)
        flat = engine.campaign(collapse=False, fault_dropping=False)
        n_vectors = 2 ** len(netlist.primary_inputs)
        for fi in np.nonzero(dom.detected)[0]:
            assert 0 <= dom.first_detected[fi] < n_vectors
        # Flat first_detected is the earliest witness; dominance may
        # report a later vector but never an earlier (impossible) one.
        hit = dom.detected
        assert np.all(dom.first_detected[hit] >= flat.first_detected[hit])

    def test_explicit_fault_subset_collapses(self):
        netlist = ripple_carry_adder(4)
        subset = tuple(default_fault_universe(netlist))[:40]
        cmap = collapse_faults(netlist, faults=subset, mode="dominance")
        assert cmap.n_faults == 40
        engine = engine_for(netlist)
        flat = engine.campaign(
            faults=subset, collapse=False, fault_dropping=False
        )
        dom = engine.campaign(
            faults=subset, collapse="dominance", fault_dropping=False
        )
        assert np.array_equal(flat.detected, dom.detected)

    def test_evaluate_gate_level_stats_identical(self):
        netlist = ripple_carry_adder(5)
        flat_cov, flat_res = evaluate_gate_level(
            netlist, collapse=False, store=False
        )
        dom_cov, dom_res = evaluate_gate_level(
            netlist, collapse="dominance", store=False
        )
        assert dom_cov.total == flat_cov.total
        assert dom_cov.detected == flat_cov.detected
        assert dom_cov.n_vectors == flat_cov.n_vectors
        assert dom_cov.simulated_runs < flat_cov.simulated_runs

    def test_dictionary_rejects_dominance(self):
        netlist = ripple_carry_adder(3)
        with pytest.raises(SimulationError, match="dominance"):
            build_fault_dictionary(netlist, collapse="dominance", store=False)
        with pytest.raises(SimulationError, match="dominance"):
            compact_test_set(
                netlist, method="dictionary", collapse="dominance", store=False
            )

    def test_generate_tests_dominance_same_verdicts(self):
        netlist = ripple_carry_adder(4)
        base = generate_tests(netlist, store=False)
        dom = generate_tests(netlist, collapse="dominance", store=False)
        assert {f.describe() for f in base.undetected} == {
            f.describe() for f in dom.undetected
        }
        assert base.dictionary.coverage == dom.dictionary.coverage

    def test_generate_tests_testability_order(self):
        netlist = ripple_carry_adder(4)
        result = generate_tests(netlist, order="testability", store=False)
        assert result.dictionary.coverage == 1.0
        with pytest.raises(SimulationError, match="unknown order"):
            generate_tests(netlist, order="bogus", store=False)


# ----------------------------------------------------------------------
# Support cones
# ----------------------------------------------------------------------
class TestCones:
    def test_rca_supports_and_reach(self):
        netlist = ripple_carry_adder(8)
        cones = analyze_cones(netlist)
        assert cones.support_of("fa3_s") == (
            "a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "cin",
        )
        assert cones.outputs_reached("a7") == ("fa7_s", "fa7_cout")
        assert cones.outputs_reached("cin") == tuple(netlist.primary_outputs)
        # A ripple adder is one cone: every PO shares the cin support.
        assert len(cones.output_partitions()) == 1

    def test_disjoint_netlists_partition(self):
        nl = Netlist("pair")
        for tag in ("u", "v"):
            a = nl.add_input(f"{tag}_a")
            b = nl.add_input(f"{tag}_b")
            nl.add_gate(CellType.XOR, [a, b], f"{tag}_y", name=f"{tag}_g")
            nl.mark_output(f"{tag}_y")
        parts = analyze_cones(nl).output_partitions()
        assert sorted(parts) == [("u_y",), ("v_y",)]

    def test_primary_input_support_is_itself(self):
        cones = analyze_cones(ripple_carry_adder(2))
        assert cones.support_of("a0") == ("a0",)


# ----------------------------------------------------------------------
# SCOAP testability
# ----------------------------------------------------------------------
class TestScoap:
    def test_full_adder_hand_values(self):
        netlist = full_adder()
        measures = scoap(netlist)
        assert measures.of("a") == (1, 1, measures.of("a")[2])
        assert measures.of("p")[:2] == (3, 3)
        assert measures.of("p")[2] == 2
        assert measures.of("g2")[:2] == (2, 5)
        assert measures.of("g1") == (2, 3, 3)

    def test_pinned_rails_are_infinite_opposite(self):
        nl = Netlist("railed")
        one = nl.add_input("one")
        a = nl.add_input("a")
        nl.add_gate(CellType.AND, [a, one], "y", name="g")
        nl.mark_output("y")
        measures = scoap(nl, constants={"one": 1})
        cc0, cc1, _ = measures.of("one")
        assert cc1 == 1 and cc0 >= INFINITY

    def test_fault_efforts_and_hardest(self):
        netlist = ripple_carry_adder(4)
        faults = default_fault_universe(netlist)
        efforts = fault_efforts(netlist)
        assert efforts.shape == (len(faults),)
        assert (efforts > 0).all()
        top = hardest_faults(netlist, limit=5)
        assert len(top) == 5
        values = [effort for _, effort in top]
        assert values == sorted(values, reverse=True)
        assert values[0] == efforts.max()

    def test_fault_efforts_unknown_net_raises(self):
        netlist = ripple_carry_adder(2)
        bogus = StuckAtFault(FaultSite("no_such_net"), 1)
        with pytest.raises(FaultError):
            fault_efforts(netlist, faults=[bogus])


# ----------------------------------------------------------------------
# Result-store round trips
# ----------------------------------------------------------------------
class TestAnalysisStore:
    def test_artifacts_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        netlist = ripple_carry_adder(4)

        cones_cold = analyze_cones(netlist, store=store)
        cmap_cold = collapse_faults(netlist, mode="dominance", store=store)
        scoap_cold = scoap(netlist, store=store)
        puts = store.stats.snapshot()["puts"]
        assert puts >= 3

        store.clear_lru()
        cones_warm = analyze_cones(netlist, store=store)
        cmap_warm = collapse_faults(netlist, mode="dominance", store=store)
        scoap_warm = scoap(netlist, store=store)
        assert store.stats.snapshot()["puts"] == puts  # pure hits

        assert cones_warm.support_of("fa3_s") == cones_cold.support_of("fa3_s")
        assert cones_warm.partitions == cones_cold.partitions
        assert isinstance(cmap_warm, CollapseMap)
        assert cmap_warm == cmap_cold
        assert scoap_warm.of("fa3_s") == scoap_cold.of("fa3_s")
        assert np.array_equal(scoap_warm.co, scoap_cold.co)
