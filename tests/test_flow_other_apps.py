"""The co-design flow applied beyond FIR: biquad (with division),
matrix multiply and DCT.  The methodology is application-independent --
these tests pin that the whole pipeline (enrichment, scheduling,
binding, costing, VM compilation, execution) holds for every app.
"""

import pytest

from repro.apps.dct import dct_graph
from repro.apps.iir import biquad_graph
from repro.apps.matmul import matmul_graph, matmul_reference
from repro.codesign.flow import ReliableCoDesignFlow
from repro.codesign.swmodel import estimate_software
from repro.codesign.sck_transform import enrich_with_sck
from repro.vm.compiler import compile_dfg
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize


@pytest.fixture(scope="module")
def biquad_results():
    return ReliableCoDesignFlow(biquad_graph(), samples=2_000).run()


class TestBiquadFlow:
    def test_all_variants_complete(self, biquad_results):
        assert set(biquad_results) == {"plain", "sck", "embedded"}

    def test_divider_scheduled(self, biquad_results):
        """The biquad's scaling division occupies the div unit."""
        plain = biquad_results["plain"]
        assert "div" in plain.hw_min_area.schedule.unit_usage()

    def test_cost_ordering_holds(self, biquad_results):
        for objective in ("hw_min_area", "hw_min_latency"):
            plain = getattr(biquad_results["plain"], objective).slices
            sck = getattr(biquad_results["sck"], objective).slices
            assert sck > plain

    def test_software_runs_clean(self, biquad_results):
        for variant in ("plain", "sck", "embedded"):
            assert biquad_results[variant].software.error_flag == 0

    def test_sck_latency_overhead_bounded(self, biquad_results):
        plain = biquad_results["plain"].hw_min_area.cycles_per_sample
        sck = biquad_results["sck"].hw_min_area.cycles_per_sample
        assert plain < sck < 4 * plain


class TestMatmulThroughVm:
    def test_matmul_program_matches_reference(self):
        matrix = [[2, -1, 3], [0, 4, 1], [5, 2, -2]]
        graph = matmul_graph(matrix)
        vectors = [[1, 2, 3], [-4, 0, 7], [9, -9, 9], [0, 0, 0]]
        program, memory_map = compile_dfg(graph, len(vectors))
        program = optimize(program)
        memory = {}
        for j in range(3):
            base = memory_map.stream_for_input(f"x{j}")
            for k, vec in enumerate(vectors):
                memory[base + k] = vec[j]
        result = Machine(16).run(program, memory)
        for k, vec in enumerate(vectors):
            expected = matmul_reference(matrix, vec)
            for i in range(3):
                base = memory_map.stream_for_output(f"y{i}")
                assert result.memory.get(base + k, 0) == expected[i]

    def test_matmul_sck_flow_runs(self):
        matrix = [[1, 2], [3, 4]]
        results = ReliableCoDesignFlow(matmul_graph(matrix), samples=500).run()
        assert results["sck"].hw_min_area.slices > results["plain"].hw_min_area.slices


class TestDctThroughFlow:
    def test_dct_software_estimate(self):
        graph = dct_graph(4)
        estimate = estimate_software(graph, samples=2_000, run_samples=16)
        assert estimate.cycles > 0
        assert estimate.error_flag == 0

    def test_dct_sck_software_slower(self):
        plain = estimate_software(dct_graph(4), samples=2_000, run_samples=16)
        checked = estimate_software(
            enrich_with_sck(dct_graph(4)), samples=2_000, run_samples=16
        )
        assert checked.cycles > plain.cycles
        assert checked.error_flag == 0

    def test_dct_hw_point(self):
        results = ReliableCoDesignFlow(dct_graph(4), samples=500).run()
        plain = results["plain"]
        # 4x4 constant matrix: min-latency fits in few cycles, min-area
        # serialises 16 products + 12 adds on two units.
        assert plain.hw_min_latency.cycles_per_sample < plain.hw_min_area.cycles_per_sample
