"""Benchmarks regenerating the paper's figures.

Figure 1: the SCK interface listing.
Figure 2: the self-checking operator+ listing.
Figure 3: the reliable co-design flow diagram.

Plus the Section 4.1 test-architecture VHDL and the self-checking
datapath RTL -- the structural artefacts behind Tables 2 and 3.
"""

from repro.apps.fir import fir_graph
from repro.codesign.allocation import bind
from repro.codesign.scheduling import asap_schedule
from repro.codesign.sck_transform import enrich_with_sck
from repro.hdlgen.datapath import emit_datapath_rtl
from repro.hdlgen.flow_diagram import emit_flow_ascii, emit_flow_dot
from repro.hdlgen.sck_class import emit_sck_class, emit_sck_interface, emit_sck_operator
from repro.hdlgen.testarch import emit_test_architecture


def test_figure1_interface(once):
    text = once(emit_sck_interface, ("add",))
    print()
    print(text)
    assert "bool E;" in text


def test_figure2_operator_plus(once):
    text = once(emit_sck_operator, "add", "tech1")
    print()
    print(text)
    assert "ris.ID = op1.ID + op2.ID" in text


def test_figure3_flow_diagram(once):
    text = once(emit_flow_ascii)
    print()
    print(text)
    assert "OFFIS" in text
    assert emit_flow_dot().startswith("digraph")


def test_full_sck_library_emits(once):
    text = once(emit_sck_class)
    assert text.count("operator") >= 5


def test_section41_test_architecture(once):
    text = once(emit_test_architecture, 4)
    assert "entity test_architecture" in text
    assert text.count("SA1") == 16


def test_self_checking_datapath_rtl(once):
    graph = enrich_with_sck(fir_graph())
    allocation = bind(asap_schedule(graph))
    rtl = once(emit_datapath_rtl, allocation)
    assert "error_latch" in rtl
