"""Head-to-head: interpreted vs compiled bit-parallel fault simulation.

The acceptance experiment of the engine refactor: the batched stuck-at
campaign over the paper's 32-fault full-adder universe with exhaustive
vectors must run >= 10x faster than per-fault ``NetlistSimulator``
loops, with bit-identical coverage classifications.

Three baselines are measured:

* *interpreted per-fault* -- the seed implementation
  (:class:`ReferenceSimulator`, the dict-keyed interpreter) walked once
  per fault, the hot path this refactor replaces;
* *compiled per-fault (fresh)* -- a new :class:`NetlistSimulator` per
  fault, the seed idiom of ``arch/cell.py``;
* *compiled per-fault (hoisted)* -- one :class:`NetlistSimulator`
  reused across faults, the strongest per-fault baseline.

The batched campaign beats all three; the assertion is made against the
strongest one.  A ripple-carry-adder scaling row shows the gap widening
with netlist size.

Backend head-to-head: the same RCA-8 exhaustive campaign runs under
every registered execution backend (:mod:`repro.gates.backends`) in the
fault-major regime -- the whole collapsed universe through one fault
matrix per word chunk -- with bit-identical classifications required
and the ``fused`` backend gated at ``BENCH_BACKEND_SPEEDUP``x over the
``python_loop`` reference.  The numba gate applies only when numba is
importable.
"""

import os
import time

import numpy as np

from repro.gates import builders
from repro.gates.backends import list_backends
from repro.gates.backends.threaded import resolve_threads
from repro.gates.engine import run_stuck_at_campaign
from repro.gates.faults import full_fault_list
from repro.gates.simulate import NetlistSimulator, ReferenceSimulator
from repro.gates.tune import resolve_plan

# Floors are env-overridable so shared CI runners (noisy neighbours,
# unknown CPUs) can gate on relaxed ratios while local runs keep the
# full acceptance threshold.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPEEDUP_FLOOR", "10.0"))
#: Sanity floor vs the *strongest* per-fault baseline (one compiled
#: simulator, hoisted out of the loop) -- kept lower than the headline
#: floor because at ~0.1ms scales scheduler noise can eat several x.
COMPILED_FLOOR = float(os.environ.get("BENCH_COMPILED_FLOOR", "5.0"))
#: Acceptance floor of the ``fused`` backend over ``python_loop`` on
#: the RCA-8 exhaustive stuck-at campaign (fault-major regime).
BACKEND_SPEEDUP_FLOOR = float(os.environ.get("BENCH_BACKEND_SPEEDUP", "3.0"))
#: Floor of the optional numba backend over ``python_loop`` (gated only
#: when numba is installed; a JIT CSR walk should clear this easily).
NUMBA_SPEEDUP_FLOOR = float(os.environ.get("BENCH_NUMBA_SPEEDUP", "2.0"))
#: Floor of the tuned tier (``threaded``/``auto``) over single-thread
#: ``fused`` on the RCA-8 exhaustive campaign with whole-universe fault
#: batches.  Gated only on multi-core runners -- on one core the tuner
#: (correctly) answers "fused" and there is nothing to win.
TUNED_SPEEDUP_FLOOR = float(os.environ.get("BENCH_TUNED_SPEEDUP", "1.5"))
#: Floor of the optional cupy backend over ``fused`` (gated only when a
#: CUDA device is actually present).
CUPY_SPEEDUP_FLOOR = float(os.environ.get("BENCH_CUPY_SPEEDUP", "1.0"))
#: ``backend="auto"`` must never be materially slower than the default
#: fused path on any bench case; the tolerance absorbs timer noise at
#: sub-millisecond scales plus the one-off cost model evaluation.
AUTO_SLOWDOWN_TOLERANCE = float(os.environ.get("BENCH_AUTO_TOLERANCE", "1.25"))
#: Fault batch size of the backend head-to-head.  One batch carries the
#: whole collapsed RCA-8 universe (194 groups), the regime the backend
#: layer targets: the reference loop must allocate a fresh ~45 MB
#: fault matrix per call (past glibc's mmap threshold, so every call
#: page-faults it in again), while the fused backend's persistent
#: workspace and tainted-prefix walk amortise both allocation and
#: arithmetic.
BACKEND_FAULT_CHUNK = 256


def _best(fns, repeats=11, inner=5):
    """Best-of average runtime per callable, interleaved round-robin.

    Interleaving measures every variant under the same machine load in
    each round, so background noise shifts all rows rather than
    penalising whichever variant ran last.  Returns (times, results).
    """
    results = [fn() for fn in fns]
    times = [[] for _ in fns]
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            for _ in range(inner):
                results[i] = fn()
            times[i].append((time.perf_counter() - start) / inner)
    return [min(t) for t in times], results


def _classify_per_fault(make_sim, netlist, faults):
    """Per-fault loop: one truth table per fault vs the golden table."""

    def run():
        golden = make_sim(netlist).truth_table()
        return [
            bool((make_sim(netlist).truth_table(fault) != golden).any())
            for fault in faults
        ]

    return run


def _classify_per_fault_hoisted(sim_cls, netlist, faults):
    def run():
        sim = sim_cls(netlist)
        golden = sim.truth_table()
        return [bool((sim.truth_table(fault) != golden).any()) for fault in faults]

    return run


def _throughput(n_vectors, n_faults, seconds):
    return n_vectors * n_faults / seconds


def test_bench_backend_speedup(once, record):
    """Registered backends, head to head, on the RCA-8 campaign."""
    once(lambda: None)
    netlist = builders.ripple_carry_adder(8)
    backends = [name for name in ("python_loop", "fused", "threaded",
                                  "numba", "cupy")
                if name in list_backends()]
    assert "python_loop" in backends and "fused" in backends

    def campaign(backend):
        return lambda: run_stuck_at_campaign(
            netlist, backend=backend, fault_chunk=BACKEND_FAULT_CHUNK
        )

    times, results = _best([campaign(name) for name in backends],
                           repeats=7, inner=1)
    # Bit-identical classifications across every registered backend.
    baseline = results[0]
    for result in results[1:]:
        assert np.array_equal(result.detected, baseline.detected)
        assert np.array_equal(result.first_detected, baseline.first_detected)

    by_name = dict(zip(backends, times))
    t_loop = by_name["python_loop"]
    print()
    print(f"Backend head-to-head -- RCA-8 exhaustive campaign "
          f"({baseline.n_faults} faults x {baseline.n_vectors} vectors, "
          f"fault_chunk={BACKEND_FAULT_CHUNK})")
    for name in backends:
        print(f"  {name:12s} {by_name[name] * 1e3:9.3f}ms"
              f" {t_loop / by_name[name]:8.2f}x")
        record(f"backend_{name}", by_name[name],
               speedup_vs_python_loop=t_loop / by_name[name],
               backend=name)

    assert t_loop / by_name["fused"] >= BACKEND_SPEEDUP_FLOOR, (
        f"fused backend only {t_loop / by_name['fused']:.2f}x faster than "
        f"python_loop (fused {by_name['fused'] * 1e3:.3f}ms vs "
        f"{t_loop * 1e3:.3f}ms)"
    )
    if "numba" in by_name:
        assert t_loop / by_name["numba"] >= NUMBA_SPEEDUP_FLOOR, (
            f"numba backend only {t_loop / by_name['numba']:.2f}x faster "
            f"than python_loop"
        )
    if "cupy" in by_name:
        assert by_name["fused"] / by_name["cupy"] >= CUPY_SPEEDUP_FLOOR, (
            f"cupy backend only {by_name['fused'] / by_name['cupy']:.2f}x "
            f"vs fused"
        )


def test_bench_tuned_vs_fused(once, record):
    """The tuned tier vs single-thread fused, whole-universe batches.

    The acceptance experiment of the parallel kernel tier: the RCA-8
    exhaustive campaign with the whole collapsed universe in one fault
    batch, ``threaded`` and ``auto`` against the single-thread ``fused``
    baseline.  The >= ``BENCH_TUNED_SPEEDUP``x gate applies only on
    multi-core runners; everywhere the three paths must stay
    bit-identical, and ``auto``'s resolved plan is recorded into the
    trajectory.
    """
    once(lambda: None)
    netlist = builders.ripple_carry_adder(8)
    plan = resolve_plan(netlist, backend="auto",
                        fault_chunk=BACKEND_FAULT_CHUNK)

    def campaign(backend):
        return lambda: run_stuck_at_campaign(
            netlist, backend=backend, fault_chunk=BACKEND_FAULT_CHUNK
        )

    times, results = _best(
        [campaign("fused"), campaign("threaded"), campaign("auto")],
        repeats=7, inner=1,
    )
    t_fused, t_threaded, t_auto = times
    for result in results[1:]:
        assert np.array_equal(result.detected, results[0].detected)
        assert np.array_equal(result.first_detected,
                              results[0].first_detected)

    n_threads = resolve_threads()
    print()
    print(f"Tuned tier -- RCA-8 exhaustive campaign, whole-universe "
          f"batches ({n_threads} thread(s); auto -> {plan.backend}: "
          f"{plan.reason})")
    for label, t in (("fused", t_fused), ("threaded", t_threaded),
                     ("auto", t_auto)):
        print(f"  {label:12s} {t * 1e3:9.3f}ms {t_fused / t:8.2f}x")
    record("tuned_fused", t_fused, backend="fused")
    record("tuned_threaded", t_threaded,
           speedup_vs_fused=t_fused / t_threaded, threads=n_threads)
    record("tuned_auto", t_auto, speedup_vs_fused=t_fused / t_auto,
           plan=plan.to_dict())

    if n_threads >= 2:
        best_tuned = min(t_threaded, t_auto)
        assert t_fused / best_tuned >= TUNED_SPEEDUP_FLOOR, (
            f"tuned tier only {t_fused / best_tuned:.2f}x over fused on "
            f"{n_threads} threads (threaded {t_threaded * 1e3:.3f}ms, "
            f"auto {t_auto * 1e3:.3f}ms vs fused {t_fused * 1e3:.3f}ms)"
        )
    # auto never materially slower than the default path, any host.
    assert t_auto <= t_fused * AUTO_SLOWDOWN_TOLERANCE, (
        f"backend='auto' regressed vs fused: {t_auto * 1e3:.3f}ms vs "
        f"{t_fused * 1e3:.3f}ms"
    )


def test_bench_auto_never_slower(once, record):
    """``backend="auto"`` vs fused on the existing bench campaigns."""
    once(lambda: None)
    cases = [
        ("full_adder", builders.full_adder(), None),
        ("rca8_default_chunks", builders.ripple_carry_adder(8), None),
        ("rca8_whole_universe", builders.ripple_carry_adder(8),
         BACKEND_FAULT_CHUNK),
    ]
    print()
    print("auto-vs-fused -- existing bench campaigns")
    for name, netlist, fault_chunk in cases:
        kwargs = {} if fault_chunk is None else {"fault_chunk": fault_chunk}
        (t_fused, t_auto), (r_fused, r_auto) = _best(
            [
                lambda: run_stuck_at_campaign(
                    netlist, backend="fused", **kwargs),
                lambda: run_stuck_at_campaign(
                    netlist, backend="auto", **kwargs),
            ],
            repeats=7, inner=1,
        )
        assert np.array_equal(r_auto.detected, r_fused.detected)
        plan = resolve_plan(netlist, backend="auto", **kwargs)
        print(f"  {name:22s} fused {t_fused * 1e3:8.3f}ms"
              f"  auto {t_auto * 1e3:8.3f}ms ({plan.backend})")
        record(f"auto_{name}", t_auto, fused_seconds=t_fused,
               plan=plan.to_dict())
        assert t_auto <= t_fused * AUTO_SLOWDOWN_TOLERANCE, (
            f"{name}: backend='auto' {t_auto * 1e3:.3f}ms vs fused "
            f"{t_fused * 1e3:.3f}ms exceeds tolerance "
            f"{AUTO_SLOWDOWN_TOLERANCE}x"
        )


def test_bench_engine_full_adder(once, record):
    once(lambda: None)
    netlist = builders.full_adder()
    faults = full_fault_list(netlist)
    n_vectors = 1 << len(netlist.primary_inputs)
    assert len(faults) == 32

    (t_interp, t_fresh, t_hoist, t_batch), (c_interp, c_fresh, c_hoist, result) = _best(
        [
            _classify_per_fault_hoisted(ReferenceSimulator, netlist, faults),
            _classify_per_fault(NetlistSimulator, netlist, faults),
            _classify_per_fault_hoisted(NetlistSimulator, netlist, faults),
            lambda: run_stuck_at_campaign(netlist),
        ]
    )

    batched_classes = list(result.detected)
    # Bit-identical coverage classifications across all engines.
    assert c_interp == c_fresh == c_hoist == batched_classes

    print()
    print("Engine head-to-head -- full adder, 32 stuck-at faults x 8 vectors")
    print(f"  {'variant':34s} {'time':>10s} {'vectors*faults/s':>18s} {'speedup':>9s}")
    rows = [
        ("interpreted per-fault (seed)", t_interp),
        ("compiled per-fault (fresh sim)", t_fresh),
        ("compiled per-fault (hoisted sim)", t_hoist),
        ("compiled batched campaign", t_batch),
    ]
    for label, t in rows:
        print(
            f"  {label:34s} {t * 1e3:8.3f}ms"
            f" {_throughput(n_vectors, len(faults), t):18.3e}"
            f" {t_interp / t:8.1f}x"
        )
    print(f"  ({result.summary()})")
    record("full_adder_interpreted", t_interp)
    record("full_adder_batched", t_batch, speedup=t_interp / t_batch)

    # Acceptance: >= 10x vs the per-fault loop this refactor replaces --
    # the seed's interpreted NetlistSimulator (now ReferenceSimulator).
    assert t_interp / t_batch >= SPEEDUP_FLOOR, (
        f"batched campaign only {t_interp / t_batch:.1f}x faster than the "
        f"interpreted per-fault loop "
        f"(batched {t_batch * 1e3:.3f}ms vs {t_interp * 1e3:.3f}ms)"
    )
    # Sanity: still well ahead of the strongest compiled per-fault loop.
    strongest = min(t_fresh, t_hoist)
    assert strongest / t_batch >= COMPILED_FLOOR, (
        f"batched campaign only {strongest / t_batch:.1f}x faster "
        f"(batched {t_batch * 1e3:.3f}ms vs per-fault {strongest * 1e3:.3f}ms)"
    )


def test_bench_engine_scaling(once, record):
    """The batched gap grows with netlist size (RCA-8, sampled faults)."""
    once(lambda: None)
    netlist = builders.ripple_carry_adder(8)
    faults = full_fault_list(netlist)
    rng = np.random.default_rng(20050307)
    n_vectors = 4096
    vectors = {
        name: rng.integers(0, 2, size=n_vectors, dtype=np.uint8)
        for name in netlist.primary_inputs
    }

    def per_fault():
        sim = NetlistSimulator(netlist)
        golden = {k: v.copy() for k, v in sim.outputs(vectors).items()}
        out = []
        for fault in faults:
            faulty = sim.outputs(vectors, fault)
            out.append(
                any((faulty[k] != golden[k]).any() for k in golden)
            )
        return out

    def batched():
        return run_stuck_at_campaign(netlist, inputs=vectors)

    (t_loop, t_batch), (c_loop, result) = _best(
        [per_fault, batched], repeats=3, inner=1
    )
    assert c_loop == list(result.detected)

    print()
    print(
        f"Scaling -- ripple-carry adder(8): {len(faults)} faults x "
        f"{n_vectors} vectors"
    )
    print(f"  compiled per-fault loop   {t_loop * 1e3:9.3f}ms")
    print(
        f"  compiled batched campaign {t_batch * 1e3:9.3f}ms"
        f"  ({t_loop / t_batch:.1f}x, {result.n_simulated_runs} runs for "
        f"{len(faults)} faults)"
    )
    record("rca8_per_fault", t_loop)
    record("rca8_batched", t_batch, speedup=t_loop / t_batch)
    assert t_loop / t_batch >= SPEEDUP_FLOOR
