"""Gate measured benchmark trajectories against the committed baseline.

Usage::

    python benchmarks/check_trajectory.py MEASURED_DIR \
        [--baseline benchmarks/baseline] [--tolerance 0.20]

``MEASURED_DIR`` holds the ``BENCH_<suite>.json`` files a bench run
wrote via ``pytest benchmarks/ --json MEASURED_DIR``; the baseline
directory holds the committed reference trajectories.

Only *ratio* metrics are compared -- ``speedup``, ``speedup_vs_*`` --
because raw seconds do not transfer between machines while relative
speedups largely do.  A measured ratio more than ``--tolerance`` (20%
by default, env ``BENCH_TRAJECTORY_TOLERANCE``) below the committed
value is a regression: the script prints a readable per-case diff and
exits non-zero.  Cases present only in the baseline (e.g. optional
backends not installed on this runner) are reported but do not fail,
so one committed baseline serves heterogeneous runners; cases that are
faster than baseline are never penalised.
"""

import argparse
import glob
import json
import os
import sys


def _ratio_metrics(case):
    return {
        key: value
        for key, value in case.items()
        if (key == "speedup" or key.startswith("speedup_vs_"))
        and isinstance(value, (int, float))
    }


def _load_suites(directory):
    suites = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        suites[data.get("suite", os.path.basename(path))] = data
    return suites


def compare(baseline_dir, measured_dir, tolerance):
    """Returns (rows, regressions); each row is a printable tuple."""
    baselines = _load_suites(baseline_dir)
    measured = _load_suites(measured_dir)
    rows = []
    regressions = []
    for suite, base in sorted(baselines.items()):
        got = measured.get(suite)
        if got is None:
            regressions.append(f"suite {suite!r}: no measured BENCH_{suite}.json")
            continue
        got_cases = {case["case"]: case for case in got.get("cases", [])}
        for case in base.get("cases", []):
            name = case["case"]
            metrics = _ratio_metrics(case)
            if not metrics:
                continue
            here = got_cases.get(name)
            if here is None:
                rows.append((suite, name, "-", "-", "-", "missing (skipped)"))
                continue
            for metric, ref in metrics.items():
                value = here.get(metric)
                if not isinstance(value, (int, float)):
                    rows.append((suite, name, metric, f"{ref:.2f}", "-",
                                 "missing metric"))
                    regressions.append(
                        f"{suite}/{name}: metric {metric!r} not recorded"
                    )
                    continue
                floor = ref * (1.0 - tolerance)
                status = "ok" if value >= floor else "REGRESSED"
                rows.append((suite, name, metric, f"{ref:.2f}",
                             f"{value:.2f}", status))
                if value < floor:
                    regressions.append(
                        f"{suite}/{name}: {metric} {value:.2f} is "
                        f"{(1 - value / ref) * 100:.0f}% below committed "
                        f"{ref:.2f} (tolerance {tolerance * 100:.0f}%)"
                    )
    return rows, regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("measured", help="directory of measured BENCH_*.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "baseline"),
        help="directory of committed baseline BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TRAJECTORY_TOLERANCE", "0.20")),
        help="allowed fractional ratio regression (default 0.20)",
    )
    args = parser.parse_args(argv)

    rows, regressions = compare(args.baseline, args.measured, args.tolerance)
    if rows:
        widths = [max(len(str(row[i])) for row in rows + [
            ("suite", "case", "metric", "baseline", "measured", "status")
        ]) for i in range(6)]
        header = ("suite", "case", "metric", "baseline", "measured", "status")
        for row in [header] + rows:
            print("  ".join(str(col).ljust(w) for col, w in zip(row, widths)))
    if regressions:
        print()
        print(f"{len(regressions)} trajectory regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print()
    print("trajectory within tolerance of committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
