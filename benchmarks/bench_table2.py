"""Benchmark regenerating Table 2 *exactly* at every width.

Paper reference:

    bits  situations   Tech1   Tech2   Both
    1     128          95.31   96.88   97.66
    2     1024         96.88   98.44   98.83
    3     6144         97.40   98.96   99.22
    4     (7808*)      97.66   99.22   99.41
    8     16x2^20      98.05   99.61   99.71
    16    6x2^30       98.18   99.74   99.80

(*) the paper's n=4 row disagrees with its own formula 32*n*2^(2n) =
32768; we enumerate the formula's universe.

The paper sampled its n = 8 and 16 rows; since PR 2 the reproduction
computes them exactly -- n = 8 by streaming the word-packed exhaustive
sweep through the batched gate-level engine, n = 16 (a 2**32-pair
operand space) by the carry-state transfer matrix.  This benchmark
gates that exactness and its cost:

* every default row reports ``exhaustive`` provenance (no sampling);
* the n = 8 gate-level sweep finishes under ``BENCH_TABLE2_BUDGET``
  seconds and beats the functional per-case loop it replaced by
  ``BENCH_TABLE2_SPEEDUP``x;
* the gate sweep and the transfer matrix agree bit-for-bit at n = 8;
* sharded (2-worker) and single-process sweeps agree bit-for-bit.
"""

import os
import time

import pytest

from repro.coverage.engine import (
    evaluate_adder,
    evaluate_divider,
    evaluate_multiplier,
    theoretical_situations,
)
from repro.coverage.report import PAPER_TABLE2, render_table1, render_table2

ALL_WIDTHS = (1, 2, 3, 4, 8, 16)

#: Wall-clock budget for the default (exact) n = 8 evaluation.  Local
#: runs comfortably fit the default; shared CI runners can relax it.
EXACT_BUDGET = float(os.environ.get("BENCH_TABLE2_BUDGET", "5.0"))
#: Speedup floor of the batched gate sweep over the functional per-case
#: loop at n = 8 (locally ~25x; relaxed on shared runners).
SPEEDUP_FLOOR = float(os.environ.get("BENCH_TABLE2_SPEEDUP", "5.0"))
#: Wall-clock budget for the exact n = 8 multiplier *and* divider
#: sweeps together (locally ~2 s: the mul architecture carries three
#: 28-cell array replicas, the divider eight unrolled 9-cell chains).
MULDIV_BUDGET = float(os.environ.get("BENCH_TABLE2_MULDIV_BUDGET", "15.0"))


def _stats_key(stats):
    return {
        name: (
            s.situations,
            s.covered,
            s.observable_errors,
            s.detected_while_correct,
            s.per_case_min,
            s.per_case_max,
        )
        for name, s in stats.items()
    }


@pytest.fixture(scope="module")
def results():
    return {width: evaluate_adder(width) for width in ALL_WIDTHS}


def test_table2_regenerates(results, once):
    table = once(render_table2, widths=ALL_WIDTHS, results=results)
    print()
    print(table)
    assert "Table 2" in table
    assert "sampled" not in table


def test_table2_every_width_exact(results):
    """Acceptance: no sampling anywhere on the default path."""
    for width, stats in results.items():
        for s in stats.values():
            assert s.exhaustive, (width, s.technique)
            assert s.situations == theoretical_situations("add", width)
    assert results[8]["tech1"].method == "gate"
    assert results[16]["tech1"].method == "transfer"


def test_table2_n8_exact_under_budget(results, record):
    """The 16.7M-situation n = 8 universe, exactly, within budget."""
    start = time.perf_counter()
    fresh = evaluate_adder(8)
    t_gate = time.perf_counter() - start
    assert _stats_key(fresh) == _stats_key(results[8])

    start = time.perf_counter()
    functional = evaluate_adder(8, method="functional", workers=1)
    t_functional = time.perf_counter() - start
    assert _stats_key(functional) == _stats_key(results[8])

    print()
    print(f"n=8 exact Table 2 column ({fresh['tech1'].situations} situations)")
    print(f"  functional per-case loop  {t_functional * 1e3:9.1f}ms")
    print(
        f"  batched gate-level sweep  {t_gate * 1e3:9.1f}ms"
        f"  ({t_functional / t_gate:.1f}x)"
    )
    record("n8_gate_sweep", t_gate, speedup_vs_functional=t_functional / t_gate)
    record("n8_functional", t_functional)
    assert t_gate < EXACT_BUDGET, f"n=8 exact sweep took {t_gate:.2f}s"
    assert t_functional / t_gate >= SPEEDUP_FLOOR, (
        f"gate sweep only {t_functional / t_gate:.1f}x faster than the "
        f"functional loop"
    )


def test_table2_gate_transfer_bit_identical(results):
    transfer = evaluate_adder(8, method="transfer")
    assert _stats_key(transfer) == _stats_key(results[8])


def test_table2_shard_invariance(results):
    sharded = evaluate_adder(8, workers=2)
    assert sharded["tech1"].method == "gate"
    assert _stats_key(sharded) == _stats_key(results[8])


def test_table2_n16_exact_is_cheap(results):
    start = time.perf_counter()
    wide = evaluate_adder(16)
    t_wide = time.perf_counter() - start
    assert _stats_key(wide) == _stats_key(results[16])
    assert wide["tech1"].situations == 32 * 16 * (1 << 32)
    print()
    print(
        f"n=16 exact Table 2 column ({wide['tech1'].situations} situations) "
        f"via transfer matrix: {t_wide * 1e3:.1f}ms"
    )
    assert t_wide < 5.0


def test_table2_exhaustive_situation_counts(results):
    assert results[1]["tech1"].situations == 128
    assert results[2]["tech1"].situations == 1024
    assert results[3]["tech1"].situations == 6144
    assert results[4]["tech1"].situations == 32768  # the formula's value


def test_table2_monotone_growth(results):
    for technique in ("tech1", "tech2", "both"):
        values = [results[w][technique].coverage for w in ALL_WIDTHS]
        assert values == sorted(values)


def test_table2_orderings_every_width(results):
    for width in ALL_WIDTHS:
        stats = results[width]
        assert stats["tech2"].coverage >= stats["tech1"].coverage
        assert stats["both"].coverage >= stats["tech2"].coverage


def test_table2_within_band_of_paper(results):
    for width in ALL_WIDTHS:
        paper = PAPER_TABLE2[width]
        for technique, published in zip(("tech1", "tech2", "both"), paper):
            measured = results[width][technique].coverage_percent
            assert abs(measured - published) < 3.5, (width, technique)


def test_table2_large_width_high_coverage(results):
    assert results[16]["both"].coverage_percent > 98.5


# ----------------------------------------------------------------------
# Multiplier / divider exactness gates (PR 3): the n = 8 array rows are
# computed by the batched gate-level sweep, never sampled.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def muldiv_results():
    timings = {}
    out = {}
    for op, evaluate in (("mul", evaluate_multiplier), ("div", evaluate_divider)):
        start = time.perf_counter()
        out[op] = evaluate(8)
        timings[op] = time.perf_counter() - start
    out["timings"] = timings
    return out


def test_muldiv_n8_exact_gate_under_budget(muldiv_results):
    """Acceptance: wide mul/div rows are exact gate sweeps, in budget."""
    timings = muldiv_results["timings"]
    for op in ("mul", "div"):
        for s in muldiv_results[op].values():
            assert s.method == "gate", (op, s.technique)
            assert s.exhaustive, (op, s.technique)
        assert muldiv_results[op]["tech1"].situations == theoretical_situations(op, 8)
    print()
    print(
        f"n=8 exact mul sweep {timings['mul'] * 1e3:9.1f}ms "
        f"({muldiv_results['mul']['tech1'].situations} situations)"
    )
    print(
        f"n=8 exact div sweep {timings['div'] * 1e3:9.1f}ms "
        f"({muldiv_results['div']['tech1'].situations} situations, "
        f"zero divisors masked)"
    )
    total = timings["mul"] + timings["div"]
    assert total < MULDIV_BUDGET, f"mul+div n=8 sweeps took {total:.2f}s"


def test_muldiv_n8_shard_invariance(muldiv_results):
    sharded_mul = evaluate_multiplier(8, workers=2)
    sharded_div = evaluate_divider(8, workers=2)
    assert _stats_key(sharded_mul) == _stats_key(muldiv_results["mul"])
    assert _stats_key(sharded_div) == _stats_key(muldiv_results["div"])


def test_muldiv_gate_matches_functional_at_n6(once):
    """Exactness cross-check at a width the functional loop still
    affords: the two independent evaluators agree integer for integer
    (n = 8 parity for add/sub is covered above; mul/div n = 8
    functional passes take minutes, so the bench pins n = 6)."""

    def compare():
        for evaluate in (evaluate_multiplier, evaluate_divider):
            gate = evaluate(6, method="gate")
            functional = evaluate(6, method="functional")
            assert _stats_key(gate) == _stats_key(functional)
        return True

    assert once(compare)


def test_table1_width8_fully_exact(muldiv_results, once):
    """The default Table 1 at n = 8 carries gate-sweep provenance for
    every operator -- no sampled cells anywhere."""
    results = {
        "add": evaluate_adder(8),
        "mul": muldiv_results["mul"],
        "div": muldiv_results["div"],
    }
    table = once(render_table1, width=8, operators=tuple(results), results=results)
    print()
    print(table)
    assert "sampled" not in table
    assert table.count("exhaustive/gate-sweep") >= 8
