"""Benchmark regenerating Table 2: adder coverage vs operand width.

Paper reference:

    bits  situations   Tech1   Tech2   Both
    1     128          95.31   96.88   97.66
    2     1024         96.88   98.44   98.83
    3     6144         97.40   98.96   99.22
    4     (7808*)      97.66   99.22   99.41
    8     16x2^20      98.05   99.61   99.71
    16    6x2^30       98.18   99.74   99.80

(*) the paper's n=4 row disagrees with its own formula 32*n*2^(2n) =
32768; we enumerate the formula's universe exhaustively for n <= 4 and
sample n = 8 and 16, mirroring the paper's own sampling at large n.
"""

import pytest

from repro.coverage.engine import evaluate_adder
from repro.coverage.report import PAPER_TABLE2, render_table2

EXHAUSTIVE_WIDTHS = (1, 2, 3, 4)
SAMPLED_WIDTHS = (8, 16)
SAMPLES = 2048


@pytest.fixture(scope="module")
def results():
    out = {}
    for width in EXHAUSTIVE_WIDTHS:
        out[width] = evaluate_adder(width)
    for width in SAMPLED_WIDTHS:
        out[width] = evaluate_adder(width, samples=SAMPLES)
    return out


def test_table2_regenerates(results, once):
    table = once(
        render_table2,
        widths=EXHAUSTIVE_WIDTHS + SAMPLED_WIDTHS,
        results=results,
    )
    print()
    print(table)
    assert "Table 2" in table


def test_table2_exhaustive_situation_counts(results):
    assert results[1]["tech1"].situations == 128
    assert results[2]["tech1"].situations == 1024
    assert results[3]["tech1"].situations == 6144
    assert results[4]["tech1"].situations == 32768  # the formula's value


def test_table2_monotone_growth(results):
    for technique in ("tech1", "tech2", "both"):
        values = [results[w][technique].coverage for w in EXHAUSTIVE_WIDTHS]
        assert values == sorted(values)


def test_table2_orderings_every_width(results):
    for width in EXHAUSTIVE_WIDTHS + SAMPLED_WIDTHS:
        stats = results[width]
        assert stats["tech2"].coverage >= stats["tech1"].coverage
        assert stats["both"].coverage >= stats["tech2"].coverage


def test_table2_within_band_of_paper(results):
    for width in EXHAUSTIVE_WIDTHS:
        paper = PAPER_TABLE2[width]
        for technique, published in zip(("tech1", "tech2", "both"), paper):
            measured = results[width][technique].coverage_percent
            assert abs(measured - published) < 3.5, (width, technique)


def test_table2_large_width_high_coverage(results):
    assert results[16]["both"].coverage_percent > 98.5
