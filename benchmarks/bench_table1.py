"""Benchmark regenerating Table 1: overloading techniques and coverage.

Paper reference (Table 1):

    add: tech1 97.25 / tech2 98.81 / both 99.11
    sub: tech1 96.85 / tech2 94.01 / both 99.58
    mul: tech1 96.22 / tech2 96.38 / both 97.43
    div: tech1 94.33 / tech2 97.16 / (both not published)

Widths/samples are sized so the whole table regenerates in seconds; the
structural claims (orderings, high coverage) are asserted, the absolute
percentages are printed next to the paper's.
"""

import pytest

from repro.coverage.engine import evaluate_operator
from repro.coverage.report import render_table1

#: (operator, width, samples) sized for bench runtime.
CONFIG = {
    "add": (8, 2048),
    "sub": (8, 2048),
    "mul": (6, 1024),
    "div": (6, 1024),
}


@pytest.fixture(scope="module")
def results():
    return {
        op: evaluate_operator(op, width, samples=samples, exhaustive_limit=1 << 14)
        for op, (width, samples) in CONFIG.items()
    }


def test_table1_regenerates(results, once):
    table = once(
        render_table1,
        width=8,
        operators=tuple(CONFIG),
        results=results,
    )
    print()
    print(table)
    assert "Table 1" in table


def test_table1_add_orderings(results):
    add = results["add"]
    assert add["both"].coverage >= add["tech2"].coverage >= add["tech1"].coverage
    assert add["tech1"].coverage > 0.93


def test_table1_sub_both_best(results):
    sub = results["sub"]
    assert sub["both"].coverage >= max(sub["tech1"].coverage, sub["tech2"].coverage)
    assert sub["both"].coverage > 0.97


def test_table1_mul_techniques_comparable(results):
    mul = results["mul"]
    assert abs(mul["tech1"].coverage - mul["tech2"].coverage) < 0.05
    assert mul["both"].coverage >= mul["tech1"].coverage


def test_table1_div_range_check_wins(results):
    """Paper: div tech2 (97.16) beats tech1 (94.33)."""
    div = results["div"]
    assert div["tech2"].coverage >= div["tech1"].coverage
