"""Ablation A2: same-unit vs different-unit check allocation.

Paper Section 2.1: with multiple functional units and a proper
allocation policy the methodology reaches 100 % fault coverage; on a
monoprocessor (or resource-limited hardware) the check may share the
faulty unit and worst-case coverage drops to the Table 2 band.

This ablation runs the *same* fault universe through the SCK layer
under both allocations and measures the escape rates.
"""

import pytest

from repro.arch.cell import faulty_cell_library
from repro.core.backends import HardwareBackend
from repro.core.context import SCKContext
from repro.core.value import SCK

WIDTH = 8
OPERANDS = [(a, 17) for a in range(-60, 60, 7)] + [(23, b) for b in range(-60, 60, 11)]


def _escapes(check_allocation: str) -> dict:
    escapes = 0
    detected = 0
    wrong = 0
    for cell in faulty_cell_library():
        for position in (0, 3, 7):
            backend = HardwareBackend(WIDTH)
            backend.alu.inject_fault("adder", cell, position=position)
            with SCKContext(
                width=WIDTH, backend=backend, check_allocation=check_allocation
            ):
                for a, b in OPERANDS:
                    result = SCK(a) + SCK(b)
                    expected = SCK(a + b).value
                    if result.value != expected:
                        wrong += 1
                        if result.error:
                            detected += 1
                        else:
                            escapes += 1
    return {"wrong": wrong, "detected": detected, "escapes": escapes}


@pytest.fixture(scope="module")
def same_unit():
    return _escapes("same_unit")


@pytest.fixture(scope="module")
def different_unit():
    return _escapes("different_unit")


def test_ablation_allocation(same_unit, different_unit, once):
    once(lambda: None)
    print()
    print("A2 -- check-operation allocation (8-bit adds, full 32-fault universe)")
    for name, stats in (("same unit", same_unit), ("different unit", different_unit)):
        total = stats["wrong"] or 1
        print(
            f"  {name:15s}: {stats['wrong']} erroneous results, "
            f"{stats['detected']} detected, {stats['escapes']} escaped "
            f"({100 * (1 - stats['escapes'] / total):.2f}% of errors caught)"
        )
    # Different units: the paper's 100% guarantee.
    assert different_unit["escapes"] == 0
    assert different_unit["wrong"] > 0
    # Same unit: worst case leaves some escapes, but far fewer than
    # detections (the Table 2 band).
    assert same_unit["escapes"] > 0
    assert same_unit["detected"] > 10 * same_unit["escapes"]
