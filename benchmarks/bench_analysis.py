"""Acceptance gate of the static-analysis collapsing layer.

The RCA-8 exhaustive stuck-at campaign runs three ways -- uncollapsed,
equivalence-collapsed and dominance-collapsed -- with fault dropping
off, so the simulated-run counts are deterministic properties of the
netlist structure rather than of vector luck.  Dominance must cut the
simulated fault count by at least ``BENCH_ANALYSIS_SPEEDUP`` (the PR's
acceptance criterion derives from the >= 25% class reduction: 968 flat
runs vs 712 dominance runs is a 1.36x work ratio), while the per-fault
detection verdicts stay bit-identical to the flat run.

The recorded ``speedup`` ratio feeds the trajectory gate
(`check_trajectory.py`); the committed baseline pins it at the 4/3
floor implied by the 25% reduction criterion rather than the measured
1.36x, because the contract is the reduction bound, not this adder.
"""

import os
import time

import numpy as np

from repro.analysis.collapse import collapse_faults
from repro.gates.builders import ripple_carry_adder
from repro.gates.engine import engine_for

#: Acceptance floor of flat-vs-dominance simulated-run ratio on RCA-8;
#: env-overridable for exotic fault universes.
ANALYSIS_SPEEDUP_FLOOR = float(os.environ.get("BENCH_ANALYSIS_SPEEDUP", "1.3333"))

WIDTH = 8


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_dominance_collapse_speedup_rca8(record):
    netlist = ripple_carry_adder(WIDTH)
    engine = engine_for(netlist)

    flat, flat_s = _timed(
        lambda: engine.campaign(collapse=False, fault_dropping=False)
    )
    dom, dom_s = _timed(
        lambda: engine.campaign(collapse="dominance", fault_dropping=False)
    )

    assert np.array_equal(flat.detected, dom.detected)
    cmap = collapse_faults(netlist, mode="dominance")
    assert cmap.reduction >= 0.25, cmap.summary()

    speedup = flat.n_simulated_runs / max(dom.n_simulated_runs, 1)
    print(
        f"\nRCA-{WIDTH} exhaustive campaign: flat {flat.n_simulated_runs} runs "
        f"({flat_s:.3f}s), dominance {dom.n_simulated_runs} runs "
        f"({dom_s:.3f}s) -> {speedup:.2f}x fewer runs; {cmap.summary()}"
    )
    record(
        f"rca{WIDTH}_dominance_vs_flat",
        dom_s,
        speedup=speedup,
        flat_runs=flat.n_simulated_runs,
        dominance_runs=dom.n_simulated_runs,
        reduction=cmap.reduction,
        flat_seconds=flat_s,
    )
    assert speedup >= ANALYSIS_SPEEDUP_FLOOR, (
        f"dominance cut simulated runs by {speedup:.2f}x, "
        f"floor {ANALYSIS_SPEEDUP_FLOOR}x"
    )
