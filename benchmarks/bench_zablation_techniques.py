"""Ablation A1: checking-technique strength vs cost (paper Section 3.2).

The paper remarks that the stronger control condition
``(z-y==x)&&(z-x==y)`` "prov[es] higher fault coverage and hardware
cost".  This ablation quantifies both halves of the trade-off on the
same universe: coverage from the engine, hardware cost from the area
model applied to a single checked addition.
"""

import pytest

from repro.codesign.allocation import bind
from repro.codesign.area import estimate_area
from repro.codesign.dfg import DataflowGraph
from repro.codesign.scheduling import asap_schedule
from repro.codesign.sck_transform import enrich_with_sck
from repro.coverage.engine import evaluate_adder


@pytest.fixture(scope="module")
def coverage():
    return evaluate_adder(4)


def _checked_add_area(technique: str) -> int:
    graph = DataflowGraph("one_add")
    graph.add_input("a")
    graph.add_input("b")
    graph.add_op("s", "add", ("a", "b"))
    graph.add_output("y", "s")
    enriched = enrich_with_sck(graph, {"add": technique})
    return estimate_area(bind(asap_schedule(enriched))).total


def test_ablation_coverage_vs_cost(coverage, once):
    areas = once(lambda: {t: _checked_add_area(t) for t in ("tech1", "tech2", "both")})
    print()
    print("A1 -- technique strength vs cost (4-bit adder universe)")
    for technique in ("tech1", "tech2", "both"):
        stats = coverage[technique]
        print(
            f"  {technique:5s}: coverage {stats.coverage_percent:6.2f}%  "
            f"single-add datapath {areas[technique]} slices"
        )
    # Both costs more area than either single technique...
    assert areas["both"] > areas["tech1"]
    assert areas["both"] > areas["tech2"]
    # ...and buys the highest coverage.
    assert coverage["both"].coverage >= coverage["tech2"].coverage
    assert coverage["both"].coverage >= coverage["tech1"].coverage


def test_ablation_marginal_return_shrinks(coverage):
    """The second technique's coverage gain is smaller than the first's
    (diminishing returns, the premise of the per-operator trade-off)."""
    t1 = coverage["tech1"].coverage
    t2 = coverage["tech2"].coverage
    both = coverage["both"].coverage
    first_gain = max(t1, t2)
    second_gain = both - first_gain
    assert second_gain < first_gain
