"""Benchmark gating the test-generation subsystem's compaction claim.

The n = 8 ripple-carry adder's exhaustive stuck-at sweep applies
``2**17 = 131072`` vectors.  The ATPG pipeline must reach *exactly* the
same per-fault detection -- bit-identical to the campaign engine's
verdicts -- from a compact set at least ``COMPACTION_FLOOR``x smaller
(the acceptance criterion is 10x; greedy cover lands near 13 vectors,
a ~10000x reduction), within ``BENCH_TPG_BUDGET`` seconds.

Also prints the per-unit generation table at n = 4 so the benchmark log
doubles as the ATPG companion to the Table 2 report.
"""

import os
import time

import numpy as np
import pytest

from repro.gates.builders import ripple_carry_adder
from repro.gates.engine import run_stuck_at_campaign
from repro.tpg import (
    generate_tests,
    render_tpg_report,
    replay_detected,
    tpg_unit_results,
)

#: Wall-clock budget of the whole n = 8 pipeline (campaign + ATPG +
#: compaction + replay).  Local runs take well under a second; shared
#: CI runners can relax it.
BUDGET = float(os.environ.get("BENCH_TPG_BUDGET", "10.0"))
#: Required size reduction of the compact set vs the exhaustive sweep.
COMPACTION_FLOOR = float(os.environ.get("BENCH_TPG_COMPACTION", "10.0"))


@pytest.fixture(scope="module")
def rca8():
    return ripple_carry_adder(8)


def test_rca8_compact_set_10x_smaller_at_equal_coverage(rca8, once, record):
    start = time.perf_counter()
    campaign = run_stuck_at_campaign(rca8)
    t_campaign = time.perf_counter() - start

    start = time.perf_counter()
    result = once(generate_tests, rca8)
    t_atpg = time.perf_counter() - start
    compact = result.compact

    # Equal coverage, bit for bit: the compact set's claim matches the
    # exhaustive campaign's per-fault verdicts exactly...
    assert np.array_equal(compact.detected, np.asarray(campaign.detected))
    # ...and replaying the compact set through the campaign engine
    # reproduces the claim exactly.
    start = time.perf_counter()
    replay = replay_detected(rca8, compact.vectors)
    t_replay = time.perf_counter() - start
    assert np.array_equal(replay, compact.detected)

    ratio = campaign.n_vectors / max(1, compact.n_tests)
    print()
    print(f"RCA-8 stuck-at test generation ({campaign.n_faults} faults)")
    print(f"  exhaustive campaign   {campaign.n_vectors:7d} vectors  "
          f"{t_campaign * 1e3:8.1f}ms")
    print(f"  ATPG + greedy cover   {compact.n_tests:7d} vectors  "
          f"{t_atpg * 1e3:8.1f}ms  ({ratio:.0f}x smaller)")
    print(f"  compact-set replay    {'bit-identical':>13s}  "
          f"{t_replay * 1e3:8.1f}ms")
    record("rca8_campaign", t_campaign)
    record("rca8_atpg_greedy", t_atpg, compaction=ratio)
    record("rca8_replay", t_replay)
    assert ratio >= COMPACTION_FLOOR, (
        f"compact set only {ratio:.1f}x smaller than the exhaustive sweep"
    )
    total = t_campaign + t_atpg + t_replay
    assert total < BUDGET, f"n=8 TPG pipeline took {total:.2f}s"


def test_unit_report_regenerates(once):
    results = once(tpg_unit_results, width=4)
    table = render_tpg_report(width=4, results=results)
    print()
    print(table)
    assert "compact" in table
    for unit, result in results.items():
        assert result.exhausted, unit
        # Every unit's compact set beats the floor against its own
        # constrained universe.
        tried = result.space.valid_count(0, result.space.n_words)
        assert result.compact.n_tests * COMPACTION_FLOOR <= tried, unit
