"""Benchmark regenerating the paper's in-text 2-bit adder analysis.

Paper reference (Section 4.1, prose): out of 1024 situations the 2-bit
adder shows 216 observable errors; the technique detects the fault even
though the produced result is correct in 352 (Tech1), 384 (Tech2) and
428 (both) situations; across fault cases the per-case coverage spans
[81.90 %, 99.87 %].
"""

import pytest

from repro.coverage.engine import evaluate_adder
from repro.coverage.report import render_two_bit_analysis


@pytest.fixture(scope="module")
def stats():
    return evaluate_adder(2)


def test_two_bit_report(stats, once):
    text = once(render_two_bit_analysis, stats=stats)
    print()
    print(text)
    assert "1024" in text


def test_two_bit_universe(stats):
    assert stats["tech1"].situations == 1024


def test_detection_even_when_correct(stats):
    """The early-detection property: strictly positive, ordered, and in
    the paper's few-hundreds magnitude."""
    t1 = stats["tech1"].detected_while_correct
    t2 = stats["tech2"].detected_while_correct
    both = stats["both"].detected_while_correct
    assert 0 < t1 < t2 < both
    assert 100 < both < 600


def test_observable_errors_magnitude(stats):
    """Hundreds of observable errors out of 1024 (paper: 216)."""
    assert 150 < stats["both"].observable_errors < 450


def test_per_case_range_spans_low_to_perfect(stats):
    both = stats["both"]
    assert both.per_case_min <= 0.85
    assert both.per_case_max == 1.0
