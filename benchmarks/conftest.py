"""Shared benchmark configuration.

Heavy experiments run once per benchmark (rounds=1) -- they are
deterministic simulations, not microbenchmarks, and their value is the
regenerated table, which each bench prints through the ``report``
fixture so ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-vs-measured comparison.

Trajectory recording: ``--json DIR`` makes every bench persist its
per-case timings.  Benches call the ``record`` fixture
(``record(case, seconds, **extra)``); at session end one
``BENCH_<suite>.json`` file per benchmark module (``bench_engine.py``
-> ``BENCH_engine.json``) is written into ``DIR``, stamped with the
active execution backend (:mod:`repro.gates.backends`), so CI can
archive the files as artifacts and regressions become diffable
trajectories instead of pass/fail gates.  Without ``--json`` the
fixture is a no-op.
"""

import json
import os
import platform
import time

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="DIR",
        dest="bench_json_dir",
        help=(
            "write BENCH_<suite>.json benchmark-trajectory files "
            "(per-case timings + active backend) into DIR"
        ),
    )


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def _sparse_summary(plans):
    """Cone-density statistics of the session's sparse/dense decisions."""
    sparse_plans = [p for p in plans if p.source.startswith("sparse")]
    densities = [
        p.cone_density for p in sparse_plans if p.cone_density is not None
    ]
    return {
        "n_decisions": len(sparse_plans),
        "n_sparse": sum(1 for p in sparse_plans if p.sparse),
        "cone_density_min": min(densities) if densities else None,
        "cone_density_max": max(densities) if densities else None,
        "cone_density_mean": (
            sum(densities) / len(densities) if densities else None
        ),
    }


class BenchRecorder:
    """Collects per-case benchmark timings and writes them as JSON."""

    def __init__(self, directory):
        self.directory = directory
        self.suites = {}

    def record(self, suite, case, seconds, **extra):
        entry = {"case": case, "seconds": float(seconds)}
        entry.update(extra)
        self.suites.setdefault(suite, []).append(entry)

    def flush(self):
        if not self.suites:
            return
        from repro.gates.backends import list_backends, resolve_backend_name
        from repro.gates.tune import plan_log
        from repro.obs import registry

        os.makedirs(self.directory, exist_ok=True)
        meta = {
            # allow_auto: REPRO_BACKEND=auto is a valid way to run the
            # bench suite; record the sentinel itself as the session
            # backend, the per-plan records below carry the resolution.
            "backend": resolve_backend_name(allow_auto=True),
            "available_backends": list(list_backends()),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            # Every autotuner resolution made during the session:
            # backend choice + chunking + the reason, per shape.
            "tuning_plans": [plan.to_dict() for plan in plan_log()],
            # Sparse/dense tier summary: how often the cone-sparse path
            # engaged and the cone densities the decisions keyed on.
            "sparse": _sparse_summary(plan_log()),
            # End-of-session telemetry snapshot (store hit rates, event
            # counts, per-backend kernel histograms when profiling on).
            "metrics": registry().snapshot(),
        }
        for suite, cases in self.suites.items():
            path = os.path.join(self.directory, f"BENCH_{suite}.json")
            with open(path, "w") as handle:
                json.dump({"suite": suite, **meta, "cases": cases}, handle, indent=2)
                handle.write("\n")


def pytest_configure(config):
    directory = config.getoption("bench_json_dir")
    config._bench_recorder = BenchRecorder(directory) if directory else None


def pytest_sessionfinish(session):
    recorder = getattr(session.config, "_bench_recorder", None)
    if recorder is not None:
        recorder.flush()


@pytest.fixture
def record(request):
    """Per-case trajectory recording: ``record(case, seconds, **extra)``.

    The suite name derives from the benchmark module (``bench_engine.py``
    records into ``BENCH_engine.json``).  A no-op unless the session was
    started with ``--json DIR``.
    """
    recorder = getattr(request.config, "_bench_recorder", None)
    suite = request.node.fspath.purebasename
    if suite.startswith("bench_"):
        suite = suite[len("bench_") :]

    def _record(case, seconds, **extra):
        if recorder is not None:
            recorder.record(suite, case, seconds, **extra)

    return _record


def pytest_collection_modifyitems(items):
    # Keep table order stable: table1, table2, twobit, table3, figures,
    # ablations.
    items.sort(key=lambda item: item.fspath.basename)
