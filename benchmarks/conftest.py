"""Shared benchmark configuration.

Heavy experiments run once per benchmark (rounds=1) -- they are
deterministic simulations, not microbenchmarks, and their value is the
regenerated table, which each bench prints through the ``report``
fixture so ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-vs-measured comparison.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def pytest_collection_modifyitems(items):
    # Keep table order stable: table1, table2, twobit, table3, figures,
    # ablations.
    items.sort(key=lambda item: item.fspath.basename)
