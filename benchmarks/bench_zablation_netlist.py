"""Ablation A4: sensitivity of Table 2 to the full-adder netlist.

The paper fixes ``num_faults_1bit = 32`` but not the cell schematic.
Both netlists in :mod:`repro.gates.builders` have exactly 32 stem+branch
stuck-at faults, yet their worst-case coverage differs by points: the
five-gate adder exposes an internal propagate net whose faults corrupt
the sum path symmetrically in the nominal and checking operation,
compensating more often.  This bench quantifies that sensitivity --
the calibration evidence behind choosing ``xor3_majority`` as default.
"""

import pytest

from repro.coverage.engine import evaluate_adder

WIDTHS = (1, 2, 3)


@pytest.fixture(scope="module")
def by_netlist():
    return {
        netlist: {w: evaluate_adder(w, cell_netlist=netlist) for w in WIDTHS}
        for netlist in ("xor3_majority", "two_xor")
    }


def test_ablation_netlist(by_netlist, once):
    once(lambda: None)
    print()
    print("A4 -- Table 2 sensitivity to the full-adder schematic")
    print("  width   xor3_majority (T1/T2/B)      two_xor (T1/T2/B)      paper")
    paper = {1: "95.31/96.88/97.66", 2: "96.88/98.44/98.83", 3: "97.40/98.96/99.22"}
    for width in WIDTHS:
        a = by_netlist["xor3_majority"][width]
        b = by_netlist["two_xor"][width]
        fmt = lambda s: "/".join(
            f"{s[t].coverage_percent:.2f}" for t in ("tech1", "tech2", "both")
        )
        print(f"  {width}       {fmt(a):28s}  {fmt(b):21s}  {paper[width]}")


def test_xor3_closer_to_paper(by_netlist):
    from repro.coverage.report import PAPER_TABLE2

    for width in WIDTHS:
        for index, technique in enumerate(("tech1", "tech2", "both")):
            xor3 = by_netlist["xor3_majority"][width][technique].coverage_percent
            two_xor = by_netlist["two_xor"][width][technique].coverage_percent
            published = PAPER_TABLE2[width][index]
            assert abs(xor3 - published) <= abs(two_xor - published)


def test_both_netlists_same_universe_size(by_netlist):
    for netlist in by_netlist:
        assert by_netlist[netlist][2]["tech1"].situations == 1024
