"""Acceptance gate of the content-addressed result store.

The RCA-8 Table 2 column (`evaluate_adder(8)`, the exact 16.7M-situation
gate sweep) runs cold through a fresh store, then warm twice: once
through the filesystem (LRU cleared, `.npz` + checksum verification on
the read path) and once from the in-process LRU.  Both warm runs must
be bit-identical to the cold run, the warm *filesystem* path must be
>= ``BENCH_STORE_SPEEDUP``x faster than the cold compute (the PR's
acceptance criterion: 10x), and the second pass must be pure hits --
no puts, no misses.

The recorded ``speedup`` ratio feeds the trajectory gate
(`check_trajectory.py`); the committed baseline pins it at the 10x
acceptance floor rather than a machine-specific measurement, because
cache-hit ratios vary by orders of magnitude across disks while the
contract does not.
"""

import os
import time

from repro.coverage.engine import evaluate_adder
from repro.store import ResultStore

#: Acceptance floor of the warm (filesystem) path over the cold
#: compute on the RCA-8 column; env-overridable for noisy runners.
STORE_SPEEDUP_FLOOR = float(os.environ.get("BENCH_STORE_SPEEDUP", "10.0"))

WIDTH = 8


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_warm_store_speedup_rca8(tmp_path, record):
    store = ResultStore(tmp_path)

    cold, cold_s = _timed(lambda: evaluate_adder(WIDTH, store=store))
    after_cold = store.stats.snapshot()

    store.clear_lru()  # warm run #1 pays the full filesystem read path
    warm_disk, disk_s = _timed(lambda: evaluate_adder(WIDTH, store=store))
    warm_lru, lru_s = _timed(lambda: evaluate_adder(WIDTH, store=store))

    assert warm_disk == cold
    assert warm_lru == cold
    after_warm = store.stats.snapshot()
    assert after_warm["puts"] == after_cold["puts"]
    assert after_warm["misses"] == after_cold["misses"]

    speedup = cold_s / max(disk_s, 1e-9)
    print(
        f"\nRCA-{WIDTH} column: cold {cold_s:.3f}s, "
        f"warm-disk {disk_s * 1e3:.2f}ms ({speedup:.0f}x), "
        f"warm-lru {lru_s * 1e3:.2f}ms"
    )
    record(
        f"rca{WIDTH}_warm_vs_cold",
        disk_s,
        speedup=speedup,
        cold_seconds=cold_s,
        lru_seconds=lru_s,
    )
    assert speedup >= STORE_SPEEDUP_FLOOR, (
        f"warm store {speedup:.1f}x over cold compute, "
        f"floor {STORE_SPEEDUP_FLOOR}x"
    )
