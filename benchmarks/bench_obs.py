"""Overhead gate of the telemetry subsystem.

The RCA-8 stuck-at campaign runs fully instrumented -- ``REPRO_TRACE``
JSON-lines file, ``REPRO_METRICS`` dump path, kernel-profiling
histograms on -- and uninstrumented, as adjacent A/B pairs over several
repeats.  The overhead statistic is the **median of per-pair CPU-time
ratios**: the two halves of a pair run back to back under the same
machine conditions, so a preemption or frequency dip inflates one
pair's ratio, which the median discards; CPU time (``process_time``)
already excludes scheduler wait and noisy-neighbour steal entirely.
The contract: instrumentation changes *nothing* about the results
(bit-identical ``detected``/``first_detected``) and costs less than
``BENCH_OBS_OVERHEAD`` (default 5%) of campaign CPU time.

The recorded ``speedup`` ratio (uninstrumented over instrumented, so
the floor sits just below 1.0) feeds the trajectory gate
(`check_trajectory.py`); the committed baseline pins it at the
acceptance floor rather than a machine-specific measurement.
"""

import gc
import os
import time

import numpy as np

from repro.gates import builders
from repro.gates.engine import run_stuck_at_campaign
from repro.obs import metrics, trace

#: Maximum tolerated instrumented-over-uninstrumented overhead; the 5%
#: acceptance criterion locally, env-relaxed on noisy shared runners.
OBS_OVERHEAD_CEILING = float(os.environ.get("BENCH_OBS_OVERHEAD", "0.05"))

WIDTH = 8
REPEATS = 13
#: Campaigns per timed sample; one ~7ms campaign is at the mercy of a
#: single scheduler preemption, three amortise it.
INNER = 3


def _run_campaign(net):
    # CPU time, not wall time: the bound is about the *work* telemetry
    # adds, and process_time is immune to the scheduler preemptions and
    # noisy-neighbour steal that dominate wall time on shared runners.
    start = time.process_time()
    result = None
    for _ in range(INNER):
        result = run_stuck_at_campaign(net)
    return result, (time.process_time() - start) / INNER


def test_telemetry_overhead_rca8(tmp_path, monkeypatch, record):
    net = builders.ripple_carry_adder(WIDTH)

    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    monkeypatch.delenv(metrics.METRICS_ENV, raising=False)
    baseline_result, _ = _run_campaign(net)  # warm every cache once

    plain_s = []
    traced_s = []
    traced_result = None
    gc.collect()
    gc.disable()  # uneven collection pauses would bias a 5% bound
    try:
        for repeat in range(REPEATS):
            # Interleaved A/B with the pair order alternating per repeat,
            # so drift (thermal, cache pressure, periodic background
            # load) cannot systematically land on one mode.
            for mode in (("plain", "traced"), ("traced", "plain"))[repeat % 2]:
                if mode == "plain":
                    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
                    monkeypatch.delenv(metrics.METRICS_ENV, raising=False)
                    plain_result, seconds = _run_campaign(net)
                    plain_s.append(seconds)
                else:
                    monkeypatch.setenv(
                        trace.TRACE_ENV, str(tmp_path / f"trace{repeat}.jsonl")
                    )
                    monkeypatch.setenv(
                        metrics.METRICS_ENV, str(tmp_path / "metrics.jsonl")
                    )
                    traced_result, seconds = _run_campaign(net)
                    traced_s.append(seconds)

            assert np.array_equal(plain_result.detected, baseline_result.detected)
    finally:
        gc.enable()

    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    monkeypatch.delenv(metrics.METRICS_ENV, raising=False)

    # Tracing must never change results.
    assert np.array_equal(traced_result.detected, baseline_result.detected)
    assert np.array_equal(
        traced_result.first_detected, baseline_result.first_detected
    )
    assert traced_result.n_simulated_runs == baseline_result.n_simulated_runs

    # The instrumented runs really were instrumented.
    records = trace.read_trace(str(tmp_path / "trace0.jsonl"))
    assert any(r.get("name") == "campaign" for r in records)

    # Per-pair ratios, then the median: pair i's plain and traced halves
    # ran adjacently, so machine drift cancels within the pair and a
    # one-off stall only poisons its own pair.
    ratios = sorted(t / p for t, p in zip(traced_s, plain_s))
    median_ratio = ratios[len(ratios) // 2]
    plain = min(plain_s)
    traced = plain * median_ratio
    overhead = median_ratio - 1.0
    speedup = 1.0 / median_ratio
    print(
        f"\nRCA-{WIDTH} campaign: plain {plain * 1e3:.2f}ms, "
        f"instrumented {traced * 1e3:.2f}ms, overhead {overhead * 100:+.2f}%"
    )
    record(
        f"rca{WIDTH}_instrumented_vs_plain",
        traced,
        speedup=speedup,
        plain_seconds=plain,
        overhead_fraction=overhead,
    )
    assert overhead < OBS_OVERHEAD_CEILING, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds the "
        f"{OBS_OVERHEAD_CEILING * 100:.0f}% ceiling"
    )
