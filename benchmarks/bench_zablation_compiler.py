"""Ablation A3: does the compiler simplify the redundant checks away?

Paper Section 5.1: "analyses have been carried out to verify that the
redundant operations ... are not 'simplified' by the compiler thus
nullifying the operator overloading efforts.  Both code size and
execution times remain almost unmodified."

We compile the SCK-enriched FIR three ways -- unoptimised, with the
safe CSE+DCE pipeline (a production compiler), and with algebraic
identity folding (an over-aggressive compiler) -- then inject the full
adder-fault universe and measure detection.
"""

import pytest

from repro.apps.fir import fir_graph, make_input_streams
from repro.arch.alu import FaultableALU
from repro.arch.cell import effective_faulty_cells
from repro.codesign.sck_transform import enrich_with_sck
from repro.vm.compiler import ERROR_FLAG_ADDR, compile_dfg
from repro.vm.isa import Opcode
from repro.vm.machine import Machine
from repro.vm.optimizer import optimize

SAMPLES = list(range(1, 21))


@pytest.fixture(scope="module")
def programs():
    graph = enrich_with_sck(fir_graph())
    base, memory_map = compile_dfg(graph, len(SAMPLES))
    return {
        "unoptimised": (base, memory_map),
        "safe (CSE+DCE)": (optimize(base), memory_map),
        "algebraic": (optimize(base, algebraic=True), memory_map),
    }


def _memory(memory_map):
    memory = {}
    for name, stream in make_input_streams(SAMPLES).items():
        base = memory_map.stream_for_input(name)
        for k, v in enumerate(stream):
            memory[base + k] = v
    return memory


def _campaign(program, memory_map):
    memory = _memory(memory_map)
    out_base = memory_map.stream_for_output("y")
    golden = Machine(16).run(program, dict(memory))
    golden_out = [golden.memory.get(out_base + k, 0) for k in range(len(SAMPLES))]
    wrong = detected = 0
    for cell in effective_faulty_cells():
        alu = FaultableALU(16)
        alu.inject_fault("adder", cell, position=2)
        run = Machine(16, alu=alu).run(program, dict(memory))
        out = [run.memory.get(out_base + k, 0) for k in range(len(SAMPLES))]
        if out != golden_out:
            wrong += 1
            if run.memory.get(ERROR_FLAG_ADDR, 0):
                detected += 1
    return wrong, detected


def test_ablation_compiler(programs, once):
    rows = once(
        lambda: {
            name: (
                len(program.instructions),
                Machine(16).run(program, _memory(memory_map)).cycles,
                *_campaign(program, memory_map),
            )
            for name, (program, memory_map) in programs.items()
        }
    )
    print()
    print("A3 -- compiler pipelines over the SCK-enriched FIR")
    for name, (instructions, cycles, wrong, detected) in rows.items():
        rate = 100 * detected / wrong if wrong else 100.0
        print(
            f"  {name:15s}: {instructions:3d} instructions, {cycles:5d} cycles, "
            f"{detected}/{wrong} corruptions detected ({rate:.0f}%)"
        )
    base_instr, base_cycles, base_wrong, base_detected = rows["unoptimised"]
    safe_instr, safe_cycles, safe_wrong, safe_detected = rows["safe (CSE+DCE)"]
    alg_instr, alg_cycles, alg_wrong, alg_detected = rows["algebraic"]
    # Safe pipeline: "almost unmodified" and detection intact.
    assert safe_instr >= 0.85 * base_instr
    assert safe_wrong > 0 and safe_detected / safe_wrong >= 0.9 * (
        base_detected / base_wrong
    )
    # Aggressive pipeline: smaller/faster, and detection visibly
    # degraded -- the additions' inverse checks are folded away (their
    # comparators become constant false).  Multiplication checks still
    # catch many adder faults because their check-summation itself runs
    # on the faulty adder, so the drop is partial, not total.
    assert alg_cycles < safe_cycles
    assert alg_wrong > 0
    assert alg_detected / alg_wrong <= (safe_detected / safe_wrong) - 0.1


def test_checks_survive_safe_pipeline(programs):
    base, _ = programs["unoptimised"]
    safe, _ = programs["safe (CSE+DCE)"]
    count = lambda p: sum(1 for i in p.instructions if i.opcode is Opcode.CMPNE)
    assert count(safe) == count(base)


def test_algebraic_removes_check_muls(programs):
    base, _ = programs["unoptimised"]
    aggressive, _ = programs["algebraic"]
    muls = lambda p: sum(1 for i in p.instructions if i.opcode is Opcode.MUL)
    assert muls(aggressive) <= muls(base)
