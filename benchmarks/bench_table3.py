"""Benchmark regenerating Table 3: the FIR through the co-design flow.

Paper reference:

    Hardware                       latency        clock     CLB slices
    FIR            min area        2 + 7n         20.00     412
                   min latency     2 + 5n         20.00     477
    FIR with SCK   min area        2 + 10n        16.67     1926
                   min latency     2 + 5n         20.00     1593
    FIR embedded   min area        2 + 9n         15.38     634
                   min latency     2 + 5n         20.00     861

    Software                       exe time (s)   exe size (KB)
    FIR                            6.83           889
    FIR with SCK                   10.02          893
    FIR embedded SCK               7.90           889
"""

import pytest

from repro.apps.fir import fir_graph
from repro.codesign.flow import ReliableCoDesignFlow
from repro.codesign.report import render_table3


@pytest.fixture(scope="module")
def results():
    return ReliableCoDesignFlow(fir_graph(), samples=20_000_000).run()


def test_table3_regenerates(results, once):
    table = once(render_table3, results=results)
    print()
    print(table)
    assert "Table 3" in table


def test_latency_formulas_match_paper(results):
    assert results["plain"].hw_min_area.latency_formula == "2 + 7n"
    assert results["plain"].hw_min_latency.latency_formula == "2 + 5n"
    assert results["sck"].hw_min_area.latency_formula == "2 + 10n"
    assert results["sck"].hw_min_latency.latency_formula == "2 + 5n"
    assert results["embedded"].hw_min_latency.latency_formula == "2 + 5n"


def test_clock_degradation_pattern(results):
    """Min-area checked variants close timing below plain's clock; all
    min-latency variants stay near it (paper: 20 vs 16.67/15.38 MHz)."""
    plain_clock = results["plain"].hw_min_area.frequency_mhz
    assert results["sck"].hw_min_area.frequency_mhz < plain_clock
    assert results["embedded"].hw_min_area.frequency_mhz < plain_clock
    for variant in ("plain", "sck", "embedded"):
        assert results[variant].hw_min_latency.frequency_mhz >= 0.75 * plain_clock


def test_area_overhead_bands(results):
    """SCK in x2-x6 of plain, embedded in x1.2-x2.2 (paper: x4.67/x1.54
    min-area, x3.34/x1.81 min-latency)."""
    for objective in ("hw_min_area", "hw_min_latency"):
        plain = getattr(results["plain"], objective).slices
        sck = getattr(results["sck"], objective).slices
        embedded = getattr(results["embedded"], objective).slices
        assert 2.0 < sck / plain < 6.0
        assert 1.2 < embedded / plain < 2.2


def test_software_overheads(results):
    """Time: SCK > embedded > plain; size: SCK +4 KB (paper 893 vs 889)."""
    plain = results["plain"].software
    sck = results["sck"].software
    embedded = results["embedded"].software
    assert plain.seconds < embedded.seconds < sck.seconds
    assert 1.05 < embedded.seconds / plain.seconds < 1.45
    assert 1.5 < sck.seconds / plain.seconds < 2.6
    assert sck.image_kilobytes - plain.image_kilobytes >= 4.0
    assert abs(embedded.image_kilobytes - plain.image_kilobytes) < 1.0


def test_reliability_claims(results):
    assert results["sck"].hw_min_latency.fully_separated
    assert not results["sck"].hw_min_area.fully_separated
