"""Acceptance gates of the cone-sparse tier and incremental recompute.

Two contracts from the sparse-execution PR, both asserted on
bit-identity *before* any timing gate:

* ``sparse_vs_dense_rca8`` -- the RCA-8 whole-universe campaign under
  the cone-sparse schedule must beat the dense fused sweep by
  ``BENCH_SPARSE_SPEEDUP`` (acceptance: 1.5x).  Both paths run warm
  (schedule caches populated) and take the best of several repeats, so
  the ratio measures the steady-state edit-simulate loop, not one-shot
  setup.
* ``incremental_vs_scratch`` -- after a single-gate edit, the
  incremental campaign must beat a from-scratch campaign by
  ``BENCH_INCREMENTAL_SPEEDUP`` (acceptance: 5x) while re-simulating
  only the classes whose reach intersects the edit's dirty cone.  The
  workload is two independent ripple-carry blocks in one netlist: the
  edit dirties one block's low sum bit, so the provably-unaffected
  second block -- including its deep-detection faults -- merges from
  the old result untouched.

The recorded ``speedup`` ratios feed the trajectory gate
(`check_trajectory.py`); the committed baseline pins them at the
acceptance floors rather than machine-specific measurements.
"""

import os
import time

import numpy as np

from repro.faults.incremental import incremental_stuck_at_campaign
from repro.gates import builders
from repro.gates.engine import run_stuck_at_campaign
from repro.gates.netlist import CellType, Netlist

#: Acceptance floors; env-overridable for noisy shared runners.
SPARSE_SPEEDUP_FLOOR = float(os.environ.get("BENCH_SPARSE_SPEEDUP", "1.5"))
INCREMENTAL_SPEEDUP_FLOOR = float(
    os.environ.get("BENCH_INCREMENTAL_SPEEDUP", "5.0")
)

WIDTH = 8
REPEATS = 9


def _best(fn, repeats=REPEATS):
    """Best-of-N wall time of ``fn()`` -- the least-noise estimator for
    sub-10ms deterministic workloads on shared runners."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def dual_rca(width: int) -> Netlist:
    """Two independent ``width``-bit ripple-carry adders, one netlist.

    The blocks share no nets, so an edit inside one block provably
    cannot disturb the other -- the incremental recompute's best case,
    with the second block contributing the expensive deep-detection
    faults a scratch run must still walk the vector space for.
    """
    nl = Netlist(f"dualrca{width}")
    for blk in ("u", "v"):
        a = [nl.add_input(f"{blk}a{i}") for i in range(width)]
        b = [nl.add_input(f"{blk}b{i}") for i in range(width)]
        carry = nl.add_input(f"{blk}cin")
        for i in range(width):
            t = f"{blk}fa{i}"
            nl.add_gate(CellType.XOR, [a[i], b[i]], f"{t}_p", name=f"{t}_x1")
            nl.add_gate(CellType.XOR, [f"{t}_p", carry], f"{t}_s", name=f"{t}_x2")
            nl.add_gate(CellType.AND, [a[i], b[i]], f"{t}_g1", name=f"{t}_a1")
            nl.add_gate(CellType.AND, [f"{t}_p", carry], f"{t}_g2", name=f"{t}_a2")
            nl.add_gate(
                CellType.OR, [f"{t}_g1", f"{t}_g2"], f"{t}_cout", name=f"{t}_o1"
            )
            nl.mark_output(f"{t}_s")
            carry = f"{t}_cout"
        nl.mark_output(carry)
    return nl


def test_sparse_vs_dense_rca8(record):
    netlist = builders.ripple_carry_adder(WIDTH)

    dense = run_stuck_at_campaign(netlist, backend="fused", sparse=False)
    sparse = run_stuck_at_campaign(netlist, backend="fused", sparse=True)
    assert np.array_equal(dense.detected, sparse.detected)
    assert np.array_equal(dense.first_detected, sparse.first_detected)
    assert dense.faults == sparse.faults
    assert dense.n_vectors == sparse.n_vectors

    dense_s = _best(
        lambda: run_stuck_at_campaign(netlist, backend="fused", sparse=False)
    )
    sparse_s = _best(
        lambda: run_stuck_at_campaign(netlist, backend="fused", sparse=True)
    )
    speedup = dense_s / max(sparse_s, 1e-9)
    print(
        f"\nRCA-{WIDTH} whole universe: dense {dense_s * 1e3:.2f}ms, "
        f"sparse {sparse_s * 1e3:.2f}ms ({speedup:.2f}x), bit-identical"
    )
    record(
        f"sparse_vs_dense_rca{WIDTH}",
        sparse_s,
        speedup=speedup,
        dense_seconds=dense_s,
    )
    assert speedup >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse {speedup:.2f}x over dense fused, "
        f"floor {SPARSE_SPEEDUP_FLOOR}x"
    )


def test_incremental_vs_scratch_single_gate_edit(record):
    old = dual_rca(4)
    new = old.copy()
    new.replace_gate("ufa0_x2", cell_type=CellType.XNOR)

    old_result = run_stuck_at_campaign(old)
    inc = incremental_stuck_at_campaign(old, new, old_result=old_result)
    scratch = run_stuck_at_campaign(new)
    assert np.array_equal(inc.result.detected, scratch.detected)
    assert np.array_equal(inc.result.first_detected, scratch.first_detected)
    assert inc.result.faults == scratch.faults
    assert inc.result.n_vectors == scratch.n_vectors
    # Only the edit's cone is re-simulated: every re-run class reaches
    # the dirtied output, everything else merges from the old result.
    assert not inc.scratch
    assert inc.n_resimulated_classes < len(scratch.groups) // 4
    assert inc.reuse_fraction > 0.75

    inc_s = _best(
        lambda: incremental_stuck_at_campaign(old, new, old_result=old_result)
    )
    scratch_s = _best(lambda: run_stuck_at_campaign(new))
    speedup = scratch_s / max(inc_s, 1e-9)
    print(
        f"\ndual-RCA-4 single-gate edit: scratch {scratch_s * 1e3:.2f}ms, "
        f"incremental {inc_s * 1e3:.2f}ms ({speedup:.2f}x), {inc.reason}"
    )
    record(
        "incremental_vs_scratch",
        inc_s,
        speedup=speedup,
        scratch_seconds=scratch_s,
        n_resimulated_classes=inc.n_resimulated_classes,
        reuse_fraction=inc.reuse_fraction,
    )
    assert speedup >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"incremental {speedup:.2f}x over scratch, "
        f"floor {INCREMENTAL_SPEEDUP_FLOOR}x"
    )
