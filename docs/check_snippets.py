"""Execute every ``python`` code block in the Markdown docs.

CI runs this so README/docs snippets cannot rot: each fenced block is
executed in file order. Blocks within one document share a namespace
(later snippets may use earlier imports); documents are isolated from
each other.  Plain ``.py`` targets (runnable example scripts) execute
as ``__main__``, so the checked examples cannot rot either.

Usage:  PYTHONPATH=src python docs/check_snippets.py [files...]
"""

from __future__ import annotations

import pathlib
import re
import runpy
import sys

FENCE = re.compile(r"^```python\s*$")
END = re.compile(r"^```\s*$")

#: Documents checked by default, repo-root relative.  Markdown files
#: contribute their fenced blocks; ``.py`` entries run whole.
DEFAULT_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/api.md",
    "examples/compact_test_sets.py",
    "examples/cached_campaigns.py",
    "examples/static_analysis.py",
    "examples/traced_campaign.py",
    "examples/incremental_campaign.py",
)


def python_blocks(text: str):
    block: list = []
    inside = False
    for line in text.splitlines():
        if inside:
            if END.match(line):
                inside = False
                yield "\n".join(block)
                block = []
            else:
                block.append(line)
        elif FENCE.match(line):
            inside = True


def check(path: pathlib.Path) -> int:
    if path.suffix == ".py":
        runpy.run_path(str(path), run_name="__main__")
        print(f"{path}: script ok")
        return 1
    namespace: dict = {"__name__": f"docsnippet::{path.name}"}
    count = 0
    for count, code in enumerate(python_blocks(path.read_text()), start=1):
        try:
            exec(compile(code, f"{path}#block{count}", "exec"), namespace)
        except Exception:
            print(f"FAILED {path} block {count}:\n{code}\n", file=sys.stderr)
            raise
    print(f"{path}: {count} snippet(s) ok")
    return count


def main(argv: list) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    targets = [pathlib.Path(a) for a in argv] or [
        root / name for name in DEFAULT_DOCS
    ]
    total = 0
    for path in targets:
        if path.exists():
            total += check(path)
        else:
            print(f"skipping missing {path}", file=sys.stderr)
    if total == 0:
        print("no snippets found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
