"""Hardware/software partitioning.

The paper's methodology is implementation-agnostic: the SCK-enriched
specification can go to hardware, software, or a mix, "as in any hw/sw
co-design flow".  This partitioner makes that decision explicit with a
classical cost heuristic: hardware when the throughput constraint rules
software out, software when it fits, reporting the margins either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codesign.dfg import DataflowGraph
from repro.codesign.scheduling import list_schedule
from repro.codesign.swmodel import estimate_software
from repro.errors import SpecificationError


@dataclass
class PartitionDecision:
    """Outcome of the hw/sw partitioning step."""

    target: str  # "hardware" or "software"
    reason: str
    sw_cycles_per_sample: float
    hw_cycles_per_sample: int
    required_cycles_per_sample: Optional[float]

    def describe(self) -> str:
        return f"{self.target} ({self.reason})"


def partition(
    graph: DataflowGraph,
    sample_rate_hz: Optional[float] = None,
    cpu_clock_hz: float = 100e6,
    hw_clock_hz: float = 20e6,
    hw_resources: Optional[dict] = None,
    prefer: str = "software",
) -> PartitionDecision:
    """Choose an implementation target for ``graph``.

    Args:
        sample_rate_hz: required throughput; None means no constraint
            (the cheaper software mapping wins).
        cpu_clock_hz / hw_clock_hz: technology assumptions.
        hw_resources: resource set for the hardware schedule estimate.
        prefer: tie-break when both targets meet the constraint.
    """
    if prefer not in ("software", "hardware"):
        raise SpecificationError(f"prefer must be software|hardware, got {prefer!r}")
    sw = estimate_software(graph, samples=64, run_samples=64)
    resources = hw_resources or {"alu": 1, "mult": 1, "io": 1}
    hw_schedule = list_schedule(graph, resources)
    hw_cycles = hw_schedule.length

    if sample_rate_hz is None:
        target = prefer
        reason = "no throughput constraint; preference applies"
        required = None
    else:
        required = None
        sw_rate = cpu_clock_hz / sw.cycles_per_sample
        hw_rate = hw_clock_hz / hw_cycles
        required = sample_rate_hz
        sw_ok = sw_rate >= sample_rate_hz
        hw_ok = hw_rate >= sample_rate_hz
        if sw_ok and (prefer == "software" or not hw_ok):
            target = "software"
            reason = (
                f"software sustains {sw_rate:,.0f} samples/s >= "
                f"{sample_rate_hz:,.0f} required"
            )
        elif hw_ok:
            target = "hardware"
            reason = (
                f"hardware sustains {hw_rate:,.0f} samples/s >= "
                f"{sample_rate_hz:,.0f} required"
                + ("" if sw_ok else "; software cannot")
            )
        else:
            target = "hardware"
            reason = (
                f"neither target meets {sample_rate_hz:,.0f} samples/s; "
                f"hardware is closer ({hw_rate:,.0f} vs {sw_rate:,.0f})"
            )
    return PartitionDecision(
        target=target,
        reason=reason,
        sw_cycles_per_sample=sw.cycles_per_sample,
        hw_cycles_per_sample=hw_cycles,
        required_cycles_per_sample=required,
    )
