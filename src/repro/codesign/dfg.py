"""Dataflow-graph IR for the co-design flow.

A :class:`DataflowGraph` describes one iteration of the computation a
system performs per input sample: pure operator nodes connected by data
edges.  It is the co-design analogue of the paper's SystemC-Plus
behavioural specification -- the SCK enrichment pass rewrites it exactly
as the class template's overloaded operators rewrite the computation.

Node operations:

=============  =======================================================
``input``      primary input (one value per sample)
``const``      compile-time constant (e.g. a filter coefficient)
``add/sub``    two-operand arithmetic, mapped onto an ALU unit
``mul``        two-operand multiply, mapped onto a multiplier unit
``div/mod``    two-operand divide/modulo, mapped onto a divider unit
``neg``        unary negate, mapped onto an ALU unit
``cmpne``      not-equal comparator producing an error bit
``or``         error-bit accumulation (OR gate / flag update)
``output``     primary output (one value per sample)
=============  =======================================================

``role`` distinguishes nominal computation from inserted reliability
logic (``"nominal"``, ``"check"``, ``"compare"``, ``"error"``), which
the area/timing models and the VM compiler use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SpecificationError

BINARY_OPS = ("add", "sub", "mul", "div", "mod", "cmpne", "or")
UNARY_OPS = ("neg",)
LEAF_OPS = ("input", "const")
ALL_OPS = LEAF_OPS + BINARY_OPS + UNARY_OPS + ("output",)

#: Operation -> functional unit class used by scheduling/allocation.
UNIT_OF_OP = {
    "add": "alu",
    "sub": "alu",
    "neg": "alu",
    "mul": "mult",
    "div": "div",
    "mod": "div",
    "cmpne": "cmp",
    "or": "cmp",
}

ROLES = ("nominal", "check", "compare", "error")


@dataclass
class Node:
    """One operation in the dataflow graph."""

    name: str
    op: str
    args: Tuple[str, ...] = ()
    value: Optional[int] = None  # for const nodes
    role: str = "nominal"

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise SpecificationError(f"unknown operation {self.op!r}")
        if self.role not in ROLES:
            raise SpecificationError(f"unknown role {self.role!r}")
        if self.op == "const" and self.value is None:
            raise SpecificationError(f"const node {self.name!r} needs a value")
        arity = {"input": 0, "const": 0, "output": 1, "neg": 1}.get(self.op, 2)
        if len(self.args) != arity:
            raise SpecificationError(
                f"{self.op} node {self.name!r} takes {arity} args, "
                f"got {len(self.args)}"
            )

    @property
    def unit(self) -> Optional[str]:
        """Functional unit class executing this node (None for leaves/IO)."""
        return UNIT_OF_OP.get(self.op)

    @property
    def is_operation(self) -> bool:
        return self.op in UNIT_OF_OP


class DataflowGraph:
    """A named, acyclic dataflow graph with stable insertion order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, node: Node) -> str:
        if node.name in self._nodes:
            raise SpecificationError(f"duplicate node name {node.name!r}")
        for arg in node.args:
            if arg not in self._nodes:
                raise SpecificationError(
                    f"node {node.name!r} references unknown node {arg!r}"
                )
        self._nodes[node.name] = node
        return node.name

    def add_input(self, name: str) -> str:
        return self._add(Node(name, "input"))

    def add_const(self, name: str, value: int) -> str:
        return self._add(Node(name, "const", value=value))

    def add_op(
        self,
        name: str,
        op: str,
        args: Sequence[str],
        role: str = "nominal",
    ) -> str:
        return self._add(Node(name, op, tuple(args), role=role))

    def add_output(self, name: str, source: str, role: str = "nominal") -> str:
        return self._add(Node(name, "output", (source,), role=role))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise SpecificationError(f"no node named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def inputs(self) -> List[Node]:
        return [n for n in self.nodes if n.op == "input"]

    @property
    def outputs(self) -> List[Node]:
        return [n for n in self.nodes if n.op == "output"]

    @property
    def operations(self) -> List[Node]:
        return [n for n in self.nodes if n.is_operation]

    def consumers(self, name: str) -> List[Node]:
        return [n for n in self.nodes if name in n.args]

    def operation_counts(self) -> Dict[str, int]:
        """Histogram of operation kinds (excluding leaves and outputs)."""
        counts: Dict[str, int] = {}
        for node in self.operations:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def unit_demand(self) -> Dict[str, int]:
        """Operations per functional unit class."""
        demand: Dict[str, int] = {}
        for node in self.operations:
            demand[node.unit] = demand.get(node.unit, 0) + 1
        return demand

    # ------------------------------------------------------------------
    # Validation and evaluation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity: acyclic by construction (nodes may
        only reference already-added nodes); here we verify outputs
        exist and every non-leaf value is reachable from an output."""
        if not self.outputs:
            raise SpecificationError(f"graph {self.name!r} has no outputs")
        live = set()
        stack = [o.args[0] for o in self.outputs]
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            stack.extend(self._nodes[name].args)
        dead = [
            n.name
            for n in self.nodes
            if n.is_operation and n.name not in live
        ]
        if dead:
            raise SpecificationError(
                f"graph {self.name!r} has dead operations: {dead}"
            )

    def evaluate(self, inputs: Dict[str, int], width: int = 32) -> Dict[str, int]:
        """Reference interpretation with fixed-width wrap (C semantics).

        Returns the value of every output node.  ``cmpne`` yields 0/1;
        division follows C truncation.
        """
        mask = (1 << width) - 1
        half = 1 << (width - 1)

        def wrap(v: int) -> int:
            v &= mask
            return v - (mask + 1) if v >= half else v

        values: Dict[str, int] = {}
        for node in self.nodes:  # insertion order is topological
            if node.op == "input":
                if node.name not in inputs:
                    raise SpecificationError(f"missing input {node.name!r}")
                values[node.name] = wrap(inputs[node.name])
            elif node.op == "const":
                values[node.name] = wrap(node.value)
            elif node.op == "output":
                values[node.name] = values[node.args[0]]
            else:
                args = [values[a] for a in node.args]
                values[node.name] = wrap(_apply(node.op, args))
        return {o.name: values[o.name] for o in self.outputs}

    def copy(self, name: Optional[str] = None) -> "DataflowGraph":
        """Shallow structural copy (nodes are immutable enough to share)."""
        out = DataflowGraph(name or self.name)
        for node in self.nodes:
            out._add(Node(node.name, node.op, node.args, node.value, node.role))
        return out


def _apply(op: str, args: List[int]) -> int:
    if op == "add":
        return args[0] + args[1]
    if op == "sub":
        return args[0] - args[1]
    if op == "mul":
        return args[0] * args[1]
    if op in ("div", "mod"):
        a, b = args
        if b == 0:
            raise SpecificationError("division by zero in DFG evaluation")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q if op == "div" else a - q * b
    if op == "neg":
        return -args[0]
    if op == "cmpne":
        return int(args[0] != args[1])
    if op == "or":
        return int(bool(args[0]) or bool(args[1]))
    raise SpecificationError(f"cannot evaluate op {op!r}")
