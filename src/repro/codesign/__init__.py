"""Hardware/software co-design flow (the paper's Section 5).

Starting from a dataflow-graph specification whose operators may be
SCK-enriched, the flow schedules, binds and costs a hardware
implementation (latency formula, clock, CLB slices) and compiles a
software implementation for the monoprocessor VM (execution time, code
size) -- regenerating Table 3 for the FIR case study.

Modules:

* :mod:`repro.codesign.dfg` -- the dataflow-graph IR;
* :mod:`repro.codesign.sck_transform` -- SCK enrichment (per-operator
  hidden checks) and embedded-check enrichment (hand-placed,
  algorithm-level);
* :mod:`repro.codesign.scheduling` -- ASAP / ALAP / resource-constrained
  list scheduling;
* :mod:`repro.codesign.allocation` -- unit allocation and binding, with
  the reliability-aware different-unit rule for check operations;
* :mod:`repro.codesign.area` -- the calibrated CLB-slice area model;
* :mod:`repro.codesign.timing` -- the clock-period model;
* :mod:`repro.codesign.swmodel` -- software time/size estimation on the
  VM;
* :mod:`repro.codesign.partition` -- a simple HW/SW partitioner;
* :mod:`repro.codesign.flow` -- the end-to-end reliable co-design flow;
* :mod:`repro.codesign.report` -- the Table 3 renderer.
"""

from repro.codesign.dfg import DataflowGraph, Node
from repro.codesign.sck_transform import embed_output_checks, enrich_with_sck
from repro.codesign.scheduling import Schedule, alap_schedule, asap_schedule, list_schedule
from repro.codesign.allocation import Allocation, Binding, bind
from repro.codesign.area import AreaModel, AreaReport
from repro.codesign.timing import TimingModel
from repro.codesign.swmodel import SoftwareEstimate, estimate_software
from repro.codesign.partition import PartitionDecision, partition
from repro.codesign.flow import FlowResult, HardwareResult, ReliableCoDesignFlow
from repro.codesign.report import render_table3

__all__ = [
    "DataflowGraph",
    "Node",
    "enrich_with_sck",
    "embed_output_checks",
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "list_schedule",
    "Allocation",
    "Binding",
    "bind",
    "AreaModel",
    "AreaReport",
    "TimingModel",
    "SoftwareEstimate",
    "estimate_software",
    "PartitionDecision",
    "partition",
    "ReliableCoDesignFlow",
    "FlowResult",
    "HardwareResult",
    "render_table3",
]
