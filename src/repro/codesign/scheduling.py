"""Operation scheduling for the high-level-synthesis model.

Implements the three classical schedulers the co-design flow needs:

* :func:`asap_schedule` -- as soon as possible (unlimited resources);
* :func:`alap_schedule` -- as late as possible, given a deadline;
* :func:`list_schedule` -- resource-constrained list scheduling with
  ALAP-derived priorities (critical path first).

Operation latencies are in clock cycles; a unit executing a multi-cycle
operation is busy for all its cycles (non-pipelined units, matching the
behavioural-synthesis setting of the paper's flow).

IO nodes (``input``/``output``) are scheduled on an ``io`` unit class so
that sample acquisition and delivery occupy real schedule steps -- this
is what produces the paper's ``2 + k*n`` latency shape, where the
prologue accounts for the first input transfer and controller start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.codesign.dfg import DataflowGraph, Node
from repro.errors import SchedulingError

#: Default per-operation latencies (clock cycles).
DEFAULT_LATENCY: Dict[str, int] = {
    "add": 1,
    "sub": 1,
    "neg": 1,
    "mul": 1,
    "div": 4,
    "mod": 4,
    "cmpne": 0,  # combinational comparator, folded into the cycle
    "or": 0,     # combinational error network
    "input": 1,
    "output": 1,
}

#: Unit class used per operation when scheduling (role-aware: check
#: operations run on dedicated checker units so the reliability logic's
#: resource usage is a separate design knob, as in the paper's
#: self-checking operator modules).
def unit_class_of(node: Node, dedicated_checkers: bool = True) -> Optional[str]:
    if node.op == "output" and node.role == "error":
        return None  # the error flag is a latch, not a port transfer
    if node.op in ("input", "output"):
        return "io"
    if not node.is_operation:
        return None
    if node.op in ("cmpne", "or"):
        return None  # combinational logic, not a scheduled unit
    if node.role == "check" and dedicated_checkers:
        return "checker"
    return node.unit


@dataclass
class Schedule:
    """A complete schedule: start cycle and unit class per node."""

    graph: DataflowGraph
    start: Dict[str, int]
    latency_of: Dict[str, int]
    resources: Optional[Dict[str, int]] = None
    dedicated_checkers: bool = True

    @property
    def length(self) -> int:
        """Total schedule length in cycles (the per-sample cycle count)."""
        if not self.start:
            return 0
        return max(
            self.start[name] + self.latency_of.get(name, 1)
            for name in self.start
        )

    @property
    def data_length(self) -> int:
        """Cycles until every *nominal data* output is delivered.

        The error flag of a checked design is a side signal: it may
        settle after the data without affecting the sample latency, so
        the paper-style latency formulas use this measure while the
        controller cost uses :attr:`length`.
        """
        finishes = [
            self.finish(node.name)
            for node in self.graph.outputs
            if node.role == "nominal"
        ]
        return max(finishes) if finishes else self.length

    def finish(self, name: str) -> int:
        return self.start[name] + self.latency_of.get(name, 1)

    def nodes_at(self, cycle: int) -> List[str]:
        """Node names whose execution covers ``cycle``."""
        return [
            name
            for name, begin in self.start.items()
            if begin <= cycle < begin + self.latency_of.get(name, 1)
        ]

    def unit_usage(self) -> Dict[str, int]:
        """Peak concurrent usage per unit class."""
        peak: Dict[str, int] = {}
        for cycle in range(self.length):
            counts: Dict[str, int] = {}
            for name in self.nodes_at(cycle):
                unit = unit_class_of(self.graph.node(name), self.dedicated_checkers)
                if unit is not None:
                    counts[unit] = counts.get(unit, 0) + 1
            for unit, count in counts.items():
                peak[unit] = max(peak.get(unit, 0), count)
        return peak

    def verify(self) -> None:
        """Check precedence and (if given) resource feasibility."""
        for node in self.graph.nodes:
            if node.name not in self.start:
                raise SchedulingError(f"node {node.name!r} is unscheduled")
            for arg in node.args:
                producer = self.graph.node(arg)
                if producer.op == "const":
                    continue
                if self.finish(arg) > self.start[node.name]:
                    raise SchedulingError(
                        f"precedence violated: {node.name!r} starts at "
                        f"{self.start[node.name]} before {arg!r} finishes "
                        f"at {self.finish(arg)}"
                    )
        if self.resources is not None:
            usage = self.unit_usage()
            for unit, peak in usage.items():
                limit = self.resources.get(unit)
                if limit is not None and peak > limit:
                    raise SchedulingError(
                        f"resource violated: {unit} peak {peak} > limit {limit}"
                    )


def _latencies(graph: DataflowGraph, latency: Mapping[str, int]) -> Dict[str, int]:
    table = dict(DEFAULT_LATENCY)
    table.update(latency)
    out: Dict[str, int] = {}
    for node in graph.nodes:
        if node.op == "const":
            out[node.name] = 0
        elif node.op == "output" and node.role == "error":
            out[node.name] = 0  # error latch update, within the cycle
        else:
            out[node.name] = table.get(node.op, 1)
    return out


def asap_schedule(
    graph: DataflowGraph, latency: Mapping[str, int] = ()
) -> Schedule:
    """Earliest-start schedule with unlimited resources."""
    latency_of = _latencies(graph, dict(latency))
    start: Dict[str, int] = {}
    for node in graph.nodes:  # insertion order is topological
        ready = 0
        for arg in node.args:
            producer = graph.node(arg)
            if producer.op == "const":
                continue
            ready = max(ready, start[arg] + latency_of[arg])
        start[node.name] = ready
    return Schedule(graph, start, latency_of)


def alap_schedule(
    graph: DataflowGraph,
    deadline: Optional[int] = None,
    latency: Mapping[str, int] = (),
) -> Schedule:
    """Latest-start schedule meeting ``deadline`` (default: ASAP length)."""
    latency_of = _latencies(graph, dict(latency))
    asap = asap_schedule(graph, latency)
    horizon = deadline if deadline is not None else asap.length
    if horizon < asap.length:
        raise SchedulingError(
            f"deadline {horizon} below critical path {asap.length}"
        )
    start: Dict[str, int] = {}
    for node in reversed(graph.nodes):
        latest = horizon - latency_of[node.name]
        for consumer in graph.consumers(node.name):
            latest = min(latest, start[consumer.name] - latency_of[node.name])
        start[node.name] = latest
    return Schedule(graph, start, latency_of)


def list_schedule(
    graph: DataflowGraph,
    resources: Mapping[str, int],
    latency: Mapping[str, int] = (),
    dedicated_checkers: bool = True,
) -> Schedule:
    """Resource-constrained list scheduling (ALAP slack priority).

    ``resources`` maps unit class -> available unit count; classes not
    listed are unconstrained.  Raises
    :class:`~repro.errors.SchedulingError` if a class is constrained to
    zero but required.
    """
    resources = dict(resources)
    latency_of = _latencies(graph, dict(latency))
    demand = set()
    for node in graph.nodes:
        unit = unit_class_of(node, dedicated_checkers)
        if unit is not None:
            demand.add(unit)
    for unit in demand:
        if resources.get(unit, 1) < 1:
            raise SchedulingError(f"zero {unit!r} units allocated but required")

    alap = alap_schedule(graph, latency=dict(latency))
    priority = {name: alap.start[name] for name in alap.start}

    start: Dict[str, int] = {}
    done_at: Dict[str, int] = {}
    for node in graph.nodes:
        if node.op == "const":
            start[node.name] = 0
            done_at[node.name] = 0
    pending = [n for n in graph.nodes if n.op != "const"]
    busy_until: Dict[str, List[int]] = {
        unit: [0] * count for unit, count in resources.items()
    }
    cycle = 0
    guard = 0
    while pending:
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - defensive
            raise SchedulingError("list scheduler failed to converge")
        ready = [
            node
            for node in pending
            if all(arg in done_at and done_at[arg] <= cycle for arg in node.args)
        ]
        # Critical path first; on equal slack prefer nominal data ops,
        # so shared resources deliver the sample result before they
        # service the (latency-tolerant) checking operations.
        role_rank = {"nominal": 0, "check": 1, "compare": 2, "error": 3}
        ready.sort(
            key=lambda n: (priority[n.name], role_rank.get(n.role, 1), n.name)
        )
        scheduled_any = False
        for node in ready:
            unit = unit_class_of(node, dedicated_checkers)
            if unit is None:
                start[node.name] = cycle
                done_at[node.name] = cycle + latency_of[node.name]
                pending.remove(node)
                scheduled_any = True
                continue
            if unit not in busy_until:
                # Unconstrained class: always available.
                start[node.name] = cycle
                done_at[node.name] = cycle + latency_of[node.name]
                pending.remove(node)
                scheduled_any = True
                continue
            slots = busy_until[unit]
            for i, free_at in enumerate(slots):
                if free_at <= cycle:
                    start[node.name] = cycle
                    done_at[node.name] = cycle + latency_of[node.name]
                    slots[i] = cycle + latency_of[node.name]
                    pending.remove(node)
                    scheduled_any = True
                    break
        cycle += 1
        if not scheduled_any and not any(
            all(arg in done_at and done_at[arg] <= cycle for arg in node.args)
            for node in pending
        ) and cycle > max(done_at.values(), default=0) + 1:
            raise SchedulingError(
                f"deadlock: {[n.name for n in pending]} can never become ready"
            )
    schedule = Schedule(
        graph,
        start,
        latency_of,
        resources=dict(resources),
        dedicated_checkers=dedicated_checkers,
    )
    schedule.verify()
    return schedule
