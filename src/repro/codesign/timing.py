"""Clock-period model.

The paper's checked FIR variants close timing at lower clock rates when
resources are shared (min-area SCK: 16.67 MHz; embedded: 15.38 MHz)
while every min-latency variant keeps the plain design's 20 MHz.  The
mechanism is combinational: with aggressive resource sharing the unit's
input multiplexers and the checker's compare path chain into the same
cycle; with dedicated units the checkers sit on their own paths.

The model computes the critical cycle delay as::

    period = unit_delay(max over classes in use)
             + mux_levels * mux_delay
             + compare_delay (if a comparator is chained after a shared
               unit in the same cycle)

and quantises the result up to the next nanosecond.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.codesign.allocation import Allocation


@dataclass(frozen=True)
class TimingModel:
    """Delay constants in nanoseconds."""

    alu_delay: float = 38.0
    mult_delay: float = 38.0
    div_delay: float = 46.0
    checker_delay: float = 38.0
    cmp_delay: float = 12.0
    io_delay: float = 20.0
    mux_delay: float = 4.0
    register_setup: float = 4.0

    def unit_delay(self, unit_class: str) -> float:
        return {
            "alu": self.alu_delay,
            "mult": self.mult_delay,
            "div": self.div_delay,
            "checker": self.checker_delay,
            "cmp": self.cmp_delay,
            "io": self.io_delay,
        }.get(unit_class, self.alu_delay)


def _mux_levels(fanin: int) -> int:
    """Select-tree depth of a ``fanin``-way multiplexer."""
    if fanin <= 1:
        return 0
    return max(1, math.ceil(math.log2(fanin)))


def estimate_clock(
    allocation: Allocation,
    model: TimingModel = TimingModel(),
) -> Dict[str, float]:
    """Estimate clock period (ns) and frequency (MHz) for a binding."""
    schedule = allocation.schedule
    graph = schedule.graph
    sharing = allocation.sharing_degree()

    worst = 0.0
    for (unit_class, instance), degree in sharing.items():
        delay = model.unit_delay(unit_class)
        delay += _mux_levels(degree) * model.mux_delay
        # Self-checking operator modules fuse the checker comparator
        # combinationally behind the unit output (the RTL generator in
        # repro.hdlgen.datapath emits exactly that structure), so a unit
        # instance serving check operations pays the compare path once.
        ops = allocation.ops_on(unit_class, instance)
        if any(graph.node(name).role == "check" for name in ops):
            delay += model.cmp_delay
        worst = max(worst, delay)
    period = math.ceil(worst + model.register_setup)
    frequency = 1000.0 / period if period else float("inf")
    return {"period_ns": float(period), "frequency_mhz": round(frequency, 2)}
