"""Software cost estimation on the monoprocessor VM.

Compiles a dataflow graph, optionally optimises it (the paper verified
gcc keeps the redundant checks; our default optimiser does too), runs a
representative workload on the VM and reports execution time and
executable size -- the software half of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.codesign.dfg import DataflowGraph
from repro.errors import CompilationError
from repro.vm.compiler import compile_dfg
from repro.vm.machine import DEFAULT_CLOCK_HZ, Machine
from repro.vm.optimizer import optimize


@dataclass
class SoftwareEstimate:
    """Software implementation metrics for one specification."""

    name: str
    samples: int
    instructions_static: int
    image_bytes: int
    cycles: int
    seconds: float
    cycles_per_sample: float
    error_flag: int

    @property
    def image_kilobytes(self) -> float:
        return self.image_bytes / 1024.0

    def describe(self) -> str:
        return (
            f"{self.name}: {self.seconds:.2f} s for {self.samples} samples "
            f"({self.cycles_per_sample:.1f} cycles/sample), "
            f"image {self.image_kilobytes:.0f} KB"
        )


def estimate_software(
    graph: DataflowGraph,
    samples: int,
    width: int = 16,
    input_streams: Optional[Dict[str, list]] = None,
    run_samples: Optional[int] = None,
    clock_hz: int = DEFAULT_CLOCK_HZ,
    optimize_program: bool = True,
    algebraic: bool = False,
    uses_sck_template: Optional[bool] = None,
) -> SoftwareEstimate:
    """Compile, run and measure ``graph`` as a software implementation.

    Args:
        graph: the per-sample body.
        samples: the nominal workload size (used for the reported time).
        input_streams: per-input sample lists; defaults to a simple
            deterministic ramp.  Streams shorter than the executed
            sample count read as zero.
        run_samples: how many samples to actually interpret (defaults
            to ``min(samples, 256)``); per-sample cycles are exact
            because the loop body cost is input-independent, so the
            total is extrapolated linearly.
        optimize_program: run the safe CSE+DCE pipeline first.
        algebraic: enable the check-destroying identity folding (for
            the ablation study only).
    """
    if samples < 1:
        raise CompilationError(f"samples must be >= 1, got {samples}")
    executed = run_samples if run_samples is not None else min(samples, 256)
    executed = max(1, min(executed, samples))

    program, memory_map = compile_dfg(
        graph, executed, uses_sck_template=uses_sck_template
    )
    if optimize_program:
        program = optimize(program, algebraic=algebraic)

    memory: Dict[int, int] = {}
    for node in graph.inputs:
        base = memory_map.stream_for_input(node.name)
        stream = (input_streams or {}).get(node.name)
        if stream is None:
            stream = [(3 * k + 1) % 23 - 11 for k in range(executed)]
        for k, value in enumerate(stream[:executed]):
            memory[base + k] = int(value)

    machine = Machine(width)
    result = machine.run(program, memory)
    if not result.halted:
        raise CompilationError(f"program {program.name!r} did not halt")

    cycles_per_sample = result.cycles / executed
    total_cycles = int(round(cycles_per_sample * samples))
    # Recompile at the nominal sample count for the static size (the
    # instruction count is sample-independent; this keeps the reported
    # artefact faithful).
    nominal_program, _ = compile_dfg(
        graph, samples, uses_sck_template=uses_sck_template
    )
    if optimize_program:
        nominal_program = optimize(nominal_program, algebraic=algebraic)
    return SoftwareEstimate(
        name=graph.name,
        samples=samples,
        instructions_static=len(nominal_program.instructions),
        image_bytes=nominal_program.image_bytes,
        cycles=total_cycles,
        seconds=total_cycles / clock_hz,
        cycles_per_sample=cycles_per_sample,
        error_flag=result.memory.get(0, 0),
    )
