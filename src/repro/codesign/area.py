"""Calibrated CLB-slice area model.

The paper reports post-synthesis Xilinx CLB-slice counts for the FIR
variants (Table 3).  The original Synopsys CoCentric scripts are not
recoverable, so this model estimates area additively from the bound
datapath, with constants calibrated once against the paper's plain-FIR
row and then applied unchanged to every variant (the honest way to
reproduce *relative* overheads):

``area = controller + units + steering + registers + error logic``

* *controller*: base FSM cost plus a per-state increment (longer
  schedules mean wider state registers and more next-state logic);
* *units*: per-instance cost; a multiplier bound to a single constant
  operand is costed as a cheap constant multiplier (shift-add network),
  which is why the paper's min-latency FIR is barely bigger than its
  min-area version despite holding four multipliers;
* *steering*: input multiplexers, proportional to the operations a unit
  instance serves beyond the first (resource sharing is not free --
  this term is what makes the paper's *min-area* SCK variant larger
  than its min-latency variant);
* *registers*: proportional to the peak number of values alive across
  a cycle boundary;
* *error logic*: per comparator/OR plus the error latch.

All constants live in :class:`AreaModel` and are dumped into every
:class:`AreaReport` so EXPERIMENTS.md can show the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.codesign.allocation import Allocation
from repro.codesign.dfg import DataflowGraph
from repro.codesign.scheduling import Schedule


@dataclass(frozen=True)
class AreaModel:
    """Slice-cost constants (see module docstring for calibration)."""

    controller_base: int = 60
    controller_per_state: int = 8
    alu_slices: int = 45
    generic_mult_slices: int = 190
    constant_mult_slices: int = 52
    divider_slices: int = 230
    checker_slices: int = 45
    comparator_slices: int = 18
    io_slices: int = 25
    mux_per_extra_binding: int = 24
    register_slices: int = 9
    error_latch_slices: int = 6


@dataclass
class AreaReport:
    """Area breakdown for one bound implementation."""

    total: int
    breakdown: Dict[str, int]
    model: AreaModel

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.breakdown.items())
        return f"{self.total} slices ({parts})"


def _is_constant_mult(graph: DataflowGraph, allocation: Allocation, unit_key: Tuple[str, int]) -> bool:
    """A mult instance serving only by-constant products is a KCM."""
    ops = allocation.ops_on(*unit_key)
    if not ops:
        return False
    for name in ops:
        node = graph.node(name)
        if node.op != "mul":
            return False
        if not any(graph.node(arg).op == "const" for arg in node.args):
            return False
    return True


def _live_values_peak(schedule: Schedule) -> int:
    """Peak count of values produced but not yet fully consumed."""
    graph = schedule.graph
    last_use: Dict[str, int] = {}
    for node in graph.nodes:
        for arg in node.args:
            last_use[arg] = max(last_use.get(arg, 0), schedule.start[node.name])
    peak = 0
    for cycle in range(schedule.length + 1):
        live = 0
        for node in graph.nodes:
            if node.op == "const":
                continue
            born = schedule.finish(node.name)
            dies = last_use.get(node.name, born)
            if born <= cycle <= dies:
                live += 1
        peak = max(peak, live)
    return peak


def estimate_area(
    allocation: Allocation,
    model: AreaModel = AreaModel(),
) -> AreaReport:
    """Estimate CLB slices for a bound schedule."""
    schedule = allocation.schedule
    graph = schedule.graph
    breakdown: Dict[str, int] = {}

    breakdown["controller"] = (
        model.controller_base + model.controller_per_state * schedule.length
    )

    unit_cost = 0
    per_class_cost = {
        "alu": model.alu_slices,
        "div": model.divider_slices,
        "cmp": model.comparator_slices,
        "io": model.io_slices,
    }
    for unit_class, count in allocation.instances.items():
        for instance in range(count):
            if unit_class == "mult":
                if _is_constant_mult(graph, allocation, (unit_class, instance)):
                    unit_cost += model.constant_mult_slices
                else:
                    unit_cost += model.generic_mult_slices
            elif unit_class == "checker":
                # A checker unit is sized by the widest operation bound
                # to it: a checking multiplier costs what multipliers
                # cost, not what a spare ALU costs.
                ops = allocation.ops_on(unit_class, instance)
                if any(graph.node(name).op == "mul" for name in ops):
                    if _is_constant_mult(graph, allocation, (unit_class, instance)):
                        unit_cost += model.constant_mult_slices
                    else:
                        unit_cost += model.generic_mult_slices
                elif any(graph.node(name).op in ("div", "mod") for name in ops):
                    unit_cost += model.divider_slices
                else:
                    unit_cost += model.checker_slices
            else:
                unit_cost += per_class_cost.get(unit_class, model.alu_slices)
    breakdown["units"] = unit_cost

    steering = 0
    for degree in allocation.sharing_degree().values():
        if degree > 1:
            steering += model.mux_per_extra_binding * (degree - 1)
    breakdown["steering"] = steering

    breakdown["registers"] = model.register_slices * _live_values_peak(schedule)

    # Comparators and the OR network are combinational gates outside
    # the scheduled units; cost them directly per node.
    comparators = [n for n in graph.nodes if n.op == "cmpne"]
    or_gates = [n for n in graph.nodes if n.op == "or"]
    breakdown["error_logic"] = (
        model.comparator_slices * len(comparators)
        + model.error_latch_slices * len(or_gates)
        + (model.error_latch_slices if comparators else 0)
    )

    total = sum(breakdown.values())
    return AreaReport(total=total, breakdown=breakdown, model=model)
