"""Specification-enrichment passes.

Two ways of adding concurrent error detection to a dataflow graph, the
two reliable variants of Table 3:

* :func:`enrich_with_sck` -- the paper's transparent SCK mechanism: every
  checked operator grows its hidden inverse operation(s) plus a
  comparator, and the error bits accumulate into a dedicated ``error``
  output.  This mirrors exactly what the overloaded operators of
  :class:`repro.core.SCK` do at run time, but as a compile-time graph
  rewrite that the scheduler and the VM compiler can see.

* :func:`embed_output_checks` -- the "FIR embedded SCK" variant: a
  hand-placed, algorithm-level check.  For an accumulation tree the
  check re-subtracts every product from the final result and compares
  the residue against zero -- one check chain instead of per-operator
  checks, which is why its cost sits between the plain and the full SCK
  versions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codesign.dfg import DataflowGraph, Node
from repro.errors import SpecificationError

#: Operators that receive hidden checks in the SCK enrichment.
CHECKABLE_OPS = ("add", "sub", "mul", "div", "mod", "neg")


def _fresh(graph: DataflowGraph, base: str) -> str:
    """A node name not yet present in ``graph``."""
    if base not in graph:
        return base
    i = 1
    while f"{base}_{i}" in graph:
        i += 1
    return f"{base}_{i}"


def _accumulate_error(
    graph: DataflowGraph, error_terms: List[str], prefix: str
) -> Optional[str]:
    """OR-reduce error terms as a balanced tree; returns the error net.

    A balanced tree keeps the error network's depth logarithmic, so it
    neither stretches the schedule nor distorts the list scheduler's
    critical-path priorities.
    """
    if not error_terms:
        return None
    level = list(error_terms)
    stage = 0
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            name = _fresh(graph, f"{prefix}_or{stage}_{i // 2}")
            graph.add_op(name, "or", (level[i], level[i + 1]), role="error")
            merged.append(name)
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
        stage += 1
    return level[0]


def _check_nodes_for(
    graph: DataflowGraph, node: Node, technique: str
) -> List[str]:
    """Insert the hidden check(s) for ``node``; returns error-bit nets."""
    op1 = node.args[0] if node.args else None
    op2 = node.args[1] if len(node.args) > 1 else None
    ris = node.name
    errors: List[str] = []

    def add_check(op: str, args: Tuple[str, ...], tag: str) -> str:
        name = _fresh(graph, f"{ris}_chk_{tag}")
        graph.add_op(name, op, args, role="check")
        return name

    def negated(source: str, tag: str) -> str:
        """``-source``; negation of a constant folds to a new constant,
        as any synthesiser or compiler would fold it."""
        producer = graph.node(source)
        if producer.op == "const":
            name = _fresh(graph, f"{ris}_nc_{tag}")
            graph.add_const(name, -producer.value)
            return name
        return add_check("neg", (source,), tag)

    def add_compare(left: str, right_zero: bool, right: Optional[str], tag: str) -> None:
        if right_zero:
            zero = _fresh(graph, f"{ris}_zero_{tag}")
            graph.add_const(zero, 0)
            right = zero
        name = _fresh(graph, f"{ris}_cmp_{tag}")
        graph.add_op(name, "cmpne", (left, right), role="compare")
        errors.append(name)

    wants1 = technique in ("tech1", "both")
    wants2 = technique in ("tech2", "both")
    if node.op == "add":
        if wants1:
            add_compare(add_check("sub", (ris, op1), "t1"), False, op2, "t1")
        if wants2:
            add_compare(add_check("sub", (ris, op2), "t2"), False, op1, "t2")
    elif node.op == "sub":
        if wants1:
            add_compare(add_check("add", (ris, op2), "t1"), False, op1, "t1")
        if wants2:
            reversed_diff = add_check("sub", (op2, op1), "t2")
            total = add_check("add", (ris, reversed_diff), "t2s")
            add_compare(total, True, None, "t2")
    elif node.op == "mul":
        if wants1:
            neg1 = negated(op1, "t1n")
            prod = add_check("mul", (neg1, op2), "t1m")
            total = add_check("add", (ris, prod), "t1s")
            add_compare(total, True, None, "t1")
        if wants2:
            neg2 = negated(op2, "t2n")
            prod = add_check("mul", (op1, neg2), "t2m")
            total = add_check("add", (ris, prod), "t2s")
            add_compare(total, True, None, "t2")
    elif node.op in ("div", "mod"):
        # Reconstruction check ris*op2 + rem == op1 needs both quotient
        # and remainder; materialise the sibling result as a check op.
        sibling_op = "mod" if node.op == "div" else "div"
        sibling = add_check(sibling_op, (op1, op2), "sib")
        quotient, remainder = (
            (ris, sibling) if node.op == "div" else (sibling, ris)
        )
        prod = add_check("mul", (quotient, op2), "t1m")
        total = add_check("add", (prod, remainder), "t1s")
        add_compare(total, False, op1, "t1")
    elif node.op == "neg":
        total = add_check("add", (ris, op1), "t1s")
        add_compare(total, True, None, "t1")
    else:  # pragma: no cover - guarded by caller
        raise SpecificationError(f"operator {node.op!r} is not checkable")
    return errors


def enrich_with_sck(
    graph: DataflowGraph,
    techniques: Optional[Dict[str, str]] = None,
    name_suffix: str = "_sck",
) -> DataflowGraph:
    """Rewrite ``graph`` with per-operator hidden checks (SCK semantics).

    Args:
        graph: the plain specification.
        techniques: per-operator technique selection (default
            ``tech1`` everywhere, like the published SCK class).

    Returns a new graph with an additional ``error`` output that ORs
    every comparator; the nominal data outputs are unchanged.
    """
    techniques = techniques or {}
    enriched = graph.copy(graph.name + name_suffix)
    error_terms: List[str] = []
    for node in list(enriched.nodes):
        if node.op in CHECKABLE_OPS and node.role == "nominal":
            technique = techniques.get(node.op, "tech1")
            error_terms.extend(_check_nodes_for(enriched, node, technique))
    error_net = _accumulate_error(enriched, error_terms, "sck")
    if error_net is not None:
        enriched.add_output(_fresh(enriched, "error"), error_net, role="error")
    enriched.validate()
    return enriched


def embed_output_checks(
    graph: DataflowGraph,
    name_suffix: str = "_embedded",
) -> DataflowGraph:
    """Hand-placed algorithm-level check (the "embedded SCK" variant).

    For every data output the pass walks the nominal add/sub
    accumulation tree feeding it, re-subtracts each leaf term from the
    output value on the check path and compares the residue with zero.
    Multiplications inside the tree are *not* re-executed -- their
    products are reused -- so a single check chain guards the whole
    accumulation at roughly half the hidden-operation count of the full
    SCK enrichment.
    """
    enriched = graph.copy(graph.name + name_suffix)
    error_terms: List[str] = []
    for output in list(enriched.outputs):
        if output.role != "nominal":
            continue
        terms = _accumulation_terms(enriched, output.args[0])
        if len(terms) < 2:
            continue
        residue = output.args[0]
        for i, (term, sign) in enumerate(terms):
            name = _fresh(enriched, f"{output.name}_emb{i}")
            op = "sub" if sign > 0 else "add"
            enriched.add_op(name, op, (residue, term), role="check")
            residue = name
        cmp_name = _fresh(enriched, f"{output.name}_embcmp")
        zero = _fresh(enriched, f"{output.name}_embzero")
        enriched.add_const(zero, 0)
        enriched.add_op(cmp_name, "cmpne", (residue, zero), role="compare")
        error_terms.append(cmp_name)
    error_net = _accumulate_error(enriched, error_terms, "emb")
    if error_net is not None:
        enriched.add_output(_fresh(enriched, "error"), error_net, role="error")
    enriched.validate()
    return enriched


def balance_accumulation(
    graph: DataflowGraph, name_suffix: str = "_bal"
) -> DataflowGraph:
    """Tree-height reduction of nominal add/sub accumulation chains.

    The classical minimum-latency HLS transformation: every chained
    accumulation feeding an output whose intermediate results have no
    other consumers is rebuilt as a balanced tree, shortening the data
    critical path from ``T - 1`` to ``ceil(log2 T)`` additions.  Graphs
    without such chains come back structurally unchanged (new name
    aside).
    """
    rebuilt = DataflowGraph(graph.name + name_suffix)
    skip: Dict[str, List[Tuple[str, int]]] = {}
    internal: set = set()
    for output in graph.outputs:
        if output.role != "nominal":
            continue
        root = output.args[0]
        terms = _accumulation_terms(graph, root)
        if len(terms) < 3:
            continue
        # Internal nodes: the add/sub chain itself; bail out if any has
        # consumers outside the chain (the value is observable).
        chain: List[str] = []
        stack = [root]
        while stack:
            current = stack.pop()
            node = graph.node(current)
            if node.op in ("add", "sub") and node.role == "nominal":
                chain.append(current)
                stack.extend(node.args)
        safe = True
        chain_set = set(chain)
        for member in chain:
            consumers = {c.name for c in graph.consumers(member)}
            consumers.discard(output.name)
            if not consumers <= chain_set:
                safe = False
                break
        if safe:
            skip[output.name] = terms
            internal |= chain_set
    for node in graph.nodes:
        if node.name in internal:
            continue
        if node.op == "output" and node.name in skip:
            terms = skip[node.name]
            positives = [t for t, sign in terms if sign > 0]
            negatives = [t for t, sign in terms if sign < 0]

            def tree(leaves: List[str], tag: str) -> str:
                level = list(leaves)
                stage = 0
                while len(level) > 1:
                    merged = []
                    for i in range(0, len(level) - 1, 2):
                        merged.append(
                            rebuilt.add_op(
                                _fresh(rebuilt, f"{node.name}_{tag}{stage}_{i // 2}"),
                                "add",
                                (level[i], level[i + 1]),
                            )
                        )
                    if len(level) % 2:
                        merged.append(level[-1])
                    level = merged
                    stage += 1
                return level[0]

            acc = tree(positives, "p")
            if negatives:
                neg_sum = tree(negatives, "n")
                acc = rebuilt.add_op(
                    _fresh(rebuilt, f"{node.name}_bsub"), "sub", (acc, neg_sum)
                )
            rebuilt.add_output(node.name, acc, role=node.role)
        elif node.op == "output":
            rebuilt.add_output(node.name, node.args[0], role=node.role)
        elif node.op == "input":
            rebuilt.add_input(node.name)
        elif node.op == "const":
            rebuilt.add_const(node.name, node.value)
        else:
            rebuilt.add_op(node.name, node.op, node.args, role=node.role)
    rebuilt.validate()
    return rebuilt


def _accumulation_terms(
    graph: DataflowGraph, root: str
) -> List[Tuple[str, int]]:
    """Leaf terms (with signs) of the add/sub tree rooted at ``root``.

    A leaf is any node that is not a nominal add/sub -- products,
    inputs, constants.
    """
    node = graph.node(root)
    if node.op not in ("add", "sub") or node.role != "nominal":
        return [(root, +1)]
    left = _accumulation_terms(graph, node.args[0])
    right = _accumulation_terms(graph, node.args[1])
    if node.op == "sub":
        right = [(name, -sign) for name, sign in right]
    return left + right
