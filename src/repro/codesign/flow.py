"""The end-to-end reliable co-design flow (paper Figure 3).

``specification -> (SCK / embedded enrichment) -> scheduling -> binding
-> area/timing models`` for hardware, and ``-> VM compilation ->
optimisation -> execution`` for software.  One :class:`FlowResult`
bundles everything Table 3 reports for one specification variant.

Two hardware design points per variant, as in the paper:

* **min area** -- one unit per class, checks share the nominal units
  (maximum resource sharing; the binder cannot separate check from
  nominal, so worst-case Table 2 coverage applies and the shared
  checker path stretches the clock);
* **min latency** -- unconstrained allocation with dedicated checker
  units (full separation: complete fault coverage and the plain
  design's clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.codesign.allocation import Allocation, bind
from repro.codesign.area import AreaModel, AreaReport, estimate_area
from repro.codesign.dfg import DataflowGraph
from repro.codesign.scheduling import Schedule, asap_schedule, list_schedule
from repro.codesign.sck_transform import (
    balance_accumulation,
    embed_output_checks,
    enrich_with_sck,
)
from repro.codesign.swmodel import SoftwareEstimate, estimate_software
from repro.codesign.timing import TimingModel, estimate_clock
from repro.errors import SpecificationError

#: Cycles of pipeline prologue before the first sample's result (input
#: transfer + controller start), the constant term of the paper's
#: ``2 + k*n`` latency formulas.
PROLOGUE_CYCLES = 2

#: Minimum-area resource set: one unit per class (io handles the sample
#: stream, cmp the error comparators/OR tree).
MIN_AREA_RESOURCES: Dict[str, int] = {"alu": 1, "mult": 1, "div": 1, "io": 1, "cmp": 1}

VARIANTS = ("plain", "sck", "embedded")


@dataclass
class HardwareResult:
    """One hardware design point."""

    variant: str
    objective: str  # "min_area" or "min_latency"
    schedule: Schedule
    allocation: Allocation
    area: AreaReport
    clock: Dict[str, float]
    fully_separated: bool

    @property
    def cycles_per_sample(self) -> int:
        """Per-sample initiation interval.

        Two lower bounds, the larger of which governs a modulo-scheduled
        streaming implementation: the data critical path (a sample's
        result cannot appear earlier) and the busiest unit's utilisation
        (a shared unit must execute all of its sample-k operations --
        nominal and check -- before it can serve sample k+1).
        """
        import math

        graph = self.schedule.graph
        busy: Dict[str, int] = {}
        from repro.codesign.scheduling import unit_class_of

        for node in graph.nodes:
            unit = unit_class_of(node, self.schedule.dedicated_checkers)
            if unit is None:
                continue
            busy[unit] = busy.get(unit, 0) + self.schedule.latency_of[node.name]
        utilisation = 0
        for unit, total in busy.items():
            instances = max(1, self.allocation.instances.get(unit, 1))
            utilisation = max(utilisation, math.ceil(total / instances))
        return max(self.schedule.data_length, utilisation)

    @property
    def latency_formula(self) -> str:
        return f"{PROLOGUE_CYCLES} + {self.cycles_per_sample}n"

    @property
    def slices(self) -> int:
        return self.area.total

    @property
    def frequency_mhz(self) -> float:
        return self.clock["frequency_mhz"]

    @property
    def coverage_claim(self) -> str:
        """The paper's qualitative coverage statement for this point."""
        if self.variant == "plain":
            return "none (no checks)"
        if self.fully_separated:
            return "complete (checks on different units)"
        return "worst-case same-unit (Table 2 band)"

    def describe(self) -> str:
        return (
            f"{self.variant}/{self.objective}: latency {self.latency_formula} "
            f"@ {self.frequency_mhz:.2f} MHz, {self.slices} slices, "
            f"coverage: {self.coverage_claim}"
        )


@dataclass
class FlowResult:
    """All Table 3 data for one specification variant."""

    variant: str
    graph: DataflowGraph
    hw_min_area: HardwareResult
    hw_min_latency: HardwareResult
    software: SoftwareEstimate


class ReliableCoDesignFlow:
    """Drives a specification through the reliable co-design flow.

    Args:
        specification: the plain (unchecked) per-sample dataflow graph.
        techniques: per-operator SCK technique selection.
        samples: workload size for the software measurements.
        area_model / timing_model: cost-model overrides.
    """

    def __init__(
        self,
        specification: DataflowGraph,
        techniques: Optional[Dict[str, str]] = None,
        samples: int = 20_000_000,
        width: int = 16,
        area_model: AreaModel = AreaModel(),
        timing_model: TimingModel = TimingModel(),
    ) -> None:
        specification.validate()
        self.specification = specification
        self.techniques = techniques or {}
        self.samples = samples
        self.width = width
        self.area_model = area_model
        self.timing_model = timing_model

    # ------------------------------------------------------------------
    def variant_graph(self, variant: str, balanced: bool = False) -> DataflowGraph:
        """The specification enriched per ``variant``.

        ``balanced=True`` applies tree-height reduction before the
        enrichment (the minimum-latency synthesis point).
        """
        base = (
            balance_accumulation(self.specification)
            if balanced
            else self.specification
        )
        if variant == "plain":
            return base
        if variant == "sck":
            return enrich_with_sck(base, self.techniques)
        if variant == "embedded":
            return embed_output_checks(base)
        raise SpecificationError(
            f"unknown variant {variant!r}; choose from {VARIANTS}"
        )

    def _hardware(self, variant: str, graph: DataflowGraph, objective: str) -> HardwareResult:
        if objective == "min_area":
            schedule = list_schedule(
                graph, MIN_AREA_RESOURCES, dedicated_checkers=False
            )
        elif objective == "min_latency":
            schedule = asap_schedule(graph)
            schedule.dedicated_checkers = True
        else:
            raise SpecificationError(f"unknown objective {objective!r}")
        allocation = bind(schedule)
        area = estimate_area(allocation, self.area_model)
        clock = estimate_clock(allocation, self.timing_model)
        return HardwareResult(
            variant=variant,
            objective=objective,
            schedule=schedule,
            allocation=allocation,
            area=area,
            clock=clock,
            fully_separated=allocation.fully_separated,
        )

    def run_variant(self, variant: str) -> FlowResult:
        """Full hardware + software evaluation of one variant."""
        graph = self.variant_graph(variant)
        balanced_graph = self.variant_graph(variant, balanced=True)
        software = estimate_software(
            graph,
            samples=self.samples,
            width=self.width,
            uses_sck_template=(variant == "sck"),
        )
        return FlowResult(
            variant=variant,
            graph=graph,
            hw_min_area=self._hardware(variant, graph, "min_area"),
            hw_min_latency=self._hardware(variant, balanced_graph, "min_latency"),
            software=software,
        )

    def run(self) -> Dict[str, FlowResult]:
        """Evaluate all three Table 3 variants."""
        return {variant: self.run_variant(variant) for variant in VARIANTS}
