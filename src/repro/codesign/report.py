"""Table 3 renderer.

Run as a module::

    python -m repro.codesign.report table3 --samples 100000
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from repro.codesign.flow import FlowResult, ReliableCoDesignFlow

#: Paper's Table 3 reference values.
PAPER_TABLE3_HW = {
    ("plain", "min_area"): ("2 + 7n", 20.0, 412),
    ("plain", "min_latency"): ("2 + 5n", 20.0, 477),
    ("sck", "min_area"): ("2 + 10n", 16.67, 1926),
    ("sck", "min_latency"): ("2 + 5n", 20.0, 1593),
    ("embedded", "min_area"): ("2 + 9n", 15.38, 634),
    ("embedded", "min_latency"): ("2 + 5n", 20.0, 861),
}

PAPER_TABLE3_SW = {
    "plain": (6.83, 889),
    "sck": (10.02, 893),
    "embedded": (7.90, 889),
}

_VARIANT_LABEL = {
    "plain": "FIR",
    "sck": "FIR with SCK",
    "embedded": "FIR embedded SCK",
}


def _fmt(cells, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def render_table3(
    results: Optional[Dict[str, FlowResult]] = None,
    samples: int = 20_000_000,
    spec=None,
) -> str:
    """Regenerate Table 3 (FIR hardware + software costs)."""
    if results is None:
        # Imported here: repro.apps builds on repro.codesign, so the
        # module level cannot depend on it.
        from repro.apps.fir import FirSpec, fir_graph

        flow = ReliableCoDesignFlow(
            fir_graph(spec if spec is not None else FirSpec()), samples=samples
        )
        results = flow.run()
    widths = (18, 12, 12, 10, 8, 26)
    lines = [
        "Table 3 -- application of the methodology to the FIR",
        "",
        "Hardware implementation",
        _fmt(
            ("variant", "objective", "latency", "clock MHz", "slices", "paper (lat/MHz/slices)"),
            widths,
        ),
    ]
    for variant in ("plain", "sck", "embedded"):
        result = results[variant]
        for objective, hw in (
            ("min_area", result.hw_min_area),
            ("min_latency", result.hw_min_latency),
        ):
            paper = PAPER_TABLE3_HW[(variant, objective)]
            lines.append(
                _fmt(
                    (
                        _VARIANT_LABEL[variant],
                        objective,
                        hw.latency_formula,
                        f"{hw.frequency_mhz:.2f}",
                        hw.slices,
                        f"{paper[0]} / {paper[1]} / {paper[2]}",
                    ),
                    widths,
                )
            )
    sw_widths = (18, 14, 14, 24)
    lines += [
        "",
        "Software implementation",
        _fmt(("variant", "exe time (s)", "exe size (KB)", "paper (s / KB)"), sw_widths),
    ]
    for variant in ("plain", "sck", "embedded"):
        sw = results[variant].software
        paper = PAPER_TABLE3_SW[variant]
        lines.append(
            _fmt(
                (
                    _VARIANT_LABEL[variant],
                    f"{sw.seconds:.2f}",
                    f"{sw.image_kilobytes:.0f}",
                    f"{paper[0]:.2f} / {paper[1]}",
                ),
                sw_widths,
            )
        )
    plain = results["plain"]
    sck = results["sck"]
    embedded = results["embedded"]
    lines += [
        "",
        "Relative overheads (this reproduction vs paper)",
        f"  HW min-area slices:   SCK x{sck.hw_min_area.slices / plain.hw_min_area.slices:.2f} "
        f"(paper x{1926 / 412:.2f}), embedded x{embedded.hw_min_area.slices / plain.hw_min_area.slices:.2f} "
        f"(paper x{634 / 412:.2f})",
        f"  HW min-lat slices:    SCK x{sck.hw_min_latency.slices / plain.hw_min_latency.slices:.2f} "
        f"(paper x{1593 / 477:.2f}), embedded x{embedded.hw_min_latency.slices / plain.hw_min_latency.slices:.2f} "
        f"(paper x{861 / 477:.2f})",
        f"  SW time:              SCK x{sck.software.seconds / plain.software.seconds:.2f} "
        f"(paper x{10.02 / 6.83:.2f}), embedded x{embedded.software.seconds / plain.software.seconds:.2f} "
        f"(paper x{7.90 / 6.83:.2f})",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Co-design flow reports")
    parser.add_argument("table", choices=("table3",))
    parser.add_argument("--samples", type=int, default=20_000_000)
    args = parser.parse_args(argv)
    print(render_table3(samples=args.samples))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
