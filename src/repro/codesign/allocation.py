"""Functional-unit allocation and binding.

Given a schedule, binding assigns every operation to a concrete unit
instance of its class.  The binder is *reliability-aware*: when a check
operation (role ``"check"``) could land on the same unit instance as
the nominal operation it guards, and another compatible instance is
free, the binder prefers the other instance -- the paper's Section 2.1
observation that "using a multi functional resource system and a proper
allocation/scheduling policy it is possible to achieve a 100% fault
coverage if different functional units perform the two operations".

The binder reports whether full separation was achieved
(:attr:`Allocation.fully_separated`), which the flow uses to decide
whether the hardware implementation's coverage is complete (100 %) or
limited to the worst-case same-unit figures of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codesign.dfg import DataflowGraph, Node
from repro.codesign.scheduling import Schedule, unit_class_of
from repro.errors import SchedulingError


@dataclass(frozen=True)
class Binding:
    """One operation bound to one unit instance."""

    node: str
    unit_class: str
    instance: int
    start: int
    finish: int


@dataclass
class Allocation:
    """Complete binding of a schedule onto unit instances."""

    schedule: Schedule
    bindings: Dict[str, Binding] = field(default_factory=dict)
    instances: Dict[str, int] = field(default_factory=dict)
    separation_conflicts: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def fully_separated(self) -> bool:
        """True when no check shares a unit with its guarded operation."""
        return not self.separation_conflicts

    def unit_of(self, node: str) -> Optional[Tuple[str, int]]:
        binding = self.bindings.get(node)
        if binding is None:
            return None
        return binding.unit_class, binding.instance

    def ops_on(self, unit_class: str, instance: int) -> List[str]:
        return [
            b.node
            for b in self.bindings.values()
            if b.unit_class == unit_class and b.instance == instance
        ]

    def sharing_degree(self) -> Dict[Tuple[str, int], int]:
        """Operations mapped per unit instance (mux pressure driver)."""
        degree: Dict[Tuple[str, int], int] = {}
        for binding in self.bindings.values():
            key = (binding.unit_class, binding.instance)
            degree[key] = degree.get(key, 0) + 1
        return degree


def _guarded_nominal(graph: DataflowGraph, check: Node) -> Optional[str]:
    """The nominal operation a check node guards, by naming convention.

    The SCK transform names check nodes ``<nominal>_chk_*`` and the
    embedded transform ``<output>_emb*``; only the former has a
    same-class nominal ancestor worth separating from.
    """
    name = check.name
    if "_chk_" in name:
        return name.split("_chk_", 1)[0]
    return None


def bind(
    schedule: Schedule,
    resources: Optional[Dict[str, int]] = None,
    prefer_separation: bool = True,
) -> Allocation:
    """Bind every scheduled operation to a unit instance.

    Args:
        schedule: a verified schedule.
        resources: unit counts per class; defaults to the schedule's
            own resource map, falling back to peak usage (minimum
            feasible allocation).
        prefer_separation: apply the reliability-aware rule.
    """
    graph = schedule.graph
    usage = schedule.unit_usage()
    limits: Dict[str, int] = dict(usage)
    if schedule.resources:
        limits.update(schedule.resources)
    if resources:
        limits.update(resources)
    for unit, peak in usage.items():
        if limits.get(unit, peak) < peak:
            raise SchedulingError(
                f"cannot bind: {unit} peak usage {peak} exceeds "
                f"allocation {limits[unit]}"
            )

    allocation = Allocation(schedule)
    allocation.instances = {
        unit: limits.get(unit, peak) for unit, peak in usage.items()
    }
    busy_until: Dict[Tuple[str, int], int] = {}
    dedicated = schedule.dedicated_checkers
    ordered = sorted(
        (
            node
            for node in graph.nodes
            if unit_class_of(node, dedicated) is not None
        ),
        key=lambda n: (schedule.start[n.name], n.name),
    )
    for node in ordered:
        unit = unit_class_of(node, dedicated)
        begin = schedule.start[node.name]
        end = schedule.finish(node.name)
        count = allocation.instances.get(unit, 0) or 1
        allocation.instances[unit] = count
        free = [
            i
            for i in range(count)
            if busy_until.get((unit, i), 0) <= begin
        ]
        if not free:
            raise SchedulingError(
                f"no free {unit} instance for {node.name!r} at cycle {begin}"
            )
        choice = free[0]
        if prefer_separation and node.role == "check":
            guarded = _guarded_nominal(graph, node)
            if guarded is not None and guarded in allocation.bindings:
                nominal = allocation.bindings[guarded]
                if nominal.unit_class == unit:
                    others = [i for i in free if i != nominal.instance]
                    if others:
                        choice = others[0]
        allocation.bindings[node.name] = Binding(node.name, unit, choice, begin, end)
        busy_until[(unit, choice)] = end

    # Separation audit: under the single-functional-unit failure model a
    # check is only trustworthy if its unit instance executes *no*
    # nominal operation at all -- a fault in a shared instance corrupts
    # both the computation and its check.  Record every check bound to a
    # mixed-role instance.
    ops_by_instance: Dict[Tuple[str, int], List[str]] = {}
    for binding in allocation.bindings.values():
        ops_by_instance.setdefault(
            (binding.unit_class, binding.instance), []
        ).append(binding.node)
    for (unit, instance), ops in ops_by_instance.items():
        roles = {graph.node(name).role for name in ops}
        if "check" in roles and "nominal" in roles:
            for name in ops:
                if graph.node(name).role == "check":
                    allocation.separation_conflicts.append(
                        (name, f"{unit}[{instance}] shared with nominal ops")
                    )
    return allocation
