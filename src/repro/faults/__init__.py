"""Fault model: descriptors, activation schedules and campaign injection.

The paper's fault model is the *single functional unit failure*: any
number of physical faults may affect one (and only one) functional unit,
manifesting as errors (stuck-at, bit-flip...) on the bits of the result.
Permanent, transient and intermittent faults are all covered.

* :mod:`repro.faults.model` -- fault descriptors and activation
  schedules (permanent / transient / intermittent);
* :mod:`repro.faults.universe` -- the canonical 32-fault full-adder
  universe and enumeration of (fault, location) cases per unit type;
* :mod:`repro.faults.injector` -- campaign orchestration: per-fault ALU
  workloads (:class:`FaultInjector`) and the batched gate-level
  campaigns (:func:`run_gate_level_campaign`,
  :func:`run_sharded_stuck_at_campaign`);
* :mod:`repro.faults.sharding` -- process-pool sharding policy shared
  by campaigns and the coverage evaluators (bit-identical merges);
* :mod:`repro.faults.incremental` -- campaign recomputation across
  netlist edits: structural diff, verdict-preservation proofs, and
  store-backed reuse (:func:`incremental_stuck_at_campaign`).
"""

from repro.faults.model import (
    ActivationSchedule,
    FaultDescriptor,
    intermittent,
    permanent,
    transient,
)
from repro.faults.universe import (
    AdderFaultCase,
    DividerFaultCase,
    MultiplierFaultCase,
    adder_fault_cases,
    divider_fault_cases,
    multiplier_fault_cases,
)
from repro.faults.injector import (
    CampaignResult,
    FaultInjector,
    run_gate_level_campaign,
    run_sharded_stuck_at_campaign,
)
from repro.faults.incremental import (
    IncrementalCampaignResult,
    NetlistDiff,
    diff_netlists,
    incremental_stuck_at_campaign,
)

__all__ = [
    "ActivationSchedule",
    "FaultDescriptor",
    "permanent",
    "transient",
    "intermittent",
    "AdderFaultCase",
    "MultiplierFaultCase",
    "DividerFaultCase",
    "adder_fault_cases",
    "multiplier_fault_cases",
    "divider_fault_cases",
    "FaultInjector",
    "CampaignResult",
    "run_gate_level_campaign",
    "run_sharded_stuck_at_campaign",
    "NetlistDiff",
    "diff_netlists",
    "IncrementalCampaignResult",
    "incremental_stuck_at_campaign",
]
