"""Fault descriptors and activation schedules.

A :class:`FaultDescriptor` names *what* is broken (which unit class,
which cell, which stuck-at behaviour); an :class:`ActivationSchedule`
says *when* the fault is active.  The paper covers permanent, transient
and intermittent faults; schedules model these as predicates over a
discrete operation counter, so the same campaign machinery exercises all
three duration classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.arch.cell import FullAdderCell
from repro.errors import FaultError


@dataclass(frozen=True)
class ActivationSchedule:
    """When a fault is active, as a predicate over an operation counter.

    Attributes:
        kind: ``"permanent"``, ``"transient"`` or ``"intermittent"``.
        predicate: maps the 0-based operation index to True when the
            fault is active during that operation.
    """

    kind: str
    predicate: Callable[[int], bool]

    def active_at(self, op_index: int) -> bool:
        """True if the fault affects the ``op_index``-th operation."""
        if op_index < 0:
            raise FaultError(f"operation index must be >= 0, got {op_index}")
        return bool(self.predicate(op_index))


def permanent() -> ActivationSchedule:
    """A fault active during every operation."""
    return ActivationSchedule("permanent", lambda _: True)


def transient(at: int, duration: int = 1) -> ActivationSchedule:
    """A fault active for ``duration`` consecutive operations from ``at``."""
    if at < 0:
        raise FaultError(f"transient start must be >= 0, got {at}")
    if duration < 1:
        raise FaultError(f"transient duration must be >= 1, got {duration}")
    return ActivationSchedule("transient", lambda i: at <= i < at + duration)


def intermittent(
    probability: float, seed: Optional[int] = None
) -> ActivationSchedule:
    """A fault active on each operation independently with ``probability``.

    A seeded RNG with memoisation keeps the schedule deterministic and
    consistent when the same operation index is queried twice (as the
    nominal/check pair does).
    """
    if not (0.0 <= probability <= 1.0):
        raise FaultError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    memo = {}

    def predicate(i: int) -> bool:
        if i not in memo:
            memo[i] = rng.random() < probability
        return memo[i]

    return ActivationSchedule("intermittent", predicate)


@dataclass(frozen=True)
class FaultDescriptor:
    """A complete fault specification for campaign injection.

    Attributes:
        unit: functional unit class (``"adder"``, ``"multiplier"``,
            ``"divider"``).
        cell: the faulty full-adder behaviour.
        position: chain position (adder/divider) or row (multiplier).
        column: multiplier column; ignored otherwise.
        schedule: when the fault is active.
    """

    unit: str
    cell: FullAdderCell
    position: int = 0
    column: int = 0
    schedule: ActivationSchedule = field(default_factory=permanent)

    def describe(self) -> str:
        where = f"{self.unit}[{self.position}]"
        if self.unit == "multiplier":
            where = f"{self.unit}[{self.position},{self.column}]"
        what = self.cell.fault.describe() if self.cell.fault else "custom cell"
        return f"{what} in {where} ({self.schedule.kind})"
