"""Process-pool sharding for fault campaigns.

Fault cases are embarrassingly parallel: each one is classified against
the same golden behaviour, so a campaign can be split into contiguous
fault-list shards, evaluated in worker processes, and merged back in
shard order.  Because every shard computes exact integer counts (or
exact per-fault verdicts) and the merge is order-preserving, results are
bit-identical for any worker count -- the invariance property
``tests/test_table2_exact.py`` asserts.

Workers are plain module-level functions taking picklable arguments
(operator names, widths, index ranges) and rebuilding netlists and
engines locally; on fork-based platforms they inherit the parent's warm
caches for free.  Campaign callers resolve the execution backend
(:mod:`repro.gates.backends`) *before* sharding and pass the resolved
name in every worker's argument tuple, so a worker re-selects the same
backend regardless of its own environment and merges stay bit-identical
whatever ``REPRO_BACKEND`` says in parent or child.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import events, metrics

#: Below this much total work (items x per-item cost) the pool overhead
#: outweighs any parallel gain and auto-selection stays single-process.
DEFAULT_SHARD_THRESHOLD = 1 << 24

#: Upper bound on auto-selected workers; explicit ``workers=`` may exceed it.
MAX_AUTO_WORKERS = 8


def resolve_workers(
    workers: Optional[int],
    n_items: int,
    cost: Optional[int] = None,
    threshold: int = DEFAULT_SHARD_THRESHOLD,
) -> int:
    """Decide the process count for a campaign.

    ``workers=None`` selects automatically: multiple processes only when
    the machine has spare cores and the estimated ``cost`` (e.g.
    ``n_faults * n_vectors``) crosses ``threshold``.  An explicit
    ``workers`` value is honoured as given (floored at 1), which is what
    the shard-invariance tests use to force a pool on any machine.
    """
    if workers is not None:
        return max(1, int(workers))
    cpus = os.cpu_count() or 1
    if cpus <= 1 or n_items < 2:
        return 1
    if cost is not None and cost < threshold:
        return 1
    return min(cpus, MAX_AUTO_WORKERS, n_items)


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` ranges covering ``n_items``.

    Shard sizes differ by at most one; empty shards are dropped, so the
    concatenation of shard results always reproduces the unsharded
    order exactly.
    """
    n_shards = max(1, min(n_shards, n_items)) if n_items else 1
    base, extra = divmod(n_items, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def shard_grid(
    n_cases: int, n_words: int, n_workers: int, word_first: bool = False
) -> List[Tuple[int, int, int, int]]:
    """Tile the (fault case, sweep word) rectangle into at most
    ``n_workers`` shards ``(case_lo, case_hi, word_lo, word_hi)``.

    Fault cases split first (they are the cheaper dimension to merge:
    per-case counts concatenate); when fewer cases than workers exist,
    the spare parallelism splits each case range's *word* sweep, whose
    per-case partial counts the caller sums back together.  Tiles cover
    the rectangle exactly, in (case, word) order, so grid merges are as
    deterministic as plain fault-case shards.

    ``word_first`` flips the preference: every shard spans *all* cases
    over one word range.  Per-case cost is wildly uneven (reference
    classes are free, fault classes are not) while per-word cost is
    uniform, so wide sweeps -- where the word axis dominates the work --
    balance better across workers this way; the merge is the same
    word-range summation either way.
    """
    if word_first and n_cases and n_words >= max(1, n_workers):
        return [
            (0, n_cases, word_lo, word_hi)
            for word_lo, word_hi in shard_bounds(n_words, n_workers)
        ]
    case_shards = shard_bounds(n_cases, n_workers)
    if not case_shards:
        return []
    word_splits = min(max(1, n_words), max(1, n_workers // len(case_shards)))
    word_shards = shard_bounds(n_words, word_splits) or [(0, n_words)]
    return [
        (case_lo, case_hi, word_lo, word_hi)
        for case_lo, case_hi in case_shards
        for word_lo, word_hi in word_shards
    ]


def _instrumented_shard(
    worker: Callable[..., Any], index: int, args: Tuple[Any, ...]
) -> Tuple[Any, float, int, List[Any]]:
    """Evaluate one shard in a worker process, piggybacking telemetry.

    Returns ``(result, seconds, worker_pid, metrics_raw)`` -- the
    results-queue side channel that carries per-shard wall time and the
    worker registry's series back to the parent.  Forked pool workers
    exit via ``os._exit``, so their dump-on-exit hooks never run; this
    return path is the only way their metrics survive.  The worker
    registry is drained after capture so a pool process that evaluates
    several shards reports per-shard deltas, not cumulative totals.
    """
    events.emit(events.SHARD_STARTED, shard=index, worker_pid=os.getpid())
    start = time.perf_counter()
    result = worker(*args)
    seconds = time.perf_counter() - start
    raw = metrics.registry().raw_series()
    metrics.registry().reset()
    return result, seconds, os.getpid(), raw


def _notify(
    on_event: Optional[Callable[[str, Dict[str, Any]], None]],
    name: str,
    **fields: Any,
) -> None:
    events.emit(name, **fields)
    if on_event is not None:
        on_event(name, fields)


def run_sharded(
    worker: Callable[..., Any],
    arg_tuples: Sequence[Tuple[Any, ...]],
    on_result: Optional[Callable[[int, Any], None]] = None,
    on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
) -> List[Any]:
    """Run ``worker(*args)`` for each tuple, in order, across processes.

    One process per argument tuple (callers size the tuples via
    :func:`shard_bounds`); results are returned in submission order so
    merges are deterministic.  A single tuple short-circuits to an
    in-process call -- no pool, no pickling.

    ``on_result(index, result)``, when given, fires in the *parent*
    process as each shard completes -- in completion order, not
    submission order.  The checkpoint runtime uses it to land partial
    results in the store the moment they exist, so a campaign killed
    mid-pool keeps every finished shard.

    ``on_event(name, fields)``, when given, receives every lifecycle
    event this call emits through :mod:`repro.obs.events` (submitted /
    completed / failed / merged -- ``shard_started`` fires inside the
    worker process and reaches the parent trace only via a shared
    ``REPRO_TRACE`` file).  Per-shard wall seconds and worker-process
    metrics ride back on the results queue itself, so the telemetry
    spans the process boundary without any extra IPC; worker metrics
    are merged into the parent registry before the merged event fires.
    """
    n_shards = len(arg_tuples)
    if n_shards <= 1:
        results = []
        for index, args in enumerate(arg_tuples):
            _notify(on_event, events.SHARD_SUBMITTED, shard=index, n_shards=n_shards)
            events.emit(events.SHARD_STARTED, shard=index, worker_pid=os.getpid())
            start = time.perf_counter()
            result = worker(*args)
            _notify(
                on_event,
                events.SHARD_COMPLETED,
                shard=index,
                worker_pid=os.getpid(),
                seconds=time.perf_counter() - start,
            )
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        _notify(on_event, events.SHARDS_MERGED, n_shards=n_shards)
        return results
    from concurrent.futures import ProcessPoolExecutor, as_completed

    with ProcessPoolExecutor(max_workers=n_shards) as pool:
        futures = {}
        for index, args in enumerate(arg_tuples):
            futures[pool.submit(_instrumented_shard, worker, index, args)] = index
            _notify(on_event, events.SHARD_SUBMITTED, shard=index, n_shards=n_shards)
        results: List[Any] = [None] * n_shards
        for future in as_completed(futures):
            index = futures[future]
            try:
                result, seconds, worker_pid, raw = future.result()
            except BaseException as exc:
                _notify(
                    on_event,
                    events.SHARD_FAILED,
                    shard=index,
                    error=type(exc).__name__,
                )
                raise
            metrics.registry().merge_raw(raw)
            _notify(
                on_event,
                events.SHARD_COMPLETED,
                shard=index,
                worker_pid=worker_pid,
                seconds=seconds,
            )
            if on_result is not None:
                on_result(index, result)
            results[index] = result
        _notify(on_event, events.SHARDS_MERGED, n_shards=n_shards)
        return results
