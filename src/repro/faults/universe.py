"""Enumeration of (fault, location) cases per functional unit type.

Table 2's situation count is ``num_faults_1bit * n * 2**(2n)``: every one
of the 32 faulty full-adder behaviours, at every one of the ``n`` chain
positions, for every input pair.  This module produces those
(behaviour, location) case lists for each unit type so the coverage
engine and the campaign injector iterate the exact same universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.cell import DEFAULT_CELL_NETLIST, FullAdderCell, faulty_cell_library
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.errors import FaultError


@dataclass(frozen=True)
class AdderFaultCase:
    """One faulty-cell case of an n-bit adder chain."""

    cell: FullAdderCell
    position: int


@dataclass(frozen=True)
class MultiplierFaultCase:
    """One faulty-cell case of a truncated array multiplier."""

    cell: FullAdderCell
    row: int
    column: int


@dataclass(frozen=True)
class DividerFaultCase:
    """One faulty-cell case of a restoring divider's subtractor chain."""

    cell: FullAdderCell
    position: int


def adder_fault_cases(
    width: int, cell_netlist: str = DEFAULT_CELL_NETLIST
) -> List[AdderFaultCase]:
    """All ``32 * width`` faulty cases of a ``width``-bit adder."""
    if width < 1:
        raise FaultError(f"width must be >= 1, got {width}")
    cells = faulty_cell_library(cell_netlist)
    return [
        AdderFaultCase(cell, pos) for cell in cells for pos in range(width)
    ]


def multiplier_fault_cases(
    width: int, cell_netlist: str = DEFAULT_CELL_NETLIST
) -> List[MultiplierFaultCase]:
    """All ``32 * width*(width-1)/2`` faulty cases of the array multiplier."""
    if width < 2:
        raise FaultError(f"multiplier fault cases need width >= 2, got {width}")
    cells = faulty_cell_library(cell_netlist)
    positions = ArrayMultiplierUnit.cell_positions(width)
    return [
        MultiplierFaultCase(cell, row, col)
        for cell in cells
        for row, col in positions
    ]


def divider_fault_cases(
    width: int, cell_netlist: str = DEFAULT_CELL_NETLIST
) -> List[DividerFaultCase]:
    """All ``32 * (width+1)`` faulty cases of the divider's subtract chain."""
    if width < 1:
        raise FaultError(f"width must be >= 1, got {width}")
    cells = faulty_cell_library(cell_netlist)
    return [
        DividerFaultCase(cell, pos)
        for cell in cells
        for pos in range(width + 1)
    ]
