"""Fault-injection campaigns over a :class:`~repro.arch.alu.FaultableALU`.

A campaign runs a user-supplied workload once per fault descriptor and
classifies each run:

* ``correct``   -- every output matched the golden run;
* ``detected``  -- at least one output differed *and* the workload's
  error indication was raised (or the run raised an exception);
* ``escaped``   -- an output differed silently (undetected error);
* ``false_alarm`` -- outputs matched but the error indication fired
  (the paper counts these as *useful* early detections: "the technique
  allows fault detection also when the produced result is correct").

The workload is any callable receiving the (possibly faulty) ALU and
returning ``(outputs, error_flag)``.

Besides the per-fault ALU campaigns, :func:`run_gate_level_campaign`
exposes the batched bit-parallel path: the whole stuck-at universe of a
gate-level netlist is simulated against one shared golden run
(:mod:`repro.gates.engine`) and folded into the same
:class:`CampaignResult` vocabulary (``detected`` / ``escaped``), so
campaign reporting works unchanged at either abstraction level.  Large
universes shard across worker processes
(:func:`run_sharded_stuck_at_campaign`; ``workers=`` everywhere) with
bit-identical per-fault verdicts for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.alu import FaultableALU
from repro.errors import CheckError, ReproError
from repro.faults.model import FaultDescriptor
from repro.faults.sharding import resolve_workers, run_sharded, shard_bounds
from repro.gates.backends import AUTO_BACKEND, resolve_backend_name
from repro.gates.compile import compile_netlist
from repro.gates.engine import StuckAtCampaignResult, run_stuck_at_campaign
from repro.gates.faults import (
    StuckAtFault,
    default_fault_universe,
    resolve_collapse_mode,
)
from repro.gates.netlist import Netlist
from repro.obs import events as obs_events
from repro.obs.trace import span as obs_span
from repro.store import (
    CacheKey,
    digest_faults,
    digest_input_vectors,
    digest_netlist,
    digest_params,
    resolve_store,
    run_checkpointed,
)

Workload = Callable[[FaultableALU], Tuple[Sequence[int], bool]]


#: ALU campaigns classify :class:`FaultDescriptor`\ s; gate-level
#: campaigns classify raw :class:`StuckAtFault`\ s through the same
#: result machinery (both expose ``describe()``).
CampaignFault = Union[FaultDescriptor, StuckAtFault]


@dataclass
class CampaignOutcome:
    """Classification of one fault's run."""

    fault: CampaignFault
    classification: str
    outputs: Tuple[int, ...] = ()

    def describe(self) -> str:
        return f"{self.classification:11s} {self.fault.describe()}"


@dataclass
class CampaignResult:
    """Aggregate result of a fault-injection campaign."""

    outcomes: List[CampaignOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def count(self, classification: str) -> int:
        return sum(1 for o in self.outcomes if o.classification == classification)

    @property
    def coverage(self) -> float:
        """Fraction of faults that did not silently escape.

        Matches the paper's definition: the result is either correct or
        an error signal is raised.
        """
        if not self.outcomes:
            return 1.0
        return 1.0 - self.count("escaped") / self.total

    @property
    def detection_while_correct(self) -> int:
        """Faults flagged although the final outputs were correct."""
        return self.count("false_alarm")

    def escaped_faults(self) -> List[CampaignFault]:
        return [o.fault for o in self.outcomes if o.classification == "escaped"]

    def summary(self) -> str:
        return (
            f"{self.total} faults: {self.count('correct')} silent-correct, "
            f"{self.count('false_alarm')} detected-while-correct, "
            f"{self.count('detected')} detected, "
            f"{self.count('escaped')} escaped "
            f"(coverage {100.0 * self.coverage:.2f}%)"
        )


class FaultInjector:
    """Runs fault-injection campaigns for a fixed-width workload."""

    def __init__(self, width: int = 16, cell_netlist: str = "xor3_majority") -> None:
        self.width = width
        self.cell_netlist = cell_netlist

    def golden_run(self, workload: Workload) -> Tuple[Tuple[int, ...], bool]:
        """Run the workload on a fault-free ALU."""
        alu = FaultableALU(self.width, self.cell_netlist)
        outputs, error = workload(alu)
        return tuple(int(v) for v in outputs), bool(error)

    def run(
        self,
        workload: Workload,
        faults: Iterable[FaultDescriptor],
    ) -> CampaignResult:
        """Inject each fault, run the workload, classify the outcome."""
        golden_outputs, golden_error = self.golden_run(workload)
        if golden_error:
            raise CheckError(
                "workload raises its error indication on a fault-free ALU; "
                "campaign classifications would be meaningless"
            )
        result = CampaignResult()
        for fault in faults:
            alu = FaultableALU(self.width, self.cell_netlist)
            alu.inject_fault(fault.unit, fault.cell, fault.position, fault.column)
            try:
                outputs, error = workload(alu)
            except ReproError:
                # A crash (e.g. division by zero caused by a corrupted
                # divisor) is an error indication in its own right.
                result.outcomes.append(CampaignOutcome(fault, "detected"))
                continue
            outputs = tuple(int(v) for v in outputs)
            wrong = outputs != golden_outputs
            if wrong and error:
                cls = "detected"
            elif wrong:
                cls = "escaped"
            elif error:
                cls = "false_alarm"
            else:
                cls = "correct"
            result.outcomes.append(CampaignOutcome(fault, cls, outputs))
        return result


def _campaign_shard(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]],
    faults: List[StuckAtFault],
    collapse: Union[bool, str],
    fault_dropping: bool,
    backend: Optional[str] = None,
    sparse: Optional[bool] = None,
) -> StuckAtCampaignResult:
    """Shard worker: the batched campaign over one fault-list slice.

    ``backend`` and ``sparse`` arrive pre-resolved from the parent, so
    every worker process re-selects the same execution backend and
    sparse/dense tier regardless of its own environment and sharded
    merges stay bit-identical.
    """
    return run_stuck_at_campaign(
        netlist,
        inputs=vectors,
        faults=faults,
        collapse=collapse,
        fault_dropping=fault_dropping,
        backend=backend,
        sparse=sparse,
    )


def run_sharded_stuck_at_campaign(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]] = None,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    fault_dropping: bool = True,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
    sparse: Optional[bool] = None,
) -> StuckAtCampaignResult:
    """:func:`~repro.gates.engine.run_stuck_at_campaign` with fault sharding.

    The fault list (default: the full stem+branch universe) is split
    into contiguous shards, each simulated by a worker process with its
    own collapsing/dropping (any mode of
    :func:`~repro.gates.faults.resolve_collapse_mode`, including
    ``"dominance"`` -- each shard collapses its own slice), and the
    per-fault verdicts are merged back
    in order.  Detection is exact per fault, so the merged ``detected``
    and ``first_detected`` arrays are bit-identical for any worker
    count; ``n_simulated_runs``/``groups`` reflect the per-shard
    collapsing actually performed.  ``workers=None`` auto-selects by
    universe size (faults x vectors) and machine parallelism.
    ``backend`` selects the execution backend; it is resolved once here
    (including the ``"auto"`` sentinel, tuned on the campaign's real
    fault/vector universe) and the resolved name is handed to every
    worker.  ``sparse`` likewise resolves once
    (:func:`repro.gates.tune.resolve_sparse`) and the concrete
    sparse/dense choice is handed down; results are bit-identical
    either way, so store keys do not carry it.

    With a result store active (``store=`` or ``REPRO_STORE``), the
    merged result memoises under a content key and every shard
    checkpoints as it completes (:mod:`repro.store.checkpoint`): a
    killed campaign re-run with the same ``workers`` loads its finished
    shards and executes only the missing ones, merging bit-identically.
    """
    with obs_span("sharded_campaign", netlist=netlist.name):
        return _run_sharded_stuck_at_impl(
            netlist, vectors, faults, collapse, fault_dropping, workers,
            backend, store, sparse,
        )


def _run_sharded_stuck_at_impl(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]],
    faults: Optional[Iterable[StuckAtFault]],
    collapse: Union[bool, str],
    fault_dropping: bool,
    workers: Optional[int],
    backend: Optional[str],
    store,
    sparse: Optional[bool] = None,
) -> StuckAtCampaignResult:
    fault_seq: Tuple[StuckAtFault, ...] = (
        tuple(faults) if faults is not None else default_fault_universe(netlist)
    )
    if vectors is None:
        n_vectors = 1 << min(len(netlist.primary_inputs), 63)
    else:
        lengths = [
            np.asarray(v).shape[0]
            for v in vectors.values()
            if np.asarray(v).ndim == 1
        ]
        n_vectors = lengths[0] if lengths else 1
    backend = resolve_backend_name(backend, allow_auto=True)
    if backend == AUTO_BACKEND:
        from repro.gates.tune import resolve_plan

        backend = resolve_plan(
            compile_netlist(netlist),
            backend=AUTO_BACKEND,
            n_groups=len(fault_seq),
            n_words=max(1, -(-n_vectors // 64)),
        ).backend
    from repro.gates.tune import resolve_sparse

    # Resolve sparse/dense once, in the parent: workers inherit the
    # concrete choice, not the environment that produced it.
    sparse = resolve_sparse(
        compile_netlist(netlist),
        backend,
        sparse=sparse,
        n_groups=len(fault_seq),
        n_words=max(1, -(-n_vectors // 64)),
    ).sparse
    store = resolve_store(store)
    key = None
    if store is not None:
        # The final key is shard-free: any worker count hits the same
        # entry.  Only the per-shard checkpoint keys below carry spans.
        key = CacheKey(
            kind="campaign",
            netlist=digest_netlist(netlist),
            universe=digest_faults(fault_seq),
            space=digest_input_vectors(netlist, vectors),
            method="stuck_at",
            backend=backend,
            params=digest_params(
                collapse=resolve_collapse_mode(collapse),
                fault_dropping=fault_dropping,
            ),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    n_workers = resolve_workers(
        workers, len(fault_seq), cost=len(fault_seq) * n_vectors
    )
    if n_workers <= 1:
        # Pass None through untouched (keeps the memoised default-universe
        # fast path); otherwise use the materialised tuple -- the original
        # ``faults`` may be a one-shot iterator already consumed above.
        result = run_stuck_at_campaign(
            netlist,
            inputs=vectors,
            faults=fault_seq if faults is not None else None,
            collapse=collapse,
            fault_dropping=fault_dropping,
            backend=backend,
            sparse=sparse,
        )
        if store is not None:
            store.put(key, result, {"workers": 1})
        return result
    bounds = shard_bounds(len(fault_seq), n_workers)
    arg_tuples = [
        (netlist, vectors, list(fault_seq[lo:hi]), collapse, fault_dropping,
         backend, sparse)
        for lo, hi in bounds
    ]
    if store is not None:
        parts = run_checkpointed(
            _campaign_shard,
            arg_tuples,
            [key.with_shard(lo, hi) for lo, hi in bounds],
            store,
        )
    else:
        parts = run_sharded(_campaign_shard, arg_tuples)
    groups: List[Tuple[int, ...]] = []
    for part, (lo, _) in zip(parts, bounds):
        groups.extend(tuple(i + lo for i in g) for g in part.groups)
    result = StuckAtCampaignResult(
        netlist_name=netlist.name,
        faults=fault_seq,
        detected=np.concatenate([p.detected for p in parts]),
        first_detected=np.concatenate([p.first_detected for p in parts]),
        n_vectors=parts[0].n_vectors,
        n_simulated_runs=sum(p.n_simulated_runs for p in parts),
        groups=tuple(groups),
    )
    # Worker-process campaigns emit their own spans (visible through a
    # shared REPRO_TRACE file); the merged totals are reported here.
    obs_events.emit(
        obs_events.CAMPAIGN_COMPLETED,
        netlist=netlist.name,
        backend=backend,
        n_faults=len(fault_seq),
        n_vectors=result.n_vectors,
        n_simulated_runs=result.n_simulated_runs,
        workers=n_workers,
    )
    if store is not None:
        store.put(key, result, {"workers": n_workers})
    return result


def run_gate_level_campaign(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]] = None,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    fault_dropping: bool = True,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
    sparse: Optional[bool] = None,
) -> Tuple[CampaignResult, StuckAtCampaignResult]:
    """Batched stuck-at campaign over a gate-level netlist.

    Unlike :class:`FaultInjector` (one workload run per fault), this
    simulates the entire stuck-at universe in a single bit-parallel pass
    against a shared golden run, with structural fault collapsing and
    fault dropping.  ``vectors`` maps primary inputs to 0/1 arrays (all
    the same length); by default the exhaustive vector set is applied.
    ``workers`` shards the fault list across processes (``None``
    auto-selects by universe size) and ``backend`` selects the
    execution backend (:mod:`repro.gates.backends`), both with
    bit-identical classifications.

    A fault whose outputs diverge from the golden run on some vector is
    ``detected``; one that never diverges is ``escaped`` (at the bare
    gate level there is no checking operation to flag it).  Returns the
    classic :class:`CampaignResult` plus the raw
    :class:`~repro.gates.engine.StuckAtCampaignResult` for callers that
    need per-fault detecting vectors or the collapsing groups.
    """
    raw = run_sharded_stuck_at_campaign(
        netlist,
        vectors=vectors,
        faults=faults,
        collapse=collapse,
        fault_dropping=fault_dropping,
        workers=workers,
        backend=backend,
        store=store,
        sparse=sparse,
    )
    result = CampaignResult()
    for fault, hit in zip(raw.faults, raw.detected):
        result.outcomes.append(
            CampaignOutcome(fault, "detected" if hit else "escaped")
        )
    return result, raw
