"""Incremental campaign recomputation across netlist edits.

Re-running a whole stuck-at campaign after touching one gate wastes
nearly all of its work: a fault whose detection behaviour provably
cannot have changed keeps its old verdict.  This module makes that
proof and the reuse explicit:

* :func:`diff_netlists` -- a gate-level structural diff of two netlist
  versions, by gate instance name over ``(cell_type, inputs, output)``;
* :func:`incremental_stuck_at_campaign` -- given the previous
  campaign's result (passed in, or found in the result store under the
  old netlist's content key), re-simulates only the fault classes whose
  verdicts the edit can reach and merges the rest from the old result,
  **bit-identically** to a from-scratch
  :func:`~repro.gates.engine.run_stuck_at_campaign` over the new
  netlist (``detected`` / ``first_detected`` / ``faults`` /
  ``n_vectors`` all equal; only the ``n_simulated_runs`` work counter
  reflects the saving).

The reuse proof, per equivalence-class representative fault:

1. the identical fault (same site, same polarity) existed in the old
   universe, so the old result recorded its exact verdict (structural
   equivalence classes share *identical* detection words, so the old
   broadcast verdict is exact, not approximate);
2. the set of primary outputs reachable from the fault site is the
   same, by name, in both versions; and
3. none of those outputs is *dirty* -- reachable from any added,
   removed or modified gate (in whichever version the gate exists).

Condition 3 implies every reached output's transitive fan-in cone is
gate-for-gate identical (a changed gate in the cone of output ``p``
would make ``p`` reachable from that gate), so both the golden and the
faulty functions at every reachable output are unchanged, hence the
detection words -- and the earliest detecting vector -- are unchanged.
Outputs outside the reach set never differ from golden in either
version.  Everything else (including every fault at a site the old
netlist did not have) is re-simulated, one representative per class,
over the same exhaustive vector set.

Out of scope, falling back to a full from-scratch campaign (recorded
in :attr:`IncrementalCampaignResult.reason`): changed primary-input or
primary-output interfaces, and a missing/mismatched old result.
Dominance collapsing is rejected outright -- its verdict inference
crosses cone boundaries, so per-class reuse proofs do not compose.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends import AUTO_BACKEND, list_backends, resolve_backend_name
from repro.gates.compile import compile_netlist
from repro.gates.engine import (
    StuckAtCampaignResult,
    run_stuck_at_campaign,
)
from repro.gates.faults import (
    StuckAtFault,
    default_equivalence_groups,
    default_fault_universe,
    resolve_collapse_mode,
)
from repro.gates.memo import netlist_fingerprint
from repro.gates.netlist import Gate, Netlist
from repro.obs import events as obs_events
from repro.obs.trace import span as obs_span
from repro.store import (
    CacheKey,
    digest_faults,
    digest_input_vectors,
    digest_netlist,
    digest_params,
    resolve_store,
)


# ----------------------------------------------------------------------
# Structural diff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetlistDiff:
    """Gate-level structural diff of two netlist versions.

    Gates are matched by instance name; a matched gate counts as
    ``modified`` when its ``(cell_type, inputs, output)`` signature
    changed.  ``io_changed`` flags a different primary-input or
    primary-output interface (order included -- input order defines the
    packed vector layout).
    """

    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    modified: Tuple[str, ...]
    io_changed: bool

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.modified or self.io_changed)

    @property
    def n_changed_gates(self) -> int:
        return len(self.added) + len(self.removed) + len(self.modified)

    def describe(self) -> str:
        if self.is_empty:
            return "identical"
        parts = []
        if self.io_changed:
            parts.append("io changed")
        for label, names in (
            ("added", self.added),
            ("removed", self.removed),
            ("modified", self.modified),
        ):
            if names:
                parts.append(f"{label}: {', '.join(names)}")
        return "; ".join(parts)


def _gate_signature(gate: Gate) -> Tuple:
    return (gate.cell_type, tuple(gate.inputs), gate.output)


def diff_netlists(old: Netlist, new: Netlist) -> NetlistDiff:
    """Structural diff of ``old`` -> ``new`` by gate instance name."""
    old_gates = {g.name: g for g in old.gates}
    new_gates = {g.name: g for g in new.gates}
    if len(old_gates) != len(old.gates) or len(new_gates) != len(new.gates):
        raise SimulationError(
            "diff_netlists needs unique gate instance names in both versions"
        )
    added = tuple(sorted(set(new_gates) - set(old_gates)))
    removed = tuple(sorted(set(old_gates) - set(new_gates)))
    modified = tuple(
        sorted(
            name
            for name in set(old_gates) & set(new_gates)
            if _gate_signature(old_gates[name]) != _gate_signature(new_gates[name])
        )
    )
    io_changed = (
        list(old.primary_inputs) != list(new.primary_inputs)
        or list(old.primary_outputs) != list(new.primary_outputs)
    )
    return NetlistDiff(
        added=added, removed=removed, modified=modified, io_changed=io_changed
    )


# ----------------------------------------------------------------------
# Verdict-preservation proof
# ----------------------------------------------------------------------
def dirty_outputs(old: Netlist, new: Netlist, diff: NetlistDiff) -> frozenset:
    """Primary-output names whose function the edit may have changed.

    The union, over every added/removed/modified gate, of the primary
    outputs reachable from its output net -- computed in the version
    the gate exists in (both for modifications).  An output *not* in
    this set has a gate-for-gate identical fan-in cone in both
    versions.
    """
    from repro.analysis.cones import analyze_cones

    dirty: set = set()
    if diff.removed or diff.modified:
        cones = analyze_cones(old)
        gates = {g.name: g for g in old.gates}
        for name in diff.removed + diff.modified:
            dirty.update(cones.outputs_reached(gates[name].output))
    if diff.added or diff.modified:
        cones = analyze_cones(new)
        gates = {g.name: g for g in new.gates}
        for name in diff.added + diff.modified:
            dirty.update(cones.outputs_reached(gates[name].output))
    return frozenset(dirty)


class _ReachIndex:
    """Packed reached-primary-output masks per fault site, one netlist.

    ``reach_masks[row_of(fault)]`` is the packed set of primary-output
    *declared indices* the fault can perturb; with an unchanged I/O
    interface the declared order is identical in both versions, so mask
    rows compare across versions word-for-word.  Keeping the proof in
    packed-row space (one gather + two array comparisons for every
    class at once) is what makes the reuse audit cost microseconds
    instead of rivalling the remainder simulation.
    """

    def __init__(self, netlist: Netlist) -> None:
        from repro.analysis.cones import analyze_cones

        self._cones = analyze_cones(netlist)
        self._gates = {g.name: g for g in netlist.gates}
        self._nids = self._cones._net_ids

    @property
    def reach_masks(self) -> np.ndarray:
        return self._cones.reach_masks

    def row_of(self, fault: StuckAtFault) -> int:
        """Reach-mask row of the fault's entry net, -1 when the site
        does not exist in this netlist version."""
        site = fault.site
        if site.is_stem:
            return self._nids.get(site.net, -1)
        gate_name, pin = site.branch
        gate = self._gates.get(gate_name)
        if gate is None or pin >= len(gate.inputs) or gate.inputs[pin] != site.net:
            return -1
        return self._nids.get(gate.output, -1)

    def reach_of(self, fault: StuckAtFault) -> Optional[frozenset]:
        """Output-name set the fault can perturb, or None when the
        site does not exist in this netlist version."""
        row = self.row_of(fault)
        if row < 0:
            return None
        names = self._cones.output_names
        mask = self.reach_masks[row]
        return frozenset(
            names[k]
            for k in range(len(names))
            if mask[k // 64] >> np.uint64(k % 64) & np.uint64(1)
        )


# ----------------------------------------------------------------------
# The incremental campaign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IncrementalCampaignResult:
    """A merged campaign over the new netlist plus its reuse audit."""

    result: StuckAtCampaignResult  #: bit-identical to a from-scratch campaign
    diff: NetlistDiff
    n_reused_classes: int
    n_resimulated_classes: int
    n_reused_faults: int
    n_resimulated_faults: int
    scratch: bool  #: True when the whole campaign was re-run from scratch
    reason: str  #: why (scope fallback) or how (reuse stats) -- human readable

    @property
    def reuse_fraction(self) -> float:
        total = self.n_reused_faults + self.n_resimulated_faults
        return self.n_reused_faults / total if total else 0.0


def _old_result_from_store(
    store,
    old: Netlist,
    backend: str,
    mode: str,
    fault_dropping: bool,
) -> Optional[StuckAtCampaignResult]:
    """Look up the old campaign in the result store.

    Campaign keys carry the backend name; results are bit-identical
    across backends, so any stored backend's entry is equally valid --
    the resolved backend is tried first, then the rest of the registry.
    """
    if store is None:
        return None
    universe = default_fault_universe(old)
    names = [backend] + [b for b in list_backends() if b != backend]
    for name in names:
        key = CacheKey(
            kind="campaign",
            netlist=digest_netlist(old),
            universe=digest_faults(universe),
            space=digest_input_vectors(old, None),
            method="stuck_at",
            backend=name,
            params=digest_params(collapse=mode, fault_dropping=fault_dropping),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    return None


def incremental_stuck_at_campaign(
    old: Netlist,
    new: Netlist,
    old_result: Optional[StuckAtCampaignResult] = None,
    collapse: Union[bool, str] = True,
    fault_dropping: bool = True,
    backend: Optional[str] = None,
    store=None,
    sparse: Optional[bool] = None,
) -> IncrementalCampaignResult:
    """Exhaustive stuck-at campaign over ``new``, reusing ``old``'s verdicts.

    ``old_result`` is the previous campaign over ``old`` (exhaustive
    vector set, default fault universe); omitted, it is looked up in
    the result store (``store=`` or ``REPRO_STORE``).  The returned
    :attr:`~IncrementalCampaignResult.result` is bit-identical to
    ``run_stuck_at_campaign(new, collapse=collapse, ...)`` in
    ``faults`` / ``detected`` / ``first_detected`` / ``n_vectors`` /
    ``groups``; ``n_simulated_runs`` counts only the work actually
    redone.  The merged result is stored under the new netlist's
    regular campaign key, so subsequent campaigns and further
    incremental steps chain off it.

    ``collapse`` accepts ``"equivalence"`` (default) or ``"none"``;
    ``"dominance"`` raises :class:`~repro.errors.SimulationError`
    (dominance infers verdicts across cone boundaries, which breaks
    the per-class reuse proof).  When the edit is out of scope --
    changed I/O interface, or no usable old result -- the campaign
    silently falls back to from-scratch simulation and says so in
    :attr:`~IncrementalCampaignResult.reason`.
    """
    mode = resolve_collapse_mode(collapse)
    if mode == "dominance":
        raise SimulationError(
            "incremental_stuck_at_campaign cannot prove reuse under dominance "
            "collapsing (verdicts are inferred across cone boundaries); use "
            'collapse="equivalence" or "none"'
        )
    backend_name = resolve_backend_name(backend, allow_auto=True)
    if backend_name == AUTO_BACKEND:
        from repro.gates.tune import resolve_plan

        backend_name = resolve_plan(compile_netlist(new)).backend
    store = resolve_store(store)

    with obs_span("incremental_campaign", netlist=new.name):
        result = _incremental_impl(
            old, new, old_result, mode, fault_dropping, backend_name, store,
            sparse,
        )
    obs_events.emit(
        obs_events.INCREMENTAL_CAMPAIGN,
        netlist=new.name,
        scratch=result.scratch,
        n_reused_faults=result.n_reused_faults,
        n_resimulated_faults=result.n_resimulated_faults,
        n_changed_gates=result.diff.n_changed_gates,
        reason=result.reason,
    )
    return result


def _scratch(
    new: Netlist,
    diff: NetlistDiff,
    mode: str,
    fault_dropping: bool,
    backend: str,
    store,
    sparse: Optional[bool],
    reason: str,
) -> IncrementalCampaignResult:
    from repro.faults.injector import run_sharded_stuck_at_campaign

    result = run_sharded_stuck_at_campaign(
        new,
        collapse=mode,
        fault_dropping=fault_dropping,
        workers=1,
        backend=backend,
        store=store,
        sparse=sparse,
    )
    return IncrementalCampaignResult(
        result=result,
        diff=diff,
        n_reused_classes=0,
        n_resimulated_classes=len(result.groups),
        n_reused_faults=0,
        n_resimulated_faults=len(result.faults),
        scratch=True,
        reason=reason,
    )


@dataclass(frozen=True)
class _ReuseProof:
    """Structural reuse proof of one ``(old, new, collapse)`` pair.

    Everything here depends only on the two netlist *structures*, never
    on campaign verdicts, so repeated incremental steps between the same
    versions (the edit-simulate loop this module exists for) pay dict
    lookups instead of re-proving.  The flat scatter arrays turn verdict
    merging into four fancy-indexed assignments.
    """

    diff: NetlistDiff
    fault_seq: Tuple[StuckAtFault, ...]  # the new default universe
    groups: Tuple[Tuple[int, ...], ...]
    n_reused_classes: int
    reuse_fi: np.ndarray  # member fault indices of every reused class
    reuse_src: np.ndarray  # old-result row per reused member
    remainder_reps: Tuple[StuckAtFault, ...]  # one rep per re-simulated class
    rem_fi: np.ndarray  # member fault indices of every re-simulated class
    rem_src: np.ndarray  # remainder-result row per re-simulated member


#: (id(old), id(new), collapse mode) -> (refs, fingerprints, proof).
_PROOF_MEMO: Dict[Tuple[int, int, str], Tuple] = {}
_PROOF_MEMO_MAX = 32


def _reuse_proof(old: Netlist, new: Netlist, mode: str) -> _ReuseProof:
    key = (id(old), id(new), mode)
    stamp = (netlist_fingerprint(old), netlist_fingerprint(new))
    hit = _PROOF_MEMO.get(key)
    if (
        hit is not None
        and hit[0]() is old
        and hit[1]() is new
        and hit[2] == stamp
    ):
        return hit[3]
    proof = _compute_reuse_proof(old, new, mode)
    try:
        refs = (
            weakref.ref(old, lambda _r, _k=key: _PROOF_MEMO.pop(_k, None)),
            weakref.ref(new, lambda _r, _k=key: _PROOF_MEMO.pop(_k, None)),
        )
    except TypeError:  # pragma: no cover - non-weakrefable netlist
        refs = ((lambda: old), (lambda: new))
    if key in _PROOF_MEMO:
        del _PROOF_MEMO[key]
    _PROOF_MEMO[key] = (refs[0], refs[1], stamp, proof)
    while len(_PROOF_MEMO) > _PROOF_MEMO_MAX:
        del _PROOF_MEMO[next(iter(_PROOF_MEMO))]
    return proof


def _compute_reuse_proof(old: Netlist, new: Netlist, mode: str) -> _ReuseProof:
    diff = diff_netlists(old, new)
    fault_seq = default_fault_universe(new)
    if mode == "equivalence":
        groups: Tuple[Tuple[int, ...], ...] = default_equivalence_groups(new)
    else:
        groups = tuple((i,) for i in range(len(fault_seq)))
    empty = np.empty(0, dtype=np.int64)
    if diff.io_changed:
        # Out of scope; the caller falls back to scratch, so the class
        # partition below is never needed.
        return _ReuseProof(
            diff, fault_seq, groups, 0, empty, empty, (), empty, empty
        )

    old_universe = default_fault_universe(old)
    old_index: Dict[StuckAtFault, int] = {f: i for i, f in enumerate(old_universe)}
    dirty = dirty_outputs(old, new, diff)
    old_reach = _ReachIndex(old)
    new_reach = _ReachIndex(new)

    # Evaluate the three proof conditions for every class at once over
    # packed reach-mask rows (bit k = declared output index k, the same
    # layout in both versions because the I/O interface is unchanged).
    out_names = tuple(new.primary_outputs)
    ow = new_reach.reach_masks.shape[1]
    dirty_row = np.zeros(ow, dtype=np.uint64)
    for k, po in enumerate(out_names):
        if po in dirty:
            dirty_row[k // 64] |= np.uint64(1) << np.uint64(k % 64)
    n_classes = len(groups)
    reps = [fault_seq[members[0]] for members in groups]
    old_idx = np.fromiter(
        (old_index.get(rep, -1) for rep in reps), dtype=np.int64, count=n_classes
    )
    old_rows = np.fromiter(
        (old_reach.row_of(rep) for rep in reps), dtype=np.int64, count=n_classes
    )
    new_rows = np.fromiter(
        (new_reach.row_of(rep) for rep in reps), dtype=np.int64, count=n_classes
    )
    ok = (old_idx >= 0) & (old_rows >= 0) & (new_rows >= 0)
    om = old_reach.reach_masks[np.maximum(old_rows, 0)]
    nm = new_reach.reach_masks[np.maximum(new_rows, 0)]
    ok &= (om == nm).all(axis=1)
    ok &= ~((nm & dirty_row[None, :]) != 0).any(axis=1)

    reused_classes = np.nonzero(ok)[0]
    remainder = np.nonzero(~ok)[0]
    reuse_fi = np.fromiter(
        (fi for ci in reused_classes for fi in groups[ci]), dtype=np.int64
    )
    reuse_src = np.fromiter(
        (old_idx[ci] for ci in reused_classes for _fi in groups[ci]),
        dtype=np.int64,
        count=len(reuse_fi),
    )
    rem_fi = np.fromiter(
        (fi for ci in remainder for fi in groups[ci]), dtype=np.int64
    )
    rem_src = np.fromiter(
        (k for k, ci in enumerate(remainder) for _fi in groups[ci]),
        dtype=np.int64,
        count=len(rem_fi),
    )
    return _ReuseProof(
        diff=diff,
        fault_seq=fault_seq,
        groups=groups,
        n_reused_classes=int(len(reused_classes)),
        reuse_fi=reuse_fi,
        reuse_src=reuse_src,
        remainder_reps=tuple(fault_seq[groups[ci][0]] for ci in remainder),
        rem_fi=rem_fi,
        rem_src=rem_src,
    )


def _incremental_impl(
    old: Netlist,
    new: Netlist,
    old_result: Optional[StuckAtCampaignResult],
    mode: str,
    fault_dropping: bool,
    backend: str,
    store,
    sparse: Optional[bool],
) -> IncrementalCampaignResult:
    proof = _reuse_proof(old, new, mode)
    diff = proof.diff
    if diff.io_changed:
        return _scratch(
            new, diff, mode, fault_dropping, backend, store, sparse,
            "scratch: primary I/O interface changed",
        )
    if old_result is None:
        old_result = _old_result_from_store(
            store, old, backend, mode, fault_dropping
        )
        if old_result is None:
            return _scratch(
                new, diff, mode, fault_dropping, backend, store, sparse,
                "scratch: no old campaign result (none passed, none stored)",
            )
    if (
        tuple(old_result.faults) != default_fault_universe(old)
        or old_result.n_vectors != 1 << len(old.primary_inputs)
    ):
        return _scratch(
            new, diff, mode, fault_dropping, backend, store, sparse,
            "scratch: old result does not cover the exhaustive default universe",
        )

    fault_seq = proof.fault_seq
    groups = proof.groups

    detected = np.zeros(len(fault_seq), dtype=bool)
    first_detected = np.full(len(fault_seq), -1, dtype=np.int64)
    # Proof complete for every reused member: every output the fault
    # can perturb has an identical fan-in cone in both versions, so its
    # detection words -- and earliest witness -- are unchanged.
    detected[proof.reuse_fi] = old_result.detected[proof.reuse_src]
    first_detected[proof.reuse_fi] = old_result.first_detected[proof.reuse_src]

    n_runs = 0
    if proof.remainder_reps:
        # One representative per remaining class, scattered rows: the
        # per-fault detection words are independent of batch
        # composition, so simulating reps alone is bit-identical to
        # their verdicts inside the full campaign.
        part = run_stuck_at_campaign(
            new,
            faults=list(proof.remainder_reps),
            collapse="none",
            fault_dropping=fault_dropping,
            backend=backend,
            sparse=sparse,
        )
        n_runs = part.n_simulated_runs
        detected[proof.rem_fi] = part.detected[proof.rem_src]
        first_detected[proof.rem_fi] = part.first_detected[proof.rem_src]

    merged = StuckAtCampaignResult(
        netlist_name=new.name,
        faults=fault_seq,
        detected=detected,
        first_detected=first_detected,
        n_vectors=1 << len(new.primary_inputs),
        n_simulated_runs=n_runs,
        groups=groups,
    )
    if store is not None:
        key = CacheKey(
            kind="campaign",
            netlist=digest_netlist(new),
            universe=digest_faults(fault_seq),
            space=digest_input_vectors(new, None),
            method="stuck_at",
            backend=backend,
            params=digest_params(collapse=mode, fault_dropping=fault_dropping),
        )
        store.put(
            key,
            merged,
            {"incremental": True, "reused_classes": proof.n_reused_classes},
        )
    n_reused_faults = int(len(proof.reuse_fi))
    n_resim_faults = int(len(proof.rem_fi))
    return IncrementalCampaignResult(
        result=merged,
        diff=diff,
        n_reused_classes=proof.n_reused_classes,
        n_resimulated_classes=len(proof.remainder_reps),
        n_reused_faults=n_reused_faults,
        n_resimulated_faults=n_resim_faults,
        scratch=False,
        reason=(
            f"incremental: reused {proof.n_reused_classes}/{len(groups)} "
            f"classes ({n_reused_faults}/{len(fault_seq)} faults) across "
            f"{diff.n_changed_gates} changed gates"
        ),
    )


__all__ = [
    "NetlistDiff",
    "diff_netlists",
    "dirty_outputs",
    "IncrementalCampaignResult",
    "incremental_stuck_at_campaign",
]
