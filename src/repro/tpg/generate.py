"""Simulation-based test-pattern generation (ATPG) on the batched engine.

The classical two-phase loop, run entirely through the bit-parallel
fault matrix:

1. **Seeded random phases with fault dropping** -- each phase draws a
   word-packed batch of random vectors, simulates every *still
   undetected* equivalence-class representative against the shared
   golden row, and keeps the first detecting vector of every newly
   detected class.  Detected classes drop out of later phases; phases
   stop after :data:`STALE_PHASES` consecutive batches detect nothing
   new (random vectors saturate quickly -- the residue is the
   hard-fault tail).
2. **Exhaustive word-range sweeps over the residue** -- the remaining
   classes stream through the *whole* constrained universe
   (:func:`repro.gates.engine.exhaustive_word_range` slices, masked
   lanes excluded), so every detectable fault ends up with a test and
   everything still undetected is *proven* redundant within the space.

The discovered test table is then re-simulated into a fault dictionary
over the full universe ordering (:func:`~repro.tpg.dictionary.dictionary_for_vectors`)
and greedily compacted (:func:`~repro.tpg.compaction.greedy_cover`).
Everything is deterministic for a given ``seed``: the RNG stream, the
class iteration order and the tie-breaks are all fixed, and process
sharding only ever touches bit-exact dictionary construction -- the
property ``tests/test_tpg.py`` pins down.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.gates.backends import AUTO_BACKEND, resolve_backend_name
from repro.gates.compile import compile_netlist
from repro.gates.builders import (
    restoring_divider,
    ripple_borrow_subtractor,
    ripple_carry_adder,
    truncated_array_multiplier,
)
from repro.gates.engine import (
    LANES,
    MAX_EXHAUSTIVE_INPUTS,
    engine_for,
    matrix_word_chunk,
    popcount_words,
)
from repro.gates.faults import StuckAtFault, resolve_collapse_mode
from repro.gates.netlist import Netlist
from repro.gates.tune import resolve_chunking, resolve_plan
from repro.obs.trace import span as obs_span
from repro.store import (
    CacheKey,
    digest_faults,
    digest_netlist,
    digest_params,
    digest_test_space,
    resolve_store,
)
from repro.tpg.compaction import CompactTestSet, compact_from_dictionary, greedy_cover
from repro.tpg.dictionary import (
    FaultDictionary,
    TestSpace,
    _resolve_dict_backend,
    _resolve_universe,
    build_fault_dictionary,
    dictionary_for_vectors,
)

#: Default ATPG seed (the DATE'05 conference date, like the coverage
#: engine's sampling seed).
TPG_SEED = 20050307

#: Words (x64 vectors) per random phase.
PHASE_WORDS = 8
#: Hard cap on random phases (the stale rule normally stops earlier).
MAX_PHASES = 64
#: Consecutive no-new-detection phases before the random stage stops.
STALE_PHASES = 2

#: ``compact_test_set(method="auto")`` builds the full dictionary up to
#: this many universe vectors and runs ATPG beyond.
DEFAULT_DICTIONARY_LIMIT = 1 << 16

#: Target orderings accepted by :func:`generate_tests`.  ``"index"`` is
#: the historical universe order; ``"testability"`` targets the SCOAP
#: hardest-to-test classes first (see :mod:`repro.analysis.testability`).
TPG_ORDERS = ("index", "testability")

#: Units with a gate-level netlist builder for per-unit test sets.
UNIT_OPERATORS = ("add", "sub", "mul", "div")

_UNIT_BUILDERS: Dict[str, Callable[[int], Netlist]] = {
    "add": ripple_carry_adder,
    "sub": ripple_borrow_subtractor,
    "mul": truncated_array_multiplier,
    "div": restoring_divider,
}


@functools.lru_cache(maxsize=None)
def unit_netlist(unit: str, width: int) -> Netlist:
    """Cached gate-level netlist of one :mod:`repro.arch` unit class.

    ``add``/``sub`` are the ripple chains (carry-in swept as a real
    input), ``mul`` the truncated ripple-row array, ``div`` the unrolled
    restoring divider -- the same structural lowerings the Table 2
    architectures replicate.
    """
    try:
        builder = _UNIT_BUILDERS[unit]
    except KeyError:
        raise SimulationError(
            f"unknown unit {unit!r}; choose from {UNIT_OPERATORS}"
        ) from None
    return builder(width)


@functools.lru_cache(maxsize=None)
def unit_space(unit: str, width: int) -> TestSpace:
    """Constrained TPG universe of one unit netlist.

    Operand (and carry) bits sweep; the ``zero``/``one`` constant rails
    of the array units are pinned, and the divider's divisor field is
    required non-zero, exactly as in the coverage sweeps.
    """
    netlist = unit_netlist(unit, width)
    constants = tuple(
        (name, 1 if name == "one" else 0)
        for name in netlist.primary_inputs
        if name in ("zero", "one")
    )
    free = tuple(
        name for name in netlist.primary_inputs if name not in ("zero", "one")
    )
    nonzero = (width, 2 * width) if unit == "div" else None
    return TestSpace(netlist, free, constants, nonzero)


@dataclass
class TPGResult:
    """Everything one ATPG run produced.

    ``tests`` is the raw discovery-ordered test table; ``dictionary``
    the fault dictionary over exactly those tests; ``compact`` the
    greedy-compacted set with provenance; ``undetected`` the faults no
    vector of the (constrained) universe detects -- proven redundant
    when the residual sweep ran exhaustively.
    """

    netlist_name: str
    space: TestSpace
    tests: np.ndarray  # (n_tests, n_inputs) uint8, discovery order
    dictionary: FaultDictionary
    compact: CompactTestSet
    undetected: Tuple[StuckAtFault, ...]
    vectors_tried: int
    random_phases: int
    exhausted: bool
    seed: int

    @property
    def n_tests(self) -> int:
        return self.tests.shape[0]

    def summary(self) -> str:
        proven = "proven-redundant" if self.exhausted else "unresolved"
        return (
            f"{self.netlist_name}: {self.n_tests} ATPG tests "
            f"({self.random_phases} random phases, {self.vectors_tried} "
            f"vectors tried) -> {self.compact.n_tests} compact tests, "
            f"{len(self.undetected)} {proven} faults"
        )


def _first_hits(diff: np.ndarray) -> List[Tuple[int, int, int]]:
    """Per-row first set lane of a difference matrix.

    Returns ``(row, word, lane)`` triples, row-ascending, for rows with
    any set bit -- the campaign's lowest-bit trick, reused so the
    "first detecting vector" choice is deterministic.
    """
    nonzero = diff != 0
    hit_rows = np.nonzero(nonzero.any(axis=1))[0]
    if not hit_rows.size:
        return []
    word_idx = np.argmax(nonzero[hit_rows], axis=1)
    word = diff[hit_rows, word_idx]
    low = word & (np.uint64(0) - word)
    lane = np.log2(low.astype(np.float64)).astype(np.int64)
    return list(zip(hit_rows.tolist(), word_idx.tolist(), lane.tolist()))


def generate_tests(
    netlist: Netlist,
    space: Optional[TestSpace] = None,
    seed: int = TPG_SEED,
    phase_words: int = PHASE_WORDS,
    max_phases: int = MAX_PHASES,
    stale_phases: int = STALE_PHASES,
    faults: Optional[Tuple[StuckAtFault, ...]] = None,
    collapse: Union[bool, str] = True,
    order: str = "index",
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> TPGResult:
    """Run the two-phase ATPG loop over ``netlist``.

    Deterministic for a given ``seed``: the RNG stream, class iteration
    order and first-detect tie-breaks are all fixed, so two runs return
    identical test tables and compact sets -- under any execution
    backend (``backend`` resolves keyword > ``REPRO_BACKEND`` > default,
    with ``"auto"`` resolved to a concrete name by the shape-aware
    autotuner, and is recorded on the resulting dictionary).  When the free-input count
    exceeds the exhaustive-packing cap the residual sweep is skipped and
    surviving faults stay ``unresolved`` instead of proven redundant
    (``TPGResult.exhausted`` records which).

    ``collapse="dominance"`` restricts the generation targets to the
    dominance-kept classes (:func:`repro.analysis.collapse.collapse_faults`):
    any test of a dominated pin fault also detects its dominating
    output fault, so covering the kept classes covers the full universe
    whenever every kept class is detectable.  The reported dictionary
    and compact set are always built with equivalence collapsing, so
    detection data stays exact per fault; the only caveat is a
    dominated class whose dominators are all redundant -- its (possible)
    test is never searched for and it is reported undetected.

    ``order="testability"`` targets the SCOAP hardest-to-test classes
    first (descending :func:`repro.analysis.testability.fault_efforts`
    of the class representatives, universe order breaking ties), which
    biases the recorded witnesses toward the hard-fault tail;
    ``order="index"`` keeps the historical universe order.
    """
    with obs_span("atpg", netlist=netlist.name, order=order, seed=seed):
        return _generate_tests_impl(
            netlist, space, seed, phase_words, max_phases, stale_phases,
            faults, collapse, order, word_chunk, fault_chunk, backend, store,
        )


def _generate_tests_impl(
    netlist: Netlist,
    space: Optional[TestSpace],
    seed: int,
    phase_words: int,
    max_phases: int,
    stale_phases: int,
    faults: Optional[Tuple[StuckAtFault, ...]],
    collapse: Union[bool, str],
    order: str,
    word_chunk: Optional[int],
    fault_chunk: Optional[int],
    backend: Optional[str],
    store,
) -> TPGResult:
    if space is None:
        space = TestSpace.full(netlist)
    elif space.netlist is not netlist:
        raise SimulationError("test space was built for a different netlist")
    mode = resolve_collapse_mode(collapse)
    if order not in TPG_ORDERS:
        raise SimulationError(
            f"unknown order {order!r}; choose from {TPG_ORDERS}"
        )
    if mode == "dominance":
        from repro.analysis.collapse import collapse_faults

        cmap = collapse_faults(
            netlist,
            faults=None if faults is None else tuple(faults),
            mode="dominance",
        )
        fault_seq, _ = _resolve_universe(netlist, faults, "equivalence")
        groups = [list(g) for g in cmap.groups]
        targets = sorted(cmap.kept)
    else:
        fault_seq, groups = _resolve_universe(netlist, faults, mode)
        targets = list(range(len(groups)))
    if order == "testability":
        from repro.analysis.testability import fault_efforts

        efforts = fault_efforts(
            netlist,
            faults=[fault_seq[groups[g][0]] for g in targets],
            constants=dict(space.constants) or None,
        )
        targets = [
            g for _, g in sorted(zip(efforts.tolist(), targets), key=lambda p: (-p[0], p[1]))
        ]
    word_chunk, fault_chunk = resolve_chunking(
        word_chunk, fault_chunk, default_word_chunk=256, default_fault_chunk=64
    )
    backend = resolve_backend_name(backend, allow_auto=True)
    if backend == AUTO_BACKEND:
        backend = resolve_plan(
            compile_netlist(netlist),
            backend=AUTO_BACKEND,
            n_groups=len(groups),
            n_words=space.n_words,
            word_chunk=word_chunk,
            fault_chunk=fault_chunk,
        ).backend
    fault_chunk = max(1, fault_chunk)
    store = resolve_store(store)
    cache_key = None
    table: Optional[np.ndarray] = None
    if store is not None:
        # The raw discovery table memoises here; the dictionary and the
        # compact set rebuild from it through their own memoised layers.
        cache_key = CacheKey(
            kind="atpg",
            netlist=digest_netlist(netlist),
            universe=digest_faults(fault_seq),
            space=digest_test_space(space),
            method="atpg",
            backend=backend,
            params=digest_params(
                seed=seed,
                phase_words=phase_words,
                max_phases=max_phases,
                stale_phases=stale_phases,
                collapse=mode,
                order=order,
                word_chunk=word_chunk,
                fault_chunk=fault_chunk,
            ),
        )
        cached = store.get(cache_key)
        if cached is not None:
            table = np.asarray(cached["arrays"]["tests"], dtype=np.uint8)
            vectors_tried = int(cached["vectors_tried"])
            phases = int(cached["random_phases"])
            exhausted = bool(cached["exhausted"])

    if table is None:
        engine = engine_for(netlist, backend)
        reps = [fault_seq[g[0]] for g in groups]
        rng = np.random.default_rng(seed)

        active = list(targets)
        tests: List[np.ndarray] = []
        seen: set = set()
        vectors_tried = 0
        phases = 0
        stale = 0

        def record_vector(rows: np.ndarray, word: int, lane: int) -> None:
            bits = ((rows[:, word] >> np.uint64(lane)) & np.uint64(1)).astype(np.uint8)
            key = bits.tobytes()
            if key not in seen:
                seen.add(key)
                tests.append(bits)

        def run_round(rows: np.ndarray, valid: Optional[np.ndarray]) -> int:
            """Simulate the active classes over one packed batch; returns
            how many classes the batch newly detected."""
            newly = 0
            batch = list(active)
            for lo in range(0, len(batch), fault_chunk):
                block = batch[lo : lo + fault_chunk]
                diff = engine.detect_words(rows, [reps[g] for g in block])
                if valid is not None:
                    diff &= valid
                for row, word, lane in _first_hits(diff):
                    record_vector(rows, word, lane)
                    active.remove(block[row])
                    newly += 1
            return newly

        # Phase 1: seeded random batches with fault dropping.
        while active and phases < max_phases and stale < stale_phases:
            rows, valid = space.random_rows(rng, max(1, phase_words))
            phases += 1
            vectors_tried += (
                rows.shape[1] * LANES if valid is None else int(popcount_words(valid))
            )
            stale = 0 if run_round(rows, valid) else stale + 1

        # Phase 2: exhaustive word-range sweep over the residue.
        exhausted = space.n_free <= MAX_EXHAUSTIVE_INPUTS
        if active and exhausted:
            row_cells = engine.compiled.n_nets * (
                min(fault_chunk, max(1, len(active))) + 1
            )
            sweep_chunk = matrix_word_chunk(row_cells, word_chunk)
            for lo in range(0, space.n_words, sweep_chunk):
                if not active:
                    break
                hi = min(lo + sweep_chunk, space.n_words)
                rows = space.input_rows(lo, hi)
                valid = space.valid_words(lo, hi, rows=rows)
                vectors_tried += (
                    (hi - lo) * LANES if valid is None else int(popcount_words(valid))
                )
                run_round(rows, valid)

        table = (
            np.stack(tests)
            if tests
            else np.zeros((0, len(netlist.primary_inputs)), dtype=np.uint8)
        )
        if store is not None:
            store.put(
                cache_key,
                {
                    "arrays": {"tests": table},
                    "vectors_tried": vectors_tried,
                    "random_phases": phases,
                    "exhausted": exhausted,
                },
            )
    dictionary = dictionary_for_vectors(
        netlist, table, faults=faults,
        collapse="equivalence" if mode == "dominance" else mode,
        fault_chunk=fault_chunk, backend=backend, store=store,
    )
    cover = greedy_cover(dictionary)
    compact = CompactTestSet(
        netlist_name=netlist.name,
        input_names=tuple(netlist.primary_inputs),
        vectors=table[list(cover.order)],
        faults=dictionary.faults,
        detected=cover.detected,
        marginal=cover.marginal,
        source="atpg+greedy",
    )
    return TPGResult(
        netlist_name=netlist.name,
        space=space,
        tests=table,
        dictionary=dictionary,
        compact=compact,
        undetected=tuple(dictionary.undetected_faults()),
        vectors_tried=vectors_tried,
        random_phases=phases,
        exhausted=exhausted,
        seed=seed,
    )


def compact_test_set(
    netlist: Netlist,
    space: Optional[TestSpace] = None,
    method: str = "auto",
    seed: int = TPG_SEED,
    workers: Optional[int] = None,
    dictionary_limit: int = DEFAULT_DICTIONARY_LIMIT,
    collapse: Union[bool, str] = True,
    backend: Optional[str] = None,
    store=None,
) -> CompactTestSet:
    """One-call compact test set for a netlist.

    ``method="dictionary"`` builds the full fault dictionary over the
    (constrained) universe and greedy-covers it -- exact, RNG-free,
    affordable while ``space.n_vectors`` is small; ``method="atpg"``
    runs the two-phase generation loop and compacts its discoveries;
    ``"auto"`` picks the dictionary up to ``dictionary_limit`` vectors
    and ATPG beyond.  Both paths end in the same greedy cover, and both
    claims replay bit-identically through the campaign engine.  With a
    result store active the finished set memoises directly and the
    underlying dictionary/ATPG work memoises in its own layers.

    ``collapse="dominance"`` forces the ATPG path (the dictionary
    builder needs exact per-vector detection words, which dominance
    does not preserve), where it prunes the generation targets to the
    dominance-kept classes -- see :func:`generate_tests`.
    """
    if space is None:
        space = TestSpace.full(netlist)
    mode = resolve_collapse_mode(collapse)
    if method == "auto":
        method = (
            "dictionary"
            if mode != "dominance" and space.n_vectors <= dictionary_limit
            else "atpg"
        )
    if method == "dictionary" and mode == "dominance":
        raise SimulationError(
            "method='dictionary' needs exact per-vector detection words; "
            "collapse='dominance' only preserves detection verdicts -- use "
            "method='atpg' (or 'auto') with dominance"
        )
    store = resolve_store(store)
    key = None
    if store is not None:
        fault_seq, groups = _resolve_universe(
            netlist, None, "equivalence" if mode == "dominance" else mode
        )
        resolved_backend, _, _ = _resolve_dict_backend(
            netlist, backend, len(groups), space.n_words, None, None, None
        )
        key = CacheKey(
            kind="compact",
            netlist=digest_netlist(netlist),
            universe=digest_faults(fault_seq),
            space=digest_test_space(space),
            method=method,
            backend=resolved_backend,
            params=digest_params(
                seed=seed if method == "atpg" else None, collapse=mode
            ),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    if method == "dictionary":
        dictionary = build_fault_dictionary(
            netlist, space, collapse=collapse, workers=workers, backend=backend,
            store=store,
        )
        result = compact_from_dictionary(dictionary, space)
    elif method == "atpg":
        result = generate_tests(
            netlist, space, seed=seed, collapse=collapse, backend=backend,
            store=store,
        ).compact
    else:
        raise SimulationError(
            f"unknown method {method!r}; choose from ('auto', 'dictionary', 'atpg')"
        )
    if store is not None:
        store.put(key, result)
    return result


def unit_test_set(
    unit: str,
    width: int,
    method: str = "auto",
    seed: int = TPG_SEED,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> CompactTestSet:
    """Compact test set of one :mod:`repro.arch` unit class.

    ``backend`` selects the execution backend used to build the
    detection data (bit-identical across backends, so the compact set
    is too).
    """
    return compact_test_set(
        unit_netlist(unit, width),
        unit_space(unit, width),
        method=method,
        seed=seed,
        workers=workers,
        backend=backend,
        store=store,
    )


def table2_space(arch) -> TestSpace:
    """TPG universe of a Table 2 test architecture.

    Operand bits sweep, the ``zero``/``one`` rails are pinned, and the
    divider architecture's divisor field is required non-zero -- i.e.
    the same operand universe its coverage sweep classifies.  Delegates
    to :meth:`repro.arch.testbench._Table2ArchitectureBase.test_space`,
    the single definition of that universe.
    """
    return arch.test_space()
