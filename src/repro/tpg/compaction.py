"""Test-set compaction over fault dictionaries.

Two classical reductions, both exact with respect to the dictionary:

* :func:`greedy_cover` -- the greedy set-cover heuristic: repeatedly
  keep the vector detecting the most still-uncovered faults until every
  detectable fault is covered.  Each round is one bitwise AND + popcount
  over the vector-major matrix, so the n = 8 adder's 131072-vector
  universe compacts in milliseconds; ties break to the lowest vector
  index, making the result deterministic.
* :func:`reverse_compact` -- reverse-order pass over an *existing* test
  set (e.g. the discovery-ordered ATPG vectors): walking newest-first,
  drop every vector whose detected faults are all detected by the
  remaining kept vectors.  Never increases coverage loss; classically
  effective because late ATPG vectors target single hard faults that
  earlier vectors often cover incidentally.

The product is a :class:`CompactTestSet`: explicit input bit rows (in
netlist input order), the per-fault detection claim, and per-vector
*marginal coverage provenance* -- how many new faults each kept vector
contributed at selection time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gates.engine import LANES, popcount_words, unpack_bits
from repro.gates.faults import StuckAtFault
from repro.tpg.dictionary import FaultDictionary, TestSpace, inputs_from_bits

_SHIFTS = np.arange(LANES, dtype=np.uint64)

#: Vector-major transposition streams the dictionary this many universe
#: vectors at a time (bounds the unpacked uint8 working set).
VECTOR_CHUNK = 1 << 16


def _pack_fault_axis(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n_vectors, n_faults)`` 0/1 matrix along the fault axis."""
    n_vectors, n_faults = bits.shape
    n_fw = max(1, (n_faults + LANES - 1) // LANES)
    if n_fw * LANES != n_faults:
        pad = np.zeros((n_vectors, n_fw * LANES - n_faults), dtype=bits.dtype)
        bits = np.concatenate([bits, pad], axis=1)
    lanes = bits.reshape(n_vectors, n_fw, LANES).astype(np.uint64) << _SHIFTS
    return np.bitwise_or.reduce(lanes, axis=2)


def vector_major(
    dictionary: FaultDictionary, vector_chunk: int = VECTOR_CHUNK
) -> np.ndarray:
    """Transpose the dictionary into ``(n_vectors, n_fault_words)``.

    Row ``v`` packs vector ``v``'s detected-fault set 64 faults per
    word -- the layout greedy cover scores with one AND + popcount.
    """
    n_vectors = dictionary.n_vectors
    n_fw = max(1, (dictionary.n_faults + LANES - 1) // LANES)
    out = np.zeros((n_vectors, n_fw), dtype=np.uint64)
    vector_chunk = max(LANES, (vector_chunk // LANES) * LANES)
    for lo in range(0, n_vectors, vector_chunk):
        hi = min(lo + vector_chunk, n_vectors)
        wlo, whi = lo // LANES, (hi + LANES - 1) // LANES
        chunk = dictionary.words[:, wlo:whi]
        bits = unpack_bits(chunk, hi - lo)  # (n_faults, hi - lo)
        out[lo:hi] = _pack_fault_axis(bits.T)
    return out


@dataclass
class GreedyCover:
    """Outcome of one greedy set-cover run.

    ``order`` lists the kept universe vectors in selection order;
    ``marginal[i]`` is the number of previously-uncovered faults
    ``order[i]`` contributed (the per-vector provenance);
    ``detected`` is the per-fault claim of the kept set -- identical to
    the dictionary's own ``detected`` by construction.
    """

    order: Tuple[int, ...]
    marginal: Tuple[int, ...]
    detected: np.ndarray


def greedy_cover(
    dictionary: FaultDictionary, vector_chunk: int = VECTOR_CHUNK
) -> GreedyCover:
    """Greedy set-cover of the dictionary's detectable faults."""
    if dictionary.n_vectors == 0:
        return GreedyCover((), (), np.zeros(dictionary.n_faults, dtype=bool))
    vmat = vector_major(dictionary, vector_chunk)
    remaining = _pack_fault_axis(
        dictionary.detected.astype(np.uint8)[None, :]
    )[0]
    order: List[int] = []
    marginal: List[int] = []
    while remaining.any():
        scores = popcount_words(vmat & remaining)
        best = int(np.argmax(scores))
        gain = int(scores[best])
        if gain == 0:  # pragma: no cover - detectable faults always score
            break
        order.append(dictionary.vector_base + best)
        marginal.append(gain)
        remaining &= ~vmat[best]
    return GreedyCover(tuple(order), tuple(marginal), dictionary.covered_by(order))


def reverse_compact(
    dictionary: FaultDictionary, order: Optional[Sequence[int]] = None
) -> Tuple[int, ...]:
    """Reverse-order compaction of an ordered test set.

    ``order`` defaults to every dictionary vector in index order (the
    natural choice when the dictionary spans an ATPG-discovered test
    table).  Returns the kept vectors, original order preserved; the
    kept set detects exactly the faults the full order did.  Columns
    are unpacked one vector at a time from the packed vector-major
    transpose, so full-universe dictionaries stay at megabytes.
    """
    base = dictionary.vector_base
    if order is None:
        order = range(base, base + dictionary.n_vectors)
    order = list(order)
    vmat = vector_major(dictionary)

    def bits_of(v: int) -> np.ndarray:
        return unpack_bits(vmat[v - base], dictionary.n_faults).astype(np.int64)

    if len(order) == dictionary.n_vectors and order == list(
        range(base, base + dictionary.n_vectors)
    ):
        counts = dictionary.detections_per_fault()
    else:
        counts = np.zeros(dictionary.n_faults, dtype=np.int64)
        for v in order:
            counts += bits_of(v)
    kept = set(order)
    for v in reversed(order):
        bits = bits_of(v)
        hit = bits != 0
        if not hit.any() or np.all(counts[hit] >= 2):
            counts -= bits
            kept.discard(v)
    return tuple(v for v in order if v in kept)


@dataclass
class CompactTestSet:
    """A compact per-unit test set with full provenance.

    ``vectors`` holds one row of primary-input bits per kept test (in
    the netlist's declared input order, constants included), ``detected``
    the per-fault detection claim over ``faults``, and ``marginal`` the
    greedy provenance: how many new faults each vector contributed when
    it was selected.  ``source`` records the generation path
    (``"greedy-dictionary"`` or ``"atpg+greedy"``).
    """

    netlist_name: str
    input_names: Tuple[str, ...]
    vectors: np.ndarray  # (n_tests, n_inputs) uint8
    faults: Tuple[StuckAtFault, ...]
    detected: np.ndarray  # (n_faults,) bool
    marginal: Tuple[int, ...]
    source: str

    @property
    def n_tests(self) -> int:
        return self.vectors.shape[0]

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def detected_count(self) -> int:
        return int(np.sum(self.detected))

    @property
    def coverage(self) -> float:
        return self.detected_count / self.n_faults if self.n_faults else 1.0

    def inputs(self) -> Dict[str, np.ndarray]:
        """Per-input 0/1 arrays, ready for campaign replay."""
        return {
            name: np.ascontiguousarray(self.vectors[:, i])
            for i, name in enumerate(self.input_names)
        }

    def undetected_faults(self) -> List[StuckAtFault]:
        return [f for f, d in zip(self.faults, self.detected) if not d]

    def summary(self) -> str:
        return (
            f"{self.netlist_name}: {self.n_tests} tests cover "
            f"{self.detected_count}/{self.n_faults} faults "
            f"({100.0 * self.coverage:.2f}%, {self.source})"
        )


def compact_from_dictionary(
    dictionary: FaultDictionary, space: TestSpace
) -> CompactTestSet:
    """Greedy-cover a full-universe dictionary into a compact set.

    ``space`` maps the kept universe indices back to input bit rows
    (constants filled in); the deterministic no-RNG path the golden
    emission artefacts use.
    """
    if space.n_vectors != dictionary.n_vectors:
        raise SimulationError(
            f"dictionary spans {dictionary.n_vectors} vectors, space "
            f"{space.n_vectors}; compaction needs the full universe"
        )
    cover = greedy_cover(dictionary)
    return CompactTestSet(
        netlist_name=dictionary.netlist_name,
        input_names=tuple(space.netlist.primary_inputs),
        vectors=space.bits_from_indices(cover.order),
        faults=dictionary.faults,
        detected=cover.detected,
        marginal=cover.marginal,
        source="greedy-dictionary",
    )


__all__ = [
    "CompactTestSet",
    "GreedyCover",
    "VECTOR_CHUNK",
    "compact_from_dictionary",
    "greedy_cover",
    "inputs_from_bits",
    "reverse_compact",
    "vector_major",
]
