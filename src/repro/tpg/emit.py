"""Self-test artefact emission for compact test sets.

Hardware side: :func:`emit_self_test_vhdl` / :func:`emit_self_test_verilog`
render a *self-test bench* next to the structural DUT (which is emitted
by :mod:`repro.gates.emit` off the :class:`~repro.gates.compile.CompiledNetlist`
lowering): a stimulus ROM holding the compact set, a golden-response ROM
holding the fault-free replica's answers (computed by the bit-parallel
engine at emission time), and a clocked checker that walks the ROMs and
latches a sticky ``ok`` flag -- the paper's Section 4.1 test-environment
artefacts upgraded from "a netlist" to "a netlist that can test itself".

Software side: :func:`emit_vm_self_test` compiles the same operand set
into a :mod:`repro.vm` program whose arithmetic routes through the
monoprocessor's faultable ALU; expected responses are produced by a
golden ALU at emission time, mismatches OR into a flag register that is
stored to memory address 0 before HALT.  :func:`emit_alu_self_test`
concatenates per-unit blocks into one program exercising every
functional unit of the ALU -- the software units get exactly the
hardware's compact test sets, closing the paper's HW/SW loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.arch.alu import FaultableALU
from repro.arch.bitops import to_signed
from repro.errors import SimulationError
from repro.gates.emit import to_verilog, to_vhdl
from repro.gates.engine import engine_for, unpack_bits
from repro.gates.netlist import Netlist
from repro.tpg.compaction import CompactTestSet
from repro.vm.machine import Machine
from repro.vm.program import Program, ProgramBuilder

#: Register conventions of the emitted self-test programs.  r0 is never
#: written (stays 0, the flag's store address); r1/r2 carry operands,
#: r3/r7 results, r4 expectations, r6 scratch, r5 the sticky flag.
_R_A, _R_B, _R_RES, _R_EXP, _R_FLAG, _R_TMP, _R_MOD = 1, 2, 3, 4, 5, 6, 7


def golden_responses(netlist: Netlist, vectors: np.ndarray) -> np.ndarray:
    """Fault-free output bits for a test table.

    ``vectors`` is ``(n_tests, n_inputs)`` in netlist input order; the
    result is ``(n_tests, n_outputs)`` in declared output order -- the
    expected-response ROM of the emitted benches.
    """
    vectors = np.asarray(vectors, dtype=np.uint8)
    n_tests = vectors.shape[0]
    if n_tests == 0:
        return np.zeros((0, len(netlist.primary_outputs)), dtype=np.uint8)
    engine = engine_for(netlist)
    packed, _ = engine.pack_inputs(
        {
            name: np.ascontiguousarray(vectors[:, i])
            for i, name in enumerate(netlist.primary_inputs)
        }
    )
    out = engine.output_words(packed)
    return unpack_bits(out, n_tests).T


def _check_emittable(netlist: Netlist, test_set: CompactTestSet) -> None:
    if test_set.n_tests == 0:
        raise SimulationError(
            f"cannot emit a self-test bench for {netlist.name!r}: "
            "the compact test set is empty"
        )
    if tuple(test_set.input_names) != tuple(netlist.primary_inputs):
        raise SimulationError(
            f"test set was generated for inputs {test_set.input_names}, "
            f"netlist {netlist.name!r} declares {tuple(netlist.primary_inputs)}"
        )


def _bit_literal(bits: np.ndarray) -> str:
    """MSB-first bit-string literal of one ROM row (index 0 rightmost)."""
    return "".join(str(int(b)) for b in bits[::-1])


def emit_self_test_vhdl(
    netlist: Netlist, test_set: CompactTestSet, entity: Optional[str] = None
) -> str:
    """Structural DUT plus a VHDL self-test bench around it.

    The bench walks ``STIM_ROM``/``RESP_ROM`` one test per rising clock
    edge, compares the DUT's response against the golden replica's and
    latches any mismatch into the sticky ``ok`` flag; ``done`` rises
    after the last test.  ROM comments carry the compact set's marginal
    coverage provenance.
    """
    _check_emittable(netlist, test_set)
    entity = entity or f"{netlist.name}_selftest"
    responses = golden_responses(netlist, test_set.vectors)
    n_in = len(netlist.primary_inputs)
    n_out = len(netlist.primary_outputs)
    n_tests = test_set.n_tests
    component_ports: List[str] = []
    for net in netlist.primary_inputs:
        component_ports.append(f"      {net} : in  std_logic")
    for net in netlist.primary_outputs:
        component_ports.append(f"      {net} : out std_logic")
    # A single-element positional aggregate is illegal VHDL; name the
    # association when only one test survives compaction.
    prefix = "0 => " if n_tests == 1 else ""
    stim_rows = [
        f'    {prefix}"{_bit_literal(test_set.vectors[t])}"'
        f"{',' if t + 1 < n_tests else ''}  -- {t}: +{test_set.marginal[t]} fault(s)"
        for t in range(n_tests)
    ]
    resp_rows = [
        f'    {prefix}"{_bit_literal(responses[t])}"{"," if t + 1 < n_tests else ""}'
        for t in range(n_tests)
    ]
    port_map = [
        f"      {net} => stim({i})" for i, net in enumerate(netlist.primary_inputs)
    ] + [
        f"      {net} => resp({i})" for i, net in enumerate(netlist.primary_outputs)
    ]
    lines = [
        to_vhdl(netlist).rstrip("\n"),
        "",
        "library ieee;",
        "use ieee.std_logic_1164.all;",
        "",
        f"entity {entity} is",
        "  port (",
        "    clk  : in  std_logic;",
        "    ok   : out std_logic;",
        "    done : out std_logic",
        "  );",
        f"end entity {entity};",
        "",
        f"architecture behavioural of {entity} is",
        f"  component {netlist.name} is",
        "    port (",
        ";\n".join(component_ports),
        "    );",
        "  end component;",
        f"  constant TEST_COUNT : natural := {n_tests};",
        f"  subtype stim_word_t is std_logic_vector({n_in - 1} downto 0);",
        f"  subtype resp_word_t is std_logic_vector({n_out - 1} downto 0);",
        "  type stim_rom_t is array (0 to TEST_COUNT - 1) of stim_word_t;",
        "  type resp_rom_t is array (0 to TEST_COUNT - 1) of resp_word_t;",
        f"  -- compact test set: {test_set.summary()}",
        "  constant STIM_ROM : stim_rom_t := (",
        "\n".join(stim_rows),
        "  );",
        "  constant RESP_ROM : resp_rom_t := (",
        "\n".join(resp_rows),
        "  );",
        "  signal index_q : natural range 0 to TEST_COUNT := 0;",
        "  signal stim    : stim_word_t;",
        "  signal resp    : resp_word_t;",
        "  signal ok_q    : std_logic := '1';",
        "  signal done_q  : std_logic := '0';",
        "begin",
        "  stim <= STIM_ROM(index_q) when index_q < TEST_COUNT else (others => '0');",
        f"  dut : {netlist.name}",
        "    port map (",
        ",\n".join(port_map),
        "    );",
        "  check : process (clk)",
        "  begin",
        "    if rising_edge(clk) then",
        "      if index_q < TEST_COUNT then",
        "        if resp /= RESP_ROM(index_q) then",
        "          ok_q <= '0';",
        "        end if;",
        "        index_q <= index_q + 1;",
        "      else",
        "        done_q <= '1';",
        "      end if;",
        "    end if;",
        "  end process check;",
        "  ok   <= ok_q;",
        "  done <= done_q;",
        f"end architecture behavioural;",
    ]
    return "\n".join(lines) + "\n"


def emit_self_test_verilog(
    netlist: Netlist, test_set: CompactTestSet, module: Optional[str] = None
) -> str:
    """Structural DUT plus a Verilog self-test bench (see the VHDL twin)."""
    _check_emittable(netlist, test_set)
    module = module or f"{netlist.name}_selftest"
    responses = golden_responses(netlist, test_set.vectors)
    n_in = len(netlist.primary_inputs)
    n_out = len(netlist.primary_outputs)
    n_tests = test_set.n_tests
    stim_init = [
        f"    stim_rom[{t}] = {n_in}'b{_bit_literal(test_set.vectors[t])};"
        f"  // {t}: +{test_set.marginal[t]} fault(s)"
        for t in range(n_tests)
    ]
    resp_init = [
        f"    resp_rom[{t}] = {n_out}'b{_bit_literal(responses[t])};"
        for t in range(n_tests)
    ]
    port_conn = [
        f"    .{net}(stim[{i}])" for i, net in enumerate(netlist.primary_inputs)
    ] + [
        f"    .{net}(resp[{i}])" for i, net in enumerate(netlist.primary_outputs)
    ]
    lines = [
        to_verilog(netlist).rstrip("\n"),
        "",
        f"module {module}(clk, ok, done);",
        "  input clk;",
        "  output ok;",
        "  output done;",
        "",
        f"  localparam TEST_COUNT = {n_tests};",
        f"  // compact test set: {test_set.summary()}",
        f"  reg [{n_in - 1}:0] stim_rom [0:TEST_COUNT-1];",
        f"  reg [{n_out - 1}:0] resp_rom [0:TEST_COUNT-1];",
        "  reg [31:0] index_q = 0;",
        "  reg ok_q = 1'b1;",
        "  reg done_q = 1'b0;",
        "",
        "  initial begin",
        "\n".join(stim_init),
        "\n".join(resp_init),
        "  end",
        "",
        f"  wire [{n_in - 1}:0] stim = done_q ? {{{n_in}{{1'b0}}}} : stim_rom[index_q];",
        f"  wire [{n_out - 1}:0] resp;",
        "",
        f"  {netlist.name} dut (",
        ",\n".join(port_conn),
        "  );",
        "",
        "  always @(posedge clk) begin",
        "    if (!done_q) begin",
        "      if (resp !== resp_rom[index_q])",
        "        ok_q <= 1'b0;",
        "      if (index_q == TEST_COUNT - 1)",
        "        done_q <= 1'b1;",
        "      else",
        "        index_q <= index_q + 1;",
        "    end",
        "  end",
        "",
        "  assign ok = ok_q;",
        "  assign done = done_q;",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# VM emission: the same test sets for the software-side units
# ----------------------------------------------------------------------
@dataclass
class SelfTestProgram:
    """An emitted VM self-test and its metadata.

    ``run`` executes the program on a :class:`~repro.vm.machine.Machine`
    (optionally around a pre-injected faulty ALU) and reports whether
    any test mismatched -- the software twin of the bench's ``ok`` flag,
    read back from memory address 0.
    """

    program: Program
    unit: str
    width: int
    n_tests: int

    def run(self, alu: Optional[FaultableALU] = None) -> bool:
        machine = Machine(self.width, alu=alu)
        result = machine.run(self.program)
        return bool(result.memory.get(0, 0))


def _unit_operands(
    test_set: CompactTestSet, width: int
) -> List[Tuple[int, int, Optional[int]]]:
    """Decode a unit test table into ``(a, b, carry)`` operand triples.

    Input columns must follow the unit-netlist convention: ``a{i}`` /
    ``b{i}`` operand bits, an optional ``cin``, and the constant rails
    ``zero``/``one`` (ignored -- the VM has real constants).
    """
    columns: Dict[str, int] = {name: i for i, name in enumerate(test_set.input_names)}
    triples: List[Tuple[int, int, Optional[int]]] = []
    for name in columns:
        if name in ("cin", "zero", "one"):
            continue
        if not (name[0] in "ab" and name[1:].isdigit()) or int(name[1:]) >= width:
            raise SimulationError(
                f"cannot map input {name!r} onto {width}-bit VM operands"
            )
    missing = [
        f"{op}{i}" for op in "ab" for i in range(width) if f"{op}{i}" not in columns
    ]
    if missing:
        raise SimulationError(
            f"test set lacks operand bit columns {missing} for a "
            f"{width}-bit VM self-test"
        )
    for row in test_set.vectors:
        a = sum(int(row[columns[f"a{i}"]]) << i for i in range(width))
        b = sum(int(row[columns[f"b{i}"]]) << i for i in range(width))
        carry = int(row[columns["cin"]]) if "cin" in columns else None
        triples.append((a, b, carry))
    return triples


def _emit_unit_block(
    builder: ProgramBuilder,
    golden: FaultableALU,
    unit: str,
    test_set: CompactTestSet,
    width: int,
) -> int:
    """Append one unit's tests to ``builder``; returns tests emitted.

    Expected responses come from ``golden`` (a fault-free ALU executing
    the very instruction sequence being emitted), so the program checks
    the machine against its own nominal semantics -- signs included.
    """
    emitted = 0
    for a, b, carry in _unit_operands(test_set, width):
        a_s, b_s = to_signed(a, width), to_signed(b, width)
        if unit == "div" and b_s == 0:
            continue  # unreachable under the divider's b != 0 space
        builder.ldi(_R_A, a_s)
        builder.ldi(_R_B, b_s)
        if unit == "add":
            builder.add(_R_RES, _R_A, _R_B)
            expect = int(golden.add(a_s, b_s))
            if carry:
                builder.ldi(_R_TMP, 1)
                builder.add(_R_RES, _R_RES, _R_TMP)
                expect = int(golden.add(expect, 1))
        elif unit == "sub":
            builder.sub(_R_RES, _R_A, _R_B)
            expect = int(golden.sub(a_s, b_s))
            if carry == 0:  # the chain computes a + ~b + cin = a - b - 1 + cin
                builder.ldi(_R_TMP, 1)
                builder.sub(_R_RES, _R_RES, _R_TMP)
                expect = int(golden.sub(expect, 1))
        elif unit == "mul":
            builder.mul(_R_RES, _R_A, _R_B)
            expect = int(golden.mul(a_s, b_s))
        elif unit == "div":
            builder.div(_R_RES, _R_A, _R_B)
            builder.mod(_R_MOD, _R_A, _R_B)
            expect = int(golden.div(a_s, b_s))
            expect_mod = int(golden.mod(a_s, b_s))
            builder.ldi(_R_EXP, expect_mod)
            builder.cmpne(_R_TMP, _R_MOD, _R_EXP)
            builder.or_(_R_FLAG, _R_FLAG, _R_TMP)
        else:
            raise SimulationError(
                f"no VM self-test emission for unit {unit!r}"
            )
        builder.ldi(_R_EXP, expect)
        builder.cmpne(_R_TMP, _R_RES, _R_EXP)
        builder.or_(_R_FLAG, _R_FLAG, _R_TMP)
        emitted += 1
    return emitted


def emit_vm_self_test(
    test_set: CompactTestSet, unit: str, width: int, name: Optional[str] = None
) -> SelfTestProgram:
    """Compile a unit's compact test set into a VM self-test program.

    The program applies every test operand pair through the machine's
    faultable unit, compares against golden expectations, stores the
    sticky mismatch flag to memory address 0 and halts.
    """
    builder = ProgramBuilder(name or f"{unit}{width}_selftest")
    builder.ldi(_R_FLAG, 0)
    n = _emit_unit_block(builder, FaultableALU(width), unit, test_set, width)
    builder.st(0, _R_FLAG)
    builder.halt()
    return SelfTestProgram(builder.build(), unit, width, n)


def emit_alu_self_test(
    test_sets: Mapping[str, CompactTestSet], width: int, name: Optional[str] = None
) -> SelfTestProgram:
    """One VM program exercising every functional unit of the ALU.

    ``test_sets`` maps unit names (``add``/``sub``/``mul``/``div``) to
    their compact sets; blocks are emitted in mapping order, all OR-ing
    into the same sticky flag, so a fault in *any* unit the sets cover
    trips the single stored verdict.
    """
    builder = ProgramBuilder(name or f"alu{width}_selftest")
    builder.ldi(_R_FLAG, 0)
    golden = FaultableALU(width)
    total = 0
    for unit, test_set in test_sets.items():
        total += _emit_unit_block(builder, golden, unit, test_set, width)
    builder.st(0, _R_FLAG)
    builder.halt()
    return SelfTestProgram(builder.build(), "alu", width, total)
