"""Per-unit test-generation report (the ATPG companion to Table 2).

One row per arithmetic unit: fault-universe size, collapsed equivalence
classes, vectors the ATPG loop actually tried, generated and compacted
test counts, residual undetected faults and the resulting fault
coverage -- rendered in the style of :mod:`repro.coverage.report` so
the two tables read side by side.

Run as a module for a command-line report::

    python -m repro.tpg.report --width 4
    python -m repro.tpg.report --units add div --width 3 --seed 7
    python -m repro.tpg.report --width 4 --hardest 5

``--hardest N`` appends, per unit, the N hardest-to-test faults by
SCOAP detection effort (:mod:`repro.analysis.testability`) next to the
proven-redundant residue, so the structurally awkward corners of each
unit are visible even when coverage is 100%.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.tpg.generate import (
    TPG_SEED,
    TPGResult,
    UNIT_OPERATORS,
    generate_tests,
    unit_netlist,
    unit_space,
)


@dataclass
class TPGUnitRow:
    """One rendered report row, distilled from a :class:`TPGResult`."""

    unit: str
    width: int
    n_faults: int
    n_classes: int
    vectors_tried: int
    n_generated: int
    n_compact: int
    residual: int
    coverage_percent: float
    exhausted: bool

    @classmethod
    def from_result(cls, unit: str, width: int, result: TPGResult) -> "TPGUnitRow":
        return cls(
            unit=unit,
            width=width,
            n_faults=result.dictionary.n_faults,
            n_classes=len(result.dictionary.groups),
            vectors_tried=result.vectors_tried,
            n_generated=result.n_tests,
            n_compact=result.compact.n_tests,
            residual=len(result.undetected),
            coverage_percent=100.0 * result.compact.coverage,
            exhausted=result.exhausted,
        )


def tpg_unit_results(
    units: Iterable[str] = UNIT_OPERATORS,
    width: int = 4,
    seed: int = TPG_SEED,
) -> Dict[str, TPGResult]:
    """Run the ATPG loop for each unit at ``width``."""
    return {
        unit: generate_tests(
            unit_netlist(unit, width), unit_space(unit, width), seed=seed
        )
        for unit in units
    }


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(w) for cell, w in zip(cells, widths))


def render_tpg_report(
    units: Iterable[str] = UNIT_OPERATORS,
    width: int = 4,
    seed: int = TPG_SEED,
    results: Optional[Dict[str, TPGResult]] = None,
) -> str:
    """Render the per-unit test-generation table.

    ``results`` may be supplied (e.g. by a benchmark) to skip
    recomputation.  The ``residual`` column counts faults no vector of
    the constrained universe detects; when the residual sweep ran
    exhaustively these are *proven* redundant, flagged ``(proven)``.
    """
    units = list(units)
    if results is None:
        results = tpg_unit_results(units, width=width, seed=seed)
    rows: List[TPGUnitRow] = [
        TPGUnitRow.from_result(unit, width, results[unit]) for unit in units
    ]
    col_widths = (6, 8, 9, 9, 11, 10, 9, 16, 10)
    lines = [
        f"Test generation -- compact self-test sets (width={width}, seed={seed})",
        _format_row(
            (
                "unit",
                "faults",
                "classes",
                "tried",
                "generated",
                "compact",
                "cover %",
                "residual",
                "set ratio",
            ),
            col_widths,
        ),
    ]
    for row in rows:
        residual = (
            f"{row.residual} (proven)" if row.exhausted else f"{row.residual} (open)"
        )
        ratio = (
            f"{row.vectors_tried / row.n_compact:.0f}x"
            if row.n_compact
            else "-"
        )
        lines.append(
            _format_row(
                (
                    row.unit,
                    row.n_faults,
                    row.n_classes,
                    row.vectors_tried,
                    row.n_generated,
                    row.n_compact,
                    f"{row.coverage_percent:.2f}",
                    residual,
                    ratio,
                ),
                col_widths,
            )
        )
    return "\n".join(lines)


def render_hardest_faults(
    units: Iterable[str] = UNIT_OPERATORS,
    width: int = 4,
    limit: int = 5,
    results: Optional[Dict[str, TPGResult]] = None,
) -> str:
    """Render the per-unit SCOAP hardest-to-test fault listing.

    Each unit contributes its ``limit`` highest-effort stuck-at faults
    (SCOAP controllability of the required value plus observability of
    the site, rails pinned as in the unit's test space), annotated with
    whether the ATPG run actually detected them.  ``results`` (from
    :func:`tpg_unit_results`) is optional -- without it the detection
    column is omitted.
    """
    from repro.analysis.testability import hardest_faults

    units = list(units)
    lines = [f"Hardest-to-test faults by SCOAP effort (width={width}, top {limit})"]
    for unit in units:
        netlist = unit_netlist(unit, width)
        constants = dict(unit_space(unit, width).constants) or None
        detected = None
        if results is not None and unit in results:
            dictionary = results[unit].dictionary
            flags = dictionary.detected
            detected = {
                fault.describe(): bool(flags[index])
                for index, fault in enumerate(dictionary.faults)
            }
        lines.append(f"{unit}:")
        for fault, effort in hardest_faults(
            netlist, limit=limit, constants=constants
        ):
            suffix = ""
            if detected is not None:
                status = detected.get(fault.describe())
                suffix = (
                    "  [undetected]"
                    if status is False
                    else "  [detected]" if status else ""
                )
            lines.append(f"  effort {effort:>6}  {fault.describe()}{suffix}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="ATPG compact-test-set report")
    parser.add_argument(
        "--units", nargs="+", default=list(UNIT_OPERATORS), choices=UNIT_OPERATORS
    )
    parser.add_argument("--width", type=int, default=4)
    parser.add_argument("--seed", type=int, default=TPG_SEED)
    parser.add_argument(
        "--hardest",
        type=int,
        default=0,
        metavar="N",
        help="also list the N hardest-to-test faults per unit (SCOAP effort)",
    )
    args = parser.parse_args(argv)
    results = tpg_unit_results(args.units, width=args.width, seed=args.seed)
    print(
        render_tpg_report(
            units=args.units, width=args.width, seed=args.seed, results=results
        )
    )
    if args.hardest > 0:
        print()
        print(
            render_hardest_faults(
                units=args.units, width=args.width, limit=args.hardest,
                results=results,
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
