"""Fault dictionaries: full fault x vector detection bitsets.

A :class:`FaultDictionary` records, for every stuck-at fault of a
netlist and every vector of a test universe, whether the vector detects
the fault -- the classical ATPG artefact that turns coverage questions
("is this fault testable?") into set-cover questions ("which vectors do
I keep?").  The detection matrix is packed 64 vectors per ``uint64``
word, one row per fault, so the n = 8 adder's 131072-vector universe
against its 296-fault list is a 600 KB array, and compaction reduces it
with bitwise ops only (:mod:`repro.tpg.compaction`).

Dictionaries are built by the batched bit-parallel engine
(:meth:`repro.gates.engine.BitParallelEngine.run_fault_groups`): one
representative per structural equivalence class is simulated against a
shared golden row and the per-vector difference words *are* the
dictionary rows.  Large universes shard across worker processes by
*word range* (:func:`repro.faults.sharding.shard_bounds`) and merge
bit-identically (:meth:`FaultDictionary.merge`); ``save``/``load``
round-trip through ``.npz`` so expensive dictionaries persist.

Constrained universes are described by a :class:`TestSpace`: some
primary inputs sweep (the operand bits), some are pinned constants (a
test architecture's ``zero``/``one`` rails), and a field of the swept
inputs may be required non-zero (the divider's divisor) -- the same
masked-operand machinery the Table 2 sweeps use
(:func:`repro.gates.engine.exhaustive_field_mask`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.faults.sharding import resolve_workers, run_sharded, shard_bounds
from repro.gates.backends import AUTO_BACKEND, resolve_backend_name
from repro.gates.compile import compile_netlist
from repro.gates.engine import (
    ALL_ONES,
    LANES,
    MAX_EXHAUSTIVE_INPUTS,
    engine_for,
    exhaustive_word_range,
    matrix_word_chunk,
    pack_bits,
    popcount_words,
)
from repro.gates.faults import (
    FaultSite,
    StuckAtFault,
    default_equivalence_groups,
    default_fault_universe,
    resolve_collapse_mode,
    structural_equivalence_groups,
)
from repro.gates.netlist import Netlist
from repro.gates.tune import resolve_chunking, resolve_plan
from repro.obs.trace import span as obs_span
from repro.store import (
    CacheKey,
    digest_faults,
    digest_netlist,
    digest_params,
    digest_test_space,
    digest_vector_table,
    resolve_store,
    run_checkpointed,
)

#: Streaming chunk sizes of the dictionary builder: vectors move through
#: the fault matrix ``DICT_WORD_CHUNK`` words (x64 vectors) at a time,
#: equivalence-class representatives ``DICT_FAULT_CHUNK`` rows at a time.
#: Defaults of the shared resolution rule
#: (:func:`repro.gates.tune.resolve_chunking`); explicit keywords and
#: the ``REPRO_WORD_CHUNK``/``REPRO_FAULT_CHUNK`` env vars override.
DICT_WORD_CHUNK = 256
DICT_FAULT_CHUNK = 64


def _resolve_dict_backend(
    netlist: Netlist,
    backend: Optional[str],
    n_groups: int,
    n_words: int,
    word_chunk: Optional[int],
    fault_chunk: Optional[int],
    matrix_budget: Optional[int],
) -> Tuple[str, int, int]:
    """Shared backend + chunk resolution of the dictionary builders.

    Returns ``(concrete backend name, word_chunk, fault_chunk)``; the
    ``"auto"`` sentinel goes through the shape-aware autotuner with the
    builder's real universe sizes, so sharded workers always receive a
    concrete name.
    """
    word_chunk, fault_chunk = resolve_chunking(
        word_chunk,
        fault_chunk,
        default_word_chunk=DICT_WORD_CHUNK,
        default_fault_chunk=DICT_FAULT_CHUNK,
    )
    backend = resolve_backend_name(backend, allow_auto=True)
    if backend == AUTO_BACKEND:
        backend = resolve_plan(
            compile_netlist(netlist),
            backend=AUTO_BACKEND,
            n_groups=n_groups,
            n_words=n_words,
            word_chunk=word_chunk,
            fault_chunk=fault_chunk,
            matrix_budget=matrix_budget,
        ).backend
    return backend, word_chunk, fault_chunk


@dataclass(frozen=True)
class TestSpace:
    """A (possibly constrained) vector universe over a netlist's inputs.

    ``free_inputs`` sweep -- vector ``v`` assigns bit ``k`` of ``v`` to
    the ``k``-th free input, matching :func:`exhaustive_word_range` --
    while ``constants`` pins the remaining primary inputs to 0/1 (a test
    architecture's constant rails).  ``nonzero_field`` names a
    ``[lo, hi)`` range of *free-input indices* whose bits must not all
    be zero (the divider's ``b != 0``); vectors violating it are masked
    out of every sweep and every random phase.
    """

    netlist: Netlist
    free_inputs: Tuple[str, ...]
    constants: Tuple[Tuple[str, int], ...] = ()
    nonzero_field: Optional[Tuple[int, int]] = None

    # Not a pytest class, despite the domain-appropriate Test* name.
    __test__ = False

    def __post_init__(self) -> None:
        const = dict(self.constants)
        free_index = {name: k for k, name in enumerate(self.free_inputs)}
        if len(free_index) != len(self.free_inputs):
            raise SimulationError("duplicate free inputs in test space")
        plan: List[Tuple[bool, int]] = []  # (is_free, free index or constant)
        free_seen = 0
        for name in self.netlist.primary_inputs:
            if name in free_index:
                if free_index[name] != free_seen:
                    raise SimulationError(
                        "free inputs must follow the netlist's input order"
                    )
                plan.append((True, free_seen))
                free_seen += 1
            elif name in const:
                value = const.pop(name)
                if value not in (0, 1):
                    raise SimulationError(
                        f"constant input {name!r} must be 0 or 1, got {value!r}"
                    )
                plan.append((False, value))
            else:
                raise SimulationError(
                    f"primary input {name!r} is neither swept nor pinned"
                )
        if free_seen != len(self.free_inputs) or const:
            extra = sorted(set(list(free_index)[free_seen:]) | set(const))
            raise SimulationError(
                f"test space names unknown inputs: {extra}"
            )
        if self.nonzero_field is not None:
            lo, hi = self.nonzero_field
            if not (0 <= lo < hi <= len(self.free_inputs)):
                raise SimulationError(
                    f"nonzero field [{lo}, {hi}) outside the "
                    f"{len(self.free_inputs)} free inputs"
                )
        object.__setattr__(self, "_plan", tuple(plan))

    @classmethod
    def full(cls, netlist: Netlist) -> "TestSpace":
        """The unconstrained exhaustive universe over every input."""
        return cls(netlist, tuple(netlist.primary_inputs))

    # ------------------------------------------------------------------
    @property
    def n_free(self) -> int:
        return len(self.free_inputs)

    @property
    def n_vectors(self) -> int:
        """Raw universe size, ``2**n_free`` (masked lanes included)."""
        return 1 << self.n_free

    @property
    def n_words(self) -> int:
        return max(1, self.n_vectors >> 6)

    @property
    def tail_mask(self) -> np.uint64:
        if self.n_vectors >= LANES:
            return ALL_ONES
        return np.uint64((1 << self.n_vectors) - 1)

    def _expand(self, free_rows: np.ndarray) -> np.ndarray:
        """Free-input word rows -> all-input word rows (constants filled)."""
        rows = np.empty(
            (len(self.netlist.primary_inputs), free_rows.shape[1]), dtype=np.uint64
        )
        for i, (is_free, value) in enumerate(self._plan):
            if is_free:
                rows[i] = free_rows[value]
            else:
                rows[i] = ALL_ONES if value else np.uint64(0)
        return rows

    def input_rows(self, word_lo: int, word_hi: int) -> np.ndarray:
        """Packed exhaustive sweep words ``[word_lo, word_hi)``, one row
        per primary input in netlist order."""
        if self.n_free > MAX_EXHAUSTIVE_INPUTS:
            raise SimulationError(
                f"exhaustive sweep over {self.n_free} free inputs is too large"
            )
        return self._expand(exhaustive_word_range(self.n_free, word_lo, word_hi))

    def _nonzero_mask(self, rows: np.ndarray) -> Optional[np.ndarray]:
        if self.nonzero_field is None:
            return None
        lo, hi = self.nonzero_field
        field_rows = [
            rows[i]
            for i, (is_free, value) in enumerate(self._plan)
            if is_free and lo <= value < hi
        ]
        return np.bitwise_or.reduce(np.stack(field_rows), axis=0)

    def valid_words(
        self, word_lo: int, word_hi: int, rows: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Valid-lane masks for sweep words ``[word_lo, word_hi)``.

        ``None`` means every lane is a real vector.  Callers already
        holding the range's :meth:`input_rows` pass it as ``rows`` so the
        non-zero-field mask derives from it instead of regenerating the
        sweep.
        """
        tail = self.tail_mask
        tail_hit = tail != ALL_ONES and word_hi == self.n_words
        if self.nonzero_field is None and not tail_hit:
            return None
        if rows is None:
            rows = self.input_rows(word_lo, word_hi)
        masks = self._nonzero_mask(rows)
        if masks is None:
            masks = np.full(word_hi - word_lo, ALL_ONES, dtype=np.uint64)
        else:
            masks = masks.copy()
        if tail_hit and masks.size:
            masks[-1] &= tail
        return masks

    def valid_count(self, word_lo: int, word_hi: int) -> int:
        """Number of real vectors in sweep words ``[word_lo, word_hi)``."""
        masks = self.valid_words(word_lo, word_hi)
        if masks is None:
            return (word_hi - word_lo) * LANES
        return int(popcount_words(masks))

    def random_rows(
        self, rng: np.random.Generator, n_words: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``n_words * 64`` random vectors as packed input rows plus the
        valid-lane masks (``None`` when unconstrained)."""
        free = rng.integers(
            0,
            np.iinfo(np.uint64).max,
            size=(self.n_free, n_words),
            dtype=np.uint64,
            endpoint=True,
        )
        rows = self._expand(free)
        return rows, self._nonzero_mask(rows)

    # ------------------------------------------------------------------
    def bits_from_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Input bit table ``(len(indices), n_inputs)`` for universe
        vectors, in netlist input order (constants filled in)."""
        idx = np.asarray(list(indices), dtype=np.uint64)
        bits = np.empty((idx.shape[0], len(self.netlist.primary_inputs)), dtype=np.uint8)
        for i, (is_free, value) in enumerate(self._plan):
            if is_free:
                bits[:, i] = ((idx >> np.uint64(value)) & np.uint64(1)).astype(np.uint8)
            else:
                bits[:, i] = value
        return bits


def inputs_from_bits(netlist: Netlist, bits: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-input 0/1 vector arrays for an explicit test table.

    ``bits`` is ``(n_tests, n_inputs)`` in netlist input order -- the
    layout :class:`~repro.tpg.compaction.CompactTestSet` carries -- and
    the result plugs straight into ``run_stuck_at_campaign(inputs=...)``.
    """
    return {
        name: np.ascontiguousarray(bits[:, i])
        for i, name in enumerate(netlist.primary_inputs)
    }


@dataclass
class FaultDictionary:
    """Packed fault x vector detection matrix for one netlist.

    ``words[f]`` holds fault ``f``'s detection bit stream: lane
    ``v % 64`` of word ``v // 64`` is set iff universe vector
    ``vector_base + v`` detects ``faults[f]`` (some primary output
    differs from the fault-free response).  ``groups`` are the
    structural equivalence classes whose representatives were actually
    simulated; members share their representative's row bit-for-bit.
    """

    netlist_name: str
    faults: Tuple[StuckAtFault, ...]
    groups: Tuple[Tuple[int, ...], ...]
    words: np.ndarray  # (n_faults, n_words) uint64
    n_vectors: int
    vector_base: int = 0
    #: Name of the execution backend that built the detection rows
    #: (recorded in ``.npz`` persistence; empty for legacy files).
    backend: str = ""

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    @property
    def detected(self) -> np.ndarray:
        """Boolean per-fault: detected by at least one vector."""
        return (self.words != 0).any(axis=1)

    @property
    def detected_count(self) -> int:
        return int(np.sum(self.detected))

    @property
    def coverage(self) -> float:
        return self.detected_count / self.n_faults if self.n_faults else 1.0

    def detections_per_fault(self) -> np.ndarray:
        """How many universe vectors detect each fault."""
        return popcount_words(self.words)

    def column_bits(self, vector: int) -> np.ndarray:
        """Detection bits of one universe vector, ``(n_faults,)`` uint8."""
        local = vector - self.vector_base
        if not (0 <= local < self.n_vectors):
            raise SimulationError(
                f"vector {vector} outside dictionary range "
                f"[{self.vector_base}, {self.vector_base + self.n_vectors})"
            )
        return (
            (self.words[:, local // LANES] >> np.uint64(local % LANES)) & np.uint64(1)
        ).astype(np.uint8)

    def covered_by(self, vectors: Iterable[int]) -> np.ndarray:
        """Faults detected by a vector subset, ``(n_faults,)`` bool."""
        out = np.zeros(self.n_faults, dtype=bool)
        for v in vectors:
            out |= self.column_bits(v).astype(bool)
        return out

    def undetected_faults(self) -> List[StuckAtFault]:
        return [f for f, d in zip(self.faults, self.detected) if not d]

    def summary(self) -> str:
        return (
            f"{self.netlist_name}: dictionary of {self.n_faults} faults x "
            f"{self.n_vectors} vectors ({len(self.groups)} equivalence "
            f"classes, {self.detected_count} detectable, "
            f"{100.0 * self.coverage:.2f}% coverage)"
        )

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["FaultDictionary"]) -> "FaultDictionary":
        """Merge word-range shards back into one dictionary.

        Parts must cover contiguous vector ranges of the same fault
        universe, in order, each non-final part word-aligned; rows
        concatenate along the word axis, so the merge is bit-identical
        for any shard count.
        """
        if not parts:
            raise SimulationError("cannot merge zero dictionary shards")
        head = parts[0]
        base = head.vector_base + head.n_vectors
        backends = {p.backend for p in parts if p.backend}
        for part in parts[1:]:
            # Parts may arrive from anywhere -- live builds, ``.npz``
            # files, the result store -- so identity, not freshness, is
            # what the merge validates: same netlist, same fault list
            # (tuple equality over the frozen fault dataclasses), same
            # collapsing.  Backends may legitimately differ (rows are
            # bit-identical across the registry); a mixed merge records
            # ``"mixed"`` instead of silently claiming the head's.
            if part.netlist_name != head.netlist_name:
                raise SimulationError(
                    f"dictionary shards disagree on the netlist: "
                    f"{head.netlist_name!r} vs {part.netlist_name!r}"
                )
            if part.faults != head.faults:
                raise SimulationError("dictionary shards disagree on the fault list")
            if part.groups != head.groups:
                raise SimulationError(
                    "dictionary shards disagree on the equivalence groups"
                )
            if part.vector_base != base:
                raise SimulationError(
                    f"dictionary shards are not contiguous: expected vector "
                    f"base {base}, got {part.vector_base}"
                )
            if base % LANES != 0:
                raise SimulationError(
                    "non-final dictionary shards must cover whole words"
                )
            base += part.n_vectors
        return cls(
            netlist_name=head.netlist_name,
            faults=head.faults,
            groups=head.groups,
            words=np.hstack([np.ascontiguousarray(p.words) for p in parts]),
            n_vectors=base - head.vector_base,
            vector_base=head.vector_base,
            backend=(backends.pop() if len(backends) == 1 else
                     "mixed" if backends else head.backend),
        )

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist to ``.npz`` (compressed; faults stored field-wise)."""
        nets, gates, pins, values = [], [], [], []
        for fault in self.faults:
            nets.append(fault.site.net)
            if fault.site.is_stem:
                gates.append("")
                pins.append(-1)
            else:
                gate, pin = fault.site.branch
                gates.append(gate)
                pins.append(pin)
            values.append(fault.value)
        offsets = np.cumsum([0] + [len(g) for g in self.groups])
        members = np.array(
            [i for g in self.groups for i in g] or [], dtype=np.int64
        )
        np.savez_compressed(
            path,
            netlist_name=np.array(self.netlist_name),
            backend=np.array(self.backend),
            words=self.words,
            n_vectors=np.array(self.n_vectors, dtype=np.int64),
            vector_base=np.array(self.vector_base, dtype=np.int64),
            fault_nets=np.array(nets),
            fault_gates=np.array(gates),
            fault_pins=np.array(pins, dtype=np.int64),
            fault_values=np.array(values, dtype=np.uint8),
            group_offsets=offsets.astype(np.int64),
            group_members=members,
        )

    @classmethod
    def load(cls, path) -> "FaultDictionary":
        """Inverse of :meth:`save`."""
        with np.load(path) as data:
            faults = tuple(
                StuckAtFault(
                    FaultSite(
                        str(net), None if pin < 0 else (str(gate), int(pin))
                    ),
                    int(value),
                )
                for net, gate, pin, value in zip(
                    data["fault_nets"],
                    data["fault_gates"],
                    data["fault_pins"],
                    data["fault_values"],
                )
            )
            offsets = data["group_offsets"]
            members = data["group_members"]
            groups = tuple(
                tuple(int(i) for i in members[lo:hi])
                for lo, hi in zip(offsets[:-1], offsets[1:])
            )
            return cls(
                netlist_name=str(data["netlist_name"]),
                faults=faults,
                groups=groups,
                words=data["words"],
                n_vectors=int(data["n_vectors"]),
                vector_base=int(data["vector_base"]),
                backend=(
                    str(data["backend"]) if "backend" in data.files else ""
                ),
            )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _resolve_universe(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]],
    collapse: Union[bool, str],
) -> Tuple[Tuple[StuckAtFault, ...], Tuple[Tuple[int, ...], ...]]:
    """Fault list + equivalence groups, matching the campaign defaults.

    Dictionaries record every fault's *per-vector* detection words, so
    only behaviour-preserving collapsing is legal here: ``"dominance"``
    (which infers detection rather than reproducing detection words) is
    rejected -- dominance-collapsed flows build their dictionaries with
    ``"equivalence"`` instead (see :func:`repro.tpg.generate.generate_tests`).
    """
    mode = resolve_collapse_mode(collapse)
    if mode == "dominance":
        raise SimulationError(
            "fault dictionaries need exact per-vector detection words; "
            "collapse='dominance' only preserves detection verdicts -- "
            "use collapse='equivalence' (or True) here"
        )
    if faults is None:
        fault_seq = default_fault_universe(netlist)
        groups = (
            default_equivalence_groups(netlist)
            if mode == "equivalence"
            else tuple((i,) for i in range(len(fault_seq)))
        )
    else:
        fault_seq = tuple(faults)
        groups = (
            structural_equivalence_groups(netlist, fault_seq)
            if mode == "equivalence"
            else tuple((i,) for i in range(len(fault_seq)))
        )
    return fault_seq, groups


def _detection_rows(
    netlist: Netlist,
    groups: Tuple[Tuple[int, ...], ...],
    fault_seq: Tuple[StuckAtFault, ...],
    rows_of,
    n_words: int,
    word_lo: int,
    word_chunk: int,
    fault_chunk: int,
    matrix_budget: Optional[int],
    backend: Optional[str] = None,
) -> np.ndarray:
    """Core kernel: per-fault detection words over a packed word range.

    ``rows_of(lo, hi)`` yields ``(input rows, valid masks)`` for sweep
    words ``[lo, hi)`` relative to ``word_lo``; one representative per
    equivalence class rides the fault matrix against the shared golden
    row, and the per-vector output difference words are broadcast to the
    whole class.
    """
    engine = engine_for(netlist, backend)
    reps = [fault_seq[g[0]] for g in groups]
    group_words = np.zeros((len(reps), n_words), dtype=np.uint64)
    fault_chunk = max(1, fault_chunk)
    row_cells = engine.compiled.n_nets * (min(fault_chunk, max(1, len(reps))) + 1)
    word_chunk = matrix_word_chunk(row_cells, word_chunk, matrix_budget)
    for lo in range(0, n_words, word_chunk):
        hi = min(lo + word_chunk, n_words)
        rows, valid = rows_of(word_lo + lo, word_lo + hi)
        for flo in range(0, len(reps), fault_chunk):
            fhi = min(flo + fault_chunk, len(reps))
            diff = engine.detect_words(rows, reps[flo:fhi])
            if valid is not None:
                diff &= valid
            group_words[flo:fhi, lo:hi] = diff
    words = np.empty((len(fault_seq), n_words), dtype=np.uint64)
    for group, row in zip(groups, group_words):
        for fi in group:
            words[fi] = row
    return words


def _dictionary_shard(
    netlist: Netlist,
    space: TestSpace,
    faults: Optional[Tuple[StuckAtFault, ...]],
    collapse: Union[bool, str],
    word_lo: int,
    word_hi: int,
    word_chunk: int,
    fault_chunk: int,
    matrix_budget: Optional[int],
    backend: Optional[str] = None,
) -> np.ndarray:
    """Shard worker: detection words for sweep words [word_lo, word_hi).

    ``backend`` arrives pre-resolved from the parent so every worker
    re-selects the same execution backend.
    """
    fault_seq, groups = _resolve_universe(netlist, faults, collapse)

    def rows_of(lo: int, hi: int):
        rows = space.input_rows(lo, hi)
        return rows, space.valid_words(lo, hi, rows=rows)

    return _detection_rows(
        netlist, groups, fault_seq, rows_of,
        word_hi - word_lo, word_lo, word_chunk, fault_chunk, matrix_budget,
        backend,
    )


def build_fault_dictionary(
    netlist: Netlist,
    space: Optional[TestSpace] = None,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    workers: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> FaultDictionary:
    """Exhaustive fault dictionary of ``netlist`` over ``space``.

    ``space`` defaults to the unconstrained universe over every primary
    input; ``faults`` to the full stem+branch universe (in campaign
    order, so dictionary rows line up with
    :func:`~repro.gates.engine.run_stuck_at_campaign` verdicts).
    ``workers`` shards the vector universe by word range across
    processes -- merges are bit-identical for any worker count -- and
    ``backend`` selects the execution backend, recorded on the
    dictionary (and in its ``.npz`` persistence) for provenance.
    Masked lanes (a non-zero field, the tail of a sub-word universe)
    are never counted as detecting.  With a result store active
    (``store=``/``REPRO_STORE``) the finished dictionary memoises under
    a content key and every word-range shard checkpoints as it
    completes, so a killed build resumes from its surviving shards.
    """
    with obs_span("fault_dictionary", netlist=netlist.name):
        return _build_fault_dictionary_impl(
            netlist, space, faults, collapse, workers, word_chunk,
            fault_chunk, matrix_budget, backend, store,
        )


def _build_fault_dictionary_impl(
    netlist: Netlist,
    space: Optional[TestSpace],
    faults: Optional[Iterable[StuckAtFault]],
    collapse: Union[bool, str],
    workers: Optional[int],
    word_chunk: Optional[int],
    fault_chunk: Optional[int],
    matrix_budget: Optional[int],
    backend: Optional[str],
    store,
) -> FaultDictionary:
    if space is None:
        space = TestSpace.full(netlist)
    elif space.netlist is not netlist:
        raise SimulationError("test space was built for a different netlist")
    fault_tuple = tuple(faults) if faults is not None else None
    fault_seq, groups = _resolve_universe(netlist, fault_tuple, collapse)
    n_words = space.n_words
    backend, word_chunk, fault_chunk = _resolve_dict_backend(
        netlist, backend, len(groups), n_words,
        word_chunk, fault_chunk, matrix_budget,
    )
    store = resolve_store(store)
    key = None
    if store is not None:
        key = CacheKey(
            kind="dictionary",
            netlist=digest_netlist(netlist),
            universe=digest_faults(fault_seq),
            space=digest_test_space(space),
            method="dictionary",
            backend=backend,
            params=digest_params(
                collapse=resolve_collapse_mode(collapse),
                word_chunk=word_chunk,
                fault_chunk=fault_chunk,
                matrix_budget=matrix_budget,
            ),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    n_workers = resolve_workers(
        workers, n_words, cost=len(groups) * space.n_vectors
    )
    bounds = shard_bounds(n_words, n_workers)
    arg_tuples = [
        (netlist, space, fault_tuple, collapse, lo, hi,
         word_chunk, fault_chunk, matrix_budget, backend)
        for lo, hi in bounds
    ]
    if store is not None:
        slices = run_checkpointed(
            _dictionary_shard,
            arg_tuples,
            [key.with_shard(lo, hi) for lo, hi in bounds],
            store,
        )
    else:
        slices = run_sharded(_dictionary_shard, arg_tuples)
    result = FaultDictionary(
        netlist_name=netlist.name,
        faults=fault_seq,
        groups=groups,
        words=np.hstack(slices) if slices else np.zeros((len(fault_seq), 0), np.uint64),
        n_vectors=space.n_vectors,
        vector_base=0,
        backend=backend,
    )
    if store is not None:
        store.put(key, result, {"workers": n_workers, "shards": len(bounds)})
    return result


def dictionary_for_vectors(
    netlist: Netlist,
    bits: np.ndarray,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> FaultDictionary:
    """Fault dictionary over an explicit test table.

    ``bits`` is ``(n_tests, n_inputs)`` 0/1 in netlist input order (the
    layout ATPG and compact test sets carry); the dictionary's vector
    ``t`` is row ``t`` of the table.  This is the *replay* primitive:
    building it for a compact set and comparing ``detected`` against the
    set's claim is the end-to-end validation the tests pin down.
    """
    fault_tuple = tuple(faults) if faults is not None else None
    fault_seq, groups = _resolve_universe(netlist, fault_tuple, collapse)
    bits = np.asarray(bits, dtype=np.uint8)
    n_tests = bits.shape[0]
    backend, word_chunk, fault_chunk = _resolve_dict_backend(
        netlist, backend, len(groups), max(1, -(-n_tests // LANES)),
        word_chunk, fault_chunk, matrix_budget,
    )
    store = resolve_store(store)
    key = None
    if store is not None:
        key = CacheKey(
            kind="dictionary",
            netlist=digest_netlist(netlist),
            universe=digest_faults(fault_seq),
            space=digest_vector_table(bits),
            method="table",
            backend=backend,
            params=digest_params(
                collapse=resolve_collapse_mode(collapse),
                word_chunk=word_chunk,
                fault_chunk=fault_chunk,
                matrix_budget=matrix_budget,
            ),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    if n_tests and bits.shape[1] != len(netlist.primary_inputs):
        raise SimulationError(
            f"test table has {bits.shape[1]} input columns, netlist has "
            f"{len(netlist.primary_inputs)}"
        )
    if n_tests == 0:
        return FaultDictionary(
            netlist_name=netlist.name,
            faults=fault_seq,
            groups=groups,
            words=np.zeros((len(fault_seq), 0), dtype=np.uint64),
            n_vectors=0,
            backend=backend,
        )
    packed = np.stack([pack_bits(bits[:, k]) for k in range(bits.shape[1])])
    n_words = packed.shape[1]
    rem = n_tests % LANES
    tail = ALL_ONES if rem == 0 else np.uint64((1 << rem) - 1)

    def rows_of(lo: int, hi: int):
        rows = packed[:, lo:hi]
        if tail != ALL_ONES and hi == n_words:
            valid = np.full(hi - lo, ALL_ONES, dtype=np.uint64)
            valid[-1] = tail
            return rows, valid
        return rows, None

    words = _detection_rows(
        netlist, groups, fault_seq, rows_of,
        n_words, 0, word_chunk, fault_chunk, matrix_budget, backend,
    )
    result = FaultDictionary(
        netlist_name=netlist.name,
        faults=fault_seq,
        groups=groups,
        words=words,
        n_vectors=n_tests,
        backend=backend,
    )
    if store is not None:
        store.put(key, result)
    return result


def replay_detected(
    netlist: Netlist,
    bits: np.ndarray,
    faults: Optional[Iterable[StuckAtFault]] = None,
    collapse: Union[bool, str] = True,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Per-fault detection of an explicit test table, via the campaign path.

    Runs :func:`repro.faults.injector.run_sharded_stuck_at_campaign`
    with the table's per-input vector arrays -- a different code path
    from the dictionary kernel -- and returns its boolean ``detected``
    array.  Agreement between the two is the subsystem's bit-for-bit
    acceptance criterion.
    """
    from repro.faults.injector import run_sharded_stuck_at_campaign

    bits = np.asarray(bits, dtype=np.uint8)
    fault_tuple = tuple(faults) if faults is not None else None
    if bits.shape[0] == 0:
        fault_seq, _ = _resolve_universe(netlist, fault_tuple, collapse)
        return np.zeros(len(fault_seq), dtype=bool)
    raw = run_sharded_stuck_at_campaign(
        netlist,
        vectors=inputs_from_bits(netlist, bits),
        faults=fault_tuple,
        collapse=collapse,
        workers=workers,
        backend=backend,
    )
    return np.asarray(raw.detected, dtype=bool)
