"""Test-pattern generation: fault dictionaries, compact sets, self-test.

The ATPG layer on top of the bit-parallel fault-simulation engine.  The
coverage engine (:mod:`repro.coverage`) answers *whether* a fault is
detectable; this package answers *which vectors to apply*:

* :mod:`repro.tpg.dictionary` -- fault x vector detection bitsets
  (:class:`FaultDictionary`), built by the batched engine over
  constrained vector universes (:class:`TestSpace`), shard-mergeable
  and persistable to ``.npz``;
* :mod:`repro.tpg.compaction` -- greedy set-cover and reverse-order
  compaction yielding minimal test sets with per-vector marginal
  coverage provenance (:class:`CompactTestSet`);
* :mod:`repro.tpg.generate` -- the simulation-based ATPG loop: seeded
  random phases with fault dropping, then exhaustive word-range sweeps
  over the residue; deterministic per seed;
* :mod:`repro.tpg.report` -- the per-unit generation table;
* :mod:`repro.tpg.emit` -- self-test artefacts: VHDL/Verilog benches
  (stimulus ROM + golden-response checking around the structurally
  emitted DUT) and :mod:`repro.vm` programs applying the same test sets
  to the software-side units.

The compact sets are *validated end to end*: replaying one through the
campaign engine reproduces its dictionary's claimed per-fault detection
bit for bit (``tests/test_tpg.py``).
"""

from repro.tpg.compaction import (
    CompactTestSet,
    GreedyCover,
    compact_from_dictionary,
    greedy_cover,
    reverse_compact,
)
from repro.tpg.dictionary import (
    FaultDictionary,
    TestSpace,
    build_fault_dictionary,
    dictionary_for_vectors,
    inputs_from_bits,
    replay_detected,
)
from repro.tpg.emit import (
    SelfTestProgram,
    emit_alu_self_test,
    emit_self_test_verilog,
    emit_self_test_vhdl,
    emit_vm_self_test,
    golden_responses,
)
from repro.tpg.generate import (
    TPG_SEED,
    TPGResult,
    UNIT_OPERATORS,
    compact_test_set,
    generate_tests,
    table2_space,
    unit_netlist,
    unit_space,
    unit_test_set,
)
from repro.tpg.report import TPGUnitRow, render_tpg_report, tpg_unit_results

__all__ = [
    "CompactTestSet",
    "FaultDictionary",
    "GreedyCover",
    "SelfTestProgram",
    "TPGResult",
    "TPGUnitRow",
    "TPG_SEED",
    "TestSpace",
    "UNIT_OPERATORS",
    "build_fault_dictionary",
    "compact_from_dictionary",
    "compact_test_set",
    "dictionary_for_vectors",
    "emit_alu_self_test",
    "emit_self_test_verilog",
    "emit_self_test_vhdl",
    "emit_vm_self_test",
    "generate_tests",
    "golden_responses",
    "greedy_cover",
    "inputs_from_bits",
    "render_tpg_report",
    "replay_detected",
    "reverse_compact",
    "table2_space",
    "tpg_unit_results",
    "unit_netlist",
    "unit_space",
    "unit_test_set",
]
