"""Nestable tracing spans and JSON-lines trace emission.

:func:`span` is a context manager wrapping one unit of work::

    with span("campaign", netlist="rca8", backend="fused"):
        ...

On exit it emits one **span record** carrying a monotonic start
timestamp, duration, pid, thread name, a process-unique span id, and
the id of the enclosing span (spans nest through a thread-local stack).
:func:`emit_event` emits point-in-time **event records** attributed to
the currently open span.  Both record shapes are plain JSON objects:

* ``{"type": "span", "name": ..., "span": ..., "parent": ...,
  "pid": ..., "thread": ..., "wall": ..., "start": ..., "dur": ...,
  "attrs": {...}}`` (plus ``"error": "ExcType"`` when the body raised);
* ``{"type": "event", "name": ..., "span": ..., "pid": ...,
  "thread": ..., "wall": ..., "attrs": {...}}``;
* ``{"type": "metrics", "pid": ..., "metrics": ...}`` -- one final
  registry snapshot appended at interpreter exit when file tracing is
  active, so a single trace file is self-contained for
  :mod:`repro.obs.report`.

Records always land in an in-memory **ring buffer** (bounded deque;
overflow drops the oldest record and counts
``repro_trace_ring_dropped_total``).  When the ``REPRO_TRACE``
environment variable names a file, each record is additionally
serialized and appended with a single ``O_APPEND`` write -- atomic
enough that shard worker processes sharing the path never interleave
partial lines.  The file sink reopens its descriptor after a fork, so
children inherit the path but not a shared file offset.

Tracing never changes results: span bodies run unmodified, and the
emission cost is bench-gated under 5% of an RCA-8 campaign
(``benchmarks/bench_obs.py``).  :func:`read_trace` is the strict
JSON-lines parser the report tool and CI assertions build on.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional

from . import metrics

#: Path of the JSON-lines trace file; unset or empty keeps tracing
#: in-memory only (the ring buffer is always on).
TRACE_ENV = "REPRO_TRACE"

#: Default ring-buffer capacity (records, spans and events combined).
RING_CAPACITY = 4096

_COUNTER = itertools.count(1)
_LOCAL = threading.local()

_RING: Deque[Dict[str, Any]] = deque(maxlen=RING_CAPACITY)
_RING_LOCK = threading.Lock()

# Probe the raw environ dict on the per-record fast path -- same trick
# (and same write-through guarantee) as metrics.telemetry_env_active.
try:  # pragma: no branch
    _ENV_DATA: Optional[Mapping[object, object]] = os.environ._data  # type: ignore[attr-defined]
    _TRACE_ENV_KEY: object = os.environ.encodekey(TRACE_ENV)  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _TRACE_ENV_KEY = TRACE_ENV


def _json_default(value: Any) -> Any:
    # Attribute values arrive from campaign code carrying numpy scalars
    # and Paths; coerce rather than crash the trace line.
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


class _FileSink:
    """Appends JSON lines to one path with fork-safe fd handling."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._path: Optional[str] = None
        self._pid: Optional[int] = None

    def write(self, record: Dict[str, Any]) -> None:
        path = os.environ.get(TRACE_ENV, "").strip()
        if not path:
            return
        line = json.dumps(record, default=_json_default) + "\n"
        with self._lock:
            pid = os.getpid()
            if self._fd is None or self._path != path or self._pid != pid:
                if self._fd is not None and self._pid == pid:
                    try:
                        os.close(self._fd)
                    except OSError:
                        pass
                try:
                    self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                except OSError:
                    self._fd = None
                    return
                self._path = path
                self._pid = pid
            try:
                os.write(self._fd, line.encode("utf-8"))
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._fd is not None and self._pid == os.getpid():
                try:
                    os.close(self._fd)
                except OSError:
                    pass
            self._fd = None
            self._path = None
            self._pid = None


_SINK = _FileSink()


def tracing_to_file() -> bool:
    """Whether records are being appended to a ``REPRO_TRACE`` path."""
    return bool(os.environ.get(TRACE_ENV, "").strip())


def _record(record: Dict[str, Any]) -> None:
    with _RING_LOCK:
        if len(_RING) == _RING.maxlen:
            metrics.inc("repro_trace_ring_dropped_total")
        _RING.append(record)
    # The env probe is the fast-path gate: untraced processes must pay
    # a ring append and one dict lookup per record, nothing more (the
    # per-campaign cost is part of the bench_obs overhead budget).
    if _ENV_DATA is not None:
        if not _ENV_DATA.get(_TRACE_ENV_KEY):
            return
    elif not os.environ.get(TRACE_ENV):
        return
    _SINK.write(record)


def _stack() -> List[str]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span() -> Optional[str]:
    """Id of the innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class span:
    """Trace one unit of work; ``__enter__`` returns the span id.

    The record is emitted when the block exits (success or exception --
    a raised exception adds ``"error"`` with the exception type name
    and propagates unchanged).  Nesting is per-thread: a span opened on
    a pool thread parents to whatever that thread last opened, not to
    the submitting thread.  A hand-rolled context manager rather than
    ``@contextmanager``: spans wrap every campaign, so generator
    overhead would eat into the bench_obs budget.
    """

    __slots__ = ("_name", "_attrs", "_id", "_parent", "_wall", "_start")

    def __init__(self, name: str, **attrs: Any) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> str:
        self._id = span_id = f"{os.getpid():x}-{next(_COUNTER)}"
        stack = _stack()
        self._parent = stack[-1] if stack else None
        stack.append(span_id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return span_id

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        dur = time.perf_counter() - self._start
        _stack().pop()
        record: Dict[str, Any] = {
            "type": "span",
            "name": self._name,
            "span": self._id,
            "parent": self._parent,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "wall": self._wall,
            "start": self._start,
            "dur": dur,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self._attrs:
            record["attrs"] = self._attrs
        _record(record)
        return False


def emit_event(name: str, **fields: Any) -> None:
    """Emit a point-in-time event attributed to the current span."""
    stack = getattr(_LOCAL, "stack", None)
    record: Dict[str, Any] = {
        "type": "event",
        "name": name,
        "span": stack[-1] if stack else None,
        "pid": os.getpid(),
        "thread": threading.current_thread().name,
        "wall": time.time(),
    }
    if fields:
        record["attrs"] = fields
    _record(record)


# ----------------------------------------------------------------------
# Ring-buffer access (tests, live report)
# ----------------------------------------------------------------------
def ring_records() -> List[Dict[str, Any]]:
    """Snapshot of the in-memory ring, oldest first."""
    with _RING_LOCK:
        return list(_RING)


def clear_ring(capacity: Optional[int] = None) -> None:
    """Empty the ring; with ``capacity``, also resize it (tests)."""
    global _RING
    with _RING_LOCK:
        if capacity is None:
            _RING.clear()
        else:
            _RING = deque(maxlen=max(1, int(capacity)))


def ring_capacity() -> int:
    with _RING_LOCK:
        return _RING.maxlen or 0


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file strictly.

    Every non-blank line must be a JSON object with a ``type`` field;
    anything else raises ``ValueError`` naming the offending line --
    the CI observability leg leans on this to prove trace integrity.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{lineno}: not a trace record: {line[:80]}")
            records.append(record)
    return records


def _flush_at_exit() -> None:
    # A trace file should be self-contained for report.py: append the
    # final metrics snapshot so store hit rates and kernel histograms
    # travel with the spans.  Forked pool workers exit via os._exit and
    # never reach this -- their metrics return through the sharding
    # results queue instead.
    if tracing_to_file():
        snap = metrics.registry().snapshot()
        if any(snap.values()):
            _SINK.write({"type": "metrics", "pid": os.getpid(), "metrics": snap})
    _SINK.close()


atexit.register(_flush_at_exit)

if hasattr(os, "register_at_fork"):
    # Children must not write through an fd whose offset bookkeeping
    # belongs to the parent; drop it and let the sink lazily reopen.
    os.register_at_fork(after_in_child=lambda: (_SINK.__init__(), clear_ring()))


__all__ = [
    "RING_CAPACITY",
    "TRACE_ENV",
    "clear_ring",
    "current_span",
    "emit_event",
    "read_trace",
    "ring_capacity",
    "ring_records",
    "span",
    "tracing_to_file",
]
