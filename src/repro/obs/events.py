"""Campaign lifecycle events: one vocabulary, two sinks.

Every named event goes through :func:`emit`, which fans out to both
telemetry sinks at once: the ``repro_events_total{event=...}`` counter
in the metrics registry, and a trace event record (ring buffer and,
with ``REPRO_TRACE`` set, the JSON-lines file).  Emitting sites across
the stack import only this module, so the taxonomy lives in one place:

=====================  ==============================================
event                  emitted by
=====================  ==============================================
``shard_submitted``    :func:`repro.faults.sharding.run_sharded`, one
                       per shard handed to the worker pool
``shard_started``      ditto, with the worker pid once known
``shard_completed``    ditto, with the shard's in-worker wall seconds
``shard_failed``       ditto, when the shard's worker raised
``shards_merged``      ditto, once after the ordered merge
``checkpoint_written`` :func:`repro.store.checkpoint.run_checkpointed`
                       after landing a shard artifact in the store
``checkpoint_resumed`` ditto, when a shard is served from the store
                       instead of recomputed
``store_corrupt``      :class:`repro.store.store.ResultStore` on
                       detect-discard-recompute of a bad artifact
``tuning_plan``        :func:`repro.gates.tune.resolve_plan` for every
                       freshly resolved plan (``reason`` verbatim)
``campaign_completed`` :meth:`repro.gates.engine.BitParallelEngine.
                       campaign` with fault/vector/run totals
=====================  ==============================================

The balance invariant CI asserts: in any complete trace, the number of
``shard_submitted`` events equals ``shard_completed`` plus
``shard_failed``, and every ``shards_merged`` record's ``n_shards``
matches its campaign's submissions.
"""

from __future__ import annotations

from typing import Any

from . import metrics, trace

SHARD_SUBMITTED = "shard_submitted"
SHARD_STARTED = "shard_started"
SHARD_COMPLETED = "shard_completed"
SHARD_FAILED = "shard_failed"
SHARDS_MERGED = "shards_merged"
CHECKPOINT_WRITTEN = "checkpoint_written"
CHECKPOINT_RESUMED = "checkpoint_resumed"
STORE_CORRUPT = "store_corrupt"
TUNING_PLAN = "tuning_plan"
CAMPAIGN_COMPLETED = "campaign_completed"
INCREMENTAL_CAMPAIGN = "incremental_campaign"

#: Every name :func:`emit` is expected to be called with.
EVENT_NAMES = (
    SHARD_SUBMITTED,
    SHARD_STARTED,
    SHARD_COMPLETED,
    SHARD_FAILED,
    SHARDS_MERGED,
    CHECKPOINT_WRITTEN,
    CHECKPOINT_RESUMED,
    STORE_CORRUPT,
    TUNING_PLAN,
    CAMPAIGN_COMPLETED,
    INCREMENTAL_CAMPAIGN,
)


# Pre-resolved per-event counter handles: emit runs once per campaign,
# so the label/stripe resolution is hoisted out of the hot path (the
# handles stay valid across registry resets -- see CounterHandle).
_HANDLES: dict = {}


def emit(name: str, **fields: Any) -> None:
    """Record one lifecycle event in both the registry and the trace."""
    handle = _HANDLES.get(name)
    if handle is None:
        handle = _HANDLES[name] = metrics.counter_handle(
            "repro_events_total", event=name
        )
    handle.inc()
    trace.emit_event(name, **fields)


__all__ = [
    "CAMPAIGN_COMPLETED",
    "CHECKPOINT_RESUMED",
    "CHECKPOINT_WRITTEN",
    "EVENT_NAMES",
    "INCREMENTAL_CAMPAIGN",
    "SHARDS_MERGED",
    "SHARD_COMPLETED",
    "SHARD_FAILED",
    "SHARD_STARTED",
    "SHARD_SUBMITTED",
    "STORE_CORRUPT",
    "TUNING_PLAN",
    "emit",
]
