"""Process-global, thread-safe metrics registry.

A :class:`MetricsRegistry` holds three metric families, all labelled:

* **counters** -- monotonically increasing floats (:meth:`MetricsRegistry.inc`);
* **gauges** -- last-write-wins values (:meth:`MetricsRegistry.set_gauge`);
* **histograms** -- duration/size observations folded into
  ``count``/``sum``/``min``/``max`` plus fixed log-decade buckets
  (:meth:`MetricsRegistry.observe`).

Storage is **lock-striped**: every ``(family, name, labels)`` series
hashes to one of :data:`N_STRIPES` independent ``(lock, dict)`` cells,
so concurrent writers -- e.g. :class:`~repro.gates.backends.threaded.
ThreadedBackend` tiles recording kernel timings from pool threads --
only contend when they hit the same stripe, never on one global lock.
Totals are exact under any interleaving (``tests/test_obs.py`` hammers
this from real backend tiles at several thread counts).

One process-wide registry (:func:`registry`) backs the module-level
helpers :func:`inc` / :func:`set_gauge` / :func:`observe`; campaign
workers forked by the shard runner reset their inherited copy
(``os.register_at_fork``) and hand their raw series back to the parent
through the results queue, where :meth:`MetricsRegistry.merge_raw`
folds them in -- so the parent snapshot covers the whole campaign.

Exporters: :meth:`MetricsRegistry.snapshot` (plain dict, embedded into
``BENCH_*.json`` trajectories), :meth:`MetricsRegistry.to_json` and
:meth:`MetricsRegistry.to_prometheus` (text exposition format).  With
the ``REPRO_METRICS`` environment variable set to a path, every process
appends one JSON line ``{"pid": ..., "metrics": ...}`` at interpreter
exit (``REPRO_METRICS=-`` prints the Prometheus text to stderr
instead); :mod:`repro.obs.report` merges such dumps.

Kernel profiling (the ``repro_kernel_seconds`` histograms recorded by
:mod:`repro.gates.backends.base`) is gated by
:func:`kernel_profiling_enabled`: on when ``REPRO_METRICS`` or
``REPRO_TRACE`` is set, or forced either way with
:func:`set_kernel_profiling`.  Everything else in the registry is
always on -- a counter bump is a stripe-lock dict update, far below
campaign granularity.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import warnings
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: Path of the dump-on-exit JSON-lines file (``-`` = Prometheus text to
#: stderr); unset or empty disables the dump.
METRICS_ENV = "REPRO_METRICS"

#: Number of independent (lock, dict) stripes in a registry.
N_STRIPES = 16

#: Histogram bucket upper bounds (seconds-flavoured log decades); the
#: implicit final bucket is +inf.
HISTOGRAM_BUCKETS: Tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

_FAMILIES = ("counter", "gauge", "histogram")

#: (family, name, ((label, value), ...)) -- the raw series key.
SeriesKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]
#: One exported series: key plus its value (float, or histogram state).
RawSeries = Tuple[str, str, Tuple[Tuple[str, str], ...], object]


def _labels_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    # Hot path: most built-in series carry zero, one or two labels,
    # where no generator/sort (and usually no str coercion) is needed.
    if not labels:
        return ()
    if len(labels) == 1:
        ((k, v),) = labels.items()
        return ((k, v if type(v) is str else str(v)),)
    if len(labels) == 2:
        (k1, v1), (k2, v2) = labels.items()
        first = (k1, v1 if type(v1) is str else str(v1))
        second = (k2, v2 if type(v2) is str else str(v2))
        return (first, second) if k1 <= k2 else (second, first)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Canonical ``name{k=v,...}`` rendering of one series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Histogram:
    """Mutable histogram state: count/sum/min/max + bucket counts."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "buckets": list(self.buckets),
        }

    def merge_dict(self, other: Mapping[str, object]) -> None:
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        self.vmin = min(self.vmin, float(other.get("min", self.vmin)))
        self.vmax = max(self.vmax, float(other.get("max", self.vmax)))
        buckets = other.get("buckets")
        if isinstance(buckets, (list, tuple)) and len(buckets) == len(self.buckets):
            self.buckets = [a + int(b) for a, b in zip(self.buckets, buckets)]


class CounterHandle:
    """Pre-resolved write handle for one counter series.

    Resolving the series key and stripe once lets hot emitting sites
    (one event per campaign) skip label canonicalisation and stripe
    hashing on every increment.  Handles never go stale: the global
    registry object is never replaced, and :meth:`MetricsRegistry.
    reset` clears stripe cells in place, so a held (lock, cell) pair
    stays the live one after test resets and fork-child resets alike.
    """

    __slots__ = ("_key", "_lock", "_cell")

    def __init__(
        self,
        key: SeriesKey,
        lock: threading.Lock,
        cell: Dict[SeriesKey, object],
    ) -> None:
        self._key = key
        self._lock = lock
        self._cell = cell

    def inc(self, value: float = 1.0) -> None:
        with self._lock:
            self._cell[self._key] = self._cell.get(self._key, 0.0) + value  # type: ignore[operator]


class HistogramHandle:
    """Pre-resolved write handle for one histogram series.

    Same lifetime story as :class:`CounterHandle`; the kernel-profiling
    wrapper holds one per (backend, kernel) so each timing observation
    skips label canonicalisation and stripe hashing.
    """

    __slots__ = ("_key", "_lock", "_cell")

    def __init__(
        self,
        key: SeriesKey,
        lock: threading.Lock,
        cell: Dict[SeriesKey, object],
    ) -> None:
        self._key = key
        self._lock = lock
        self._cell = cell

    def observe(self, value: float) -> None:
        with self._lock:
            hist = self._cell.get(self._key)
            if hist is None:
                hist = self._cell[self._key] = _Histogram()
            hist.observe(value)  # type: ignore[union-attr]


class MetricsRegistry:
    """Lock-striped registry of counters, gauges and histograms."""

    def __init__(self, n_stripes: int = N_STRIPES) -> None:
        self._stripes: Tuple[Tuple[threading.Lock, Dict[SeriesKey, object]], ...] = tuple(
            (threading.Lock(), {}) for _ in range(max(1, int(n_stripes)))
        )
        self._collectors: Dict[str, Callable[[], Mapping[str, float]]] = {}
        self._collector_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _cell(self, key: SeriesKey) -> Tuple[threading.Lock, Dict[SeriesKey, object]]:
        return self._stripes[hash(key) % len(self._stripes)]

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        key = ("counter", name, _labels_key(labels))
        lock, cell = self._cell(key)
        with lock:
            cell[key] = cell.get(key, 0.0) + value  # type: ignore[operator]

    def counter_handle(self, name: str, **labels: object) -> CounterHandle:
        """A reusable pre-resolved :class:`CounterHandle` for one series."""
        key: SeriesKey = ("counter", name, _labels_key(labels))
        lock, cell = self._cell(key)
        return CounterHandle(key, lock, cell)

    def histogram_handle(self, name: str, **labels: object) -> HistogramHandle:
        """A reusable pre-resolved :class:`HistogramHandle` for one series."""
        key: SeriesKey = ("histogram", name, _labels_key(labels))
        lock, cell = self._cell(key)
        return HistogramHandle(key, lock, cell)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        key = ("gauge", name, _labels_key(labels))
        lock, cell = self._cell(key)
        with lock:
            cell[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Fold ``value`` into the histogram series ``name{labels}``."""
        key = ("histogram", name, _labels_key(labels))
        lock, cell = self._cell(key)
        with lock:
            hist = cell.get(key)
            if hist is None:
                hist = cell[key] = _Histogram()
            hist.observe(value)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get_counter(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0.0 when absent)."""
        key = ("counter", name, _labels_key(labels))
        lock, cell = self._cell(key)
        with lock:
            return float(cell.get(key, 0.0))  # type: ignore[arg-type]

    def counter_total(self, name: str) -> float:
        """Sum of every series of counter ``name`` across all labels."""
        return sum(
            value  # type: ignore[misc]
            for family, series, _labels, value in self.raw_series()
            if family == "counter" and series == name
        )

    def raw_series(self) -> List[RawSeries]:
        """Every live series as ``(family, name, labels, value)``.

        Histogram values are exported as plain dicts, so the list is
        picklable -- this is the form shard workers ship back through
        the results queue for :meth:`merge_raw`.
        """
        out: List[RawSeries] = []
        for lock, cell in self._stripes:
            with lock:
                items = list(cell.items())
            for (family, name, labels), value in items:
                if family == "histogram":
                    out.append((family, name, labels, value.to_dict()))  # type: ignore[union-attr]
                else:
                    out.append((family, name, labels, value))
        out.sort(key=lambda row: (row[0], row[1], row[2]))
        return out

    def merge_raw(self, series: Iterable[RawSeries]) -> None:
        """Fold another registry's :meth:`raw_series` export into this one.

        Counters and histogram states add; gauges last-write-wins.  The
        shard runner uses this to surface worker-process metrics in the
        parent.
        """
        for family, name, labels, value in series:
            key = (family, name, tuple(tuple(pair) for pair in labels))
            lock, cell = self._cell(key)
            with lock:
                if family == "counter":
                    cell[key] = cell.get(key, 0.0) + float(value)  # type: ignore[arg-type]
                elif family == "gauge":
                    cell[key] = float(value)  # type: ignore[arg-type]
                else:
                    hist = cell.get(key)
                    if hist is None:
                        hist = cell[key] = _Histogram()
                    hist.merge_dict(value)  # type: ignore[arg-type, union-attr]

    def register_collector(
        self, name: str, collector: Optional[Callable[[], Mapping[str, float]]]
    ) -> None:
        """Register a pull-time gauge source (``None`` unregisters).

        ``collector()`` returns ``{series_name: value}``; the values
        surface under ``gauges`` in every :meth:`snapshot`.  The result
        store uses this to expose live per-store ``StoreStats`` without
        the registry having to poll it.
        """
        with self._collector_lock:
            if collector is None:
                self._collectors.pop(name, None)
            else:
                self._collectors[name] = collector

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Series keys render as ``name{k=v,...}``; registered collectors
        contribute extra gauges.  This is the object the benchmark
        harness embeds into ``BENCH_*.json`` and the dump-on-exit file
        records.
        """
        snap: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for family, name, labels, value in self.raw_series():
            snap[f"{family}s"][render_series(name, labels)] = value
        with self._collector_lock:
            collectors = list(self._collectors.values())
        for collector in collectors:
            try:
                collected = collector()
            except Exception as exc:  # a broken collector must not sink a dump
                warnings.warn(f"metrics collector failed: {exc}", stacklevel=2)
                continue
            for name, value in collected.items():
                snap["gauges"][str(name)] = float(value)
        return snap

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the snapshot.

        Counters render with their ``_total`` names as-is, histograms as
        ``<name>_count`` / ``<name>_sum`` / ``<name>_max`` series (the
        bucket vector stays JSON-only -- the consumers here are humans
        and the trajectory differ, not a real scrape pipeline).
        """
        lines: List[str] = []
        snap = self.snapshot()
        for key, value in snap["counters"].items():
            lines.append(f"{key} {value:g}")
        for key, value in snap["gauges"].items():
            lines.append(f"{key} {value:g}")
        for key, hist in snap["histograms"].items():
            name, brace, labels = key.partition("{")
            suffix = (brace + labels) if brace else ""
            lines.append(f"{name}_count{suffix} {hist['count']:g}")
            lines.append(f"{name}_sum{suffix} {hist['sum']:g}")
            lines.append(f"{name}_max{suffix} {hist['max']:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every series (collectors stay registered)."""
        for lock, cell in self._stripes:
            with lock:
                cell.clear()


# ----------------------------------------------------------------------
# The process-global registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every built-in metric lands in."""
    return _REGISTRY


def inc(name: str, value: float = 1.0, **labels: object) -> None:
    _REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    _REGISTRY.observe(name, value, **labels)


def get_counter(name: str, **labels: object) -> float:
    return _REGISTRY.get_counter(name, **labels)


def counter_handle(name: str, **labels: object) -> CounterHandle:
    return _REGISTRY.counter_handle(name, **labels)


def histogram_handle(name: str, **labels: object) -> HistogramHandle:
    return _REGISTRY.histogram_handle(name, **labels)


# ----------------------------------------------------------------------
# Kernel-profiling gate
# ----------------------------------------------------------------------
_KERNEL_PROFILING: Optional[bool] = None

# ``os.environ.get`` costs microseconds (encode + MutableMapping
# machinery); the gate below runs on every kernel call, so probe the
# underlying CPython dict directly when it exists.  ``os.environ``
# mutations (including pytest's monkeypatch.setenv) write through to
# ``_data``, so the two views never diverge.
try:  # pragma: no branch
    _ENV_DATA: Optional[Mapping[object, object]] = os.environ._data  # type: ignore[attr-defined]
    _METRICS_ENV_KEY = os.environ.encodekey(METRICS_ENV)  # type: ignore[attr-defined]
    _TRACE_ENV_KEY = os.environ.encodekey("REPRO_TRACE")  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _METRICS_ENV_KEY = METRICS_ENV
    _TRACE_ENV_KEY = "REPRO_TRACE"


def telemetry_env_active() -> bool:
    """Cheap truth of ``REPRO_METRICS or REPRO_TRACE`` being set."""
    if _ENV_DATA is not None:
        return bool(_ENV_DATA.get(_METRICS_ENV_KEY) or _ENV_DATA.get(_TRACE_ENV_KEY))
    return bool(os.environ.get(METRICS_ENV) or os.environ.get("REPRO_TRACE"))


def set_kernel_profiling(enabled: Optional[bool]) -> None:
    """Force kernel timing hooks on/off; ``None`` restores env gating."""
    global _KERNEL_PROFILING
    _KERNEL_PROFILING = enabled


def kernel_profiling_enabled() -> bool:
    """Whether backend kernel calls record ``repro_kernel_seconds``.

    Defaults to on exactly when a telemetry sink exists --
    ``REPRO_METRICS`` or ``REPRO_TRACE`` set -- so an uninstrumented
    run pays only this boolean check per kernel call.
    """
    if _KERNEL_PROFILING is not None:
        return _KERNEL_PROFILING
    return telemetry_env_active()


# ----------------------------------------------------------------------
# Dump-on-exit + fork hygiene
# ----------------------------------------------------------------------
def dump(path: Optional[str] = None) -> None:
    """Write the registry snapshot to ``path`` (default: ``REPRO_METRICS``).

    Appends one JSON line ``{"pid": ..., "metrics": snapshot}`` with a
    single ``O_APPEND`` write, so concurrent processes sharing one path
    never interleave partial lines; ``-`` prints Prometheus text to
    stderr instead.  A no-op when no path is configured or nothing was
    recorded.
    """
    path = path if path is not None else os.environ.get(METRICS_ENV, "").strip()
    if not path:
        return
    snap = _REGISTRY.snapshot()
    if not any(snap.values()):
        return
    if path == "-":
        sys.stderr.write(_REGISTRY.to_prometheus())
        return
    line = json.dumps({"pid": os.getpid(), "metrics": snap}, sort_keys=True)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
        finally:
            os.close(fd)
    except OSError as exc:
        warnings.warn(f"cannot dump metrics to {path!r}: {exc}", stacklevel=2)


def load_dump(path: str) -> Dict[str, Dict[str, object]]:
    """Merge every snapshot line of a dump-on-exit file into one.

    Counters and histograms sum across processes, gauges last-write-
    wins -- the same semantics as :meth:`MetricsRegistry.merge_raw`.
    """
    merged = MetricsRegistry(n_stripes=1)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
            merge_snapshot(merged, record.get("metrics", {}))
    return merged.snapshot()


def _parse_series(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    name, brace, rest = key.partition("{")
    if not brace:
        return key, ()
    pairs = []
    for part in rest.rstrip("}").split(","):
        if part:
            label, _, value = part.partition("=")
            pairs.append((label, value))
    return name, tuple(pairs)


def merge_snapshot(target: MetricsRegistry, snapshot: Mapping[str, Mapping[str, object]]) -> None:
    """Fold a :meth:`MetricsRegistry.snapshot` dict into ``target``."""
    rows: List[RawSeries] = []
    for family in _FAMILIES:
        for key, value in snapshot.get(f"{family}s", {}).items():
            name, labels = _parse_series(key)
            rows.append((family, name, labels, value))
    target.merge_raw(rows)


def _reset_in_child() -> None:
    # A forked shard worker inherits the parent's counts; they must not
    # ride back through merge_raw a second time.
    _REGISTRY.reset()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_in_child)

atexit.register(dump)


__all__ = [
    "CounterHandle",
    "HISTOGRAM_BUCKETS",
    "HistogramHandle",
    "METRICS_ENV",
    "MetricsRegistry",
    "N_STRIPES",
    "counter_handle",
    "dump",
    "get_counter",
    "histogram_handle",
    "inc",
    "kernel_profiling_enabled",
    "load_dump",
    "merge_snapshot",
    "observe",
    "registry",
    "render_series",
    "set_gauge",
    "set_kernel_profiling",
    "telemetry_env_active",
]
