"""Render a campaign summary from a trace file or live registry.

``python -m repro.obs.report trace.jsonl`` reconstructs, from nothing
but the JSON-lines records, what a sharded campaign actually did:

* per-campaign wall time, fault/vector totals and faults-per-second
  throughput (from ``campaign``/``sharded_campaign`` spans and
  ``campaign_completed`` events);
* per-shard in-worker durations with the **straggler ratio**
  (slowest shard / median shard -- the number that distinguishes a
  stalled campaign from a merely imbalanced one);
* checkpoint resume/write counts, tuning-plan choices with their
  verbatim reasons, and -- from the embedded ``metrics`` records,
  merged across pids -- store hit rate and per-backend kernel time.

``--live`` summarizes the current process's registry snapshot instead
(no trace file needed), which is what a long-running service endpoint
would serve.  The module deliberately imports only :mod:`repro.obs`
siblings: it must load in a stripped analysis environment with no
numpy and no simulation stack.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, TextIO

from . import events as _events
from . import metrics as _metrics
from . import trace as _trace

#: Span names treated as campaign roots by the summary.
CAMPAIGN_SPANS = ("sharded_campaign", "campaign")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _attr(record: Mapping[str, Any], key: str, default: Any = None) -> Any:
    return record.get("attrs", {}).get(key, default)


def summarize(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold trace records into one JSON-friendly summary dict."""
    spans: List[Mapping[str, Any]] = []
    event_records: List[Mapping[str, Any]] = []
    merged = _metrics.MetricsRegistry(n_stripes=1)
    for record in records:
        kind = record.get("type")
        if kind == "span":
            spans.append(record)
        elif kind == "event":
            event_records.append(record)
        elif kind == "metrics":
            _metrics.merge_snapshot(merged, record.get("metrics", {}))
    snapshot = merged.snapshot()

    summary: Dict[str, Any] = {
        "n_records": len(spans) + len(event_records),
        "campaigns": _campaigns(spans, event_records),
        "shards": _shards(event_records),
        "checkpoints": _checkpoints(event_records),
        "tuning_plans": _tuning_plans(event_records),
        "store": store_summary(snapshot),
        "kernels": kernel_summary(snapshot),
        "events": _event_counts(event_records),
    }
    return summary


def _campaigns(
    spans: List[Mapping[str, Any]], event_records: List[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    completions = {
        record.get("span"): record
        for record in event_records
        if record.get("name") == _events.CAMPAIGN_COMPLETED
    }
    out: List[Dict[str, Any]] = []
    for record in spans:
        if record.get("name") not in CAMPAIGN_SPANS:
            continue
        entry: Dict[str, Any] = {
            "span": record.get("name"),
            "netlist": _attr(record, "netlist"),
            "backend": _attr(record, "backend"),
            "seconds": record.get("dur"),
            "pid": record.get("pid"),
        }
        done = completions.get(record.get("span"))
        if done is not None:
            if entry.get("backend") is None:
                entry["backend"] = _attr(done, "backend")
            for key in ("n_faults", "n_vectors", "n_simulated_runs"):
                entry[key] = _attr(done, key)
            dur = record.get("dur") or 0.0
            n_faults = entry.get("n_faults")
            if n_faults and dur > 0:
                entry["faults_per_second"] = n_faults / dur
        if record.get("error"):
            entry["error"] = record["error"]
        out.append(entry)
    return out


def _shards(event_records: List[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    durations: List[float] = []
    workers: Dict[str, int] = {}
    counts = {name: 0 for name in (
        _events.SHARD_SUBMITTED,
        _events.SHARD_STARTED,
        _events.SHARD_COMPLETED,
        _events.SHARD_FAILED,
        _events.SHARDS_MERGED,
    )}
    for record in event_records:
        name = record.get("name")
        if name not in counts:
            continue
        counts[name] += 1
        if name == _events.SHARD_COMPLETED:
            seconds = _attr(record, "seconds")
            if seconds is not None:
                durations.append(float(seconds))
            worker = str(_attr(record, "worker_pid", "?"))
            workers[worker] = workers.get(worker, 0) + 1
    if not any(counts.values()):
        return None
    shards: Dict[str, Any] = {
        "submitted": counts[_events.SHARD_SUBMITTED],
        "completed": counts[_events.SHARD_COMPLETED],
        "failed": counts[_events.SHARD_FAILED],
        "merges": counts[_events.SHARDS_MERGED],
        "balanced": counts[_events.SHARD_SUBMITTED]
        == counts[_events.SHARD_COMPLETED] + counts[_events.SHARD_FAILED],
        "shards_per_worker": workers,
    }
    if durations:
        med = _median(durations)
        shards["seconds_min"] = min(durations)
        shards["seconds_median"] = med
        shards["seconds_max"] = max(durations)
        shards["straggler_ratio"] = (max(durations) / med) if med > 0 else 1.0
    return shards


def _checkpoints(event_records: List[Mapping[str, Any]]) -> Optional[Dict[str, int]]:
    written = sum(
        1 for r in event_records if r.get("name") == _events.CHECKPOINT_WRITTEN
    )
    resumed = sum(
        1 for r in event_records if r.get("name") == _events.CHECKPOINT_RESUMED
    )
    if not (written or resumed):
        return None
    return {"written": written, "resumed": resumed}


def _tuning_plans(event_records: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for record in event_records:
        if record.get("name") != _events.TUNING_PLAN:
            continue
        attrs = dict(record.get("attrs", {}))
        out.append(attrs)
    return out


def _event_counts(event_records: List[Mapping[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in event_records:
        name = str(record.get("name"))
        counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def store_summary(snapshot: Mapping[str, Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """Hit/miss/corruption totals from a metrics snapshot, if present."""
    counters = snapshot.get("counters", {})
    totals = {"hits": 0.0, "misses": 0.0, "puts": 0.0, "corrupt": 0.0}
    seen = False
    for key, value in counters.items():
        name = key.partition("{")[0]
        if name == "repro_store_hits_total":
            totals["hits"] += value
            seen = True
        elif name == "repro_store_misses_total":
            totals["misses"] += value
            seen = True
        elif name == "repro_store_puts_total":
            totals["puts"] += value
            seen = True
        elif name == "repro_store_corrupt_total":
            totals["corrupt"] += value
            seen = True
    if not seen:
        return None
    lookups = totals["hits"] + totals["misses"]
    out: Dict[str, Any] = {key: int(value) for key, value in totals.items()}
    out["hit_rate"] = (totals["hits"] / lookups) if lookups else 0.0
    return out


def kernel_summary(snapshot: Mapping[str, Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Per-backend/kernel call counts and total seconds, busiest first."""
    out: List[Dict[str, Any]] = []
    for key, hist in snapshot.get("histograms", {}).items():
        name, _, rest = key.partition("{")
        if name != "repro_kernel_seconds":
            continue
        labels = dict(
            part.partition("=")[::2] for part in rest.rstrip("}").split(",") if part
        )
        out.append(
            {
                "backend": labels.get("backend", "?"),
                "kernel": labels.get("kernel", "?"),
                "calls": int(hist.get("count", 0)),
                "seconds": float(hist.get("sum", 0.0)),
                "max_seconds": float(hist.get("max", 0.0)),
            }
        )
    out.sort(key=lambda row: -row["seconds"])
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


def render(summary: Mapping[str, Any], out: TextIO) -> None:
    """Human-readable rendering of a :func:`summarize` result."""
    print(f"trace: {summary.get('n_records', 0)} records", file=out)
    for campaign in summary.get("campaigns") or []:
        label = campaign.get("netlist") or "?"
        line = (
            f"campaign [{campaign.get('span')}] netlist={label}"
            f" backend={campaign.get('backend') or '?'}"
            f" wall={_fmt_seconds(campaign.get('seconds'))}"
        )
        if campaign.get("n_faults") is not None:
            line += f" faults={campaign['n_faults']}"
        if campaign.get("faults_per_second"):
            line += f" throughput={campaign['faults_per_second']:.0f} faults/s"
        if campaign.get("error"):
            line += f" ERROR={campaign['error']}"
        print(line, file=out)
    shards = summary.get("shards")
    if shards:
        print(
            f"shards: submitted={shards['submitted']} completed={shards['completed']}"
            f" failed={shards['failed']}"
            f" balanced={'yes' if shards['balanced'] else 'NO'}",
            file=out,
        )
        if "straggler_ratio" in shards:
            print(
                f"  durations: median={_fmt_seconds(shards['seconds_median'])}"
                f" max={_fmt_seconds(shards['seconds_max'])}"
                f" straggler_ratio={shards['straggler_ratio']:.2f}",
                file=out,
            )
        if shards.get("shards_per_worker"):
            per = ", ".join(
                f"{pid}:{count}" for pid, count in sorted(shards["shards_per_worker"].items())
            )
            print(f"  shards/worker: {per}", file=out)
    checkpoints = summary.get("checkpoints")
    if checkpoints:
        print(
            f"checkpoints: written={checkpoints['written']}"
            f" resumed={checkpoints['resumed']}",
            file=out,
        )
    store = summary.get("store")
    if store:
        print(
            f"store: hits={store['hits']} misses={store['misses']}"
            f" puts={store['puts']} corrupt={store['corrupt']}"
            f" hit_rate={store['hit_rate']:.1%}",
            file=out,
        )
    for plan in summary.get("tuning_plans") or []:
        print(
            f"plan: backend={plan.get('backend')} source={plan.get('source')}"
            f" reason={plan.get('reason')!r}",
            file=out,
        )
    kernels = summary.get("kernels") or []
    for row in kernels:
        print(
            f"kernel: {row['backend']}.{row['kernel']} calls={row['calls']}"
            f" total={_fmt_seconds(row['seconds'])}",
            file=out,
        )
    counts = summary.get("events") or {}
    if counts:
        rendered = ", ".join(f"{name}={count}" for name, count in counts.items())
        print(f"events: {rendered}", file=out)


def live_summary() -> Dict[str, Any]:
    """Summarize this process: ring-buffer records + current registry."""
    summary = summarize(_trace.ring_records())
    snapshot = _metrics.registry().snapshot()
    store = store_summary(snapshot)
    if store:
        summary["store"] = store
    kernels = kernel_summary(snapshot)
    if kernels:
        summary["kernels"] = kernels
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro campaign trace (JSON lines) or the live registry.",
    )
    parser.add_argument("trace", nargs="?", help="trace file written via REPRO_TRACE")
    parser.add_argument(
        "--live", action="store_true", help="summarize this process's ring buffer + registry"
    )
    parser.add_argument(
        "--metrics", metavar="PATH", help="also merge a REPRO_METRICS dump file"
    )
    parser.add_argument("--json", action="store_true", help="emit the summary as JSON")
    args = parser.parse_args(argv)

    if args.live:
        summary = live_summary()
    elif args.trace:
        summary = summarize(_trace.read_trace(args.trace))
    else:
        parser.error("need a trace file or --live")
        return 2
    if args.metrics:
        snapshot = _metrics.load_dump(args.metrics)
        store = store_summary(snapshot)
        if store:
            summary["store"] = store
        kernels = kernel_summary(snapshot)
        if kernels:
            summary["kernels"] = kernels

    try:
        if args.json:
            json.dump(summary, sys.stdout, indent=2, sort_keys=True, default=str)
            sys.stdout.write("\n")
        else:
            render(summary, sys.stdout)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is a normal exit.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "CAMPAIGN_SPANS",
    "kernel_summary",
    "live_summary",
    "main",
    "render",
    "store_summary",
    "summarize",
]
