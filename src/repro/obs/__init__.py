"""Unified telemetry: metrics registry, tracing spans, lifecycle events.

The observability layer the campaign stack reports through:

* :mod:`repro.obs.metrics` -- process-global lock-striped
  :class:`MetricsRegistry` (counters/gauges/histograms) with JSON and
  Prometheus exporters and a ``REPRO_METRICS`` dump-on-exit;
* :mod:`repro.obs.trace` -- nestable :func:`span` context managers and
  :func:`emit_event`, recording to an in-memory ring and, with
  ``REPRO_TRACE`` set, a JSON-lines file safe across shard processes;
* :mod:`repro.obs.events` -- the campaign lifecycle vocabulary (shard
  submitted/started/completed/merged, checkpoint written/resumed,
  store corruption, tuning-plan choices) every subsystem emits through;
* :mod:`repro.obs.report` -- ``python -m repro.obs.report trace.jsonl``
  reconstructs per-shard timings, straggler ratio, store hit rate and
  per-backend kernel time from a trace alone.

Instrumentation is passive: enabling it never changes campaign results
(bit-identity is tested) and the always-on cost is bench-gated under
5% (``benchmarks/bench_obs.py``).
"""

from .metrics import (
    METRICS_ENV,
    MetricsRegistry,
    get_counter,
    inc,
    kernel_profiling_enabled,
    observe,
    registry,
    set_gauge,
    set_kernel_profiling,
)
from .trace import (
    RING_CAPACITY,
    TRACE_ENV,
    clear_ring,
    current_span,
    emit_event,
    read_trace,
    ring_records,
    span,
    tracing_to_file,
)
from .events import EVENT_NAMES, emit


def __getattr__(name: str):
    # report is imported lazily so ``python -m repro.obs.report`` does
    # not find the module pre-imported by its own package (runpy warns).
    if name in ("live_summary", "summarize", "report"):
        import importlib

        module = importlib.import_module(".report", __name__)
        if name == "report":
            return module
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EVENT_NAMES",
    "METRICS_ENV",
    "MetricsRegistry",
    "RING_CAPACITY",
    "TRACE_ENV",
    "clear_ring",
    "current_span",
    "emit",
    "emit_event",
    "get_counter",
    "inc",
    "kernel_profiling_enabled",
    "live_summary",
    "observe",
    "read_trace",
    "registry",
    "ring_records",
    "set_gauge",
    "set_kernel_profiling",
    "span",
    "summarize",
    "tracing_to_file",
]
