"""The FIR filter case study (paper Section 5.1, Table 3).

A direct-form FIR of ``T`` taps computes, per output sample::

    y[k] = sum_{i=0}^{T-1} c[i] * x[k-i]

The dataflow body exposes the sample window ``x0..x{T-1}`` as inputs
(``x{i}`` carrying ``x[k-i]``), the coefficients as constants, one
``input``/``output`` transfer pair, and a chained accumulation -- the
structure whose min-area/min-latency schedules produce the paper's
``2 + 7n`` / ``2 + 5n`` latency formulas with the default 4-tap
configuration.

:func:`fir_sck` is the specification-level implementation using the
:class:`~repro.core.SCK` type directly (what the paper's designer
writes); :func:`fir_graph` is the co-design flow's view of the same
computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.codesign.dfg import DataflowGraph
from repro.core.context import current_context
from repro.core.value import SCK
from repro.errors import SpecificationError

#: Default coefficients: a small symmetric low-pass kernel (the paper's
#: exact taps are not published; symmetry matches a typical FIR).
DEFAULT_COEFFICIENTS = (3, 7, 7, 3)


@dataclass(frozen=True)
class FirSpec:
    """Configuration of a FIR instance."""

    coefficients: Sequence[int] = DEFAULT_COEFFICIENTS

    @property
    def taps(self) -> int:
        return len(self.coefficients)

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise SpecificationError("FIR needs at least one coefficient")


def fir_graph(spec: FirSpec = FirSpec(), name: str = "fir") -> DataflowGraph:
    """The per-sample dataflow body of the FIR."""
    graph = DataflowGraph(name)
    window = [graph.add_input(f"x{i}") for i in range(spec.taps)]
    coefficients = [
        graph.add_const(f"c{i}", int(c)) for i, c in enumerate(spec.coefficients)
    ]
    products = [
        graph.add_op(f"p{i}", "mul", (coefficients[i], window[i]))
        for i in range(spec.taps)
    ]
    # Natural chained accumulation, as a designer writes it
    # (y += c[i] * x[i]); the min-latency synthesis point applies the
    # tree-height-reduction pass of repro.codesign.sck_transform.
    acc = products[0]
    for i in range(1, spec.taps):
        acc = graph.add_op(f"a{i}", "add", (acc, products[i]))
    graph.add_output("y", acc)
    graph.validate()
    return graph


def fir_reference(
    samples: Sequence[int], spec: FirSpec = FirSpec(), width: int = 16
) -> List[int]:
    """Golden FIR output (fixed-width wrap, zero-padded history)."""
    mask = (1 << width) - 1
    half = 1 << (width - 1)

    def wrap(v: int) -> int:
        v &= mask
        return v - (mask + 1) if v >= half else v

    out: List[int] = []
    history = [0] * spec.taps
    for x in samples:
        history = [int(x)] + history[:-1]
        acc = 0
        for c, h in zip(spec.coefficients, history):
            acc = wrap(acc + wrap(int(c) * h))
        out.append(acc)
    return out


def fir_sck(
    samples: Sequence[int], spec: FirSpec = FirSpec()
) -> List[SCK]:
    """FIR over :class:`SCK` values in the ambient context.

    Every multiply/accumulate is transparently checked; the returned
    values carry their accumulated error bits.
    """
    ctx = current_context()
    history: List[SCK] = [SCK(0, context=ctx) for _ in range(spec.taps)]
    out: List[SCK] = []
    for x in samples:
        history = [SCK(int(x), context=ctx)] + history[:-1]
        acc: Optional[SCK] = None
        for c, h in zip(spec.coefficients, history):
            term = h * int(c)
            acc = term if acc is None else acc + term
        out.append(acc)
    return out


def make_input_streams(
    samples: Sequence[int], spec: FirSpec = FirSpec()
) -> Dict[str, List[int]]:
    """Window streams for the VM compiler: ``x{i}[k] = x[k-i]``."""
    streams: Dict[str, List[int]] = {}
    values = [int(v) for v in samples]
    for i in range(spec.taps):
        streams[f"x{i}"] = [0] * i + values[: len(values) - i]
    return streams
