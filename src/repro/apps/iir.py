"""IIR biquad section (direct form I) as a second benchmark application.

Per sample::

    y[k] = b0*x[k] + b1*x[k-1] + b2*x[k-2] - a1*y[k-1] - a2*y[k-2]

The feedback taps appear as body inputs (``yd1``, ``yd2``), so the body
itself stays a pure dataflow graph; the reference implementation closes
the loop.  Integer coefficients keep everything in the paper's
synthesisable-int world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.codesign.dfg import DataflowGraph
from repro.errors import SpecificationError


@dataclass(frozen=True)
class BiquadSpec:
    """Integer biquad coefficients."""

    b0: int = 4
    b1: int = 8
    b2: int = 4
    a1: int = -2
    a2: int = 1
    shift_divisor: int = 16  # output scaling: y / shift_divisor

    def __post_init__(self) -> None:
        if self.shift_divisor == 0:
            raise SpecificationError("shift divisor must be non-zero")


def biquad_graph(spec: BiquadSpec = BiquadSpec(), name: str = "biquad") -> DataflowGraph:
    """Per-sample body with explicit delayed inputs."""
    graph = DataflowGraph(name)
    x0 = graph.add_input("x0")
    x1 = graph.add_input("x1")
    x2 = graph.add_input("x2")
    yd1 = graph.add_input("yd1")
    yd2 = graph.add_input("yd2")
    b0 = graph.add_const("b0", spec.b0)
    b1 = graph.add_const("b1", spec.b1)
    b2 = graph.add_const("b2", spec.b2)
    a1 = graph.add_const("a1", spec.a1)
    a2 = graph.add_const("a2", spec.a2)
    divisor = graph.add_const("scale", spec.shift_divisor)
    t0 = graph.add_op("t0", "mul", (b0, x0))
    t1 = graph.add_op("t1", "mul", (b1, x1))
    t2 = graph.add_op("t2", "mul", (b2, x2))
    f1 = graph.add_op("f1", "mul", (a1, yd1))
    f2 = graph.add_op("f2", "mul", (a2, yd2))
    s1 = graph.add_op("s1", "add", (t0, t1))
    s2 = graph.add_op("s2", "add", (s1, t2))
    s3 = graph.add_op("s3", "sub", (s2, f1))
    s4 = graph.add_op("s4", "sub", (s3, f2))
    scaled = graph.add_op("yscaled", "div", (s4, divisor))
    graph.add_output("y", scaled)
    graph.validate()
    return graph


def biquad_reference(
    samples: Sequence[int], spec: BiquadSpec = BiquadSpec(), width: int = 16
) -> List[int]:
    """Golden biquad output with fixed-width wrap and C division."""
    mask = (1 << width) - 1
    half = 1 << (width - 1)

    def wrap(v: int) -> int:
        v &= mask
        return v - (mask + 1) if v >= half else v

    def cdiv(a: int, b: int) -> int:
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    out: List[int] = []
    x1 = x2 = y1 = y2 = 0
    for x in samples:
        x0 = wrap(int(x))
        acc = wrap(spec.b0 * x0)
        acc = wrap(acc + wrap(spec.b1 * x1))
        acc = wrap(acc + wrap(spec.b2 * x2))
        acc = wrap(acc - wrap(spec.a1 * y1))
        acc = wrap(acc - wrap(spec.a2 * y2))
        y0 = wrap(cdiv(acc, spec.shift_divisor))
        out.append(y0)
        x2, x1 = x1, x0
        y2, y1 = y1, y0
    return out
