"""Fixed-size matrix multiply as a third benchmark application.

``C = A x B`` for small square matrices with one matrix constant
(a typical linear-transform stage).  Each output element is an
independent dot product, so the body stresses the scheduler with wide
parallelism and the SCK transform with many independent check chains.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.codesign.dfg import DataflowGraph
from repro.errors import SpecificationError


def matmul_graph(
    constant: Sequence[Sequence[int]],
    name: str = "matmul",
) -> DataflowGraph:
    """Per-sample body computing ``y = M @ x`` for constant matrix M.

    Inputs ``x0..x{n-1}`` are the vector elements; outputs
    ``y0..y{n-1}`` the transformed vector.
    """
    n = len(constant)
    if n == 0 or any(len(row) != n for row in constant):
        raise SpecificationError("constant matrix must be square and non-empty")
    graph = DataflowGraph(name)
    xs = [graph.add_input(f"x{j}") for j in range(n)]
    for i, row in enumerate(constant):
        consts = [
            graph.add_const(f"m{i}_{j}", int(row[j])) for j in range(n)
        ]
        terms = [
            graph.add_op(f"t{i}_{j}", "mul", (consts[j], xs[j]))
            for j in range(n)
        ]
        acc = terms[0]
        for j in range(1, n):
            acc = graph.add_op(f"s{i}_{j}", "add", (acc, terms[j]))
        graph.add_output(f"y{i}", acc)
    graph.validate()
    return graph


def matmul_reference(
    constant: Sequence[Sequence[int]],
    vector: Sequence[int],
    width: int = 16,
) -> List[int]:
    """Golden ``M @ x`` with fixed-width wrap."""
    mask = (1 << width) - 1
    half = 1 << (width - 1)

    def wrap(v: int) -> int:
        v &= mask
        return v - (mask + 1) if v >= half else v

    out: List[int] = []
    for row in constant:
        acc = 0
        for m, x in zip(row, vector):
            acc = wrap(acc + wrap(int(m) * int(x)))
        out.append(acc)
    return out
