"""Benchmark applications expressed over the public APIs.

* :mod:`repro.apps.fir` -- the paper's FIR case study (Table 3);
* :mod:`repro.apps.iir` -- an IIR biquad section;
* :mod:`repro.apps.matmul` -- small fixed-size matrix multiply;
* :mod:`repro.apps.dct` -- 1-D DCT-II on fixed-point coefficients.

Each application offers a :func:`*_graph` builder returning the plain
dataflow specification (ready for the co-design flow) and a
:func:`*_reference` function computing expected outputs, plus SCK-based
scalar implementations for the examples.
"""

from repro.apps.fir import (
    FirSpec,
    fir_graph,
    fir_reference,
    fir_sck,
    make_input_streams,
)
from repro.apps.iir import biquad_graph, biquad_reference
from repro.apps.matmul import matmul_graph, matmul_reference
from repro.apps.dct import dct_graph, dct_reference

__all__ = [
    "FirSpec",
    "fir_graph",
    "fir_reference",
    "fir_sck",
    "make_input_streams",
    "biquad_graph",
    "biquad_reference",
    "matmul_graph",
    "matmul_reference",
    "dct_graph",
    "dct_reference",
]
