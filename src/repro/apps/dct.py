"""1-D DCT-II on fixed-point integer coefficients.

The DCT is the classic signal-processing kernel after FIR: a dense
constant matrix-vector product with mixed-sign coefficients, so its
SCK enrichment exercises negation-heavy check chains.  Coefficients are
pre-scaled by ``SCALE`` and the outputs divided back down, keeping the
whole computation in synthesisable integers.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.apps.matmul import matmul_graph, matmul_reference
from repro.codesign.dfg import DataflowGraph
from repro.errors import SpecificationError

SCALE = 64


def dct_matrix(n: int = 4) -> List[List[int]]:
    """Integer DCT-II matrix, scaled by :data:`SCALE`."""
    if n < 2:
        raise SpecificationError(f"DCT size must be >= 2, got {n}")
    rows: List[List[int]] = []
    for k in range(n):
        row = []
        for j in range(n):
            coefficient = math.cos(math.pi * (j + 0.5) * k / n)
            row.append(int(round(SCALE * coefficient)))
        rows.append(row)
    return rows


def dct_graph(n: int = 4, name: str = "dct") -> DataflowGraph:
    """Per-block dataflow body of an ``n``-point integer DCT-II."""
    matrix = dct_matrix(n)
    graph = matmul_graph(matrix, name=f"{name}{n}")
    return graph


def dct_reference(block: Sequence[int], width: int = 16) -> List[int]:
    """Golden scaled DCT-II of one block."""
    matrix = dct_matrix(len(block))
    return matmul_reference(matrix, block, width=width)
