"""Instruction set of the monoprocessor VM.

A small load/store register machine: 32 general-purpose registers, a
flat word-addressed data memory, absolute branches.  The cost tables
give per-instruction cycles (a simple in-order scalar pipeline) and
encoded bytes (fixed 4-byte words, like the RISC cores the paper's
software target resembles); the software estimate of Table 3 derives
execution time and code size from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CompilationError

NUM_REGISTERS = 32


class Opcode(str, enum.Enum):
    """VM opcodes."""

    LDI = "ldi"      # rd <- imm
    MOV = "mov"      # rd <- ra
    LD = "ld"        # rd <- mem[ra + offset]
    ST = "st"        # mem[ra + offset] <- rb
    ADD = "add"      # rd <- ra + rb   (ALU, faultable)
    SUB = "sub"      # rd <- ra - rb   (ALU, faultable)
    NEG = "neg"      # rd <- -ra       (ALU, faultable)
    MUL = "mul"      # rd <- ra * rb   (multiplier, faultable)
    DIV = "div"      # rd <- ra / rb   (divider, faultable)
    MOD = "mod"      # rd <- ra % rb   (divider, faultable)
    CMPNE = "cmpne"  # rd <- (ra != rb)  (comparator, not faultable)
    OR = "or"        # rd <- ra | rb     (flag logic, not faultable)
    AND = "and"      # rd <- ra & rb
    XOR = "xor"      # rd <- ra ^ rb
    BEQ = "beq"      # if ra == rb: pc <- label
    BNE = "bne"      # if ra != rb: pc <- label
    BLT = "blt"      # if ra < rb: pc <- label
    JMP = "jmp"      # pc <- label
    INC = "inc"      # rd <- rd + 1  (address/loop unit, not faultable)
    HALT = "halt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Cycles per instruction (scalar in-order core; memory 2 cycles,
#: multiply 3, divide 12 -- typical embedded-RISC figures).
CYCLE_COST: Dict[Opcode, int] = {
    Opcode.LDI: 1,
    Opcode.MOV: 1,
    Opcode.LD: 2,
    Opcode.ST: 2,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.NEG: 1,
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.MOD: 12,
    Opcode.CMPNE: 1,
    Opcode.OR: 1,
    Opcode.AND: 1,
    Opcode.XOR: 1,
    Opcode.BEQ: 2,
    Opcode.BNE: 2,
    Opcode.BLT: 2,
    Opcode.JMP: 2,
    Opcode.INC: 1,
    Opcode.HALT: 1,
}

#: Encoded size of every instruction (fixed-width ISA).
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Register fields are small ints; ``imm`` doubles as the memory
    offset of LD/ST and the target label of branches (resolved to an
    instruction index by the assembler).
    """

    opcode: Opcode
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        for reg in (self.rd, self.ra, self.rb):
            if reg is not None and not (0 <= reg < NUM_REGISTERS):
                raise CompilationError(
                    f"register r{reg} out of range in {self.opcode}"
                )

    @property
    def cycles(self) -> int:
        return CYCLE_COST[self.opcode]

    def render(self) -> str:
        parts = [self.opcode.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.ra is not None:
            parts.append(f"r{self.ra}")
        if self.rb is not None:
            parts.append(f"r{self.rb}")
        if self.label is not None:
            parts.append(self.label)
        elif self.imm is not None:
            parts.append(str(self.imm))
        return " ".join(parts)


#: Opcodes whose results route through the faultable datapath units.
FAULTABLE_OPCODES = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.NEG,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
)
