"""Value-numbering optimiser for VM programs.

Purpose: test the paper's Section 5.1 claim that the redundant checking
operations introduced by operator overloading are *not* "simplified" by
the compiler ("Both code size and execution times remain almost
unmodified").  The default pipeline performs the classical, safe
optimisations a production compiler applies:

* local common-subexpression elimination (value numbering per basic
  block);
* global dead-code elimination (liveness fixpoint across blocks;
  stores, branches and HALT are roots).

Under these, SCK check instructions survive -- their comparator outputs
feed the error flag, which is stored (live-out).  The optional
``algebraic=True`` mode adds identity folding (``(a+b)-a -> b``,
``x + (-x) -> 0``...), modelling an over-aggressive compiler: it
nullifies the checks, and the ablation benchmark shows exactly how much
detection capability that destroys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.vm.isa import Instruction, Opcode
from repro.vm.program import Program

#: Pure (side-effect-free, register-to-register) opcodes eligible for
#: value numbering.
_PURE = {
    Opcode.LDI,
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.NEG,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.CMPNE,
    Opcode.OR,
    Opcode.AND,
    Opcode.XOR,
}

_COMMUTATIVE = {Opcode.ADD, Opcode.MUL, Opcode.OR, Opcode.AND, Opcode.XOR, Opcode.CMPNE}


def _block_boundaries(program: Program) -> List[int]:
    """Instruction indices starting a basic block."""
    starts: Set[int] = {0}
    for index, ins in enumerate(program.instructions):
        if ins.label is not None:
            starts.add(program.resolve(ins.label))
            starts.add(index + 1)
        if ins.opcode in (Opcode.JMP, Opcode.HALT):
            starts.add(index + 1)
    for index in program.labels.values():
        starts.add(index)
    return sorted(s for s in starts if s < len(program.instructions))


@dataclass
class _ValueTable:
    """Value numbering state within one basic block."""

    next_vn: int = 0
    reg_vn: Dict[int, int] = field(default_factory=dict)
    expr_vn: Dict[Tuple, int] = field(default_factory=dict)
    vn_home: Dict[int, int] = field(default_factory=dict)  # vn -> register
    vn_const: Dict[int, int] = field(default_factory=dict)
    vn_expr: Dict[int, Tuple] = field(default_factory=dict)

    def fresh(self) -> int:
        self.next_vn += 1
        return self.next_vn

    def vn_of(self, reg: int) -> int:
        if reg not in self.reg_vn:
            vn = self.fresh()
            self.reg_vn[reg] = vn
            self.vn_home.setdefault(vn, reg)
        return self.reg_vn[reg]

    def define(self, reg: int, vn: int) -> None:
        # Any vn whose home was this register loses its home.
        for known, home in list(self.vn_home.items()):
            if home == reg and known != vn:
                del self.vn_home[known]
        self.reg_vn[reg] = vn
        self.vn_home.setdefault(vn, reg)


def _algebraic_fold(table: _ValueTable, ins: Instruction) -> Optional[Tuple]:
    """Return a replacement ("vn", vn) or ("const", value), or None.

    Implements the identities that would nullify inverse-operation
    checks: ``(a+b)-a -> b``, ``(a-b)+b -> a``, ``a + (-a) -> 0``,
    ``neg(neg(a)) -> a``, ``x - x -> 0``, ``cmpne(x, x) -> 0``.
    """
    if ins.opcode in (Opcode.SUB, Opcode.CMPNE) and ins.ra is not None:
        va, vb = table.vn_of(ins.ra), table.vn_of(ins.rb)
        if va == vb:
            return ("const", 0)
    if ins.opcode is Opcode.SUB:
        va, vb = table.vn_of(ins.ra), table.vn_of(ins.rb)
        expr = table.vn_expr.get(va)
        if expr and expr[0] is Opcode.ADD:
            _, x, y = expr
            if x == vb:
                return ("vn", y)
            if y == vb:
                return ("vn", x)
    if ins.opcode is Opcode.ADD:
        va, vb = table.vn_of(ins.ra), table.vn_of(ins.rb)
        for first, second in ((va, vb), (vb, va)):
            expr = table.vn_expr.get(first)
            if expr and expr[0] is Opcode.SUB and expr[2] == second:
                return ("vn", expr[1])
            if expr and expr[0] is Opcode.NEG and expr[1] == second:
                return ("const", 0)
    if ins.opcode is Opcode.NEG:
        va = table.vn_of(ins.ra)
        expr = table.vn_expr.get(va)
        if expr and expr[0] is Opcode.NEG:
            return ("vn", expr[1])
    return None


def _value_number_block(
    instructions: List[Instruction], algebraic: bool
) -> List[Instruction]:
    """CSE (and optional algebraic folding) within one block."""
    table = _ValueTable()
    out: List[Instruction] = []
    for ins in instructions:
        if ins.opcode not in _PURE:
            out.append(ins)
            if ins.opcode is Opcode.LD:
                table.define(ins.rd, table.fresh())
            elif ins.opcode is Opcode.INC and ins.rd is not None:
                table.define(ins.rd, table.fresh())
            continue
        if ins.opcode is Opcode.LDI:
            key = ("const", ins.imm)
        elif ins.opcode is Opcode.MOV:
            key = ("vn", table.vn_of(ins.ra))
        elif ins.opcode is Opcode.NEG:
            key = (Opcode.NEG, table.vn_of(ins.ra))
        else:
            va, vb = table.vn_of(ins.ra), table.vn_of(ins.rb)
            if ins.opcode in _COMMUTATIVE and vb < va:
                va, vb = vb, va
            key = (ins.opcode, va, vb)

        if algebraic:
            folded = _algebraic_fold(table, ins)
            if folded is not None:
                kind, payload = folded
                if kind == "const":
                    out.append(Instruction(Opcode.LDI, rd=ins.rd, imm=payload))
                    vn = table.expr_vn.setdefault(("const", payload), table.fresh())
                    table.vn_const[vn] = payload
                    table.define(ins.rd, vn)
                    continue
                vn = payload
                home = table.vn_home.get(vn)
                if home is not None:
                    if home != ins.rd:
                        out.append(Instruction(Opcode.MOV, rd=ins.rd, ra=home))
                    table.define(ins.rd, vn)
                    continue

        if key in table.expr_vn:
            vn = table.expr_vn[key]
            home = table.vn_home.get(vn)
            if home is not None:
                if home != ins.rd:
                    out.append(Instruction(Opcode.MOV, rd=ins.rd, ra=home))
                table.define(ins.rd, vn)
                continue
        vn = table.expr_vn.setdefault(key, table.fresh())
        if ins.opcode is Opcode.LDI:
            table.vn_const[vn] = ins.imm
        table.vn_expr[vn] = key if key[0] in _PURE or key[0] is Opcode.NEG else None
        out.append(ins)
        table.define(ins.rd, vn)
    return out


def _global_dce(program: Program) -> Program:
    """Remove pure instructions whose destinations are never used."""
    instructions = program.instructions
    n = len(instructions)
    starts = _block_boundaries(program)
    block_of: Dict[int, int] = {}
    for b, begin in enumerate(starts):
        end = starts[b + 1] if b + 1 < len(starts) else n
        for i in range(begin, end):
            block_of[i] = b

    def successors(b: int) -> List[int]:
        begin = starts[b]
        end = starts[b + 1] if b + 1 < len(starts) else n
        if end == begin:
            return []
        last = instructions[end - 1]
        succ: List[int] = []
        if last.opcode is Opcode.HALT:
            return []
        if last.opcode is Opcode.JMP:
            return [block_of[program.resolve(last.label)]]
        if last.opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT):
            succ.append(block_of[program.resolve(last.label)])
        if end < n:
            succ.append(block_of[end])
        return succ

    # Liveness fixpoint over registers.
    live_in: List[Set[int]] = [set() for _ in starts]
    changed = True
    while changed:
        changed = False
        for b in range(len(starts) - 1, -1, -1):
            begin = starts[b]
            end = starts[b + 1] if b + 1 < len(starts) else n
            live: Set[int] = set()
            for s in successors(b):
                live |= live_in[s]
            for i in range(end - 1, begin - 1, -1):
                ins = instructions[i]
                if ins.opcode in _PURE or ins.opcode is Opcode.LD:
                    live.discard(ins.rd)
                elif ins.opcode is Opcode.INC:
                    live.add(ins.rd)
                for reg in (ins.ra, ins.rb):
                    if reg is not None:
                        live.add(reg)
            if live != live_in[b]:
                live_in[b] = live
                changed = True

    keep = [True] * n
    for b in range(len(starts)):
        begin = starts[b]
        end = starts[b + 1] if b + 1 < len(starts) else n
        live: Set[int] = set()
        for s in successors(b):
            live |= live_in[s]
        for i in range(end - 1, begin - 1, -1):
            ins = instructions[i]
            if (ins.opcode in _PURE or ins.opcode is Opcode.LD) and ins.rd not in live:
                keep[i] = False
                continue
            if ins.opcode in _PURE or ins.opcode is Opcode.LD:
                live.discard(ins.rd)
            elif ins.opcode is Opcode.INC:
                live.add(ins.rd)
            for reg in (ins.ra, ins.rb):
                if reg is not None:
                    live.add(reg)

    # Rebuild, remapping labels to surviving indices.
    new_index: Dict[int, int] = {}
    new_instructions: List[Instruction] = []
    for i, ins in enumerate(instructions):
        new_index[i] = len(new_instructions)
        if keep[i]:
            new_instructions.append(ins)
    new_labels = {
        label: new_index.get(index, len(new_instructions))
        for label, index in program.labels.items()
    }
    return Program(
        program.name,
        new_instructions,
        new_labels,
        uses_sck_template=program.uses_sck_template,
    )


def optimize(program: Program, algebraic: bool = False) -> Program:
    """CSE + DCE pipeline; ``algebraic=True`` adds identity folding."""
    starts = _block_boundaries(program)
    n = len(program.instructions)
    new_instructions: List[Instruction] = []
    index_map: Dict[int, int] = {}
    for b, begin in enumerate(starts):
        end = starts[b + 1] if b + 1 < len(starts) else n
        index_map[begin] = len(new_instructions)
        new_instructions.extend(
            _value_number_block(program.instructions[begin:end], algebraic)
        )
    index_map[n] = len(new_instructions)
    new_labels = {
        label: index_map[index] for label, index in program.labels.items()
    }
    rebuilt = Program(
        program.name,
        new_instructions,
        new_labels,
        uses_sck_template=program.uses_sck_template,
    )
    return _global_dce(rebuilt)
