"""Dataflow-graph to VM compiler.

Compiles one DFG (the per-sample loop body) into a program that
processes ``n`` samples::

    for k in 0..n-1:
        load every DFG input i from mem[input_base[i] + k]
        evaluate the body
        store every DFG output o to mem[output_base[o] + k]

The error output of an SCK-enriched graph is OR-accumulated across
samples in a dedicated register and stored once at ``ERROR_FLAG_ADDR``
after the loop -- the software error indication of the paper.

Register conventions: r0 = loop counter, r1 = sample count, r2 = spill
scratch, r3 = accumulated error flag, r4.. = allocatable.  Node values
live in registers with last-use freeing; exhausted pressure spills to a
per-node frame slot, so arbitrarily large bodies compile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # import-time cycle: codesign.swmodel imports this module
    from repro.codesign.dfg import DataflowGraph

from repro.errors import CompilationError
from repro.vm.isa import NUM_REGISTERS
from repro.vm.program import Program, ProgramBuilder

#: Memory layout constants.
ERROR_FLAG_ADDR = 0
FRAME_BASE = 64
STREAM_STRIDE = 4096

REG_LOOP = 0
REG_COUNT = 1
REG_SCRATCH = 2
REG_ERROR = 3
FIRST_ALLOCATABLE = 4


@dataclass
class MemoryMap:
    """Addresses of the input/output streams and the spill frame."""

    input_base: Dict[str, int] = field(default_factory=dict)
    output_base: Dict[str, int] = field(default_factory=dict)
    frame_base: int = FRAME_BASE

    def stream_for_input(self, name: str) -> int:
        return self.input_base[name]

    def stream_for_output(self, name: str) -> int:
        return self.output_base[name]


def default_memory_map(graph: DataflowGraph) -> MemoryMap:
    """Lay streams out at fixed strides, inputs first."""
    memory_map = MemoryMap()
    base = STREAM_STRIDE
    for node in graph.inputs:
        memory_map.input_base[node.name] = base
        base += STREAM_STRIDE
    for node in graph.outputs:
        memory_map.output_base[node.name] = base
        base += STREAM_STRIDE
    return memory_map


class _RegisterFile:
    """Greedy register allocator with spill-to-frame fallback."""

    def __init__(self, builder: ProgramBuilder, frame_base: int) -> None:
        self.builder = builder
        self.frame_base = frame_base
        self.free = list(range(FIRST_ALLOCATABLE, NUM_REGISTERS))
        self.loc: Dict[str, Tuple[str, int]] = {}  # name -> ("reg"/"frame", where)
        self.frame_slots: Dict[str, int] = {}
        self.next_slot = 0
        self.reg_owner: Dict[int, str] = {}

    def _frame_slot(self, name: str) -> int:
        if name not in self.frame_slots:
            self.frame_slots[name] = self.frame_base + self.next_slot
            self.next_slot += 1
        return self.frame_slots[name]

    def allocate(self, name: str) -> int:
        """A register to hold the value of ``name`` (spilling if needed)."""
        if not self.free:
            # Spill the oldest register-resident value.
            victim_reg, victim_name = next(iter(self.reg_owner.items()))
            slot = self._frame_slot(victim_name)
            self.builder.ldi(REG_SCRATCH, 0)
            self.builder.st(REG_SCRATCH, victim_reg, offset=slot)
            self.loc[victim_name] = ("frame", slot)
            del self.reg_owner[victim_reg]
            self.free.append(victim_reg)
        reg = self.free.pop(0)
        self.loc[name] = ("reg", reg)
        self.reg_owner[reg] = name
        return reg

    def read(self, name: str) -> int:
        """Register currently holding ``name`` (reloading a spill)."""
        kind, where = self.loc[name]
        if kind == "reg":
            return where
        reg = self.allocate(name)
        self.builder.ldi(REG_SCRATCH, 0)
        self.builder.ld(reg, REG_SCRATCH, offset=where)
        return reg

    def release(self, name: str) -> None:
        """Free the storage of ``name`` after its last use."""
        kind, where = self.loc.pop(name, (None, None))
        if kind == "reg":
            self.reg_owner.pop(where, None)
            self.free.append(where)


def compile_dfg(
    graph: DataflowGraph,
    samples: int,
    memory_map: Optional[MemoryMap] = None,
    uses_sck_template: Optional[bool] = None,
) -> Tuple[Program, MemoryMap]:
    """Compile ``graph`` into a ``samples``-iteration stream program."""
    if samples < 1:
        raise CompilationError(f"sample count must be >= 1, got {samples}")
    graph.validate()
    memory_map = memory_map or default_memory_map(graph)
    if uses_sck_template is None:
        uses_sck_template = any(n.role == "check" for n in graph.nodes)
    builder = ProgramBuilder(graph.name, uses_sck_template=uses_sck_template)
    regs = _RegisterFile(builder, memory_map.frame_base)

    # Prologue.
    builder.ldi(REG_LOOP, 0)
    builder.ldi(REG_COUNT, samples)
    builder.ldi(REG_ERROR, 0)
    builder.label("loop")

    last_use: Dict[str, str] = {}
    for node in graph.nodes:
        for arg in node.args:
            last_use[arg] = node.name

    const_regs: Dict[str, int] = {}
    for node in graph.nodes:
        if node.op == "input":
            reg = regs.allocate(node.name)
            builder.ld(reg, REG_LOOP, offset=memory_map.stream_for_input(node.name))
        elif node.op == "const":
            reg = regs.allocate(node.name)
            builder.ldi(reg, node.value)
            const_regs[node.name] = reg
        elif node.op == "output":
            source = regs.read(node.args[0])
            if node.role == "error":
                builder.or_(REG_ERROR, REG_ERROR, source)
            else:
                builder.st(REG_LOOP, source, offset=memory_map.stream_for_output(node.name))
            if last_use.get(node.args[0]) == node.name:
                regs.release(node.args[0])
        else:
            arg_regs = [regs.read(arg) for arg in node.args]
            for arg in node.args:
                if last_use.get(arg) == node.name and graph.node(arg).op != "const":
                    regs.release(arg)
            rd = regs.allocate(node.name)
            emit = {
                "add": builder.add,
                "sub": builder.sub,
                "mul": builder.mul,
                "div": builder.div,
                "mod": builder.mod,
                "or": builder.or_,
                "cmpne": builder.cmpne,
            }
            if node.op == "neg":
                builder.neg(rd, arg_regs[0])
            else:
                emit[node.op](rd, *arg_regs)
    # Release any constants at loop end (they are re-materialised per
    # iteration; cheap and keeps the allocator simple).
    for name in list(regs.loc):
        regs.release(name)

    # Loop control runs on the address/loop unit (INC), not the
    # faultable ALU: the fault model targets the data-path functional
    # units, and a corrupted loop counter would conflate control-flow
    # failure with data errors in campaigns.
    builder.inc(REG_LOOP)
    builder.blt(REG_LOOP, REG_COUNT, "loop")

    # Epilogue: publish the accumulated error flag.
    builder.ldi(REG_SCRATCH, 0)
    builder.st(REG_SCRATCH, REG_ERROR, offset=ERROR_FLAG_ADDR)
    builder.halt()
    return builder.build(), memory_map
