"""Monoprocessor virtual machine -- the software execution substrate.

The paper's software implementation runs the SCK-enriched specification
on a single processor, where the nominal operation and its hidden check
necessarily share the one ALU (the worst case of Section 2.1).  This VM
reproduces that setting deterministically:

* :mod:`repro.vm.isa` -- the register instruction set with its cycle and
  byte cost tables;
* :mod:`repro.vm.program` -- programs, labels, and an assembler-style
  builder;
* :mod:`repro.vm.machine` -- the interpreter; its arithmetic routes
  through a :class:`~repro.arch.alu.FaultableALU` so injected hardware
  faults corrupt software results exactly as on the cell-level units;
* :mod:`repro.vm.compiler` -- compiles a dataflow graph (one loop body)
  into a sample-processing loop;
* :mod:`repro.vm.optimizer` -- value-numbering optimiser used to verify
  the paper's claim that redundant checking operations are *not*
  simplified away (they feed the live-out error flag); an optional
  algebraic mode shows what an over-aggressive compiler would destroy.
"""

from repro.vm.isa import CYCLE_COST, INSTRUCTION_BYTES, Instruction, Opcode
from repro.vm.program import Program, ProgramBuilder
from repro.vm.machine import ExecutionResult, Machine
from repro.vm.compiler import compile_dfg
from repro.vm.optimizer import optimize

__all__ = [
    "Opcode",
    "Instruction",
    "CYCLE_COST",
    "INSTRUCTION_BYTES",
    "Program",
    "ProgramBuilder",
    "Machine",
    "ExecutionResult",
    "compile_dfg",
    "optimize",
]
