"""Programs and the assembler-style builder.

A :class:`Program` is a list of instructions plus a label table; the
:class:`ProgramBuilder` provides one method per opcode, handles label
back-patching, and computes static code size (the Table 3 "Exe Size"
model: a fixed runtime image plus 4 bytes per instruction, plus the
reliability-library overhead when SCK checks are compiled in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import CompilationError
from repro.vm.isa import INSTRUCTION_BYTES, Instruction, Opcode

#: Bytes of the fixed runtime image (loader, libc-like support) -- the
#: paper's executables are ~889 KB dominated by exactly this kind of
#: fixed content; calibrated so the plain FIR lands at its Table 3 size.
RUNTIME_IMAGE_BYTES = 909_952

#: Extra image bytes pulled in by the SCK class template instantiation
#: (the paper's "FIR with SCK" binary is 4 KB larger than plain FIR).
SCK_TEMPLATE_BYTES = 4_096


@dataclass
class Program:
    """An assembled program."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    uses_sck_template: bool = False

    def resolve(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise CompilationError(f"undefined label {label!r}") from None

    @property
    def code_bytes(self) -> int:
        return INSTRUCTION_BYTES * len(self.instructions)

    @property
    def image_bytes(self) -> int:
        """Total executable size under the Table 3 size model."""
        extra = SCK_TEMPLATE_BYTES if self.uses_sck_template else 0
        return RUNTIME_IMAGE_BYTES + extra + self.code_bytes

    def listing(self) -> str:
        """Human-readable assembly listing."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = [f"; program {self.name}"]
        for i, instruction in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.render()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Fluent builder with label management."""

    def __init__(self, name: str, uses_sck_template: bool = False) -> None:
        self.program = Program(name, uses_sck_template=uses_sck_template)

    # ------------------------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        if name in self.program.labels:
            raise CompilationError(f"duplicate label {name!r}")
        self.program.labels[name] = len(self.program.instructions)
        return self

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        self.program.instructions.append(instruction)
        return self

    # One helper per opcode -------------------------------------------
    def ldi(self, rd: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LDI, rd=rd, imm=imm))

    def mov(self, rd: int, ra: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.MOV, rd=rd, ra=ra))

    def ld(self, rd: int, ra: int, offset: int = 0) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LD, rd=rd, ra=ra, imm=offset))

    def st(self, ra: int, rb: int, offset: int = 0) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.ST, ra=ra, rb=rb, imm=offset))

    def add(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.ADD, rd=rd, ra=ra, rb=rb))

    def sub(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.SUB, rd=rd, ra=ra, rb=rb))

    def neg(self, rd: int, ra: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.NEG, rd=rd, ra=ra))

    def mul(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.MUL, rd=rd, ra=ra, rb=rb))

    def div(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.DIV, rd=rd, ra=ra, rb=rb))

    def mod(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.MOD, rd=rd, ra=ra, rb=rb))

    def cmpne(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.CMPNE, rd=rd, ra=ra, rb=rb))

    def or_(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.OR, rd=rd, ra=ra, rb=rb))

    def and_(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.AND, rd=rd, ra=ra, rb=rb))

    def xor(self, rd: int, ra: int, rb: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.XOR, rd=rd, ra=ra, rb=rb))

    def beq(self, ra: int, rb: int, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BEQ, ra=ra, rb=rb, label=label))

    def bne(self, ra: int, rb: int, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BNE, ra=ra, rb=rb, label=label))

    def blt(self, ra: int, rb: int, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BLT, ra=ra, rb=rb, label=label))

    def jmp(self, label: str) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.JMP, label=label))

    def inc(self, rd: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.INC, rd=rd))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.HALT))

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalise; verifies that every referenced label exists."""
        for instruction in self.program.instructions:
            if instruction.label is not None:
                self.program.resolve(instruction.label)
        return self.program
