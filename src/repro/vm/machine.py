"""The monoprocessor VM interpreter.

Arithmetic instructions route through a
:class:`~repro.arch.alu.FaultableALU`, so a fault injected into the
machine's adder/multiplier/divider corrupts software results exactly as
the cell-level units would -- and, crucially, the *checking*
instructions of an SCK-compiled program run on that same faulty unit,
reproducing the paper's monoprocessor worst case.

Comparators and flag logic (CMPNE/OR/AND/XOR, branches) are not routed
through the faultable units: the fault model targets the arithmetic
functional units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.alu import FaultableALU
from repro.arch.bitops import to_signed
from repro.errors import SimulationError
from repro.vm.isa import NUM_REGISTERS, Opcode
from repro.vm.program import Program

#: Nominal core frequency used to convert cycles to seconds in the
#: software estimate (a late-1990s embedded core, matching the paper's
#: multi-second FIR runs).
DEFAULT_CLOCK_HZ = 100_000_000


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    cycles: int
    instructions: int
    registers: List[int]
    memory: Dict[int, int]
    halted: bool

    def seconds(self, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
        return self.cycles / clock_hz


class Machine:
    """A monoprocessor with a faultable ALU.

    Args:
        width: fixed integer width of the datapath.
        alu: optionally a pre-configured (e.g. faulty) ALU.
        max_steps: runaway guard for unbounded loops.
    """

    def __init__(
        self,
        width: int = 16,
        alu: Optional[FaultableALU] = None,
        max_steps: int = 10_000_000,
    ) -> None:
        if alu is not None and alu.width != width:
            raise SimulationError(
                f"ALU width {alu.width} != machine width {width}"
            )
        self.width = width
        self.alu = alu if alu is not None else FaultableALU(width)
        self.max_steps = max_steps

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        memory: Optional[Dict[int, int]] = None,
    ) -> ExecutionResult:
        """Execute ``program`` until HALT; returns the final state."""
        regs = [0] * NUM_REGISTERS
        mem: Dict[int, int] = dict(memory or {})
        pc = 0
        cycles = 0
        steps = 0
        code = program.instructions
        wrap = lambda v: to_signed(v, self.width)  # noqa: E731

        while 0 <= pc < len(code):
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"program {program.name!r} exceeded {self.max_steps} steps"
                )
            ins = code[pc]
            cycles += ins.cycles
            op = ins.opcode
            next_pc = pc + 1
            if op is Opcode.HALT:
                return ExecutionResult(cycles, steps, regs, mem, True)
            if op is Opcode.LDI:
                regs[ins.rd] = wrap(ins.imm)
            elif op is Opcode.MOV:
                regs[ins.rd] = regs[ins.ra]
            elif op is Opcode.LD:
                address = regs[ins.ra] + (ins.imm or 0)
                regs[ins.rd] = wrap(mem.get(address, 0))
            elif op is Opcode.ST:
                address = regs[ins.ra] + (ins.imm or 0)
                mem[address] = regs[ins.rb]
            elif op is Opcode.ADD:
                regs[ins.rd] = int(self.alu.add(regs[ins.ra], regs[ins.rb]))
            elif op is Opcode.SUB:
                regs[ins.rd] = int(self.alu.sub(regs[ins.ra], regs[ins.rb]))
            elif op is Opcode.NEG:
                regs[ins.rd] = int(self.alu.neg(regs[ins.ra]))
            elif op is Opcode.MUL:
                regs[ins.rd] = int(self.alu.mul(regs[ins.ra], regs[ins.rb]))
            elif op is Opcode.DIV:
                regs[ins.rd] = int(self.alu.div(regs[ins.ra], regs[ins.rb]))
            elif op is Opcode.MOD:
                regs[ins.rd] = int(self.alu.mod(regs[ins.ra], regs[ins.rb]))
            elif op is Opcode.CMPNE:
                regs[ins.rd] = int(regs[ins.ra] != regs[ins.rb])
            elif op is Opcode.OR:
                regs[ins.rd] = wrap(regs[ins.ra] | regs[ins.rb])
            elif op is Opcode.AND:
                regs[ins.rd] = wrap(regs[ins.ra] & regs[ins.rb])
            elif op is Opcode.XOR:
                regs[ins.rd] = wrap(regs[ins.ra] ^ regs[ins.rb])
            elif op is Opcode.BEQ:
                if regs[ins.ra] == regs[ins.rb]:
                    next_pc = program.resolve(ins.label)
            elif op is Opcode.BNE:
                if regs[ins.ra] != regs[ins.rb]:
                    next_pc = program.resolve(ins.label)
            elif op is Opcode.BLT:
                if regs[ins.ra] < regs[ins.rb]:
                    next_pc = program.resolve(ins.label)
            elif op is Opcode.JMP:
                next_pc = program.resolve(ins.label)
            elif op is Opcode.INC:
                regs[ins.rd] = wrap(regs[ins.rd] + 1)
            else:  # pragma: no cover - enum is exhaustive
                raise SimulationError(f"unimplemented opcode {op}")
            pc = next_pc
        return ExecutionResult(cycles, steps, regs, mem, False)
