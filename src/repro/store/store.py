"""The content-addressed result store.

A :class:`ResultStore` memoises campaign artifacts on the filesystem
under a root directory, fronted by an in-process LRU.  Every entry is
addressed by its :class:`~repro.store.hashing.CacheKey` digest and
materialises as two files::

    <root>/objects/<kind>/<digest>.json   # provenance + metadata
    <root>/objects/<kind>/<digest>.npz    # array payload (when any)

The JSON sidecar is written *last* and atomically (temp file +
``os.replace``), so its presence marks a complete entry: a crash
mid-write leaves at worst an orphan payload that is never consulted.
It records the full key fields, the schema version, a checksum of the
payload bytes and the creation context -- the provenance trail that
makes a stored number auditable.

Corruption is handled by *detect, discard, recompute*: an unreadable
sidecar, a missing or tampered payload (checksum mismatch) or a
schema-version mismatch makes :meth:`ResultStore.get` warn
(:class:`StoreCorruptionWarning`), delete the entry and report a miss,
so the caller transparently recomputes.

The store is **opt-in and off by default**: every wired entry point
takes ``store=`` (a :class:`ResultStore`, a directory path, or ``None``
to consult the environment), and :func:`resolve_store` turns the
``REPRO_STORE`` environment variable into a process-wide shared store
(``REPRO_STORE=<dir>`` or ``REPRO_STORE=1`` + ``REPRO_STORE_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
import zipfile
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.store import codecs
from repro.store.hashing import SCHEMA_VERSION, CacheKey

#: Enables the store process-wide: a directory path, or a truthy flag
#: (``1``/``true``/``on``/``yes``) combined with :data:`STORE_DIR_ENV`.
STORE_ENV = "REPRO_STORE"
#: Store directory used when :data:`STORE_ENV` is a bare flag.
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Fallback directory of a bare ``REPRO_STORE=1`` with no explicit dir.
DEFAULT_STORE_DIR = ".repro-store"

_TRUTHY = ("1", "true", "on", "yes")
_FALSY = ("", "0", "false", "off", "no")

#: Default size of the in-process LRU fronting the filesystem.
DEFAULT_LRU_SIZE = 128


class StoreCorruptionWarning(UserWarning):
    """A stored entry failed validation and was discarded."""


@dataclass
class StoreStats:
    """Hit/miss counters of one store instance.

    ``hits`` counts both LRU and disk hits (``lru_hits`` the fast
    subset); ``misses`` counts absent entries; ``corrupt`` counts
    entries discarded by validation (each also counted as a miss).
    """

    hits: int = 0
    lru_hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "lru_hits": self.lru_hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
        }


def _file_checksum(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class ResultStore:
    """Filesystem-backed, content-addressed artifact store with an LRU.

    Values returned by :meth:`get` (and retained after :meth:`put`) are
    shared objects: callers must treat them as immutable, the same
    contract the gate layer's memo caches already impose.
    """

    def __init__(self, root: Union[str, os.PathLike], lru_size: int = DEFAULT_LRU_SIZE) -> None:
        self.root = os.path.abspath(os.fspath(root))
        self.lru_size = max(0, int(lru_size))
        self.stats = StoreStats()
        self._lru: Dict[str, object] = {}
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)

    # ------------------------------------------------------------------
    def paths(self, key: CacheKey) -> Tuple[str, str]:
        """``(payload .npz path, sidecar .json path)`` of ``key``."""
        directory = os.path.join(self.root, "objects", key.kind)
        digest = key.digest
        return (
            os.path.join(directory, f"{digest}.npz"),
            os.path.join(directory, f"{digest}.json"),
        )

    def __contains__(self, key: CacheKey) -> bool:
        return key.digest in self._lru or os.path.exists(self.paths(key)[1])

    def __len__(self) -> int:
        count = 0
        objects = os.path.join(self.root, "objects")
        for _, _, files in os.walk(objects):
            count += sum(1 for f in files if f.endswith(".json"))
        return count

    # ------------------------------------------------------------------
    def put(self, key: CacheKey, value: object, provenance: Optional[dict] = None) -> None:
        """Store ``value`` under ``key`` (atomic; overwrites silently).

        ``provenance`` extends the sidecar's provenance record (e.g.
        wall-clock build time, worker count).
        """
        tag, arrays, meta = codecs.encode(value)
        npz_path, json_path = self.paths(key)
        os.makedirs(os.path.dirname(json_path), exist_ok=True)
        checksum = ""
        if arrays:
            checksum = self._write_atomic_npz(npz_path, arrays)
        elif os.path.exists(npz_path):
            os.unlink(npz_path)
        sidecar = {
            "schema": SCHEMA_VERSION,
            "tag": tag,
            "key": key.to_dict(),
            "payload_checksum": checksum,
            "meta": meta,
            "provenance": {
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                **(provenance or {}),
            },
        }
        self._write_atomic_text(json_path, json.dumps(sidecar, indent=1, sort_keys=True))
        self._lru_insert(key.digest, value)
        self.stats.puts += 1
        obs_metrics.inc("repro_store_puts_total", kind=key.kind)

    def get(self, key: CacheKey) -> Optional[object]:
        """The stored artifact, or ``None`` (miss / discarded entry)."""
        digest = key.digest
        if digest in self._lru:
            value = self._lru.pop(digest)
            self._lru[digest] = value  # re-insert = most recently used
            self.stats.hits += 1
            self.stats.lru_hits += 1
            obs_metrics.inc("repro_store_hits_total", path="lru")
            return value
        npz_path, json_path = self.paths(key)
        if not os.path.exists(json_path):
            self.stats.misses += 1
            obs_metrics.inc("repro_store_misses_total")
            return None
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                sidecar = json.load(handle)
            if sidecar.get("schema") != SCHEMA_VERSION:
                raise ValueError(
                    f"schema {sidecar.get('schema')!r} != {SCHEMA_VERSION}"
                )
            checksum = sidecar.get("payload_checksum", "")
            arrays: Dict[str, np.ndarray] = {}
            if checksum:
                if _file_checksum(npz_path) != checksum:
                    raise ValueError("payload checksum mismatch")
                with np.load(npz_path) as data:
                    arrays = {name: data[name] for name in data.files}
            value = codecs.decode(sidecar["tag"], arrays, sidecar["meta"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError,
                zipfile.BadZipFile) as exc:
            self._discard(key, json_path, npz_path, exc)
            self.stats.misses += 1
            self.stats.corrupt += 1
            obs_metrics.inc("repro_store_misses_total")
            return None
        self._lru_insert(digest, value)
        self.stats.hits += 1
        obs_metrics.inc("repro_store_hits_total", path="disk")
        return value

    def provenance(self, key: CacheKey) -> Optional[dict]:
        """The sidecar record of ``key`` (``None`` when absent)."""
        _, json_path = self.paths(key)
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def clear_lru(self) -> None:
        """Drop the in-process front cache (the filesystem stays)."""
        self._lru.clear()

    # ------------------------------------------------------------------
    def _discard(self, key: CacheKey, json_path: str, npz_path: str, exc: Exception) -> None:
        warnings.warn(
            f"discarding corrupt store entry {key.kind}/{key.digest[:12]} "
            f"({exc}); it will be recomputed",
            StoreCorruptionWarning,
            stacklevel=3,
        )
        # The warning can be filtered away; the counter and trace event
        # make silent discard-and-recompute visible after the fact.
        obs_metrics.inc("repro_store_corrupt_total", kind=key.kind)
        obs_events.emit(
            obs_events.STORE_CORRUPT,
            kind=key.kind,
            digest=key.digest[:12],
            error=str(exc),
        )
        for path in (json_path, npz_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    def _lru_insert(self, digest: str, value: object) -> None:
        if self.lru_size == 0:
            return
        self._lru.pop(digest, None)
        self._lru[digest] = value
        while len(self._lru) > self.lru_size:
            self._lru.pop(next(iter(self._lru)))

    def _write_atomic_npz(self, path: str, arrays: Dict[str, np.ndarray]) -> str:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".npz.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            checksum = _file_checksum(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return checksum

    def _write_atomic_text(self, path: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".json.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Resolution: keyword > environment > off
# ----------------------------------------------------------------------
_OPEN_STORES: Dict[str, ResultStore] = {}


def _collect_store_stats() -> Dict[str, float]:
    """Live ``StoreStats`` of every process-shared store, summed, as
    gauges on each :func:`repro.obs.metrics` snapshot (stores built
    directly from :class:`ResultStore` bypass :func:`open_store` and are
    not visible here -- they still feed the event counters above)."""
    out: Dict[str, float] = {"repro_store_open": float(len(_OPEN_STORES))}
    if not _OPEN_STORES:
        return out
    totals = StoreStats()
    for store in list(_OPEN_STORES.values()):
        for field, value in store.stats.snapshot().items():
            setattr(totals, field, getattr(totals, field) + value)
    for field, value in totals.snapshot().items():
        out[f"repro_store_stats_{field}"] = float(value)
    return out


obs_metrics.registry().register_collector("store_stats", _collect_store_stats)


def open_store(path: Union[str, os.PathLike]) -> ResultStore:
    """A process-shared :class:`ResultStore` for ``path`` (memoised per
    absolute path, so env-driven callers share one LRU and one set of
    hit/miss counters)."""
    root = os.path.abspath(os.fspath(path))
    store = _OPEN_STORES.get(root)
    if store is None:
        store = ResultStore(root)
        _OPEN_STORES[root] = store
    return store


def resolve_store(
    store: Union[ResultStore, str, os.PathLike, None, bool] = None,
) -> Optional[ResultStore]:
    """Resolve a ``store=`` keyword to an active store or ``None``.

    Precedence: an explicit :class:`ResultStore` or path wins;
    ``store=False`` forces the store off regardless of environment;
    ``store=None`` (the default everywhere) consults ``REPRO_STORE``.
    """
    if isinstance(store, ResultStore):
        return store
    if store is False:
        return None
    if store is not None and store is not True:
        return open_store(store)
    env = os.environ.get(STORE_ENV, "").strip()
    if env.lower() in _FALSY:
        return None if store is None else open_store(DEFAULT_STORE_DIR)
    if env.lower() in _TRUTHY:
        return open_store(os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR)
    return open_store(env)


__all__ = [
    "DEFAULT_LRU_SIZE",
    "DEFAULT_STORE_DIR",
    "ResultStore",
    "STORE_DIR_ENV",
    "STORE_ENV",
    "StoreCorruptionWarning",
    "StoreStats",
    "open_store",
    "resolve_store",
]
