"""Artifact (de)serialisation of the result store.

Each artifact family the store memoises has one codec: a pair of
functions turning the in-memory object into ``(tag, arrays, meta)`` --
a dict of NumPy arrays bound for one ``.npz`` payload plus a
JSON-representable metadata dict -- and back.  Round-trips are exact:
array dtypes and byte contents are preserved, tuples are restored as
tuples, and fault lists rebuild as the same frozen dataclasses, so a
store-loaded artifact merges bit-identically with a live-built one
(the regression ``tests/test_store.py`` pins down).

Imports of the artifact classes happen lazily inside the codec bodies:
the store is a leaf the coverage/tpg/faults layers call into, so a
module-level import here would cycle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

Arrays = Dict[str, np.ndarray]
Meta = Dict[str, object]


# ----------------------------------------------------------------------
# Shared fault-list / group packing (the FaultDictionary.save layout)
# ----------------------------------------------------------------------
def pack_faults(faults: Sequence) -> Arrays:
    """Field-wise arrays of an ordered stuck-at fault list."""
    nets, gates, pins, values = [], [], [], []
    for fault in faults:
        nets.append(fault.site.net)
        if fault.site.is_stem:
            gates.append("")
            pins.append(-1)
        else:
            gate, pin = fault.site.branch
            gates.append(gate)
            pins.append(pin)
        values.append(fault.value)
    return {
        "fault_nets": np.array(nets, dtype=np.str_),
        "fault_gates": np.array(gates, dtype=np.str_),
        "fault_pins": np.array(pins, dtype=np.int64),
        "fault_values": np.array(values, dtype=np.uint8),
    }


def unpack_faults(arrays: Arrays) -> Tuple:
    """Inverse of :func:`pack_faults` (exact tuple of frozen faults)."""
    from repro.gates.faults import FaultSite, StuckAtFault

    return tuple(
        StuckAtFault(
            FaultSite(str(net), None if pin < 0 else (str(gate), int(pin))),
            int(value),
        )
        for net, gate, pin, value in zip(
            arrays["fault_nets"],
            arrays["fault_gates"],
            arrays["fault_pins"],
            arrays["fault_values"],
        )
    )


def pack_groups(groups: Sequence[Tuple[int, ...]]) -> Arrays:
    """Offset/member arrays of the equivalence-class tuples."""
    offsets = np.cumsum([0] + [len(g) for g in groups]).astype(np.int64)
    members = np.array([i for g in groups for i in g] or [], dtype=np.int64)
    return {"group_offsets": offsets, "group_members": members}


def unpack_groups(arrays: Arrays) -> Tuple[Tuple[int, ...], ...]:
    offsets = arrays["group_offsets"]
    members = arrays["group_members"]
    return tuple(
        tuple(int(i) for i in members[lo:hi])
        for lo, hi in zip(offsets[:-1], offsets[1:])
    )


# ----------------------------------------------------------------------
# Codecs, one per artifact family
# ----------------------------------------------------------------------
def encode(value: object) -> Tuple[str, Arrays, Meta]:
    """Dispatch ``value`` to its codec; returns ``(tag, arrays, meta)``."""
    from repro.gates.engine import StuckAtCampaignResult
    from repro.tpg.compaction import CompactTestSet
    from repro.tpg.dictionary import FaultDictionary

    if isinstance(value, StuckAtCampaignResult):
        return _encode_campaign(value)
    if isinstance(value, FaultDictionary):
        return _encode_dictionary(value)
    if isinstance(value, CompactTestSet):
        return _encode_compact(value)
    if isinstance(value, np.ndarray):
        return "ndarray", {"data": value}, {}
    if isinstance(value, dict) and value and all(
        type(v).__name__ == "CoverageStats" for v in value.values()
    ):
        return _encode_coverage(value)
    if _is_case_counts(value):
        return "case_counts", {}, {"counts": [
            [repeat, count, n_correct, {k: list(v) for k, v in per.items()}]
            for repeat, count, n_correct, per in value
        ]}
    if isinstance(value, dict):
        # Plain JSON payload; an ATPG test-table record carries its
        # arrays explicitly under "arrays".
        payload = dict(value)
        arrays = {
            k: np.asarray(v) for k, v in payload.pop("arrays", {}).items()
        }
        return "json", arrays, {"payload": payload}
    raise SimulationError(f"no store codec for {type(value).__name__}")


def decode(tag: str, arrays: Arrays, meta: Meta) -> object:
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise SimulationError(f"unknown stored artifact tag {tag!r}") from None
    return decoder(arrays, meta)


def _is_case_counts(value: object) -> bool:
    if not isinstance(value, list) or not value:
        return False
    head = value[0]
    return (
        isinstance(head, (tuple, list))
        and len(head) == 4
        and isinstance(head[3], dict)
    )


# -- campaign results ---------------------------------------------------
def _encode_campaign(result) -> Tuple[str, Arrays, Meta]:
    arrays: Arrays = {
        "detected": np.asarray(result.detected),
        "first_detected": np.asarray(result.first_detected),
    }
    arrays.update(pack_faults(result.faults))
    arrays.update(pack_groups(result.groups))
    meta: Meta = {
        "netlist_name": result.netlist_name,
        "n_vectors": int(result.n_vectors),
        "n_simulated_runs": int(result.n_simulated_runs),
    }
    return "campaign_result", arrays, meta


def _decode_campaign(arrays: Arrays, meta: Meta):
    from repro.gates.engine import StuckAtCampaignResult

    return StuckAtCampaignResult(
        netlist_name=str(meta["netlist_name"]),
        faults=unpack_faults(arrays),
        detected=arrays["detected"],
        first_detected=arrays["first_detected"],
        n_vectors=int(meta["n_vectors"]),
        n_simulated_runs=int(meta["n_simulated_runs"]),
        groups=unpack_groups(arrays),
    )


# -- fault dictionaries -------------------------------------------------
def _encode_dictionary(dictionary) -> Tuple[str, Arrays, Meta]:
    arrays: Arrays = {"words": dictionary.words}
    arrays.update(pack_faults(dictionary.faults))
    arrays.update(pack_groups(dictionary.groups))
    meta: Meta = {
        "netlist_name": dictionary.netlist_name,
        "n_vectors": int(dictionary.n_vectors),
        "vector_base": int(dictionary.vector_base),
        "backend": dictionary.backend,
    }
    return "fault_dictionary", arrays, meta


def _decode_dictionary(arrays: Arrays, meta: Meta):
    from repro.tpg.dictionary import FaultDictionary

    return FaultDictionary(
        netlist_name=str(meta["netlist_name"]),
        faults=unpack_faults(arrays),
        groups=unpack_groups(arrays),
        words=arrays["words"],
        n_vectors=int(meta["n_vectors"]),
        vector_base=int(meta["vector_base"]),
        backend=str(meta.get("backend", "")),
    )


# -- compact test sets --------------------------------------------------
def _encode_compact(compact) -> Tuple[str, Arrays, Meta]:
    arrays: Arrays = {
        "vectors": np.asarray(compact.vectors, dtype=np.uint8),
        "detected": np.asarray(compact.detected, dtype=bool),
    }
    arrays.update(pack_faults(compact.faults))
    meta: Meta = {
        "netlist_name": compact.netlist_name,
        "input_names": list(compact.input_names),
        "marginal": [int(m) for m in compact.marginal],
        "source": compact.source,
    }
    return "compact_test_set", arrays, meta


def _decode_compact(arrays: Arrays, meta: Meta):
    from repro.tpg.compaction import CompactTestSet

    return CompactTestSet(
        netlist_name=str(meta["netlist_name"]),
        input_names=tuple(str(n) for n in meta["input_names"]),
        vectors=arrays["vectors"],
        faults=unpack_faults(arrays),
        detected=arrays["detected"],
        marginal=tuple(int(m) for m in meta["marginal"]),
        source=str(meta["source"]),
    )


# -- per-technique coverage stats ---------------------------------------
def _encode_coverage(stats_map) -> Tuple[str, Arrays, Meta]:
    import dataclasses

    return "coverage_stats_map", {}, {
        "order": list(stats_map),
        "stats": {
            name: dataclasses.asdict(stats) for name, stats in stats_map.items()
        },
    }


def _decode_coverage(arrays: Arrays, meta: Meta):
    from repro.coverage.engine import CoverageStats

    return {
        str(name): CoverageStats(**meta["stats"][name])
        for name in meta["order"]
    }


# -- gate-sweep shard counts (plain integers) ---------------------------
def _decode_case_counts(arrays: Arrays, meta: Meta) -> List[Tuple]:
    return [
        (
            int(repeat),
            int(count),
            int(n_correct),
            {str(k): (int(v[0]), int(v[1])) for k, v in per.items()},
        )
        for repeat, count, n_correct, per in meta["counts"]
    ]


_DECODERS = {
    "campaign_result": _decode_campaign,
    "fault_dictionary": _decode_dictionary,
    "compact_test_set": _decode_compact,
    "coverage_stats_map": _decode_coverage,
    "case_counts": _decode_case_counts,
    "ndarray": lambda arrays, meta: arrays["data"],
    "json": lambda arrays, meta: (
        {**meta["payload"], "arrays": arrays} if arrays else dict(meta["payload"])
    ),
}

__all__ = [
    "decode",
    "encode",
    "pack_faults",
    "pack_groups",
    "unpack_faults",
    "unpack_groups",
]
