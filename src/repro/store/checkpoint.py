"""Checkpointed, resumable shard execution.

:func:`run_checkpointed` is the bridge between the shard runner
(:func:`repro.faults.sharding.run_sharded`) and the result store: every
shard's partial result lands in the store *as it completes*, keyed by
the campaign's final :class:`~repro.store.hashing.CacheKey` scoped to
the shard's span (``key.with_shard(lo, hi)``).  A re-run of the same
campaign -- after a crash, a kill, or on another day -- loads every
finished shard from the store and executes only the missing ones; the
caller's order-preserving merge then reproduces the uninterrupted
result bit-identically, because loaded and freshly computed shards are
exact round-trips of each other.

For tests, :func:`shard_hook` installs a callable fired *before* each
shard executes.  While a hook is installed, execution is sequential and
in-process, so a hook that raises after ``k`` shards simulates a crash
that leaves exactly ``k`` checkpoints behind -- the crash/replay suite
(``tests/test_store_resume.py``) is built on this.  Every run records a
:class:`CheckpointReport` retrievable via :func:`last_checkpoint_report`
stating how many shards loaded versus executed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import events
from repro.store.hashing import CacheKey
from repro.store.store import ResultStore

#: Test-only pre-shard callable; forces sequential in-process execution.
_SHARD_HOOK: Optional[Callable[[int], None]] = None

_LAST_REPORT: Optional["CheckpointReport"] = None


@dataclass(frozen=True)
class CheckpointReport:
    """What one checkpointed run did: ``loaded`` shards came from the
    store, ``executed`` shards ran; ``loaded + executed == total``."""

    total: int
    loaded: int
    executed: int


def last_checkpoint_report() -> Optional[CheckpointReport]:
    """The report of the most recent completed :func:`run_checkpointed`
    call in this process (``None`` before the first)."""
    return _LAST_REPORT


@contextmanager
def shard_hook(hook: Optional[Callable[[int], None]]):
    """Install ``hook(shard_index)`` to fire before each shard executes.

    Execution becomes sequential and in-process for the duration, so a
    raising hook leaves all previously completed shards checkpointed --
    the crash simulation of the replay test suite.
    """
    global _SHARD_HOOK
    previous = _SHARD_HOOK
    _SHARD_HOOK = hook
    try:
        yield
    finally:
        _SHARD_HOOK = previous


def run_checkpointed(
    worker: Callable[..., Any],
    arg_tuples: Sequence[Tuple[Any, ...]],
    keys: Sequence[CacheKey],
    store: Optional[ResultStore],
    provenance: Optional[dict] = None,
) -> List[Any]:
    """Run ``worker(*args)`` per tuple with per-shard store checkpoints.

    ``keys[i]`` addresses shard ``i``'s partial result.  Shards already
    in the store load instead of executing; missing shards run (pooled,
    unless a :func:`shard_hook` is installed) and are stored the moment
    they complete.  Results return in submission order, so the caller's
    merge is identical to an unsharded :func:`run_sharded` merge.

    With ``store=None`` this degrades to plain :func:`run_sharded`.
    """
    global _LAST_REPORT
    total = len(arg_tuples)
    if len(keys) != total:
        raise ValueError(f"{len(keys)} keys for {total} shards")
    if store is None:
        results = run_sharded_compat(worker, list(arg_tuples))
        _LAST_REPORT = CheckpointReport(total=total, loaded=0, executed=total)
        return results

    results: List[Any] = [None] * total
    missing: List[int] = []
    for index, key in enumerate(keys):
        value = store.get(key)
        if value is None:
            missing.append(index)
        else:
            results[index] = value
            events.emit(
                events.CHECKPOINT_RESUMED, shard=index, n_shards=total
            )

    if missing:
        if _SHARD_HOOK is not None:
            for index in missing:
                _SHARD_HOOK(index)
                result = worker(*arg_tuples[index])
                store.put(keys[index], result, provenance)
                events.emit(
                    events.CHECKPOINT_WRITTEN, shard=index, n_shards=total
                )
                results[index] = result
        else:
            sub_tuples = [arg_tuples[index] for index in missing]

            def land(position: int, result: Any) -> None:
                store.put(keys[missing[position]], result, provenance)
                events.emit(
                    events.CHECKPOINT_WRITTEN,
                    shard=missing[position],
                    n_shards=total,
                )

            sub_results = run_sharded_compat(worker, sub_tuples, on_result=land)
            for position, index in enumerate(missing):
                results[index] = sub_results[position]

    _LAST_REPORT = CheckpointReport(
        total=total, loaded=total - len(missing), executed=len(missing)
    )
    return results


def run_sharded_compat(worker, arg_tuples, on_result=None):
    """Late import of the shard runner (faults imports the store, so a
    module-level import here would cycle)."""
    from repro.faults.sharding import run_sharded

    if _SHARD_HOOK is not None:
        results = []
        for index, args in enumerate(arg_tuples):
            _SHARD_HOOK(index)
            result = worker(*args)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    return run_sharded(worker, arg_tuples, on_result=on_result)


__all__ = [
    "CheckpointReport",
    "last_checkpoint_report",
    "run_checkpointed",
    "shard_hook",
]
