"""Canonical content hashing of campaign inputs.

Every artifact the result store memoises is a pure function of a small
set of inputs: the netlist structure, the fault universe (in order --
artifacts are order-aligned with it), the vector universe, the
evaluation method, the execution backend (as *resolved*, never the
``"auto"`` sentinel) and the remaining campaign parameters.  This
module turns each of those inputs into a stable hex digest and combines
them into a :class:`CacheKey`.

Digests are *content* hashes: two netlists built independently by the
same builder hash equal (the compiled CSR arrays plus the interned net
names are hashed, not object identities), while any structural
mutation, fault reorder, pin swap or constraint change produces a new
digest.  The key carries a schema version tag
(:data:`SCHEMA_VERSION`); bumping it invalidates every stored artifact
at once, which is how on-disk layout changes stay safe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

#: Version tag of the key schema *and* the on-disk artifact layout.
#: Part of every key digest and every provenance record: bump it when
#: either changes and all previously stored artifacts become invisible
#: (stale entries are simply never hit again).
SCHEMA_VERSION = 1


def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def digest_bytes(*chunks: bytes) -> str:
    """Hex digest of a byte-chunk sequence (length-prefixed, so chunk
    boundaries are part of the content)."""
    h = _hasher()
    for chunk in chunks:
        h.update(len(chunk).to_bytes(8, "little"))
        h.update(chunk)
    return h.hexdigest()


def _array_chunks(arr: np.ndarray) -> Iterable[bytes]:
    arr = np.ascontiguousarray(arr)
    yield arr.dtype.str.encode()
    yield json.dumps(arr.shape).encode()
    yield arr.tobytes()


def digest_array(arr: np.ndarray) -> str:
    """Digest of one array: dtype, shape and raw bytes."""
    return digest_bytes(*_array_chunks(arr))


def digest_params(**params: object) -> str:
    """Digest of a flat keyword mapping via canonical JSON.

    Values must be JSON-representable (None/bool/int/float/str or
    nested lists/tuples/dicts thereof); key order never matters.
    """
    return digest_bytes(
        json.dumps(params, sort_keys=True, separators=(",", ":"),
                   default=_json_fallback).encode()
    )


def _json_fallback(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"{value!r} is not canonically hashable")


def digest_netlist(netlist) -> str:
    """Content digest of a gate-level netlist.

    Hashes the compiled CSR arrays (opcodes, operands, levels are
    implied), the interned net-name table and the declared name, so a
    netlist rebuilt from scratch by the same builder digests equal while
    any added gate, rewired pin or renamed net digests differently.
    Compilation is memoised (:func:`repro.gates.compile.compile_netlist`),
    so repeated hashing of a hot netlist is cheap.
    """
    from repro.gates.compile import compile_netlist

    compiled = compile_netlist(netlist)
    chunks = [compiled.name.encode(), "\x00".join(compiled.net_names).encode()]
    for arr in (
        compiled.input_ids,
        compiled.output_ids,
        compiled.base_ops,
        compiled.inverts,
        compiled.operand_offsets,
        compiled.operands,
        compiled.gate_output_ids,
    ):
        chunks.extend(_array_chunks(arr))
    return digest_bytes(*chunks)


def digest_faults(faults: Sequence) -> str:
    """Digest of an *ordered* stuck-at fault list.

    Order matters by design: campaign and dictionary artifacts are
    row-aligned with the fault list, so a reordered universe is a
    different key.
    """
    h = _hasher()
    for fault in faults:
        site = fault.site
        if site.branch is None:
            token = f"{site.net}||-1|{fault.value}"
        else:
            gate, pin = site.branch
            token = f"{site.net}|{gate}|{pin}|{fault.value}"
        h.update(token.encode())
        h.update(b"\x00")
    return h.hexdigest()


def digest_test_space(space) -> str:
    """Digest of a :class:`~repro.tpg.dictionary.TestSpace`: the
    netlist it constrains plus the free/pinned/non-zero structure."""
    return digest_params(
        netlist=digest_netlist(space.netlist),
        free_inputs=list(space.free_inputs),
        constants=[list(c) for c in space.constants],
        nonzero_field=(
            list(space.nonzero_field) if space.nonzero_field is not None else None
        ),
    )


def digest_vector_table(bits: np.ndarray) -> str:
    """Digest of an explicit ``(n_tests, n_inputs)`` 0/1 test table."""
    return digest_array(np.asarray(bits, dtype=np.uint8))


def digest_input_vectors(
    netlist, vectors: Optional[Mapping[str, Union[int, np.ndarray]]]
) -> str:
    """Digest of a campaign's vector set.

    ``None`` (the exhaustive default) digests on the input count alone;
    an explicit mapping digests each primary input's array in netlist
    input order, so the same vectors presented in a differently ordered
    dict digest equal.
    """
    if vectors is None:
        return digest_params(exhaustive=len(netlist.primary_inputs))
    h = _hasher()
    for name in netlist.primary_inputs:
        h.update(name.encode())
        h.update(b"\x00")
        value = vectors.get(name)
        if value is None:
            h.update(b"<absent>")
            continue
        for chunk in _array_chunks(np.asarray(value)):
            h.update(chunk)
    return h.hexdigest()


def digest_cell_library(cell_netlist: str) -> str:
    """Digest of the collapsed faulty-cell library: every equivalence
    class's representative LUT pair, multiplicity and reference flag --
    the functional fault universe of the Table 2 sweeps."""
    from repro.arch.cell import collapsed_cell_library

    return digest_params(
        cell_netlist=cell_netlist,
        groups=[
            [
                list(group.representative.sum_lut),
                list(group.representative.carry_lut),
                group.multiplicity,
                group.is_reference,
            ]
            for group in collapsed_cell_library(cell_netlist)
        ],
    )


@dataclass(frozen=True)
class CacheKey:
    """The identity of one stored artifact.

    ``kind`` names the artifact family (``"campaign"``,
    ``"dictionary"``, ``"coverage"``, ``"compact"``, ``"atpg"``);
    ``netlist``/``universe``/``space`` are the content digests of the
    circuit, fault list and vector universe; ``method`` the evaluation
    path; ``backend`` the *resolved* execution-backend name (callers
    must resolve the ``"auto"`` sentinel on the real universe before
    keying); ``params`` a digest of the remaining campaign parameters
    (chunking, collapse flags, seeds).  ``shard`` is empty for final
    artifacts and a ``"lo:hi"``-style span for checkpointed partials --
    the only field a resumable grid varies.
    """

    kind: str
    netlist: str
    universe: str
    space: str
    method: str
    backend: str
    params: str = ""
    shard: str = ""
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        for name in ("kind", "netlist", "universe", "space", "method", "backend"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value:
                raise ValueError(f"CacheKey.{name} must be a non-empty string")

    @property
    def digest(self) -> str:
        """The key's single content address (filesystem entry name)."""
        return digest_bytes(
            "|".join(
                (
                    f"v{self.schema}",
                    self.kind,
                    self.netlist,
                    self.universe,
                    self.space,
                    self.method,
                    self.backend,
                    self.params,
                    self.shard,
                )
            ).encode()
        )

    def with_shard(self, *span: object) -> "CacheKey":
        """The same key scoped to one checkpoint shard, e.g.
        ``key.with_shard(lo, hi)`` -> ``shard="lo:hi"``."""
        return replace(self, shard=":".join(str(s) for s in span))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "netlist": self.netlist,
            "universe": self.universe,
            "space": self.space,
            "method": self.method,
            "backend": self.backend,
            "params": self.params,
            "shard": self.shard,
            "schema": self.schema,
        }


__all__ = [
    "SCHEMA_VERSION",
    "CacheKey",
    "digest_array",
    "digest_bytes",
    "digest_cell_library",
    "digest_faults",
    "digest_input_vectors",
    "digest_netlist",
    "digest_params",
    "digest_test_space",
    "digest_vector_table",
]
