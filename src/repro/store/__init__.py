"""Content-addressed result store for coverage campaigns.

The repeated workload of the Bolchini et al. reproduction -- the same
few netlists evaluated under the same fault universes again and again
-- is memoised here instead of recomputed.  Three layers:

- :mod:`repro.store.hashing` -- canonical content digests of netlists,
  fault universes, test spaces and campaign parameters, combined into a
  versioned :class:`CacheKey`.
- :mod:`repro.store.store` -- :class:`ResultStore`: filesystem
  ``.npz``/JSON entries with provenance sidecars and an in-process LRU;
  opt-in via ``store=`` keywords or the ``REPRO_STORE`` environment
  variable, off by default.
- :mod:`repro.store.checkpoint` -- :func:`run_checkpointed`: per-shard
  checkpoints landing in the store as they complete, so a killed
  campaign resumes by re-running only its missing shards and still
  merges bit-identically.
"""

from repro.store.checkpoint import (
    CheckpointReport,
    last_checkpoint_report,
    run_checkpointed,
    shard_hook,
)
from repro.store.hashing import (
    SCHEMA_VERSION,
    CacheKey,
    digest_array,
    digest_bytes,
    digest_cell_library,
    digest_faults,
    digest_input_vectors,
    digest_netlist,
    digest_params,
    digest_test_space,
    digest_vector_table,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    ResultStore,
    STORE_DIR_ENV,
    STORE_ENV,
    StoreCorruptionWarning,
    StoreStats,
    open_store,
    resolve_store,
)

__all__ = [
    "CacheKey",
    "CheckpointReport",
    "DEFAULT_STORE_DIR",
    "ResultStore",
    "SCHEMA_VERSION",
    "STORE_DIR_ENV",
    "STORE_ENV",
    "StoreCorruptionWarning",
    "StoreStats",
    "digest_array",
    "digest_bytes",
    "digest_cell_library",
    "digest_faults",
    "digest_input_vectors",
    "digest_netlist",
    "digest_params",
    "digest_test_space",
    "digest_vector_table",
    "last_checkpoint_report",
    "open_store",
    "resolve_store",
    "run_checkpointed",
    "shard_hook",
]
