"""repro -- self-checking data-paths via operator overloading.

A faithful, self-contained reproduction of:

    C. Bolchini, F. Salice, D. Sciuto, L. Pomante,
    "Reliable System Specification for Self-Checking Data-Paths",
    Design, Automation and Test in Europe (DATE), 2005.

The package provides:

* the :class:`~repro.core.SCK` self-checking data type (the paper's
  contribution), with pluggable checking techniques and backends;
* a gate-level netlist substrate with the paper's 32-fault full-adder
  universe (:mod:`repro.gates`);
* vectorised cell-level faulty datapath units (:mod:`repro.arch`);
* a fault model and injection campaigns (:mod:`repro.faults`);
* the worst-case fault-coverage engine regenerating Tables 1 and 2
  (:mod:`repro.coverage`);
* a monoprocessor VM and a hardware/software co-design flow
  regenerating Table 3 (:mod:`repro.vm`, :mod:`repro.codesign`);
* generators for the paper's figures and HDL artefacts
  (:mod:`repro.hdlgen`);
* a test-generation subsystem: fault dictionaries, compact test sets
  and emitted self-test benches/programs (:mod:`repro.tpg`);
* a content-addressed result store memoising campaign artifacts, with
  checkpointed resumable sharded runs (:mod:`repro.store`);
* a static-analysis subsystem: structural lint, support cones,
  equivalence/dominance fault collapsing and SCOAP testability
  (:mod:`repro.analysis`);
* a unified telemetry subsystem: metrics registry, tracing spans,
  campaign lifecycle events and the trace report tool
  (:mod:`repro.obs`);
* benchmark applications, FIR first (:mod:`repro.apps`).
"""

from repro.analysis import (
    CollapseMap,
    ConeAnalysis,
    GateConeAnalysis,
    LintIssue,
    LintReport,
    ScoapMeasures,
    analyze_cones,
    analyze_gate_cones,
    assert_clean,
    collapse_faults,
    fault_efforts,
    hardest_faults,
    lint_netlist,
    scoap,
)
from repro.core import SCK, SCKContext, current_context
from repro.faults import (
    IncrementalCampaignResult,
    NetlistDiff,
    diff_netlists,
    incremental_stuck_at_campaign,
)
from repro.gates.backends import (
    AUTO_BACKEND,
    BACKEND_ENV,
    DEFAULT_BACKEND,
    list_backends,
    resolve_backend_name,
)
from repro.gates.tune import (
    TuningPlan,
    resolve_chunking,
    resolve_plan,
    resolve_sparse,
)
from repro.obs import (
    METRICS_ENV,
    MetricsRegistry,
    TRACE_ENV,
    emit_event,
    read_trace,
    registry,
    set_kernel_profiling,
    span,
)
from repro.store import (
    CacheKey,
    ResultStore,
    STORE_DIR_ENV,
    STORE_ENV,
    StoreCorruptionWarning,
    open_store,
    resolve_store,
)
from repro.tpg import (
    CompactTestSet,
    FaultDictionary,
    TestSpace,
    build_fault_dictionary,
    compact_test_set,
    emit_self_test_verilog,
    emit_self_test_vhdl,
    emit_vm_self_test,
    generate_tests,
    unit_test_set,
)
from repro.errors import (
    CheckError,
    CompilationError,
    FaultError,
    NetlistError,
    OverflowPolicyError,
    ReproError,
    SchedulingError,
    SimulationError,
    SpecificationError,
)

__version__ = "1.0.0"

__all__ = [
    "SCK",
    "SCKContext",
    "current_context",
    "CollapseMap",
    "ConeAnalysis",
    "LintIssue",
    "LintReport",
    "ScoapMeasures",
    "GateConeAnalysis",
    "analyze_cones",
    "analyze_gate_cones",
    "IncrementalCampaignResult",
    "NetlistDiff",
    "diff_netlists",
    "incremental_stuck_at_campaign",
    "assert_clean",
    "collapse_faults",
    "fault_efforts",
    "hardest_faults",
    "lint_netlist",
    "scoap",
    "AUTO_BACKEND",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "list_backends",
    "resolve_backend_name",
    "TuningPlan",
    "resolve_chunking",
    "resolve_plan",
    "resolve_sparse",
    "METRICS_ENV",
    "MetricsRegistry",
    "TRACE_ENV",
    "emit_event",
    "read_trace",
    "registry",
    "set_kernel_profiling",
    "span",
    "CacheKey",
    "ResultStore",
    "STORE_DIR_ENV",
    "STORE_ENV",
    "StoreCorruptionWarning",
    "open_store",
    "resolve_store",
    "CompactTestSet",
    "FaultDictionary",
    "TestSpace",
    "build_fault_dictionary",
    "compact_test_set",
    "emit_self_test_verilog",
    "emit_self_test_vhdl",
    "emit_vm_self_test",
    "generate_tests",
    "unit_test_set",
    "ReproError",
    "NetlistError",
    "SimulationError",
    "FaultError",
    "CheckError",
    "SpecificationError",
    "SchedulingError",
    "CompilationError",
    "OverflowPolicyError",
    "__version__",
]
