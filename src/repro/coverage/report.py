"""Renderers regenerating the paper's Tables 1 and 2.

Every rendered cell carries its provenance (``exhaustive/gate-sweep``,
``exhaustive/transfer``, ``sampled``...) so the output states exactly
how it was computed -- by default Table 2 is exact at *every* width,
including n = 8 and n = 16 where the paper itself sampled.

Run as a module for a command-line report::

    python -m repro.coverage.report table1 --width 8
    python -m repro.coverage.report table2 --widths 1 2 3 4 8 16
    python -m repro.coverage.report twobit
"""

from __future__ import annotations

import argparse
from typing import Dict, Iterable, List, Optional, Sequence

from repro.coverage.engine import (
    CoverageStats,
    evaluate_adder,
    evaluate_operator,
    theoretical_situations,
)
from repro.coverage.techniques import TECHNIQUES

#: Paper's Table 2 reference values (width -> (tech1, tech2, both) %).
PAPER_TABLE2 = {
    1: (95.31, 96.88, 97.66),
    2: (96.88, 98.44, 98.83),
    3: (97.40, 98.96, 99.22),
    4: (97.66, 99.22, 99.41),
    8: (98.05, 99.61, 99.71),
    16: (98.18, 99.74, 99.80),
}

#: Paper's Table 1 reference values ((operator, technique) -> %).
PAPER_TABLE1 = {
    key: technique.paper_coverage for key, technique in TECHNIQUES.items()
}

#: Full Table 2 width axis; all exact by default since PR 2.
TABLE2_WIDTHS = (1, 2, 3, 4, 8, 16)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(w) for cell, w in zip(cells, widths))


def render_table1(
    width: int = 8,
    operators: Iterable[str] = ("add", "sub", "mul", "div"),
    samples: Optional[int] = None,
    results: Optional[Dict[str, Dict[str, CoverageStats]]] = None,
) -> str:
    """Regenerate Table 1: per-operator technique coverage.

    ``results`` may be supplied (e.g. by a benchmark) to skip
    recomputation; ``samples`` forces the legacy Monte-Carlo estimate
    for cross-checks (by default every operator that has an exact
    evaluator at ``width`` uses it).
    """
    operators = list(operators)
    if results is None:
        results = {
            op: evaluate_operator(op, width, samples=samples) for op in operators
        }
    col_widths = (8, 8, 12, 12, 22)
    lines = [
        f"Table 1 -- overloading techniques and fault coverage (width={width})",
        _format_row(("operator", "tech", "measured %", "paper %", "mode"), col_widths),
    ]
    for op in operators:
        for name, stats in results[op].items():
            paper = PAPER_TABLE1.get((op, name))
            paper_text = f"{paper:.2f}" if paper is not None else "-"
            lines.append(
                _format_row(
                    (
                        op,
                        name,
                        f"{stats.coverage_percent:.2f}",
                        paper_text,
                        stats.provenance,
                    ),
                    col_widths,
                )
            )
    return "\n".join(lines)


def render_table2(
    widths: Iterable[int] = TABLE2_WIDTHS,
    samples: Optional[int] = None,
    cell_netlist: str = "xor3_majority",
    results: Optional[Dict[int, Dict[str, CoverageStats]]] = None,
) -> str:
    """Regenerate Table 2: adder coverage vs operand width.

    Each row ends with the provenance of its numbers; with the default
    ``samples=None`` every width is exact (gate-level sweep for small
    operand spaces, transfer-matrix DP beyond), going one better than
    the paper's own sampled n = 8/16 rows.
    """
    widths = list(widths)
    if results is None:
        results = {
            n: evaluate_adder(n, cell_netlist=cell_netlist, samples=samples)
            for n in widths
        }
    col_widths = (6, 14, 10, 10, 10, 20, 22)
    lines = [
        f"Table 2 -- operator + coverage vs width (cell netlist: {cell_netlist})",
        _format_row(
            (
                "bits",
                "situations",
                "Tech1 %",
                "Tech2 %",
                "Both %",
                "paper (T1/T2/Both)",
                "mode",
            ),
            col_widths,
        ),
    ]
    for n in widths:
        stats = results[n]
        t1, t2, both = (stats["tech1"], stats["tech2"], stats["both"])
        situations = (
            theoretical_situations("add", n) if t1.exhaustive else t1.situations
        )
        paper = PAPER_TABLE2.get(n)
        paper_text = (
            f"{paper[0]:.2f}/{paper[1]:.2f}/{paper[2]:.2f}" if paper else "-"
        )
        lines.append(
            _format_row(
                (
                    n,
                    situations,
                    f"{t1.coverage_percent:.2f}",
                    f"{t2.coverage_percent:.2f}",
                    f"{both.coverage_percent:.2f}",
                    paper_text,
                    t1.provenance,
                ),
                col_widths,
            )
        )
    return "\n".join(lines)


def render_two_bit_analysis(
    cell_netlist: str = "xor3_majority",
    stats: Optional[Dict[str, CoverageStats]] = None,
) -> str:
    """Regenerate the paper's in-text 2-bit adder analysis.

    Paper reference: 216 observable errors out of 1024 situations;
    detection despite a correct result in 352 (Tech1), 384 (Tech2) and
    428 (both) situations; per-fault coverage range [81.90 %, 99.87 %].
    """
    if stats is None:
        stats = evaluate_adder(2, cell_netlist=cell_netlist)
    both = stats["both"]
    lines = [
        "In-text 2-bit adder analysis (paper Section 4.1)",
        f"  situations:               {both.situations} (paper: 1024)",
        f"  observable errors:        {both.observable_errors} (paper: 216)",
        f"  detected-while-correct:   Tech1={stats['tech1'].detected_while_correct} "
        f"Tech2={stats['tech2'].detected_while_correct} "
        f"Both={both.detected_while_correct} (paper: 352/384/428)",
        f"  per-case coverage range:  [{100 * both.per_case_min:.2f}%, "
        f"{100 * both.per_case_max:.2f}%] (paper: [81.90%, 99.87%])",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Coverage table reports")
    parser.add_argument("table", choices=("table1", "table2", "twobit"))
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--widths", type=int, nargs="+", default=list(TABLE2_WIDTHS))
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="force the legacy seeded Monte-Carlo estimate at wide widths "
        "(default: exact evaluation everywhere an exact method exists)",
    )
    parser.add_argument("--netlist", default="xor3_majority")
    args = parser.parse_args(argv)
    if args.table == "table1":
        print(render_table1(width=args.width, samples=args.samples))
    elif args.table == "table2":
        print(
            render_table2(
                widths=args.widths, samples=args.samples, cell_netlist=args.netlist
            )
        )
    else:
        print(render_two_bit_analysis(cell_netlist=args.netlist))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
