"""The checking techniques of Table 1, expressed at the hardware level.

Each operator has up to three techniques:

=========  ===========================  ============================
operator   Tech 1                       Tech 2
=========  ===========================  ============================
``add``    ``op2' = ris - op1``         ``op1' = ris - op2``
           detect ``op2' != op2``       detect ``op1' != op1``
``sub``    ``op1' = ris + op2``         ``ris' = op2 - op1``
           detect ``op1' != op1``       detect ``ris + ris' != 0``
``mul``    ``ris' = (-op1) * op2``      ``ris' = op1 * (-op2)``
           detect ``ris + ris' != 0``   detect ``ris + ris' != 0``
``div``    ``op1' = ris*op2 + rem``     Tech 1 plus the remainder
           detect ``op1' != op1``       range check ``rem < op2``
=========  ===========================  ============================

``both`` (where Table 1 reports it) raises an error when either
technique does.  The *check* operation of add/sub/mul runs through the
**same possibly-faulty unit** as the nominal operation (the paper's
worst case); the final comparison/summation is assumed fault-free (it
maps to a comparator, not the unit under analysis).

Reconstruction note (documented in EXPERIMENTS.md): in fixed-width
modular arithmetic the two division checks printed in Table 1 are
algebraically identical, so this library differentiates Tech 2 by the
remainder range check that the paper's "precision of the inverse
operation" discussion motivates.  The ``both`` entry for ``div`` is
intentionally absent, as in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import FaultError

#: Canonical technique names in display order.
TECHNIQUE_NAMES = ("tech1", "tech2", "both")


@dataclass(frozen=True)
class CheckTechnique:
    """Metadata describing one overloading technique.

    The actual detection math lives in :mod:`repro.coverage.engine` (for
    the hardware worst-case study) and :mod:`repro.core.techniques` (for
    the SCK class); this record carries the shared identity, the paper's
    published fault coverage for Table 1 comparisons, and a relative
    cost weight used by the checker library and the co-design flow.
    """

    operator: str
    name: str
    nominal: str
    check: str
    condition: str
    paper_coverage: float
    extra_ops: int

    def describe(self) -> str:
        return f"{self.operator}/{self.name}: {self.check}; detect {self.condition}"


TECHNIQUES: Dict[Tuple[str, str], CheckTechnique] = {}


def _register(technique: CheckTechnique) -> None:
    TECHNIQUES[(technique.operator, technique.name)] = technique


_register(CheckTechnique("add", "tech1", "ris = op1 + op2", "op2' = ris - op1", "op2' != op2", 97.25, 1))
_register(CheckTechnique("add", "tech2", "ris = op1 + op2", "op1' = ris - op2", "op1' != op1", 98.81, 1))
_register(CheckTechnique("add", "both", "ris = op1 + op2", "both subtractions", "either differs", 99.11, 2))
_register(CheckTechnique("sub", "tech1", "ris = op1 - op2", "op1' = ris + op2", "op1' != op1", 96.85, 1))
_register(CheckTechnique("sub", "tech2", "ris = op1 - op2", "ris' = op2 - op1", "ris + ris' != 0", 94.01, 1))
_register(CheckTechnique("sub", "both", "ris = op1 - op2", "both checks", "either differs", 99.58, 2))
_register(CheckTechnique("mul", "tech1", "ris = op1 * op2", "ris' = (-op1) * op2", "ris + ris' != 0", 96.22, 2))
_register(CheckTechnique("mul", "tech2", "ris = op1 * op2", "ris' = op1 * (-op2)", "ris + ris' != 0", 96.38, 2))
_register(CheckTechnique("mul", "both", "ris = op1 * op2", "both products", "either sum != 0", 97.43, 4))
_register(CheckTechnique("div", "tech1", "ris = op1 / op2", "op1' = ris*op2 + (op1 % op2)", "op1' != op1", 94.33, 2))
_register(CheckTechnique("div", "tech2", "ris = op1 / op2", "op1' plus remainder range", "op1' != op1 or rem >= op2", 97.16, 2))


def techniques_for(operator: str) -> Tuple[CheckTechnique, ...]:
    """All registered techniques of ``operator``, in display order."""
    found = tuple(
        TECHNIQUES[(operator, name)]
        for name in TECHNIQUE_NAMES
        if (operator, name) in TECHNIQUES
    )
    if not found:
        raise FaultError(f"no techniques registered for operator {operator!r}")
    return found
