"""Fault-coverage analysis engine (the paper's Sections 2.1 and 4).

Evaluates, for every arithmetic operator and overloading technique, the
worst-case fault coverage when the checking operation is executed on the
*same* faulty functional unit as the nominal operation:

* :mod:`repro.coverage.situations` -- the paper's situation-count
  formulas;
* :mod:`repro.coverage.techniques` -- the checking techniques of Table 1
  expressed at the hardware level;
* :mod:`repro.coverage.engine` -- exact (gate-sweep / transfer-matrix /
  functional) and Monte-Carlo evaluation, with process sharding;
* :mod:`repro.coverage.transfer` -- the carry-state transfer-matrix DP
  behind the exact wide-width (n = 8, 16) Table 2 rows;
* :mod:`repro.coverage.report` -- renderers regenerating Tables 1 and 2
  and the in-text 2-bit analysis, with per-cell provenance.
"""

from repro.coverage.situations import (
    adder_situations,
    divider_situations,
    multiplier_situations,
)
from repro.coverage.techniques import TECHNIQUES, CheckTechnique, techniques_for
from repro.coverage.engine import (
    CoverageStats,
    GateLevelCoverage,
    evaluate_adder,
    evaluate_divider,
    evaluate_gate_level,
    evaluate_multiplier,
    evaluate_operator,
    evaluate_subtractor,
)
from repro.coverage.report import render_table1, render_table2, render_two_bit_analysis

__all__ = [
    "adder_situations",
    "multiplier_situations",
    "divider_situations",
    "TECHNIQUES",
    "CheckTechnique",
    "techniques_for",
    "CoverageStats",
    "GateLevelCoverage",
    "evaluate_operator",
    "evaluate_adder",
    "evaluate_subtractor",
    "evaluate_multiplier",
    "evaluate_divider",
    "evaluate_gate_level",
    "render_table1",
    "render_table2",
    "render_two_bit_analysis",
]
