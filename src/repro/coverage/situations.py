"""Situation-count formulas for coverage experiments.

The paper sizes the adder experiment as::

    No. of faulty situations = num_faults_1bit * n * 2**(2n)

with ``num_faults_1bit = 32`` -- every faulty cell behaviour, at every
chain position, for every operand pair.  The formula matches the printed
Table 2 rows for n = 1, 2, 3 (128, 1024, 6144); the paper's n = 4 row
(7808) and n >= 8 rows deviate from its own formula (evidently sampled or
pruned), which EXPERIMENTS.md discusses.  This module implements the
formula itself, plus the analogous counts for the other units.
"""

from __future__ import annotations

from repro.arch.cell import NUM_FA_FAULTS
from repro.errors import FaultError


def _check_width(width: int) -> int:
    if width < 1:
        raise FaultError(f"width must be >= 1, got {width}")
    return width


def adder_situations(width: int) -> int:
    """``32 * n * 2**(2n)`` faulty situations of the n-bit adder."""
    n = _check_width(width)
    return NUM_FA_FAULTS * n * (1 << (2 * n))


def subtractor_situations(width: int) -> int:
    """Same universe as the adder (the subtractor reuses its chain)."""
    return adder_situations(width)


def multiplier_situations(width: int) -> int:
    """``32 * n(n-1)/2 * 2**(2n)`` situations of the truncated array."""
    n = _check_width(width)
    cells = n * (n - 1) // 2
    return NUM_FA_FAULTS * cells * (1 << (2 * n))


def divider_situations(width: int) -> int:
    """``32 * (n+1) * (2**n * (2**n - 1))`` situations (divisor != 0)."""
    n = _check_width(width)
    return NUM_FA_FAULTS * (n + 1) * ((1 << n) * ((1 << n) - 1))
