"""Exact / Monte-Carlo worst-case fault-coverage evaluation (Table 2).

For every (faulty cell behaviour, cell location) case of a unit, the
engine computes the nominal operation and its checking operation(s) on
the *same* faulty unit over a set of operand pairs, then classifies each
situation:

* *covered*: the result is correct, or a check fired (the paper's fault
  coverage definition);
* *observable error*: the result is wrong (regardless of detection);
* *detected while correct*: the result is right but a check fired --
  the early-detection property the paper highlights for the 2-bit adder
  (352/384/428 of 1024 situations).

Evaluation methods
------------------

Each evaluator picks (or is told) one of four methods, recorded in
:attr:`CoverageStats.method` so reports can state exactly how every
Table 2 cell was computed:

``"gate"`` (provenance ``gate-sweep``)
    The batched path for every operator: the whole test architecture --
    nominal unit, on-unit checking replicas (the divider's unrolled
    iterations) and fault-free comparators -- is lowered once through
    :class:`~repro.gates.compile.CompiledNetlist` and every collapsed
    fault case is simulated as a multi-site fault group by the
    bit-parallel engine over word-packed exhaustive operand sweeps,
    streamed in vector chunks (:mod:`repro.arch.testbench`).  Masked
    universes (the divider's zero-divisor exclusion) apply valid-lane
    words before counting.  Exact; the default whenever the operand
    space fits ``exhaustive_limit`` (chain operators) or the array cap
    ``DEFAULT_ARRAY_GATE_LIMIT`` (``mul``/``div``, n <= 8).

``"transfer"``
    The carry-state transfer-matrix dynamic program
    (:mod:`repro.coverage.transfer`): exact situation counts for any
    width in microseconds, which is how n = 16 (a ``2**32``-pair operand
    space no sweep can touch) is evaluated *exactly* instead of sampled.
    Default for wide chain operators.

``"functional"``
    The seed LUT-splicing evaluators -- one vectorised NumPy pass per
    fault case over explicit operand arrays.  Exact when the space fits
    ``exhaustive_limit``; kept as the differential-testing reference
    for every operator.

``"sampled"``
    The legacy seeded Monte-Carlo estimate, demoted to an explicit
    cross-check: it only runs on explicit ``samples=`` opt-in or when
    no exact method exists at all (``mul``/``div`` beyond the array
    cap, whose architectures have no chain decomposition for the
    transfer DP).  Because the operand sample is reseeded per shard
    from the same ``seed``, sampled runs are shard-invariant too.

Sharding: every method computes exact integer counts per fault case
(or deterministic seeded counts, for the sampled estimator), so
campaigns shard across a ``ProcessPoolExecutor`` (``workers=``,
auto-selected by universe size) with bit-identical results for any
worker count; the gate sweep additionally tiles big operand spaces by
*word range* (:func:`repro.faults.sharding.shard_grid`) when workers
outnumber fault cases -- see :mod:`repro.faults.sharding`.

:func:`evaluate_gate_level` complements the functional-level evaluators
with a structural one: the raw stuck-at detectability of a gate-level
netlist under a vector set, computed by the batched bit-parallel engine
(:mod:`repro.gates.engine`) in one pass over the whole fault universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.bitops import mask_of
from repro.arch.cell import DEFAULT_CELL_NETLIST, collapsed_cell_library
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.arch.testbench import (
    CHAIN_OPERATORS,
    GATE_OPERATORS,
    table2_architecture,
)
from repro.coverage import situations as situation_counts
from repro.coverage.transfer import case_flag_counts
from repro.errors import SimulationError
from repro.faults.sharding import (
    resolve_workers,
    run_sharded,
    shard_bounds,
    shard_grid,
)
from repro.faults.universe import (
    adder_fault_cases,
    divider_fault_cases,
    multiplier_fault_cases,
)
from repro.gates.backends import AUTO_BACKEND, resolve_backend_name
from repro.gates.compile import compile_netlist
from repro.gates.engine import (
    StuckAtCampaignResult,
    engine_for,
    matrix_word_chunk,
    popcount_words,
)
from repro.gates.netlist import Netlist
from repro.gates.tune import resolve_chunking, resolve_plan
from repro.obs.trace import span as obs_span
from repro.store import (
    CacheKey,
    ResultStore,
    digest_cell_library,
    digest_netlist,
    digest_params,
    resolve_store,
    run_checkpointed,
)

#: Widths up to this operand-space size are enumerated exhaustively.
DEFAULT_EXHAUSTIVE_LIMIT = 1 << 20
#: Auto-selection cap of the gate sweep for the 2-D array operators
#: (``mul``/``div``): their test architectures grow quadratically /
#: as the unrolled iteration count, so the default sweep stops at
#: ``4**8`` operand pairs (n = 8, the paper's widest published mul/div
#: row).  Explicit ``method="gate"`` ignores the cap.
DEFAULT_ARRAY_GATE_LIMIT = 1 << 16
#: Sample count used when the sampled estimator runs without an explicit
#: ``samples=`` (wide multiplier/divider cases, which have no exact path).
DEFAULT_SAMPLES = 4096
DEFAULT_SEED = 20050307  # DATE'05 conference date

#: Streaming chunk sizes of the gate-level sweep: vectors move through
#: the fault matrix ``GATE_WORD_CHUNK`` words (x64 vectors) at a time,
#: fault groups ``GATE_FAULT_CHUNK`` rows at a time.  These are the
#: *defaults* of the shared resolution rule
#: (:func:`repro.gates.tune.resolve_chunking`): an explicit keyword or
#: the ``REPRO_WORD_CHUNK``/``REPRO_FAULT_CHUNK`` environment variables
#: override them.
GATE_WORD_CHUNK = 256
GATE_FAULT_CHUNK = 64

#: Recognised ``method=`` values of the Table 2 evaluators.
EVALUATION_METHODS = ("auto", "gate", "transfer", "functional", "sampled")


@dataclass
class CoverageStats:
    """Aggregated coverage statistics for one (operator, technique, width).

    ``exhaustive`` states whether the full operand space was enumerated;
    ``method`` names the evaluation path that produced the numbers (see
    the module docstring), so every reported cell carries its
    provenance.
    """

    operator: str
    technique: str
    width: int
    situations: int
    covered: int
    observable_errors: int
    detected_while_correct: int
    per_case_min: float
    per_case_max: float
    exhaustive: bool
    method: str = "functional"

    @property
    def coverage(self) -> float:
        """Fraction of situations that are covered (correct or flagged)."""
        return self.covered / self.situations if self.situations else 1.0

    @property
    def coverage_percent(self) -> float:
        return 100.0 * self.coverage

    @property
    def provenance(self) -> str:
        """Human-readable evaluation mode, e.g. ``exhaustive/gate-sweep``."""
        mode = "exhaustive" if self.exhaustive else "sampled"
        detail = "gate-sweep" if self.method == "gate" else self.method
        if detail == mode:
            return mode
        return f"{mode}/{detail}"

    def describe(self) -> str:
        return (
            f"{self.operator}/{self.technique} n={self.width} "
            f"({self.provenance}): "
            f"{self.coverage_percent:.2f}% of {self.situations} situations, "
            f"{self.observable_errors} observable errors, "
            f"{self.detected_while_correct} detected-while-correct"
        )


class _Accumulator:
    """Per-technique running tallies across fault cases.

    All tallies are integers; the two entry points -- boolean vectors
    (:meth:`update`) and pre-reduced counts (:meth:`update_counts`) --
    produce identical state, which is what makes the functional, gate
    and transfer evaluators bit-identical and the sharded merges exact.
    """

    def __init__(self, names: Iterable[str]) -> None:
        self.names = tuple(names)
        self.situations = 0
        self.observable = 0
        self.covered = {name: 0 for name in self.names}
        self.detected_correct = {name: 0 for name in self.names}
        self.case_min = {name: 1.0 for name in self.names}
        self.case_max = {name: 0.0 for name in self.names}

    def update(self, correct: np.ndarray, detections: Dict[str, np.ndarray]) -> None:
        """Fold in one fault case given per-situation boolean vectors."""
        per_name = {}
        for name in self.names:
            det = detections[name]
            per_name[name] = (
                int(np.sum(correct | det)),
                int(np.sum(correct & det)),
            )
        self.update_counts(correct.size, int(np.sum(correct)), per_name)

    def update_counts(
        self,
        count: int,
        n_correct: int,
        per_name: Mapping[str, Tuple[int, int]],
        repeat: int = 1,
    ) -> None:
        """Fold in one fault case given exact (covered, detected-correct)
        counts per technique; ``repeat`` broadcasts a collapsed case's
        verdict to its whole equivalence class."""
        self.situations += count * repeat
        self.observable += (count - n_correct) * repeat
        for name in self.names:
            covered, det_correct = per_name[name]
            self.covered[name] += covered * repeat
            self.detected_correct[name] += det_correct * repeat
            frac = covered / count
            self.case_min[name] = min(self.case_min[name], frac)
            self.case_max[name] = max(self.case_max[name], frac)

    def stats(
        self, operator: str, width: int, exhaustive: bool, method: str
    ) -> Dict[str, CoverageStats]:
        return {
            name: CoverageStats(
                operator=operator,
                technique=name,
                width=width,
                situations=self.situations,
                covered=self.covered[name],
                observable_errors=self.observable,
                detected_while_correct=self.detected_correct[name],
                per_case_min=self.case_min[name],
                per_case_max=self.case_max[name],
                exhaustive=exhaustive,
                method=method,
            )
            for name in self.names
        }


def _operand_pairs(
    width: int,
    exhaustive_limit: int,
    samples: Optional[int],
    seed: int,
    exclude_zero_divisor: bool = False,
    force_sampled: bool = False,
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Operand vectors: exhaustive when affordable, else seeded samples."""
    space = 1 << (2 * width)
    mask = mask_of(width)
    if space <= exhaustive_limit and not force_sampled:
        combos = np.arange(space, dtype=np.uint64)
        a = combos & np.uint64(mask)
        b = (combos >> np.uint64(width)) & np.uint64(mask)
        exhaustive = True
        if exclude_zero_divisor:
            keep = b != 0
            a, b = a[keep], b[keep]
    else:
        n_samples = samples if samples is not None else DEFAULT_SAMPLES
        rng = np.random.default_rng(seed)
        a = rng.integers(0, mask + 1, size=n_samples, dtype=np.uint64)
        low = 1 if exclude_zero_divisor else 0
        b = rng.integers(low, mask + 1, size=n_samples, dtype=np.uint64)
        exhaustive = False
    return a, b, exhaustive


# ----------------------------------------------------------------------
# Functional (LUT-splicing) per-operator kernels
# ----------------------------------------------------------------------
_CaseStream = Iterator[Tuple[np.ndarray, Dict[str, np.ndarray]]]


def _adder_cases(
    width: int, cell_netlist: str, a: np.ndarray, b: np.ndarray,
    case_lo: int, case_hi: int,
) -> _CaseStream:
    mask = np.uint64(mask_of(width))
    golden = (a + b) & mask
    for case in adder_fault_cases(width, cell_netlist)[case_lo:case_hi]:
        unit = RippleCarryAdderUnit(width, case.cell, case.position)
        ris, _ = unit.add(a, b)
        correct = ris == golden
        check1, _ = unit.sub(ris, a)  # op2' = ris - op1
        check2, _ = unit.sub(ris, b)  # op1' = ris - op2
        det1 = check1 != b
        det2 = check2 != a
        yield correct, {"tech1": det1, "tech2": det2, "both": det1 | det2}


def _subtractor_cases(
    width: int, cell_netlist: str, a: np.ndarray, b: np.ndarray,
    case_lo: int, case_hi: int,
) -> _CaseStream:
    mask = np.uint64(mask_of(width))
    golden = (a - b) & mask
    for case in adder_fault_cases(width, cell_netlist)[case_lo:case_hi]:
        unit = RippleCarryAdderUnit(width, case.cell, case.position)
        ris, _ = unit.sub(a, b)
        correct = ris == golden
        check1, _ = unit.add(ris, b)  # op1' = ris + op2 (same unit)
        det1 = check1 != a
        ris2, _ = unit.sub(b, a)  # ris' = op2 - op1 (same unit)
        det2 = ((ris + ris2) & mask) != 0
        yield correct, {"tech1": det1, "tech2": det2, "both": det1 | det2}


def _multiplier_cases(
    width: int, cell_netlist: str, a: np.ndarray, b: np.ndarray,
    case_lo: int, case_hi: int,
) -> _CaseStream:
    mask = np.uint64(mask_of(width))
    golden = (a * b) & mask
    neg_a = (np.uint64(0) - a) & mask
    neg_b = (np.uint64(0) - b) & mask
    for case in multiplier_fault_cases(width, cell_netlist)[case_lo:case_hi]:
        unit = ArrayMultiplierUnit(width, case.cell, case.row, case.column)
        ris = unit.mul(a, b)
        correct = ris == golden
        ris1 = unit.mul(neg_a, b)  # (-op1) * op2, same unit
        ris2 = unit.mul(a, neg_b)  # op1 * (-op2), same unit
        det1 = ((ris + ris1) & mask) != 0
        det2 = ((ris + ris2) & mask) != 0
        yield correct, {"tech1": det1, "tech2": det2, "both": det1 | det2}


def _divider_cases(
    width: int, cell_netlist: str, a: np.ndarray, b: np.ndarray,
    case_lo: int, case_hi: int,
) -> _CaseStream:
    mask = np.uint64(mask_of(width))
    golden_q = a // b
    golden_r = a % b
    for case in divider_fault_cases(width, cell_netlist)[case_lo:case_hi]:
        unit = RestoringDividerUnit(width, case.cell, case.position)
        q, r = unit.divmod(a, b)
        correct = (q == golden_q) & (r == golden_r)
        det1 = ((q * b + r) & mask) != a
        det2 = det1 | (r >= b)
        yield correct, {"tech1": det1, "tech2": det2}


@dataclass(frozen=True)
class _OperatorSpec:
    names: Tuple[str, ...]
    kernel: Callable[..., _CaseStream]
    case_list: Callable[[int, str], list]
    exclude_zero_divisor: bool = False


_SPECS: Dict[str, _OperatorSpec] = {
    "add": _OperatorSpec(("tech1", "tech2", "both"), _adder_cases, adder_fault_cases),
    "sub": _OperatorSpec(("tech1", "tech2", "both"), _subtractor_cases, adder_fault_cases),
    "mul": _OperatorSpec(("tech1", "tech2", "both"), _multiplier_cases, multiplier_fault_cases),
    "div": _OperatorSpec(
        ("tech1", "tech2"), _divider_cases, divider_fault_cases, exclude_zero_divisor=True
    ),
}

#: Per-case exact counts, picklable for shard merges:
#: (multiplicity, situation count, correct count, {technique: (covered,
#: detected-while-correct)}).
_CaseCounts = Tuple[int, int, int, Dict[str, Tuple[int, int]]]


def _functional_case_counts(
    operator: str,
    width: int,
    cell_netlist: str,
    exhaustive_limit: int,
    samples: Optional[int],
    seed: int,
    force_sampled: bool,
    case_lo: int,
    case_hi: int,
) -> Tuple[bool, List[_CaseCounts]]:
    """Shard worker: functional counts for fault cases [case_lo, case_hi)."""
    spec = _SPECS[operator]
    a, b, exhaustive = _operand_pairs(
        width, exhaustive_limit, samples, seed, spec.exclude_zero_divisor, force_sampled
    )
    out: List[_CaseCounts] = []
    for correct, dets in spec.kernel(width, cell_netlist, a, b, case_lo, case_hi):
        per = {
            name: (
                int(np.sum(correct | dets[name])),
                int(np.sum(correct & dets[name])),
            )
            for name in spec.names
        }
        out.append((1, correct.size, int(np.sum(correct)), per))
    return exhaustive, out


def _run_functional(
    operator: str,
    width: int,
    cell_netlist: str,
    exhaustive_limit: int,
    samples: Optional[int],
    seed: int,
    workers: Optional[int],
    force_sampled: bool,
    store: Optional[ResultStore] = None,
) -> Dict[str, CoverageStats]:
    spec = _SPECS[operator]
    n_cases = len(spec.case_list(width, cell_netlist))
    space = 1 << (2 * width)
    exhaustive = space <= exhaustive_limit and not force_sampled
    per_case = (
        space if exhaustive
        else (samples if samples is not None else DEFAULT_SAMPLES)
    )
    method = "functional" if exhaustive else "sampled"
    key = None
    if store is not None:
        key = CacheKey(
            kind="coverage",
            netlist=digest_params(operator=operator, width=width),
            universe=digest_cell_library(cell_netlist),
            space=(
                digest_params(exhaustive=True)
                if exhaustive
                else digest_params(samples=per_case, seed=seed)
            ),
            method=method,
            backend="numpy",
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    n_workers = resolve_workers(workers, n_cases, cost=n_cases * per_case)
    shards = run_sharded(
        _functional_case_counts,
        [
            (operator, width, cell_netlist, exhaustive_limit, samples, seed,
             force_sampled, lo, hi)
            for lo, hi in shard_bounds(n_cases, n_workers)
        ],
    )
    acc = _Accumulator(spec.names)
    for _, chunk in shards:
        for repeat, count, n_correct, per in chunk:
            acc.update_counts(count, n_correct, per, repeat=repeat)
    result = acc.stats(operator, width, exhaustive, method)
    if store is not None:
        store.put(key, result, {"n_cases": n_cases, "workers": n_workers})
    return result


# ----------------------------------------------------------------------
# Batched gate-level sweep (every operator with a test architecture)
# ----------------------------------------------------------------------
#: Word sweeps at least this long shard the (case x word) grid by *word
#: range first*: every tile spans all fault cases over one word slice,
#: whose cost is uniform (per-case cost is not -- reference classes are
#: free), so wide explicit ``method="gate"`` runs balance across
#: workers even when cases outnumber them.  2**12 words = n >= 9 for
#: the chain operators' ``2**(2n-6)``-word sweeps.
GATE_GRID_WORD_FIRST = 1 << 12


def _gate_case_counts(
    operator: str,
    width: int,
    cell_netlist: str,
    word_chunk: int,
    fault_chunk: int,
    case_lo: int,
    case_hi: int,
    word_lo: int,
    word_hi: int,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[_CaseCounts]:
    """Shard worker: sweep counts for collapsed cases [case_lo, case_hi)
    over sweep words [word_lo, word_hi).

    Rebuilds the (cached) test architecture and compiled engine locally,
    then streams the word-packed operand sweep through the fault-group
    matrix chunk by chunk, reducing packed classification masks to
    counts via popcount -- vectors are never unpacked.  Masked universes
    (the divider's zero-divisor exclusion) apply the architecture's
    valid-lane words before counting, so partial word ranges produce
    exact partial counts the caller sums back together.
    """
    arch = table2_architecture(operator, width, cell_netlist)
    engine = engine_for(arch.netlist, backend)
    names = _SPECS[operator].names
    rep_cases = [
        (group, position)
        for group in collapsed_cell_library(cell_netlist)
        for position in arch.positions
    ][case_lo:case_hi]
    range_count = arch.valid_count(word_lo, word_hi)
    results: List[Optional[_CaseCounts]] = [None] * len(rep_cases)
    sim_indices: List[int] = []
    fault_groups = []
    for k, (group, position) in enumerate(rep_cases):
        if group.is_reference:
            # LUT identical to the fault-free cell: every situation is
            # correct and no check fires.  No simulation needed.
            per = {name: (range_count, 0) for name in names}
            results[k] = (group.multiplicity, range_count, range_count, per)
        else:
            sim_indices.append(k)
            fault_groups.append(
                arch.fault_group(group.representative.fault.fault, position)
            )
    n_result = arch.n_result_rows
    detect_names = list(arch.detect_rows)
    # correct, then (covered, detected-while-correct) per technique.
    tallies = np.zeros((len(sim_indices), 1 + 2 * len(names)), dtype=np.int64)
    fault_chunk = max(1, fault_chunk)
    row_cells = engine.compiled.n_nets * (min(fault_chunk, max(1, len(fault_groups))) + 1)
    word_chunk = matrix_word_chunk(row_cells, word_chunk, matrix_budget)
    for chunk_lo in range(word_lo, word_hi, word_chunk):
        chunk_hi = min(chunk_lo + word_chunk, word_hi)
        rows = arch.input_rows(chunk_lo, chunk_hi)
        valid = arch.valid_words(chunk_lo, chunk_hi, rows=rows)
        for lo in range(0, len(fault_groups), fault_chunk):
            hi = min(lo + fault_chunk, len(fault_groups))
            out = engine.run_fault_groups(rows, fault_groups[lo:hi])
            ris = out[:n_result, :-1, :]
            golden = out[:n_result, -1:, :]
            correct = ~np.bitwise_or.reduce(ris ^ golden, axis=0)
            dets = {name: out[row, :-1, :] for name, row in arch.detect_rows.items()}
            if valid is not None:
                correct = correct & valid
                dets = {name: det & valid for name, det in dets.items()}
            for name in names:
                if name not in dets:
                    # Derived flag (``both``): OR of the emitted ones.
                    dets[name] = np.bitwise_or.reduce(
                        [dets[d] for d in detect_names], axis=0
                    )
            block = tallies[lo:hi]
            block[:, 0] += popcount_words(correct)
            for j, name in enumerate(names):
                det = dets[name]
                block[:, 1 + 2 * j] += popcount_words(correct | det)
                block[:, 2 + 2 * j] += popcount_words(correct & det)
    for row, k in enumerate(sim_indices):
        group, _ = rep_cases[k]
        counts = [int(v) for v in tallies[row]]
        per = {
            name: (counts[1 + 2 * j], counts[2 + 2 * j])
            for j, name in enumerate(names)
        }
        results[k] = (group.multiplicity, range_count, counts[0], per)
    # Every slot is filled (reference cases inline, simulated ones just
    # above); the merge relies on positional alignment with the case
    # range, so return the list as-is.
    return results


def _merge_gate_shards(
    grid: List[Tuple[int, int, int, int]], shards: List[List[_CaseCounts]]
) -> List[_CaseCounts]:
    """Merge grid-sharded sweep counts back into one entry per case.

    Counts from word-range tiles of the same fault case sum (they are
    exact integer counts over disjoint vector ranges); the result is in
    global case order, so the merge is bit-identical for any grid shape.
    """
    merged: Dict[int, List] = {}
    for (case_lo, case_hi, _, _), chunk in zip(grid, shards):
        if len(chunk) != case_hi - case_lo:
            raise SimulationError(
                f"gate shard returned {len(chunk)} case counts for range "
                f"[{case_lo}, {case_hi}); merge would misalign"
            )
        for k, (repeat, count, n_correct, per) in zip(range(case_lo, case_hi), chunk):
            entry = merged.get(k)
            if entry is None:
                merged[k] = [repeat, count, n_correct, dict(per)]
            else:
                entry[1] += count
                entry[2] += n_correct
                for name, (covered, det_correct) in per.items():
                    prev_cov, prev_dc = entry[3][name]
                    entry[3][name] = (prev_cov + covered, prev_dc + det_correct)
    return [
        (repeat, count, n_correct, per)
        for repeat, count, n_correct, per in (merged[k] for k in sorted(merged))
    ]


def _run_gate(
    operator: str,
    width: int,
    cell_netlist: str,
    workers: Optional[int],
    word_chunk: Optional[int],
    fault_chunk: Optional[int],
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store: Optional[ResultStore] = None,
) -> Dict[str, CoverageStats]:
    if operator not in GATE_OPERATORS:
        raise SimulationError(
            f"the gate-level sweep covers {GATE_OPERATORS}, not {operator!r}"
        )
    arch = table2_architecture(operator, width, cell_netlist)
    n_cases = len(collapsed_cell_library(cell_netlist)) * len(arch.positions)
    word_chunk, fault_chunk = resolve_chunking(
        word_chunk,
        fault_chunk,
        default_word_chunk=GATE_WORD_CHUNK,
        default_fault_chunk=GATE_FAULT_CHUNK,
    )
    backend = resolve_backend_name(backend, allow_auto=True)
    if backend == AUTO_BACKEND:
        # The sweep's universe sizes are known exactly here, so the
        # autotuner plans on them; workers get the concrete name.
        backend = resolve_plan(
            compile_netlist(arch.netlist),
            backend=AUTO_BACKEND,
            n_groups=n_cases,
            n_words=arch.n_words,
            word_chunk=word_chunk,
            fault_chunk=fault_chunk,
            matrix_budget=matrix_budget,
        ).backend
    key = None
    if store is not None:
        # The final key covers everything that determines the numbers
        # plus the hashed campaign parameters -- but *not* the worker
        # count or grid shape, so any sharding reuses the same entry.
        key = CacheKey(
            kind="coverage",
            netlist=digest_netlist(arch.netlist),
            universe=digest_cell_library(cell_netlist),
            space=digest_params(exhaustive=True),
            method="gate",
            backend=backend,
            params=digest_params(
                word_chunk=word_chunk,
                fault_chunk=fault_chunk,
                matrix_budget=matrix_budget,
            ),
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    n_workers = resolve_workers(workers, n_cases, cost=n_cases * arch.n_vectors)
    grid = shard_grid(
        n_cases,
        arch.n_words,
        n_workers,
        word_first=arch.n_words >= GATE_GRID_WORD_FIRST,
    )
    arg_tuples = [
        (operator, width, cell_netlist, word_chunk, fault_chunk,
         case_lo, case_hi, word_lo, word_hi, matrix_budget, backend)
        for case_lo, case_hi, word_lo, word_hi in grid
    ]
    if store is not None:
        shards = run_checkpointed(
            _gate_case_counts,
            arg_tuples,
            [key.with_shard(*span) for span in grid],
            store,
        )
    else:
        shards = run_sharded(_gate_case_counts, arg_tuples)
    acc = _Accumulator(_SPECS[operator].names)
    for repeat, count, n_correct, per in _merge_gate_shards(grid, shards):
        acc.update_counts(count, n_correct, per, repeat=repeat)
    result = acc.stats(operator, width, True, "gate")
    if store is not None:
        store.put(key, result, {"grid": len(grid), "workers": n_workers})
    return result


# ----------------------------------------------------------------------
# Transfer-matrix exact wide widths (chain operators)
# ----------------------------------------------------------------------
def _run_transfer(
    operator: str, width: int, cell_netlist: str,
    store: Optional[ResultStore] = None,
) -> Dict[str, CoverageStats]:
    if operator not in CHAIN_OPERATORS:
        raise SimulationError(
            f"transfer evaluation covers {CHAIN_OPERATORS}, not {operator!r}"
        )
    key = None
    if store is not None:
        key = CacheKey(
            kind="coverage",
            netlist=digest_params(operator=operator, width=width),
            universe=digest_cell_library(cell_netlist),
            space=digest_params(exhaustive=True),
            method="transfer",
            backend="numpy",
        )
        cached = store.get(key)
        if cached is not None:
            return cached
    acc = _Accumulator(_SPECS[operator].names)
    space = 1 << (2 * width)
    for group in collapsed_cell_library(cell_netlist):
        cell = group.representative
        for position in range(width):
            flags = case_flag_counts(
                operator, width, position, cell.sum_lut, cell.carry_lut
            )
            # flags index: correct | d1 << 1 | d2 << 2.
            n_correct = int(flags[1::2].sum())
            per = {
                "tech1": (space - int(flags[0] + flags[4]), int(flags[3] + flags[7])),
                "tech2": (space - int(flags[0] + flags[2]), int(flags[5] + flags[7])),
                "both": (space - int(flags[0]), int(flags[3] + flags[5] + flags[7])),
            }
            acc.update_counts(space, n_correct, per, repeat=group.multiplicity)
    result = acc.stats(operator, width, True, "transfer")
    if store is not None:
        store.put(key, result)
    return result


# ----------------------------------------------------------------------
# Method resolution and the public evaluators
# ----------------------------------------------------------------------
def _evaluate(
    operator: str,
    width: int,
    cell_netlist: str,
    exhaustive_limit: int,
    samples: Optional[int],
    seed: int,
    method: str,
    workers: Optional[int],
    word_chunk: Optional[int],
    fault_chunk: Optional[int],
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    if method not in EVALUATION_METHODS:
        raise SimulationError(
            f"unknown method {method!r}; choose from {EVALUATION_METHODS}"
        )
    store = resolve_store(store)
    space = 1 << (2 * width)
    if method == "auto":
        if operator in CHAIN_OPERATORS:
            if space <= exhaustive_limit:
                method = "gate"
            elif samples is None:
                method = "transfer"
            else:
                method = "sampled"
        elif space <= min(exhaustive_limit, DEFAULT_ARRAY_GATE_LIMIT):
            method = "gate"
        else:
            method = "sampled"
    with obs_span(
        "coverage_evaluate", operator=operator, width=width, method=method
    ):
        if method == "gate":
            return _run_gate(
                operator, width, cell_netlist, workers, word_chunk,
                fault_chunk, matrix_budget, backend, store,
            )
        if method == "transfer":
            return _run_transfer(operator, width, cell_netlist, store)
        return _run_functional(
            operator,
            width,
            cell_netlist,
            exhaustive_limit,
            samples,
            seed,
            workers,
            force_sampled=method == "sampled",
            store=store,
        )


def evaluate_adder(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    method: str = "auto",
    workers: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``+`` (Table 2).

    The nominal ``ris = op1 + op2`` and both checking subtractions run
    through the same faulty adder chain; every 32-fault x ``width``-
    position case is classified over the operand space.  By default the
    evaluation is *exact at every width*: the batched gate-level sweep
    when ``4**width`` fits ``exhaustive_limit``, the transfer-matrix DP
    beyond (n = 8 and 16 included).  Sampling only happens on explicit
    ``samples=`` opt-in.  ``workers`` shards fault cases across
    processes (auto by universe size) with bit-identical results.
    Returns one :class:`CoverageStats` per technique
    (``tech1``/``tech2``/``both``).
    """
    return _evaluate(
        "add", width, cell_netlist, exhaustive_limit, samples, seed,
        method, workers, word_chunk, fault_chunk, matrix_budget, backend,
        store,
    )


def evaluate_subtractor(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    method: str = "auto",
    workers: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``-``.

    ``ris = op1 - op2`` through the faulty chain; Tech 1 re-adds
    (``op1' = ris + op2``), Tech 2 computes the reversed difference
    (``ris' = op2 - op1``) on the same unit and tests ``ris + ris' == 0``
    (final summation fault-free, as it maps onto the comparator).
    Method selection, sharding and return type as for
    :func:`evaluate_adder`.
    """
    return _evaluate(
        "sub", width, cell_netlist, exhaustive_limit, samples, seed,
        method, workers, word_chunk, fault_chunk, matrix_budget, backend,
        store,
    )


def evaluate_multiplier(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    method: str = "auto",
    workers: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``*``.

    Fixed-width products: the identity ``op1*op2 + (-op1)*op2 == 0``
    holds modulo ``2**width``, so the checking product runs through the
    same faulty array and the final summation/comparison is fault-free.
    By default the batched gate-level sweep evaluates the truncated
    ripple-row array *exactly* up to n = 8
    (``DEFAULT_ARRAY_GATE_LIMIT``); the 2-D array has no chain
    decomposition for the transfer DP, so wider widths fall back to the
    seeded sampled estimate (``method`` records which).  Sharding as
    for :func:`evaluate_adder`.
    """
    if width < 2:
        raise SimulationError("multiplier coverage needs width >= 2")
    return _evaluate(
        "mul", width, cell_netlist, exhaustive_limit, samples, seed,
        method, workers, word_chunk, fault_chunk, matrix_budget, backend,
        store,
    )


def evaluate_divider(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    method: str = "auto",
    workers: Optional[int] = None,
    word_chunk: Optional[int] = None,
    fault_chunk: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``/``.

    The quotient and remainder both come from the faulty divider; the
    reconstruction check ``ris*op2 + rem == op1`` uses fault-free
    multiply/add (different unit classes).  Tech 2 additionally enforces
    the remainder range ``rem < op2`` -- the paper's "precision of the
    inverse operation" concern; see :mod:`repro.coverage.techniques`.
    Zero divisors are excluded from the operand space (the gate sweep
    masks them out of the packed vector words).  By default the
    unrolled gate-level sweep is exact up to n = 8; like the
    multiplier, wider widths use the sampled estimate.
    """
    return _evaluate(
        "div", width, cell_netlist, exhaustive_limit, samples, seed,
        method, workers, word_chunk, fault_chunk, matrix_budget, backend,
        store,
    )


@dataclass
class GateLevelCoverage:
    """Stuck-at detectability of one netlist under a vector set.

    ``detected``/``total`` count the (uncollapsed) fault universe;
    ``equivalence_groups`` and ``simulated_runs`` report how much work
    the structural collapsing and fault dropping actually saved.
    """

    netlist: str
    total: int
    detected: int
    n_vectors: int
    exhaustive: bool
    equivalence_groups: int
    simulated_runs: int

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0

    @property
    def coverage_percent(self) -> float:
        return 100.0 * self.coverage

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"{self.netlist} gate-level ({mode}): "
            f"{self.detected}/{self.total} stuck-at faults detected "
            f"({self.coverage_percent:.2f}%) over {self.n_vectors} vectors"
        )


def evaluate_gate_level(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]] = None,
    collapse: Union[bool, str] = True,
    fault_dropping: bool = True,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
    sparse: Optional[bool] = None,
) -> Tuple[GateLevelCoverage, StuckAtCampaignResult]:
    """Batched stuck-at coverage of a gate-level netlist.

    The entire stem+branch fault universe is simulated in one
    bit-parallel pass against a shared golden run; by default the
    vector set is exhaustive over the primary inputs (the paper's
    full-adder universe is 32 faults against 8 vectors).  ``collapse``
    accepts any mode of
    :func:`~repro.gates.faults.resolve_collapse_mode` --
    ``"dominance"`` simulates fewer representatives and expands
    detection back bit-identically, so the coverage stats never change,
    only ``simulated_runs``.  ``workers`` shards the fault list across
    processes (auto by universe size) and ``backend`` selects the
    execution backend, both bit-identically.  ``sparse`` selects the
    cone-sparse execution tier (``None`` auto-resolves; see
    :func:`repro.gates.tune.resolve_sparse`), also bit-identically.
    Returns the aggregate stats plus the raw campaign result.
    """
    from repro.faults.injector import run_sharded_stuck_at_campaign

    raw = run_sharded_stuck_at_campaign(
        netlist,
        vectors=vectors,
        collapse=collapse,
        fault_dropping=fault_dropping,
        workers=workers,
        backend=backend,
        store=store,
        sparse=sparse,
    )
    stats = GateLevelCoverage(
        netlist=netlist.name,
        total=raw.n_faults,
        detected=raw.detected_count,
        n_vectors=raw.n_vectors,
        exhaustive=vectors is None,
        equivalence_groups=len(raw.groups),
        simulated_runs=raw.n_simulated_runs,
    )
    return stats, raw


_EVALUATORS = {
    "add": evaluate_adder,
    "sub": evaluate_subtractor,
    "mul": evaluate_multiplier,
    "div": evaluate_divider,
}


def evaluate_operator(
    operator: str,
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    method: str = "auto",
    workers: Optional[int] = None,
    matrix_budget: Optional[int] = None,
    backend: Optional[str] = None,
    store=None,
) -> Dict[str, CoverageStats]:
    """Dispatch to the per-operator evaluator by name.

    Accepts the same method/sharding knobs as the individual evaluators
    and returns their per-technique :class:`CoverageStats` dict.
    """
    try:
        evaluator = _EVALUATORS[operator]
    except KeyError:
        raise SimulationError(
            f"unknown operator {operator!r}; choose from {sorted(_EVALUATORS)}"
        ) from None
    return evaluator(
        width,
        cell_netlist=cell_netlist,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
        seed=seed,
        method=method,
        workers=workers,
        matrix_budget=matrix_budget,
        backend=backend,
        store=store,
    )


def theoretical_situations(operator: str, width: int) -> int:
    """The paper-style situation count formula for ``operator``."""
    if operator == "add":
        return situation_counts.adder_situations(width)
    if operator == "sub":
        return situation_counts.subtractor_situations(width)
    if operator == "mul":
        return situation_counts.multiplier_situations(width)
    if operator == "div":
        return situation_counts.divider_situations(width)
    raise SimulationError(f"unknown operator {operator!r}")
