"""Exhaustive / Monte-Carlo worst-case fault-coverage evaluation.

For every (faulty cell behaviour, cell location) case of a unit, the
engine computes the nominal operation and its checking operation(s) on
the *same* faulty unit over a set of operand pairs, then classifies each
situation:

* *covered*: the result is correct, or a check fired (the paper's fault
  coverage definition);
* *observable error*: the result is wrong (regardless of detection);
* *detected while correct*: the result is right but a check fired --
  the early-detection property the paper highlights for the 2-bit adder
  (352/384/428 of 1024 situations).

Widths whose full operand space fits under ``exhaustive_limit`` are
enumerated exactly (Table 2's n = 1..4); larger widths are sampled with
a seeded generator (n = 8, 16), mirroring the paper's own deviation from
its exhaustive formula at those widths.

:func:`evaluate_gate_level` complements the functional-level evaluators
with a structural one: the raw stuck-at detectability of a gate-level
netlist under a vector set, computed by the batched bit-parallel engine
(:mod:`repro.gates.engine`) in one pass over the whole fault universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.bitops import mask_of
from repro.arch.cell import DEFAULT_CELL_NETLIST
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.coverage import situations as situation_counts
from repro.errors import SimulationError
from repro.faults.universe import (
    adder_fault_cases,
    divider_fault_cases,
    multiplier_fault_cases,
)
from repro.gates.engine import StuckAtCampaignResult, run_stuck_at_campaign
from repro.gates.netlist import Netlist

#: Widths up to this operand-space size are enumerated exhaustively.
DEFAULT_EXHAUSTIVE_LIMIT = 1 << 20
DEFAULT_SAMPLES = 4096
DEFAULT_SEED = 20050307  # DATE'05 conference date


@dataclass
class CoverageStats:
    """Aggregated coverage statistics for one (operator, technique, width)."""

    operator: str
    technique: str
    width: int
    situations: int
    covered: int
    observable_errors: int
    detected_while_correct: int
    per_case_min: float
    per_case_max: float
    exhaustive: bool

    @property
    def coverage(self) -> float:
        """Fraction of situations that are covered (correct or flagged)."""
        return self.covered / self.situations if self.situations else 1.0

    @property
    def coverage_percent(self) -> float:
        return 100.0 * self.coverage

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"{self.operator}/{self.technique} n={self.width} ({mode}): "
            f"{self.coverage_percent:.2f}% of {self.situations} situations, "
            f"{self.observable_errors} observable errors, "
            f"{self.detected_while_correct} detected-while-correct"
        )


class _Accumulator:
    """Per-technique running tallies across fault cases."""

    def __init__(self, names: Iterable[str]) -> None:
        self.names = tuple(names)
        self.situations = 0
        self.observable = 0
        self.covered = {name: 0 for name in self.names}
        self.detected_correct = {name: 0 for name in self.names}
        self.case_min = {name: 1.0 for name in self.names}
        self.case_max = {name: 0.0 for name in self.names}

    def update(self, correct: np.ndarray, detections: Dict[str, np.ndarray]) -> None:
        count = correct.size
        self.situations += count
        self.observable += int(np.sum(~correct))
        for name in self.names:
            det = detections[name]
            covered = correct | det
            n_cov = int(np.sum(covered))
            self.covered[name] += n_cov
            self.detected_correct[name] += int(np.sum(correct & det))
            frac = n_cov / count
            self.case_min[name] = min(self.case_min[name], frac)
            self.case_max[name] = max(self.case_max[name], frac)

    def stats(self, operator: str, width: int, exhaustive: bool) -> Dict[str, CoverageStats]:
        return {
            name: CoverageStats(
                operator=operator,
                technique=name,
                width=width,
                situations=self.situations,
                covered=self.covered[name],
                observable_errors=self.observable,
                detected_while_correct=self.detected_correct[name],
                per_case_min=self.case_min[name],
                per_case_max=self.case_max[name],
                exhaustive=exhaustive,
            )
            for name in self.names
        }


def _operand_pairs(
    width: int,
    exhaustive_limit: int,
    samples: int,
    seed: int,
    exclude_zero_divisor: bool = False,
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Operand vectors: exhaustive when affordable, else sampled."""
    space = 1 << (2 * width)
    mask = mask_of(width)
    if space <= exhaustive_limit:
        combos = np.arange(space, dtype=np.uint64)
        a = combos & np.uint64(mask)
        b = (combos >> np.uint64(width)) & np.uint64(mask)
        exhaustive = True
        if exclude_zero_divisor:
            keep = b != 0
            a, b = a[keep], b[keep]
    else:
        rng = np.random.default_rng(seed)
        a = rng.integers(0, mask + 1, size=samples, dtype=np.uint64)
        low = 1 if exclude_zero_divisor else 0
        b = rng.integers(low, mask + 1, size=samples, dtype=np.uint64)
        exhaustive = False
    return a, b, exhaustive


# ----------------------------------------------------------------------
# Per-operator evaluators
# ----------------------------------------------------------------------
def evaluate_adder(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``+`` (Table 2).

    The nominal ``ris = op1 + op2`` and both checking subtractions run
    through the same faulty adder chain.
    """
    a, b, exhaustive = _operand_pairs(width, exhaustive_limit, samples, seed)
    mask = np.uint64(mask_of(width))
    golden = (a + b) & mask
    acc = _Accumulator(("tech1", "tech2", "both"))
    for case in adder_fault_cases(width, cell_netlist):
        unit = RippleCarryAdderUnit(width, case.cell, case.position)
        ris, _ = unit.add(a, b)
        correct = ris == golden
        check1, _ = unit.sub(ris, a)  # op2' = ris - op1
        check2, _ = unit.sub(ris, b)  # op1' = ris - op2
        det1 = check1 != b
        det2 = check2 != a
        acc.update(correct, {"tech1": det1, "tech2": det2, "both": det1 | det2})
    return acc.stats("add", width, exhaustive)


def evaluate_subtractor(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``-``.

    ``ris = op1 - op2`` through the faulty chain; Tech 1 re-adds
    (``op1' = ris + op2``), Tech 2 computes the reversed difference
    (``ris' = op2 - op1``) on the same unit and tests ``ris + ris' == 0``
    (final summation fault-free, as it maps onto the comparator).
    """
    a, b, exhaustive = _operand_pairs(width, exhaustive_limit, samples, seed)
    mask = np.uint64(mask_of(width))
    golden = (a - b) & mask
    acc = _Accumulator(("tech1", "tech2", "both"))
    for case in adder_fault_cases(width, cell_netlist):
        unit = RippleCarryAdderUnit(width, case.cell, case.position)
        ris, _ = unit.sub(a, b)
        correct = ris == golden
        check1, _ = unit.add(ris, b)  # op1' = ris + op2 (same unit)
        det1 = check1 != a
        ris2, _ = unit.sub(b, a)  # ris' = op2 - op1 (same unit)
        det2 = ((ris + ris2) & mask) != 0
        acc.update(correct, {"tech1": det1, "tech2": det2, "both": det1 | det2})
    return acc.stats("sub", width, exhaustive)


def evaluate_multiplier(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``*``.

    Fixed-width products: the identity ``op1*op2 + (-op1)*op2 == 0``
    holds modulo ``2**width``, so the checking product runs through the
    same faulty array and the final summation/comparison is fault-free.
    """
    if width < 2:
        raise SimulationError("multiplier coverage needs width >= 2")
    a, b, exhaustive = _operand_pairs(width, exhaustive_limit, samples, seed)
    mask = np.uint64(mask_of(width))
    golden = (a * b) & mask
    neg_a = (np.uint64(0) - a) & mask
    neg_b = (np.uint64(0) - b) & mask
    acc = _Accumulator(("tech1", "tech2", "both"))
    for case in multiplier_fault_cases(width, cell_netlist):
        unit = ArrayMultiplierUnit(width, case.cell, case.row, case.column)
        ris = unit.mul(a, b)
        correct = ris == golden
        ris1 = unit.mul(neg_a, b)  # (-op1) * op2, same unit
        ris2 = unit.mul(a, neg_b)  # op1 * (-op2), same unit
        det1 = ((ris + ris1) & mask) != 0
        det2 = ((ris + ris2) & mask) != 0
        acc.update(correct, {"tech1": det1, "tech2": det2, "both": det1 | det2})
    return acc.stats("mul", width, exhaustive)


def evaluate_divider(
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, CoverageStats]:
    """Worst-case coverage of the overloaded ``/``.

    The quotient and remainder both come from the faulty divider; the
    reconstruction check ``ris*op2 + rem == op1`` uses fault-free
    multiply/add (different unit classes).  Tech 2 additionally enforces
    the remainder range ``rem < op2`` -- the paper's "precision of the
    inverse operation" concern; see :mod:`repro.coverage.techniques`.
    """
    a, b, exhaustive = _operand_pairs(
        width, exhaustive_limit, samples, seed, exclude_zero_divisor=True
    )
    mask = np.uint64(mask_of(width))
    golden_q = a // b
    golden_r = a % b
    acc = _Accumulator(("tech1", "tech2"))
    for case in divider_fault_cases(width, cell_netlist):
        unit = RestoringDividerUnit(width, case.cell, case.position)
        q, r = unit.divmod(a, b)
        correct = (q == golden_q) & (r == golden_r)
        det1 = ((q * b + r) & mask) != a
        det2 = det1 | (r >= b)
        acc.update(correct, {"tech1": det1, "tech2": det2})
    return acc.stats("div", width, exhaustive)


@dataclass
class GateLevelCoverage:
    """Stuck-at detectability of one netlist under a vector set.

    ``detected``/``total`` count the (uncollapsed) fault universe;
    ``equivalence_groups`` and ``simulated_runs`` report how much work
    the structural collapsing and fault dropping actually saved.
    """

    netlist: str
    total: int
    detected: int
    n_vectors: int
    exhaustive: bool
    equivalence_groups: int
    simulated_runs: int

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 1.0

    @property
    def coverage_percent(self) -> float:
        return 100.0 * self.coverage

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"{self.netlist} gate-level ({mode}): "
            f"{self.detected}/{self.total} stuck-at faults detected "
            f"({self.coverage_percent:.2f}%) over {self.n_vectors} vectors"
        )


def evaluate_gate_level(
    netlist: Netlist,
    vectors: Optional[Mapping[str, Union[int, np.ndarray]]] = None,
    collapse: bool = True,
    fault_dropping: bool = True,
) -> Tuple[GateLevelCoverage, StuckAtCampaignResult]:
    """Batched stuck-at coverage of a gate-level netlist.

    The entire stem+branch fault universe is simulated in one
    bit-parallel pass against a shared golden run; by default the
    vector set is exhaustive over the primary inputs (the paper's
    full-adder universe is 32 faults against 8 vectors).  Returns the
    aggregate stats plus the raw campaign result.
    """
    raw = run_stuck_at_campaign(
        netlist,
        inputs=vectors,
        collapse=collapse,
        fault_dropping=fault_dropping,
    )
    stats = GateLevelCoverage(
        netlist=netlist.name,
        total=raw.n_faults,
        detected=raw.detected_count,
        n_vectors=raw.n_vectors,
        exhaustive=vectors is None,
        equivalence_groups=len(raw.groups),
        simulated_runs=raw.n_simulated_runs,
    )
    return stats, raw


_EVALUATORS = {
    "add": evaluate_adder,
    "sub": evaluate_subtractor,
    "mul": evaluate_multiplier,
    "div": evaluate_divider,
}


def evaluate_operator(
    operator: str,
    width: int,
    cell_netlist: str = DEFAULT_CELL_NETLIST,
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, CoverageStats]:
    """Dispatch to the per-operator evaluator by name."""
    try:
        evaluator = _EVALUATORS[operator]
    except KeyError:
        raise SimulationError(
            f"unknown operator {operator!r}; choose from {sorted(_EVALUATORS)}"
        ) from None
    return evaluator(
        width,
        cell_netlist=cell_netlist,
        exhaustive_limit=exhaustive_limit,
        samples=samples,
        seed=seed,
    )


def theoretical_situations(operator: str, width: int) -> int:
    """The paper-style situation count formula for ``operator``."""
    if operator == "add":
        return situation_counts.adder_situations(width)
    if operator == "sub":
        return situation_counts.subtractor_situations(width)
    if operator == "mul":
        return situation_counts.multiplier_situations(width)
    if operator == "div":
        return situation_counts.divider_situations(width)
    raise SimulationError(f"unknown operator {operator!r}")
