"""Exact wide-width Table 2 coverage via carry-state transfer matrices.

An exhaustive operand sweep at n = 16 spans ``2**32`` vector pairs per
fault case -- far beyond what even the bit-parallel engine can simulate.
But the Table 2 experiment for the chain operators (``+`` and ``-``)
factors along the ripple chain: at bit position ``i`` the *entire*
residual computation depends on the operand bits ``(a_i, b_i)`` and a
tiny per-position state -- the carries of the golden, nominal and
checking chains plus the sticky classification flags (result still
correct, technique fired).  Enumerating that state space (128 states for
the adder, 256 for the subtractor) turns the ``4**n`` operand sweep into
an exact dynamic program over ``n`` positions:

    counts'[s'] = sum over (a_i, b_i) of counts[s]  where T[ab][s] = s'

with the faulty cell's LUT substituted into the transition table at the
fault position only.  The final state distribution yields the *exact*
number of situations per (correct, detected) flag combination -- the
same integers the word-packed sweep counts, obtained in microseconds for
any width.  Parity with the sweep and the functional evaluators is
pinned by ``tests/test_table2_exact.py``.

Situation counts fit ``uint64`` comfortably up to n = 16 (``4**16 =
2**32`` per case); widths are capped well below the overflow point.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import SimulationError

#: Widths beyond this would overflow uint64 state counts (4**n per case).
MAX_TRANSFER_WIDTH = 30

CellFn = Callable[[int, int, int], Tuple[int, int]]


def _fault_free(a: int, b: int, c: int) -> Tuple[int, int]:
    """The exact full adder: ``(sum, carry-out)`` of three bits."""
    return a ^ b ^ c, (a & b) | (c & (a | b))


def _lut_cell(s_lut: Tuple[int, ...], c_lut: Tuple[int, ...]) -> CellFn:
    """Cell function realised by a faulty (sum, carry) LUT pair."""

    def cell(a: int, b: int, c: int) -> Tuple[int, int]:
        idx = a | (b << 1) | (c << 2)
        return s_lut[idx], c_lut[idx]

    return cell


# ----------------------------------------------------------------------
# Adder: state = cg | cn<<1 | c1<<2 | c2<<3 | correct<<4 | d1<<5 | d2<<6
# (golden carry, nominal carry, check-1 carry, check-2 carry, flags).
# ----------------------------------------------------------------------
_ADDER_STATES = 128
#: cg=0, cn=0 (add), c1=1, c2=1 (both checks subtract), correct=1.
_ADDER_INIT = (1 << 2) | (1 << 3) | (1 << 4)
_ADDER_FLAG_SHIFT = 4


def _build_adder_table(cell: CellFn) -> np.ndarray:
    """Transition table ``T[ab][state]`` for one cell behaviour.

    ``cell`` is used for all three operations at this position (the
    same faulty unit computes the nominal sum and both checking
    subtractions); the golden chain always uses the exact adder.
    """
    table = np.zeros((4, _ADDER_STATES), dtype=np.int64)
    for state in range(_ADDER_STATES):
        cg, cn = state & 1, (state >> 1) & 1
        c1, c2 = (state >> 2) & 1, (state >> 3) & 1
        correct, d1, d2 = (state >> 4) & 1, (state >> 5) & 1, (state >> 6) & 1
        for ab in range(4):
            ai, bi = ab & 1, (ab >> 1) & 1
            gs, gc = _fault_free(ai, bi, cg)
            rs, rc = cell(ai, bi, cn)  # nominal ris bit
            q1, k1 = cell(rs, 1 - ai, c1)  # op2' = ris - op1
            q2, k2 = cell(rs, 1 - bi, c2)  # op1' = ris - op2
            nc = correct & (1 if rs == gs else 0)
            nd1 = d1 | (1 if q1 != bi else 0)
            nd2 = d2 | (1 if q2 != ai else 0)
            table[ab, state] = (
                gc | (rc << 1) | (k1 << 2) | (k2 << 3)
                | (nc << 4) | (nd1 << 5) | (nd2 << 6)
            )
    return table


# ----------------------------------------------------------------------
# Subtractor: state = cg | cn<<1 | c1<<2 | c2<<3 | cs<<4
#                    | correct<<5 | d1<<6 | dz<<7
# (cs = carry of the fault-free final summation ris + ris'; dz = that
# sum has a non-zero bit, i.e. technique 2 fired).
# ----------------------------------------------------------------------
_SUB_STATES = 256
#: cg=1, cn=1 (a - b asserts carry-in), c1=0 (check 1 adds), c2=1
#: (check 2 subtracts), cs=0, correct=1.
_SUB_INIT = 1 | (1 << 1) | (1 << 3) | (1 << 5)
_SUB_FLAG_SHIFT = 5


def _build_subtractor_table(cell: CellFn) -> np.ndarray:
    table = np.zeros((4, _SUB_STATES), dtype=np.int64)
    for state in range(_SUB_STATES):
        cg, cn = state & 1, (state >> 1) & 1
        c1, c2, cs = (state >> 2) & 1, (state >> 3) & 1, (state >> 4) & 1
        correct, d1, dz = (state >> 5) & 1, (state >> 6) & 1, (state >> 7) & 1
        for ab in range(4):
            ai, bi = ab & 1, (ab >> 1) & 1
            gs, gc = _fault_free(ai, 1 - bi, cg)  # golden a - b
            rs, rc = cell(ai, 1 - bi, cn)  # nominal ris bit
            q1, k1 = cell(rs, bi, c1)  # op1' = ris + op2
            r2, k2 = cell(bi, 1 - ai, c2)  # ris' = op2 - op1
            ss, ks = _fault_free(rs, r2, cs)  # fault-free ris + ris'
            nc = correct & (1 if rs == gs else 0)
            nd1 = d1 | (1 if q1 != ai else 0)
            ndz = dz | ss
            table[ab, state] = (
                gc | (rc << 1) | (k1 << 2) | (k2 << 3) | (ks << 4)
                | (nc << 5) | (nd1 << 6) | (ndz << 7)
            )
    return table


_TableKey = Tuple[str, Tuple[int, ...], Tuple[int, ...]]
_table_cache: Dict[_TableKey, np.ndarray] = {}
_BUILDERS = {"add": _build_adder_table, "sub": _build_subtractor_table}


def _table(operator: str, s_lut: Tuple[int, ...] = (), c_lut: Tuple[int, ...] = ()) -> np.ndarray:
    """Cached transition table; empty LUTs select the fault-free cell."""
    key = (operator, tuple(s_lut), tuple(c_lut))
    if key not in _table_cache:
        cell = _fault_free if not s_lut else _lut_cell(tuple(s_lut), tuple(c_lut))
        _table_cache[key] = _BUILDERS[operator](cell)
    return _table_cache[key]


def case_flag_counts(
    operator: str,
    width: int,
    position: int,
    s_lut: Tuple[int, ...],
    c_lut: Tuple[int, ...],
) -> np.ndarray:
    """Exact flag-combination counts for one Table 2 fault case.

    Runs the ``width``-step transfer DP with the faulty cell LUT
    substituted at ``position`` and returns an ``(8,)`` int array:
    entry ``correct | d1 << 1 | d2 << 2`` counts the operand pairs in
    that classification (``d2`` is technique 2's flag; for the
    subtractor that is the non-zero-sum indication).  The entries sum to
    ``4**width``.
    """
    if operator not in _BUILDERS:
        raise SimulationError(
            f"transfer evaluation supports {tuple(_BUILDERS)}, not {operator!r}"
        )
    if not (1 <= width <= MAX_TRANSFER_WIDTH):
        raise SimulationError(
            f"transfer width must be in [1, {MAX_TRANSFER_WIDTH}], got {width}"
        )
    if not (0 <= position < width):
        raise SimulationError(f"position {position} outside [0, {width})")
    if operator == "add":
        n_states, init, flag_shift = _ADDER_STATES, _ADDER_INIT, _ADDER_FLAG_SHIFT
    else:
        n_states, init, flag_shift = _SUB_STATES, _SUB_INIT, _SUB_FLAG_SHIFT
    table_ff = _table(operator)
    table_faulty = _table(operator, s_lut, c_lut)
    counts = np.zeros(n_states, dtype=np.uint64)
    counts[init] = 1
    for i in range(width):
        table = table_faulty if i == position else table_ff
        nxt = np.zeros(n_states, dtype=np.uint64)
        for ab in range(4):
            np.add.at(nxt, table[ab], counts)
        counts = nxt
    flags = (np.arange(n_states) >> flag_shift) & 7
    out = np.zeros(8, dtype=np.uint64)
    np.add.at(out, flags, counts)
    return out.astype(np.int64)
