"""Static fault collapsing: structural equivalence plus dominance.

Built on the equivalence partition of :mod:`repro.gates.faults`
(controlling input stuck values merge with the implied output stuck
value; BUF/NOT inputs merge with their outputs).  This module adds the
classical *dominance* relation: for an AND gate, a test for an input
stuck at its non-controlling value ``1`` must set every other input to
``1`` and propagate the output -- which also detects the output
stuck-at-1.  Formally ``tests(input SA-noncontrolling) is a subset of
tests(output SA-v)`` with

=====  ==================  ====================
cell   dominated pin SAv   dominating output SAv
=====  ==================  ====================
AND    SA1                 SA1
NAND   SA1                 SA0
OR     SA0                 SA0
NOR    SA0                 SA1
=====  ==================  ====================

so the dominating output fault need not be targeted: any detection of a
dominated pin fault implies its detection.  A pin reads its *branch*
site when the net fans out, else the stem; a stem that is also a
primary output is never dominated (its fault is directly observable
there, so the subset relation breaks) -- the same caveat the
equivalence rules apply.

The result is a :class:`CollapseMap` over the equivalence classes:

- ``kept`` classes (no incoming dominance edge) are simulated directly;
- ``dropped`` classes are resolved afterwards, in topological order:
  *detected* as soon as any dominated predecessor is detected (exact
  for every vector set, by the subset relation), and *residually
  simulated* when every predecessor came back undetected -- the
  predecessors' tests are a subset, so an undetected predecessor says
  nothing about the dominator (an AND output SA1 is detectable by an
  all-zeros input even when every single-input SA1 is redundant).

Detection verdicts therefore expand back **bit-identical** to the
uncollapsed campaign.  ``first_detected`` of an *inferred* class is a
valid detecting vector (the earliest among its predecessors' witnesses)
but not necessarily the globally earliest one; equivalence-only
collapsing keeps ``first_detected`` exact.

Dominance chains compose (a gate output with fanout one is the next
gate's pin site), so resolution runs in waves; cycles cannot arise from
these rules on an acyclic netlist, but the builder falls back to
keeping any cyclic class defensively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import FaultError
from repro.gates.cells import CellType
from repro.gates.faults import (
    StuckAtFault,
    _fault_key,
    default_equivalence_groups,
    default_fault_universe,
    structural_equivalence_groups,
)
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Netlist

#: Per cell type: (non-controlling pin stuck value, implied output stuck
#: value of the *dominating* output fault).
_DOMINANCE: Dict[CellType, Tuple[int, int]] = {
    CellType.AND: (1, 1),
    CellType.NAND: (1, 0),
    CellType.OR: (0, 0),
    CellType.NOR: (0, 1),
}

COLLAPSE_MAP_MODES = ("equivalence", "dominance")


@dataclass(frozen=True)
class CollapseMap:
    """The collapsed view of one fault universe.

    ``groups`` are the structural-equivalence classes (index groups into
    the fault list, as in :func:`structural_equivalence_groups`).
    ``kept`` are the class indices a campaign simulates directly;
    ``dropped`` lists the dominating classes in topological resolution
    order (every predecessor resolves first);
    ``implied_by[c]`` are the classes whose detection implies class
    ``c``'s detection (empty for kept classes).
    """

    netlist_name: str
    mode: str
    n_faults: int
    groups: Tuple[Tuple[int, ...], ...]
    kept: Tuple[int, ...]
    dropped: Tuple[int, ...]
    implied_by: Tuple[Tuple[int, ...], ...]

    @property
    def n_classes(self) -> int:
        return len(self.groups)

    @property
    def n_kept(self) -> int:
        return len(self.kept)

    @property
    def reduction(self) -> float:
        """Fraction of the *uncollapsed* universe not simulated up
        front (residual simulation of undetected dominators can claw a
        little back)."""
        return 1.0 - self.n_kept / self.n_faults if self.n_faults else 0.0

    def summary(self) -> str:
        return (
            f"{self.netlist_name}: {self.mode} collapse, "
            f"{self.n_faults} faults -> {self.n_classes} classes -> "
            f"{self.n_kept} kept ({100.0 * self.reduction:.1f}% reduction)"
        )


def _dominance_edges(
    netlist: Netlist,
    fault_seq: Sequence[StuckAtFault],
    groups: Sequence[Sequence[int]],
) -> Dict[int, Set[int]]:
    """Dominance edges between equivalence classes.

    Returns ``{dominating class: {dominated predecessor classes}}``;
    self-edges (pin and output fault already equivalence-merged) are
    skipped, as are faults absent from a restricted universe.
    """
    class_of: Dict[Tuple, int] = {}
    for ci, members in enumerate(groups):
        for fi in members:
            class_of[_fault_key(fault_seq[fi])] = ci
    outputs = set(netlist.primary_outputs)
    preds: Dict[int, Set[int]] = {}
    for gate in netlist.gates:
        rule = _DOMINANCE.get(gate.cell_type)
        if rule is None:
            continue
        pin_value, out_value = rule
        cv = class_of.get((gate.output, None, out_value))
        if cv is None:
            continue
        for pin, net in enumerate(gate.inputs):
            if netlist.fanout_count(net) >= 2:
                branch: Optional[Tuple[str, int]] = (gate.name, pin)
            elif net in outputs:
                continue  # stem observable at a PO: no subset relation
            else:
                branch = None
            cu = class_of.get((net, branch, pin_value))
            if cu is None or cu == cv:
                continue
            preds.setdefault(cv, set()).add(cu)
    return preds


def _build_map(
    netlist: Netlist,
    fault_seq: Optional[Sequence[StuckAtFault]],
    mode: str,
) -> CollapseMap:
    if fault_seq is None:
        fault_seq = default_fault_universe(netlist)
        groups: Sequence[Sequence[int]] = default_equivalence_groups(netlist)
    else:
        groups = structural_equivalence_groups(netlist, fault_seq)
    n_classes = len(groups)
    if mode == "equivalence":
        return CollapseMap(
            netlist_name=netlist.name,
            mode=mode,
            n_faults=len(fault_seq),
            groups=tuple(tuple(g) for g in groups),
            kept=tuple(range(n_classes)),
            dropped=(),
            implied_by=tuple(() for _ in range(n_classes)),
        )

    preds = _dominance_edges(netlist, fault_seq, groups)
    succs: Dict[int, List[int]] = {}
    indegree = [0] * n_classes
    for cv, sources in preds.items():
        indegree[cv] = len(sources)
        for cu in sources:
            succs.setdefault(cu, []).append(cv)

    # Kahn over the class graph: in-degree-0 classes are kept, the rest
    # resolve in topological waves.  Any class left on a cycle (cannot
    # happen on an acyclic netlist, but be defensive) is kept too.
    remaining = [d for d in indegree]
    ready = deque(c for c in range(n_classes) if remaining[c] == 0)
    topo_dropped: List[int] = []
    seen = 0
    while ready:
        c = ready.popleft()
        seen += 1
        if indegree[c] > 0:
            topo_dropped.append(c)
        for s in succs.get(c, ()):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)
    cyclic = {c for c in range(n_classes) if remaining[c] > 0} if seen != n_classes else set()
    kept = tuple(
        c for c in range(n_classes) if indegree[c] == 0 or c in cyclic
    )
    dropped = tuple(c for c in topo_dropped if c not in cyclic)
    dropped_set = set(dropped)
    implied_by = tuple(
        tuple(sorted(preds[c])) if c in dropped_set else ()
        for c in range(n_classes)
    )
    return CollapseMap(
        netlist_name=netlist.name,
        mode=mode,
        n_faults=len(fault_seq),
        groups=tuple(tuple(g) for g in groups),
        kept=kept,
        dropped=dropped,
        implied_by=implied_by,
    )


_collapse_memo = identity_memo(netlist_fingerprint)


@_collapse_memo
def _default_dominance_map(netlist: Netlist) -> CollapseMap:
    return _build_map(netlist, None, "dominance")


@_collapse_memo
def _default_equivalence_map(netlist: Netlist) -> CollapseMap:
    return _build_map(netlist, None, "equivalence")


def _map_payload(cmap: CollapseMap) -> dict:
    def pack(groups: Sequence[Sequence[int]]):
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        np.cumsum([len(g) for g in groups], out=offsets[1:])
        members = np.array(
            [i for g in groups for i in g], dtype=np.int64
        )
        return offsets, members

    group_offsets, group_members = pack(cmap.groups)
    implied_offsets, implied_members = pack(cmap.implied_by)
    return {
        "netlist_name": cmap.netlist_name,
        "mode": cmap.mode,
        "n_faults": cmap.n_faults,
        "arrays": {
            "group_offsets": group_offsets,
            "group_members": group_members,
            "kept": np.array(cmap.kept, dtype=np.int64),
            "dropped": np.array(cmap.dropped, dtype=np.int64),
            "implied_offsets": implied_offsets,
            "implied_members": implied_members,
        },
    }


def _map_from_payload(payload: dict) -> CollapseMap:
    arrays = payload["arrays"]

    def unpack(offsets, members) -> Tuple[Tuple[int, ...], ...]:
        offsets = np.asarray(offsets, dtype=np.int64)
        members = np.asarray(members, dtype=np.int64)
        return tuple(
            tuple(int(i) for i in members[lo:hi])
            for lo, hi in zip(offsets[:-1], offsets[1:])
        )

    return CollapseMap(
        netlist_name=str(payload["netlist_name"]),
        mode=str(payload["mode"]),
        n_faults=int(payload["n_faults"]),
        groups=unpack(arrays["group_offsets"], arrays["group_members"]),
        kept=tuple(int(c) for c in np.asarray(arrays["kept"])),
        dropped=tuple(int(c) for c in np.asarray(arrays["dropped"])),
        implied_by=unpack(arrays["implied_offsets"], arrays["implied_members"]),
    )


def collapse_faults(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]] = None,
    mode: str = "dominance",
    store: object = None,
) -> CollapseMap:
    """The :class:`CollapseMap` of ``netlist``'s fault universe.

    ``faults`` defaults to the memoised stem+branch universe; ``mode``
    is ``"equivalence"`` or ``"dominance"``.  Default-universe maps are
    memoised per netlist version and, with a result store active,
    persisted under the netlist content digest.
    """
    if mode not in COLLAPSE_MAP_MODES:
        raise FaultError(
            f"unknown collapse mode {mode!r}; choose from {COLLAPSE_MAP_MODES}"
        )
    if faults is not None:
        return _build_map(netlist, tuple(faults), mode)
    from repro.store import CacheKey, digest_netlist, resolve_store

    store = resolve_store(store)
    cached_fn = (
        _default_dominance_map if mode == "dominance" else _default_equivalence_map
    )
    if store is None:
        return cached_fn(netlist)
    key = CacheKey(
        kind="analysis",
        netlist=digest_netlist(netlist),
        universe="-",
        space="-",
        method=f"collapse-{mode}",
        backend="-",
    )
    cached = store.get(key)
    if isinstance(cached, dict):
        return _map_from_payload(cached)
    result = cached_fn(netlist)
    store.put(key, _map_payload(result))
    return result
