"""Structural lint for gate-level netlists.

A small rule engine over the *raw* :class:`~repro.gates.netlist.Netlist`
graph -- deliberately tolerant of broken structure, unlike
:meth:`Netlist.validate`, so a single pass reports every problem at
once instead of raising on the first.  Two severities:

========================  ========  ==========================================
rule                      severity  meaning
========================  ========  ==========================================
``combinational-loop``    error     a cycle of gates (reported per cycle)
``undriven-net``          error     a floating net read by a gate or declared
                                    as a primary output with no driver
``multiply-driven-net``   error     a net with two or more drivers (gates
                                    and/or a primary-input declaration)
``duplicate-gate-name``   error     two gate instances share a name
``dangling-output``       warning   a gate output that nothing reads and that
                                    is not a primary output (intentional for
                                    truncated arithmetic, hence a warning)
``unreachable-logic``     warning   a gate with readers but no path to any
                                    primary output
``unused-input``          warning   a declared primary input nothing reads
``rail-misuse``           warning   a constant rail (``zero``/``one``)
                                    declared as a primary output, or a gate
                                    whose inputs are all constant rails (the
                                    gate computes a constant)
========================  ========  ==========================================

Errors are structural corruption every downstream layer would choke on;
warnings are legal-but-suspicious shapes (the seeded truncated
multiplier and restoring divider dangle carries by design).

``python -m repro.analysis.lint`` lints every registered unit netlist
and Table 2 architecture; CI runs it as a build gate, and the
architecture constructors call :func:`assert_clean` directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.gates.netlist import Gate, Netlist

#: Primary-input names treated as constant rails by the builders.
RAIL_NAMES = ("zero", "one")

ERROR = "error"
WARNING = "warning"

#: Every rule name, in report order, mapped to its severity.
RULES: Dict[str, str] = {
    "combinational-loop": ERROR,
    "undriven-net": ERROR,
    "multiply-driven-net": ERROR,
    "duplicate-gate-name": ERROR,
    "dangling-output": WARNING,
    "unreachable-logic": WARNING,
    "unused-input": WARNING,
    "rail-misuse": WARNING,
}


@dataclass(frozen=True)
class LintIssue:
    """One diagnostic: a rule hit on a net and/or gate."""

    rule: str
    severity: str
    message: str
    net: Optional[str] = None
    gate: Optional[str] = None

    def render(self) -> str:
        where = self.net if self.net is not None else self.gate
        return f"[{self.severity}] {self.rule} @ {where}: {self.message}"


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one lint pass over one netlist."""

    netlist_name: str
    issues: Tuple[LintIssue, ...]

    @property
    def errors(self) -> Tuple[LintIssue, ...]:
        return tuple(i for i in self.issues if i.severity == ERROR)

    @property
    def warnings(self) -> Tuple[LintIssue, ...]:
        return tuple(i for i in self.issues if i.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issue was found."""
        return not self.errors

    def by_rule(self, rule: str) -> Tuple[LintIssue, ...]:
        return tuple(i for i in self.issues if i.rule == rule)

    def render(self) -> str:
        lines = [
            f"{self.netlist_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(issue.render() for issue in self.issues)
        return "\n".join(lines)


def _gate_drivers(netlist: Netlist) -> Dict[str, List[Gate]]:
    drivers: Dict[str, List[Gate]] = {}
    for gate in netlist.gates:
        drivers.setdefault(gate.output, []).append(gate)
    return drivers


def _check_loops(netlist: Netlist, issues: List[LintIssue]) -> Set[str]:
    """Kahn residue -> genuine cycles; returns the cyclic gate names."""
    gates = netlist.gates
    n = len(gates)
    producer: Dict[str, int] = {}
    for i, gate in enumerate(gates):
        producer.setdefault(gate.output, i)
    indegree = [0] * n
    consumers: List[List[int]] = [[] for _ in range(n)]
    for i, gate in enumerate(gates):
        for net in gate.inputs:
            j = producer.get(net)
            if j is not None:
                indegree[i] += 1
                consumers[j].append(i)
    ready = deque(i for i in range(n) if indegree[i] == 0)
    done = 0
    while ready:
        i = ready.popleft()
        done += 1
        for c in consumers[i]:
            indegree[c] -= 1
            if indegree[c] == 0:
                ready.append(c)
    cyclic: Set[str] = set()
    if done != n:
        remaining = {i for i in range(n) if indegree[i] > 0}
        while remaining:
            # Walk backwards through unprocessed predecessors until a
            # gate repeats: the walk from there on is a genuine cycle.
            i = min(remaining)
            trail: List[int] = []
            seen: Dict[int, int] = {}
            while i not in seen:
                seen[i] = len(trail)
                trail.append(i)
                i = next(
                    j
                    for net in gates[i].inputs
                    if (j := producer.get(net)) in remaining
                )
            cycle = trail[seen[i] :]
            names = [gates[j].name for j in cycle]
            cyclic.update(names)
            issues.append(
                LintIssue(
                    rule="combinational-loop",
                    severity=ERROR,
                    message="cycle through " + " -> ".join(sorted(names)),
                    gate=min(names),
                )
            )
            # Remove the reported cycle, then prune (to fixpoint) gates
            # that were only stuck downstream of it: every survivor
            # still has an unprocessed predecessor, i.e. sits on or
            # behind another genuine cycle.
            remaining -= set(cycle)
            while True:
                pruned = {
                    j
                    for j in remaining
                    if any(
                        producer.get(net) in remaining for net in gates[j].inputs
                    )
                }
                if pruned == remaining:
                    break
                remaining = pruned
    return cyclic


def _check_drivers(netlist: Netlist, issues: List[LintIssue]) -> None:
    drivers = _gate_drivers(netlist)
    inputs = set(netlist.primary_inputs)
    driven = inputs | set(drivers)
    reported: Set[str] = set()
    for gate in netlist.gates:
        for net in gate.inputs:
            if net not in driven and net not in reported:
                reported.add(net)
                readers = [g.name for g, _pin in netlist.fanout(net)]
                issues.append(
                    LintIssue(
                        rule="undriven-net",
                        severity=ERROR,
                        message=(
                            f"floating net read by {', '.join(sorted(readers))}"
                        ),
                        net=net,
                    )
                )
    for net in netlist.primary_outputs:
        if net not in driven and net not in reported:
            reported.add(net)
            issues.append(
                LintIssue(
                    rule="undriven-net",
                    severity=ERROR,
                    message="primary output has no driver",
                    net=net,
                )
            )
    for net, gates in sorted(drivers.items()):
        names = [g.name for g in gates]
        if net in inputs:
            names.append("<input>")
        if len(names) > 1:
            issues.append(
                LintIssue(
                    rule="multiply-driven-net",
                    severity=ERROR,
                    message="driven by " + ", ".join(sorted(names)),
                    net=net,
                )
            )


def _check_gate_names(netlist: Netlist, issues: List[LintIssue]) -> None:
    seen: Dict[str, int] = {}
    for gate in netlist.gates:
        seen[gate.name] = seen.get(gate.name, 0) + 1
    for name, count in sorted(seen.items()):
        if count > 1:
            issues.append(
                LintIssue(
                    rule="duplicate-gate-name",
                    severity=ERROR,
                    message=f"{count} gate instances share this name",
                    gate=name,
                )
            )


def _check_reachability(
    netlist: Netlist, issues: List[LintIssue], cyclic: Set[str]
) -> None:
    outputs = set(netlist.primary_outputs)
    drivers = {g.output: g for g in netlist.gates}
    # Nets that can reach a primary output: BFS from the outputs back
    # through each net's driving gate.
    live: Set[str] = set()
    frontier = deque(net for net in outputs if net in drivers or net in netlist.primary_inputs)
    live.update(frontier)
    while frontier:
        net = frontier.popleft()
        gate = drivers.get(net)
        if gate is None:
            continue
        for src in gate.inputs:
            if src not in live:
                live.add(src)
                frontier.append(src)
    for gate in netlist.gates:
        if gate.output in live or gate.name in cyclic:
            continue
        if netlist.fanout_count(gate.output) == 0 and gate.output not in outputs:
            issues.append(
                LintIssue(
                    rule="dangling-output",
                    severity=WARNING,
                    message="output net has no readers and is not a primary output",
                    net=gate.output,
                    gate=gate.name,
                )
            )
        else:
            issues.append(
                LintIssue(
                    rule="unreachable-logic",
                    severity=WARNING,
                    message="no path from this gate to any primary output",
                    net=gate.output,
                    gate=gate.name,
                )
            )


def _check_inputs(netlist: Netlist, issues: List[LintIssue]) -> None:
    outputs = set(netlist.primary_outputs)
    for net in netlist.primary_inputs:
        if netlist.fanout_count(net) == 0 and net not in outputs:
            issues.append(
                LintIssue(
                    rule="unused-input",
                    severity=WARNING,
                    message="primary input has no readers",
                    net=net,
                )
            )


def _check_rails(netlist: Netlist, issues: List[LintIssue]) -> None:
    rails = {
        net for net in RAIL_NAMES if net in netlist.primary_inputs
    }
    if not rails:
        return
    for net in netlist.primary_outputs:
        if net in rails:
            issues.append(
                LintIssue(
                    rule="rail-misuse",
                    severity=WARNING,
                    message="constant rail declared as a primary output",
                    net=net,
                )
            )
    for gate in netlist.gates:
        if gate.inputs and all(net in rails for net in gate.inputs):
            issues.append(
                LintIssue(
                    rule="rail-misuse",
                    severity=WARNING,
                    message="every input is a constant rail; the gate "
                    "computes a constant",
                    net=gate.output,
                    gate=gate.name,
                )
            )


def lint_netlist(
    netlist: Netlist, ignore: Iterable[str] = ()
) -> LintReport:
    """Run every lint rule over ``netlist`` and collect the diagnostics.

    Never raises on broken structure -- corruption comes back as
    ``error``-severity issues.  ``ignore`` suppresses rules by name.
    """
    unknown = set(ignore) - set(RULES)
    if unknown:
        raise NetlistError(f"unknown lint rule(s): {sorted(unknown)}")
    issues: List[LintIssue] = []
    cyclic = _check_loops(netlist, issues)
    _check_drivers(netlist, issues)
    _check_gate_names(netlist, issues)
    _check_reachability(netlist, issues, cyclic)
    _check_inputs(netlist, issues)
    _check_rails(netlist, issues)
    ignored = set(ignore)
    order = {rule: k for k, rule in enumerate(RULES)}
    issues = [i for i in issues if i.rule not in ignored]
    issues.sort(key=lambda i: (order[i.rule], i.net or "", i.gate or ""))
    return LintReport(netlist_name=netlist.name, issues=tuple(issues))


def assert_clean(netlist: Netlist, ignore: Iterable[str] = ()) -> LintReport:
    """Lint ``netlist`` and raise :class:`NetlistError` on any error.

    Warnings pass (the truncated units dangle carries by design).  The
    architecture constructors call this as a build gate; the report is
    returned so callers can inspect warnings too.
    """
    report = lint_netlist(netlist, ignore=ignore)
    if not report.ok:
        rendered = "; ".join(issue.render() for issue in report.errors)
        raise NetlistError(
            f"netlist {netlist.name!r} failed lint: {rendered}"
        )
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _registered_netlists(width: int) -> List[Netlist]:
    """Every shipped unit netlist and Table 2 architecture at ``width``."""
    from repro.arch.testbench import GATE_OPERATORS, table2_architecture
    from repro.tpg.generate import UNIT_OPERATORS, unit_netlist

    netlists = [unit_netlist(unit, width) for unit in UNIT_OPERATORS]
    netlists.extend(
        table2_architecture(op, width).netlist for op in GATE_OPERATORS
    )
    return netlists


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint all registered netlists; exit 1 on any error-severity issue."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Structural lint over the shipped gate-level netlists.",
    )
    parser.add_argument(
        "--width", type=int, default=4, help="operand width (default 4)"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every warning, not just the summary line",
    )
    args = parser.parse_args(argv)
    failed = 0
    for netlist in _registered_netlists(args.width):
        report = lint_netlist(netlist)
        status = "OK" if report.ok else "FAIL"
        print(
            f"{status:4s} {netlist.name}: {len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s)"
        )
        shown = report.issues if args.verbose else report.errors
        for issue in shown:
            print("  " + issue.render())
        if not report.ok:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
