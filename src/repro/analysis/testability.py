"""SCOAP testability measures over the levelized netlist.

Goldstein's combinational controllability/observability, computed in
two passes over the compiled topological order:

- ``cc0(n)`` / ``cc1(n)``: the least number of primary-input
  assignments (counted as one per gate traversed, plus one per forced
  input) needed to set net ``n`` to 0/1.  Primary inputs cost 1 either
  way; a rail pinned by a constant costs 1 for its tied value and is
  uncontrollable to the opposite.
- ``co(n)``: the effort of propagating a change on net ``n`` to some
  primary output.  A primary output costs 0; a gate input pin adds the
  cost of holding every *other* input at the gate's non-controlling
  value plus the output's own observability.  A stem's observability is
  the cheapest of its reader pins (and 0 directly at a primary output).

Gate rules (``+1`` per traversed gate; inversions swap the cc pair,
observability is inversion-blind):

=========  ==============================  ==============================
cell       cc1 (output)                    cc0 (output)
=========  ==============================  ==============================
AND        ``sum(cc1 inputs) + 1``         ``min(cc0 inputs) + 1``
OR         ``min(cc1 inputs) + 1``         ``sum(cc0 inputs) + 1``
XOR (n)    cheapest odd-parity cover + 1   cheapest even-parity cover + 1
BUF/NOT    input cc (swapped for NOT) + 1
pin obs    AND/NAND: ``co(out) + sum(cc1 others) + 1``;
           OR/NOR: ``co(out) + sum(cc0 others) + 1``;
           XOR/XNOR: ``co(out) + sum(min(cc0, cc1) others) + 1``;
           BUF/NOT: ``co(out) + 1``
=========  ==============================  ==============================

The n-input XOR parity covers come from a running two-state DP (the
cheapest way to force even/odd many inputs to 1), so the wide XOR
trees of the checker logic get exact values, not 2-input approximations.

Unreachable or uncontrollable positions saturate at :data:`INFINITY`
rather than overflowing.  :func:`fault_efforts` combines both halves
into the classical detection-effort estimate of a stuck-at fault --
controllability of the opposite value at the site plus observability of
the site (branch faults use their pin observability) -- which is what
ranks ATPG targets and the hardest-to-test report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultError
from repro.gates.compile import (
    OP_AND,
    OP_OR,
    OP_XOR,
    CompiledNetlist,
    compile_netlist,
)
from repro.gates.faults import StuckAtFault, default_fault_universe
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Netlist

#: Saturation value for uncontrollable/unobservable positions.  Small
#: enough that sums over any realistic netlist stay far from int64
#: overflow, large enough to dominate every genuine effort.
INFINITY = np.int64(1) << np.int64(40)


def _sat(value: np.ndarray) -> np.ndarray:
    return np.minimum(value, INFINITY)


@dataclass(frozen=True)
class ScoapMeasures:
    """SCOAP controllability/observability of every net of one netlist.

    ``pin_co`` is flat, aligned with the compiled operand CSR
    (``compiled.operands``); :meth:`pin_observability` resolves a
    ``(gate name, pin)`` pair through it.  All values are int64 with
    :data:`INFINITY` marking unreachable positions.
    """

    netlist_name: str
    net_names: Tuple[str, ...]
    cc0: np.ndarray  # (n_nets,) int64
    cc1: np.ndarray  # (n_nets,) int64
    co: np.ndarray  # (n_nets,) int64, stem observability
    pin_co: np.ndarray  # (n_pins,) int64, aligned with compiled.operands
    _net_ids: dict
    _pin_ids: dict
    _operand_offsets: np.ndarray

    def of(self, net: str) -> Tuple[int, int, int]:
        """``(cc0, cc1, co)`` of one net, by name."""
        nid = self._net_ids[net]
        return (int(self.cc0[nid]), int(self.cc1[nid]), int(self.co[nid]))

    def pin_observability(self, gate_name: str, pin: int) -> int:
        g, p = self._pin_ids[(gate_name, pin)]
        return int(self.pin_co[int(self._operand_offsets[g]) + p])


def _controllability(
    compiled: CompiledNetlist, constants: Mapping[str, int]
) -> Tuple[np.ndarray, np.ndarray]:
    n_nets = compiled.n_nets
    cc0 = np.full(n_nets, INFINITY, dtype=np.int64)
    cc1 = np.full(n_nets, INFINITY, dtype=np.int64)
    for name, nid in zip(compiled.source.primary_inputs, compiled.input_ids):
        pinned = constants.get(name)
        if pinned is None:
            cc0[nid] = cc1[nid] = 1
        elif pinned == 0:
            cc0[nid] = 1
        else:
            cc1[nid] = 1
    offsets = compiled.operand_offsets
    for g in range(compiled.n_gates):
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        ops = compiled.operands[lo:hi]
        base = int(compiled.base_ops[g])
        if base == OP_AND:
            set_out = int(_sat(cc1[ops].sum())) + 1
            clear_out = int(cc0[ops].min()) + 1
        elif base == OP_OR:
            set_out = int(cc1[ops].min()) + 1
            clear_out = int(_sat(cc0[ops].sum())) + 1
        elif base == OP_XOR:
            even, odd = 0, int(INFINITY)
            for nid in ops.tolist():
                z, o = int(cc0[nid]), int(cc1[nid])
                even, odd = (
                    min(even + z, odd + o),
                    min(even + o, odd + z),
                )
            set_out = min(odd, int(INFINITY)) + 1
            clear_out = min(even, int(INFINITY)) + 1
        else:  # OP_COPY
            set_out = int(cc1[ops[0]]) + 1
            clear_out = int(cc0[ops[0]]) + 1
        out = compiled.gate_output_ids[g]
        if compiled.inverts[g]:
            set_out, clear_out = clear_out, set_out
        cc1[out] = min(set_out, int(INFINITY))
        cc0[out] = min(clear_out, int(INFINITY))
    return cc0, cc1


def _observability(
    compiled: CompiledNetlist, cc0: np.ndarray, cc1: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    n_nets = compiled.n_nets
    co = np.full(n_nets, INFINITY, dtype=np.int64)
    co[compiled.output_ids] = 0
    pin_co = np.full(len(compiled.operands), INFINITY, dtype=np.int64)
    offsets = compiled.operand_offsets
    for g in range(compiled.n_gates - 1, -1, -1):
        out_co = int(co[compiled.gate_output_ids[g]])
        lo, hi = int(offsets[g]), int(offsets[g + 1])
        ops = compiled.operands[lo:hi]
        base = int(compiled.base_ops[g])
        if base == OP_AND:
            side = cc1[ops]
        elif base == OP_OR:
            side = cc0[ops]
        elif base == OP_XOR:
            side = np.minimum(cc0[ops], cc1[ops])
        else:  # OP_COPY
            side = np.zeros(len(ops), dtype=np.int64)
        # Not saturated: the per-pin subtraction below must recover the
        # exact sum of the *other* pins even when one side is INFINITY
        # (sums stay far below int64 with INFINITY = 2**40).
        total = int(side.sum())
        for p in range(len(ops)):
            cost = out_co + (total - int(side[p])) + 1
            cost = min(cost, int(INFINITY))
            pin_co[lo + p] = cost
            nid = int(ops[p])
            if cost < co[nid]:
                co[nid] = cost
    return co, pin_co


def _compute_scoap(
    netlist: Netlist, constants: Optional[Mapping[str, int]]
) -> ScoapMeasures:
    compiled = compile_netlist(netlist)
    cc0, cc1 = _controllability(compiled, dict(constants or {}))
    co, pin_co = _observability(compiled, cc0, cc1)
    return ScoapMeasures(
        netlist_name=compiled.name,
        net_names=compiled.net_names,
        cc0=cc0,
        cc1=cc1,
        co=co,
        pin_co=pin_co,
        _net_ids=dict(compiled.net_ids),
        _pin_ids=dict(compiled.pin_ids),
        _operand_offsets=compiled.operand_offsets,
    )


_scoap_memo = identity_memo(netlist_fingerprint)


@_scoap_memo
def _cached_scoap(netlist: Netlist) -> ScoapMeasures:
    return _compute_scoap(netlist, None)


def scoap(
    netlist: Netlist,
    constants: Optional[Mapping[str, int]] = None,
    store: object = None,
) -> ScoapMeasures:
    """SCOAP measures of ``netlist``.

    ``constants`` pins rails (name -> 0/1), making the pinned value
    cost 1 and the opposite :data:`INFINITY` -- pass a test space's
    constants to score the universe a campaign actually sweeps.  The
    unconstrained result is memoised per netlist version and storable
    in the result store under the netlist content digest.
    """
    if constants:
        return _compute_scoap(netlist, constants)
    from repro.store import CacheKey, digest_netlist, resolve_store

    store = resolve_store(store)
    if store is None:
        return _cached_scoap(netlist)
    key = CacheKey(
        kind="analysis",
        netlist=digest_netlist(netlist),
        universe="-",
        space="-",
        method="scoap",
        backend="-",
    )
    cached = store.get(key)
    if isinstance(cached, dict):
        return _scoap_from_payload(netlist, cached)
    result = _cached_scoap(netlist)
    store.put(key, _scoap_payload(result))
    return result


def _scoap_payload(result: ScoapMeasures) -> dict:
    return {
        "netlist_name": result.netlist_name,
        "net_names": list(result.net_names),
        "arrays": {
            "cc0": result.cc0,
            "cc1": result.cc1,
            "co": result.co,
            "pin_co": result.pin_co,
        },
    }


def _scoap_from_payload(netlist: Netlist, payload: dict) -> ScoapMeasures:
    compiled = compile_netlist(netlist)
    arrays = payload["arrays"]
    return ScoapMeasures(
        netlist_name=str(payload["netlist_name"]),
        net_names=tuple(str(n) for n in payload["net_names"]),
        cc0=np.asarray(arrays["cc0"], dtype=np.int64),
        cc1=np.asarray(arrays["cc1"], dtype=np.int64),
        co=np.asarray(arrays["co"], dtype=np.int64),
        pin_co=np.asarray(arrays["pin_co"], dtype=np.int64),
        _net_ids=dict(compiled.net_ids),
        _pin_ids=dict(compiled.pin_ids),
        _operand_offsets=compiled.operand_offsets,
    )


def fault_efforts(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]] = None,
    constants: Optional[Mapping[str, int]] = None,
    measures: Optional[ScoapMeasures] = None,
) -> np.ndarray:
    """SCOAP detection effort of every fault, aligned with ``faults``.

    ``effort(SAv @ site) = cc(opposite of v)(net) + observability``
    where a branch fault observes through its specific pin and a stem
    fault through the cheapest reader (or directly at a primary
    output).  Saturates at :data:`INFINITY` for positions SCOAP deems
    untestable (the measure is a heuristic bound, not a proof).
    """
    if measures is None:
        measures = scoap(netlist, constants=constants)
    fault_seq: Sequence[StuckAtFault] = (
        default_fault_universe(netlist) if faults is None else tuple(faults)
    )
    efforts = np.empty(len(fault_seq), dtype=np.int64)
    for k, fault in enumerate(fault_seq):
        site = fault.site
        nid = measures._net_ids.get(site.net)
        if nid is None:
            raise FaultError(
                f"fault site {site.describe()} is not a net of "
                f"{measures.netlist_name!r}"
            )
        control = measures.cc1[nid] if fault.value == 0 else measures.cc0[nid]
        if site.branch is None:
            observe = measures.co[nid]
        else:
            gate_name, pin = site.branch
            observe = measures.pin_observability(gate_name, pin)
        efforts[k] = min(int(control) + int(observe), int(INFINITY))
    return efforts


def hardest_faults(
    netlist: Netlist,
    faults: Optional[Sequence[StuckAtFault]] = None,
    limit: int = 10,
    constants: Optional[Mapping[str, int]] = None,
) -> List[Tuple[StuckAtFault, int]]:
    """The ``limit`` highest-effort faults, hardest first.

    Ties break by universe order, so the ranking is deterministic; the
    TPG report prints this next to the proven-redundant residue.
    """
    fault_seq: Sequence[StuckAtFault] = (
        default_fault_universe(netlist) if faults is None else tuple(faults)
    )
    efforts = fault_efforts(netlist, fault_seq, constants=constants)
    order = sorted(range(len(fault_seq)), key=lambda k: (-int(efforts[k]), k))
    return [(fault_seq[k], int(efforts[k])) for k in order[: max(0, limit)]]
