"""Support cones over the compiled CSR arrays.

The transitive fan-in of a net (which primary inputs can affect it) and
the transitive fan-out (which primary outputs it can affect) are the
basic reachability facts every other static analysis builds on:
unreachable-logic lint, output-cone partitioning for independent
evaluation, and the incremental-recomputation item on the roadmap.

Both directions are computed as bitmask propagation over the levelized
CSR arrays of a :class:`~repro.gates.compile.CompiledNetlist`: every
net carries one ``uint64`` word row per 64 primary inputs (or outputs),
and one level of gates is processed with a single gather +
``bitwise_or.reduceat`` (forward) or ``bitwise_or.at`` scatter
(backward) -- no per-gate Python loop.

Results are memoised per netlist version like the compiled lowering and
are storable in the result store keyed on the netlist content digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.gates.compile import CompiledNetlist, compile_netlist
from repro.gates.memo import identity_memo, netlist_fingerprint
from repro.gates.netlist import Netlist

_WORD = 64


def _mask_words(count: int) -> int:
    return max(1, (count + _WORD - 1) // _WORD)


def _bit_indices(mask_row: np.ndarray, limit: int) -> List[int]:
    """Indices of the set bits of one packed mask row, ascending."""
    out: List[int] = []
    for w, word in enumerate(mask_row.tolist()):
        base = w * _WORD
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return [k for k in out if k < limit]


def _level_batches(compiled: CompiledNetlist) -> List[np.ndarray]:
    """Compiled gate indices grouped by level, ascending."""
    levels = compiled.gate_levels
    if len(levels) == 0:
        return []
    order = np.argsort(levels, kind="stable")
    bounds = np.nonzero(np.diff(levels[order]))[0] + 1
    return np.split(order, bounds)


@dataclass(frozen=True)
class ConeAnalysis:
    """Fan-in/fan-out reachability of every net of one netlist.

    ``support_masks[n]`` packs which primary inputs (by declared index)
    are in the transitive fan-in of net ``n``; ``reach_masks[n]`` packs
    which primary outputs (by declared index) are in its transitive
    fan-out.  ``partitions`` groups primary-output indices whose support
    cones share at least one primary input (transitively), i.e. the
    finest split of the netlist into independently evaluable sub-cones.
    """

    netlist_name: str
    input_names: Tuple[str, ...]
    output_names: Tuple[str, ...]
    net_names: Tuple[str, ...]
    support_masks: np.ndarray  # (n_nets, ceil(n_inputs/64)) uint64
    support_counts: np.ndarray  # (n_nets,) int64
    reach_masks: np.ndarray  # (n_nets, ceil(n_outputs/64)) uint64
    reach_counts: np.ndarray  # (n_nets,) int64
    partitions: Tuple[Tuple[int, ...], ...]
    _net_ids: dict

    def _nid(self, net: str) -> int:
        return self._net_ids[net]

    def support_of(self, net: str) -> Tuple[str, ...]:
        """Primary inputs in the transitive fan-in of ``net``."""
        row = self.support_masks[self._nid(net)]
        return tuple(
            self.input_names[k] for k in _bit_indices(row, len(self.input_names))
        )

    def outputs_reached(self, net: str) -> Tuple[str, ...]:
        """Primary outputs in the transitive fan-out of ``net``."""
        row = self.reach_masks[self._nid(net)]
        return tuple(
            self.output_names[k] for k in _bit_indices(row, len(self.output_names))
        )

    def output_partitions(self) -> Tuple[Tuple[str, ...], ...]:
        """The support-disjoint output groups, by output name."""
        return tuple(
            tuple(self.output_names[k] for k in group) for group in self.partitions
        )


def _compute_cones(compiled: CompiledNetlist) -> ConeAnalysis:
    n_nets = compiled.n_nets
    n_in = compiled.n_inputs
    n_out = compiled.n_outputs
    in_words = _mask_words(n_in)
    out_words = _mask_words(n_out)
    batches = _level_batches(compiled)

    # Forward: which primary inputs support each net.
    support = np.zeros((n_nets, in_words), dtype=np.uint64)
    for k, nid in enumerate(compiled.input_ids.tolist()):
        support[nid, k // _WORD] |= np.uint64(1) << np.uint64(k % _WORD)
    offsets = compiled.operand_offsets
    operands = compiled.operands
    for gs in batches:
        starts = offsets[gs].astype(np.int64)
        counts = (offsets[gs + 1] - offsets[gs]).astype(np.int64)
        seg = np.zeros(len(gs), dtype=np.int64)
        np.cumsum(counts[:-1], out=seg[1:])
        flat = np.repeat(starts - seg, counts) + np.arange(int(counts.sum()))
        gathered = support[operands[flat]]
        reduced = np.bitwise_or.reduceat(gathered, seg, axis=0)
        support[compiled.gate_output_ids[gs]] = reduced

    # Backward: which primary outputs each net reaches.
    reach = np.zeros((n_nets, out_words), dtype=np.uint64)
    for k, nid in enumerate(compiled.output_ids.tolist()):
        reach[nid, k // _WORD] |= np.uint64(1) << np.uint64(k % _WORD)
    for gs in reversed(batches):
        starts = offsets[gs].astype(np.int64)
        counts = (offsets[gs + 1] - offsets[gs]).astype(np.int64)
        flat = np.repeat(starts, counts) + (
            np.arange(int(counts.sum())) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        out_rows = np.repeat(reach[compiled.gate_output_ids[gs]], counts, axis=0)
        np.bitwise_or.at(reach, operands[flat], out_rows)

    support_counts = _popcount_rows(support)
    reach_counts = _popcount_rows(reach)

    # Output partition: union outputs sharing any supporting input.
    parent = list(range(n_out))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    out_support = support[compiled.output_ids] if n_out else support[:0]
    for k in range(n_in):
        column = (out_support[:, k // _WORD] >> np.uint64(k % _WORD)) & np.uint64(1)
        users = np.nonzero(column)[0]
        for j in users[1:].tolist():
            ri, rj = find(int(users[0])), find(j)
            if ri != rj:
                parent[rj] = ri
    groups: dict = {}
    for k in range(n_out):
        groups.setdefault(find(k), []).append(k)
    partitions = tuple(tuple(g) for g in groups.values())

    return ConeAnalysis(
        netlist_name=compiled.name,
        input_names=tuple(compiled.source.primary_inputs),
        output_names=tuple(compiled.source.primary_outputs),
        net_names=compiled.net_names,
        support_masks=support,
        support_counts=support_counts,
        reach_masks=reach,
        reach_counts=reach_counts,
        partitions=partitions,
        _net_ids=dict(compiled.net_ids),
    )


def _popcount_rows(masks: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)
    bits = (masks[:, :, None] >> np.arange(_WORD, dtype=np.uint64)) & np.uint64(1)
    return bits.sum(axis=(1, 2), dtype=np.int64)


_cones_memo = identity_memo(netlist_fingerprint)


@_cones_memo
def _cached_cones(netlist: Netlist) -> ConeAnalysis:
    return _compute_cones(compile_netlist(netlist))


def _cones_payload(result: ConeAnalysis) -> dict:
    offsets = np.zeros(len(result.partitions) + 1, dtype=np.int64)
    np.cumsum([len(g) for g in result.partitions], out=offsets[1:])
    members = np.array(
        [k for group in result.partitions for k in group], dtype=np.int64
    )
    return {
        "netlist_name": result.netlist_name,
        "input_names": list(result.input_names),
        "output_names": list(result.output_names),
        "net_names": list(result.net_names),
        "arrays": {
            "support_masks": result.support_masks,
            "support_counts": result.support_counts,
            "reach_masks": result.reach_masks,
            "reach_counts": result.reach_counts,
            "partition_offsets": offsets,
            "partition_members": members,
        },
    }


def _cones_from_payload(payload: dict) -> ConeAnalysis:
    arrays = payload["arrays"]
    offsets = np.asarray(arrays["partition_offsets"], dtype=np.int64)
    members = np.asarray(arrays["partition_members"], dtype=np.int64)
    partitions = tuple(
        tuple(int(k) for k in members[lo:hi])
        for lo, hi in zip(offsets[:-1], offsets[1:])
    )
    net_names = tuple(str(n) for n in payload["net_names"])
    return ConeAnalysis(
        netlist_name=str(payload["netlist_name"]),
        input_names=tuple(str(n) for n in payload["input_names"]),
        output_names=tuple(str(n) for n in payload["output_names"]),
        net_names=net_names,
        support_masks=np.asarray(arrays["support_masks"], dtype=np.uint64),
        support_counts=np.asarray(arrays["support_counts"], dtype=np.int64),
        reach_masks=np.asarray(arrays["reach_masks"], dtype=np.uint64),
        reach_counts=np.asarray(arrays["reach_counts"], dtype=np.int64),
        partitions=partitions,
        _net_ids={name: i for i, name in enumerate(net_names)},
    )


def analyze_cones(netlist: Netlist, store: object = None) -> ConeAnalysis:
    """Support/reach cones of ``netlist``, memoised per netlist version.

    With a result store (``store=`` or the ``REPRO_STORE`` environment
    variable) the packed mask arrays are persisted under the netlist's
    content digest, so cold processes skip the propagation entirely.
    """
    from repro.store import CacheKey, digest_netlist, resolve_store

    store = resolve_store(store)
    if store is None:
        return _cached_cones(netlist)
    key = CacheKey(
        kind="analysis",
        netlist=digest_netlist(netlist),
        universe="-",
        space="-",
        method="cones",
        backend="-",
    )
    cached = store.get(key)
    if isinstance(cached, dict):
        return _cones_from_payload(cached)
    result = _cached_cones(netlist)
    store.put(key, _cones_payload(result))
    return result


@dataclass(frozen=True)
class GateConeAnalysis:
    """Gate-granular fan-out cones of one netlist.

    ``gate_masks[g]`` packs the compiled indices of every gate strictly
    downstream of gate ``g`` (transitively reachable through its output
    net); ``net_cone_masks[n]`` packs the gates a stuck-at fault on net
    ``n`` can perturb -- the net's reader gates and everything
    downstream of them (the *driver* of ``n`` is not included; a stem
    override replaces its output, it does not re-evaluate it).

    ``gate_cone_sizes[g]`` counts the gate itself plus its downstream
    cone, so sizes rank gates by blast radius; ``mean_cone_fraction``
    is the average ``net_cone_sizes / n_gates`` over all nets -- the
    cone-density statistic the sparse/dense autotuner heuristic keys
    on (dense netlists reconverge fast, so sparse schedules save
    nothing there).
    """

    netlist_name: str
    gate_names: Tuple[str, ...]
    net_names: Tuple[str, ...]
    gate_masks: np.ndarray  # (n_gates, ceil(n_gates/64)) uint64
    gate_cone_sizes: np.ndarray  # (n_gates,) int64, downstream + self
    net_cone_masks: np.ndarray  # (n_nets, ceil(n_gates/64)) uint64
    net_cone_sizes: np.ndarray  # (n_nets,) int64
    driver_gates: np.ndarray  # (n_nets,) int64, -1 for primary inputs
    mean_cone_fraction: float
    _gate_ids: dict
    _net_ids: dict

    @property
    def n_gates(self) -> int:
        return len(self.gate_names)

    def cone_of(self, gate: str) -> Tuple[str, ...]:
        """Names of the gates strictly downstream of ``gate``."""
        row = self.gate_masks[self._gate_ids[gate]]
        return tuple(self.gate_names[k] for k in _bit_indices(row, self.n_gates))

    def net_cone(self, net: str) -> Tuple[str, ...]:
        """Names of the gates a stuck-at fault on ``net`` can perturb."""
        row = self.net_cone_masks[self._net_ids[net]]
        return tuple(self.gate_names[k] for k in _bit_indices(row, self.n_gates))

    def ranking(self) -> Tuple[str, ...]:
        """Gate names by descending cone size (stable within ties)."""
        order = np.argsort(-self.gate_cone_sizes, kind="stable")
        return tuple(self.gate_names[int(g)] for g in order)


def _fanout_reduce(
    starts: np.ndarray,
    counts: np.ndarray,
    fanout_gates: np.ndarray,
    rows_of: np.ndarray,
) -> np.ndarray:
    """OR-reduce ``rows_of[reader]`` over each CSR fanout segment.

    ``starts``/``counts`` delimit non-empty segments of
    ``fanout_gates``; returns one reduced mask row per segment.
    """
    seg = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=seg[1:])
    flat = np.repeat(starts - seg, counts) + np.arange(int(counts.sum()))
    readers = fanout_gates[flat]
    return np.bitwise_or.reduceat(rows_of[readers], seg, axis=0)


def _compute_gate_cones(compiled: CompiledNetlist) -> GateConeAnalysis:
    n_gates = compiled.n_gates
    n_nets = compiled.n_nets
    gw = _mask_words(n_gates)

    self_bits = np.zeros((n_gates, gw), dtype=np.uint64)
    idx = np.arange(n_gates)
    self_bits[idx, idx // _WORD] = np.uint64(1) << (idx % _WORD).astype(np.uint64)

    # reader row = its own bit plus everything downstream of it; filled
    # in reverse level order so every reader of a gate's output net is
    # final before the gate itself is reduced.
    fo_off = compiled.fanout_offsets.astype(np.int64)
    fo_gates = compiled.fanout_gates
    masks = np.zeros((n_gates, gw), dtype=np.uint64)
    reader_rows = self_bits.copy()
    for gs in reversed(_level_batches(compiled)):
        outs = compiled.gate_output_ids[gs]
        lo = fo_off[outs]
        counts = fo_off[outs + 1] - lo
        nz = counts > 0
        if nz.any():
            reduced = _fanout_reduce(lo[nz], counts[nz], fo_gates, reader_rows)
            masks[gs[nz]] = reduced
            reader_rows[gs[nz]] |= reduced

    net_masks = np.zeros((n_nets, gw), dtype=np.uint64)
    lo = fo_off[:-1]
    counts = fo_off[1:] - lo
    nz = counts > 0
    if nz.any():
        net_masks[nz] = _fanout_reduce(lo[nz], counts[nz], fo_gates, reader_rows)

    driver_gates = np.full(n_nets, -1, dtype=np.int64)
    driver_gates[compiled.gate_output_ids] = np.arange(n_gates, dtype=np.int64)

    net_cone_sizes = _popcount_rows(net_masks)
    fraction = 0.0
    if n_gates and n_nets:
        fraction = float(net_cone_sizes.mean() / n_gates)
    return GateConeAnalysis(
        netlist_name=compiled.name,
        gate_names=compiled.gate_names,
        net_names=compiled.net_names,
        gate_masks=masks,
        gate_cone_sizes=_popcount_rows(masks) + 1,
        net_cone_masks=net_masks,
        net_cone_sizes=net_cone_sizes,
        driver_gates=driver_gates,
        mean_cone_fraction=fraction,
        _gate_ids={name: i for i, name in enumerate(compiled.gate_names)},
        _net_ids=dict(compiled.net_ids),
    )


_gate_cones_memo = identity_memo(netlist_fingerprint)


@_gate_cones_memo
def _cached_gate_cones(netlist: Netlist) -> GateConeAnalysis:
    return _compute_gate_cones(compile_netlist(netlist))


def _gate_cones_payload(result: GateConeAnalysis) -> dict:
    return {
        "netlist_name": result.netlist_name,
        "gate_names": list(result.gate_names),
        "net_names": list(result.net_names),
        "mean_cone_fraction": result.mean_cone_fraction,
        "arrays": {
            "gate_masks": result.gate_masks,
            "gate_cone_sizes": result.gate_cone_sizes,
            "net_cone_masks": result.net_cone_masks,
            "net_cone_sizes": result.net_cone_sizes,
            "driver_gates": result.driver_gates,
        },
    }


def _gate_cones_from_payload(payload: dict) -> GateConeAnalysis:
    arrays = payload["arrays"]
    gate_names = tuple(str(n) for n in payload["gate_names"])
    net_names = tuple(str(n) for n in payload["net_names"])
    return GateConeAnalysis(
        netlist_name=str(payload["netlist_name"]),
        gate_names=gate_names,
        net_names=net_names,
        gate_masks=np.asarray(arrays["gate_masks"], dtype=np.uint64),
        gate_cone_sizes=np.asarray(arrays["gate_cone_sizes"], dtype=np.int64),
        net_cone_masks=np.asarray(arrays["net_cone_masks"], dtype=np.uint64),
        net_cone_sizes=np.asarray(arrays["net_cone_sizes"], dtype=np.int64),
        driver_gates=np.asarray(arrays["driver_gates"], dtype=np.int64),
        mean_cone_fraction=float(payload["mean_cone_fraction"]),
        _gate_ids={name: i for i, name in enumerate(gate_names)},
        _net_ids={name: i for i, name in enumerate(net_names)},
    )


def analyze_gate_cones(netlist: Netlist, store: object = None) -> GateConeAnalysis:
    """Per-gate fan-out cones of ``netlist``, memoised per version.

    The packed masks feed the cone-sparse fault schedules
    (:mod:`repro.gates.sparse`) and the incremental-campaign
    invalidation rule (:mod:`repro.faults.incremental`).  With a result
    store active they persist under the netlist content digest like the
    other ``kind="analysis"`` artifacts.
    """
    from repro.store import CacheKey, digest_netlist, resolve_store

    store = resolve_store(store)
    if store is None:
        return _cached_gate_cones(netlist)
    key = CacheKey(
        kind="analysis",
        netlist=digest_netlist(netlist),
        universe="-",
        space="-",
        method="gate_cones",
        backend="-",
    )
    cached = store.get(key)
    if isinstance(cached, dict):
        return _gate_cones_from_payload(cached)
    result = _cached_gate_cones(netlist)
    store.put(key, _gate_cones_payload(result))
    return result
