"""Static analysis over gate-level netlists.

Pure structural reasoning -- no simulation -- split over four modules:

- :mod:`repro.analysis.lint` -- a rule engine emitting structured
  diagnostics (combinational loops, undriven/multiply-driven nets,
  dangling outputs, unreachable logic, unused inputs, rail misuse)
  with a ``python -m repro.analysis.lint`` CLI and an
  :func:`~repro.analysis.lint.assert_clean` hook the architecture
  constructors use as a build gate.
- :mod:`repro.analysis.cones` -- vectorized transitive fan-in/fan-out
  support cones over the compiled CSR arrays: per-net primary-input
  support bitmasks, primary-output reachability masks, and the
  partition of outputs into support-disjoint cones.
- :mod:`repro.analysis.collapse` -- classical fault collapsing: the
  structural *equivalence* classes of :mod:`repro.gates.faults` plus
  *dominance* edges, producing a :class:`~repro.analysis.collapse.CollapseMap`
  the campaign engine consumes to simulate fewer representatives while
  expanding detection verdicts back over the full universe.
- :mod:`repro.analysis.testability` -- SCOAP controllability /
  observability measures (Goldstein), per-fault detection effort, and
  the hardest-to-test fault ranking the TPG report surfaces.

All artifacts are cacheable in the result store (``store=`` keywords)
keyed on the netlist content digest, and memoised in-process per
netlist version like the compiled lowering.
"""

from repro.analysis.collapse import CollapseMap, collapse_faults
from repro.analysis.cones import (
    ConeAnalysis,
    GateConeAnalysis,
    analyze_cones,
    analyze_gate_cones,
)
from repro.analysis.lint import (
    LintIssue,
    LintReport,
    assert_clean,
    lint_netlist,
)
from repro.analysis.testability import (
    ScoapMeasures,
    fault_efforts,
    hardest_faults,
    scoap,
)

__all__ = [
    "CollapseMap",
    "ConeAnalysis",
    "GateConeAnalysis",
    "LintIssue",
    "LintReport",
    "ScoapMeasures",
    "analyze_cones",
    "analyze_gate_cones",
    "assert_clean",
    "collapse_faults",
    "fault_efforts",
    "hardest_faults",
    "lint_netlist",
    "scoap",
]
