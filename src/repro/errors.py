"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can distinguish library failures from programming mistakes with a
single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class NetlistError(ReproError):
    """A structural problem in a gate-level netlist (dangling net,
    duplicate driver, combinational cycle, unknown cell type...)."""


class SimulationError(ReproError):
    """A logic-simulation request that cannot be satisfied (width
    mismatch, missing input assignment, unsupported vector shape...)."""


class FaultError(ReproError):
    """An invalid fault descriptor or fault-injection request."""


class CheckError(ReproError):
    """Raised by :class:`repro.core.SCK` consumers when an error bit is
    observed in strict mode."""


class SpecificationError(ReproError):
    """An ill-formed dataflow-graph specification in the co-design flow."""


class SchedulingError(ReproError):
    """The scheduler could not produce a legal schedule (e.g. zero
    functional units allocated for a required operation type)."""


class CompilationError(ReproError):
    """The VM compiler could not translate a dataflow graph."""


class OverflowPolicyError(ReproError):
    """An arithmetic result exceeded the representable range and the
    active overflow policy is ``'raise'``."""
