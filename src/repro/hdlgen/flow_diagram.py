"""The reliable co-design flow diagram (Figure 3).

The paper's Figure 3 shows the tool pipeline: a SystemC-Plus
self-checking specification feeding the OFFIS synthesiser, which forks
into a hardware branch (Synopsys CoCentric behavioural synthesis) and a
software branch (g++).  This module renders the same flow -- with this
repository's substitutions annotated -- as ASCII art and as Graphviz
dot, so the figure regenerates from code.
"""

from __future__ import annotations

STAGES = (
    ("spec", "Self-checking specification", "SystemC-Plus SCK<TYPE>", "repro.core.SCK / repro.codesign.dfg"),
    ("synth", "SystemC-Plus synthesiser", "OFFIS (SystemC-Plus -> SystemC)", "repro.codesign.sck_transform"),
    ("hw", "Behavioural HW synthesis", "Synopsys CoCentric -> Xilinx CLBs", "repro.codesign scheduling/area/timing"),
    ("sw", "SW compilation", "g++ on host processor", "repro.vm compiler/optimizer/machine"),
    ("eval", "Cost/performance evaluation", "Table 3", "repro.codesign.report"),
)


def emit_flow_ascii() -> str:
    """Figure 3 as ASCII art, annotated with this repo's substitutes."""
    lines = [
        "+------------------------------------------------------------+",
        "|  Self-checking specification (SystemC-Plus, SCK<TYPE>)      |",
        "|      here: repro.core.SCK / repro.codesign.dfg              |",
        "+------------------------------+-------------------------------+",
        "                               |",
        "                               v",
        "+------------------------------------------------------------+",
        "|  SystemC-Plus synthesiser (OFFIS)                            |",
        "|      here: repro.codesign.sck_transform enrichment passes   |",
        "+---------------+----------------------------+-----------------+",
        "                |                            |",
        "        hardware branch               software branch",
        "                |                            |",
        "                v                            v",
        "+-------------------------------+  +--------------------------+",
        "|  Behavioural synthesis        |  |  g++ compilation          |",
        "|  (Synopsys CoCentric -> CLBs) |  |  here: repro.vm compiler/ |",
        "|  here: repro.codesign         |  |  optimizer on the mono-   |",
        "|  scheduling/allocation/area   |  |  processor VM             |",
        "+---------------+---------------+  +------------+-------------+",
        "                |                               |",
        "                +---------------+---------------+",
        "                                v",
        "+------------------------------------------------------------+",
        "|  Cost / performance / coverage evaluation  (Table 3)        |",
        "|      here: repro.codesign.report, repro.coverage.report     |",
        "+------------------------------------------------------------+",
    ]
    return "\n".join(lines)


def emit_flow_dot() -> str:
    """Figure 3 as a Graphviz digraph."""
    lines = [
        "digraph reliable_codesign_flow {",
        '  rankdir=TB; node [shape=box, fontname="Helvetica"];',
    ]
    for key, title, paper_tool, repro_tool in STAGES:
        label = f"{title}\\n(paper: {paper_tool})\\n(here: {repro_tool})"
        lines.append(f'  {key} [label="{label}"];')
    lines += [
        "  spec -> synth;",
        '  synth -> hw [label="hardware"];',
        '  synth -> sw [label="software"];',
        "  hw -> eval;",
        "  sw -> eval;",
        "}",
    ]
    return "\n".join(lines) + "\n"
