"""The Section 4.1 fault-injection test architecture, as VHDL.

The paper built VHDL and C environments that exercise a pair of related
operations (the nominal ``f`` and its dual via the ``g`` complement
function) on the same faulty unit.  This emitter regenerates that test
architecture for the adder case: the unit under test (a ripple-carry
adder netlist from :mod:`repro.gates.builders`), the ``g`` function
(one's complement), a carry-in tied to 1 for the dual operation, and
the output comparator.  The fault list accompanying it is the same
32-fault universe the coverage engine simulates, so the two artefacts
are consistent by construction.
"""

from __future__ import annotations

from typing import List

from repro.arch.cell import DEFAULT_CELL_NETLIST
from repro.gates.builders import full_adder, full_adder_xor3, ripple_carry_adder
from repro.gates.emit import to_vhdl
from repro.gates.faults import full_fault_list


def emit_test_architecture(width: int = 4, cell_netlist: str = DEFAULT_CELL_NETLIST) -> str:
    """Structural VHDL of the paired-operation test architecture."""
    adder = ripple_carry_adder(width, name=f"rca{width}")
    adder_vhdl = to_vhdl(adder)
    fa_netlist = (
        full_adder_xor3() if cell_netlist == "xor3_majority" else full_adder()
    )
    fault_lines: List[str] = [
        f"--   {i:2d}: {fault.describe()}"
        for i, fault in enumerate(full_fault_list(fa_netlist))
    ]
    faults = "\n".join(fault_lines)
    ports_a = ", ".join(f"x{i}" for i in range(width))
    ports_b = ", ".join(f"y{i}" for i in range(width))
    return f"""-- Test architecture for the paired operations f (add) and its dual
-- (subtract = f with g(op) = one's complement and carry-in = 1), both
-- executed on the same (faulty) unit, per paper Section 4.1.
--
-- Fault universe of the single full-adder cell ({cell_netlist}):
{faults}

{adder_vhdl}
library ieee;
use ieee.std_logic_1164.all;

entity test_architecture is
  port (
    {ports_a} : in  std_logic;
    {ports_b} : in  std_logic;
    mismatch : out std_logic
  );
end entity test_architecture;

architecture paired of test_architecture is
  signal ris : std_logic_vector({width - 1} downto 0);
  signal xv  : std_logic_vector({width - 1} downto 0);
  signal chk : std_logic_vector({width - 1} downto 0);
  signal gy  : std_logic_vector({width - 1} downto 0);
  signal expect : std_logic_vector({width - 1} downto 0);
  signal diff : std_logic_vector({width - 1} downto 0);
begin
  {chr(10).join(f"  xv({i}) <= x{i};" for i in range(width))}
  -- nominal: ris = x + y            (cin = '0')
  -- dual:    chk = ris + g(x) + 1   (g = one's complement; cin = '1')
  -- checker: mismatch = '1' when chk /= y
  nominal : entity work.rca{width}
    port map (
      {", ".join(f"a{i} => x{i}" for i in range(width))},
      {", ".join(f"b{i} => y{i}" for i in range(width))},
      cin => '0',
      {", ".join(f"fa{i}_s => ris({i})" for i in range(width))},
      fa{width - 1}_cout => open
    );
  -- The dual operation instantiates the same unit in a real run; the
  -- fault simulator (repro.coverage.engine) injects the fault into
  -- both instances to model reuse of the one physical unit.
  dual : entity work.rca{width}
    port map (
      {", ".join(f"a{i} => ris({i})" for i in range(width))},
      {", ".join(f"b{i} => gy({i})" for i in range(width))},
      cin => '1',
      {", ".join(f"fa{i}_s => chk({i})" for i in range(width))},
      fa{width - 1}_cout => open
    );
  g_complement : for k in 0 to {width - 1} generate
    gy(k) <= not xv(k);  -- g(op1): one's complement of the subtrahend
  end generate;
  {chr(10).join(f"  expect({i}) <= y{i};" for i in range(width))}
  compare : for k in 0 to {width - 1} generate
    diff(k) <= chk(k) xor expect(k);
  end generate;
  mismatch <= {" or ".join(f"diff({i})" for i in range(width))};
end architecture paired;
"""
