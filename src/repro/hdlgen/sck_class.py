"""SystemC-Plus ``SCK`` class template emitter (Figures 1 and 2).

The paper presents the self-checking class as C++ source: Figure 1 the
interface (error bit ``E``, internal data ``ID``, accessors, operator
prototypes), Figure 2 the self-checking ``operator+`` body.  This module
regenerates that source text for any operator/technique combination in
the registry, so the figures -- and the whole "extensible reliability
library" of checker variants -- are reproducible artefacts rather than
screenshots.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.techniques import available_techniques
from repro.errors import ReproError

_OP_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%"}

_CHECK_BODY = {
    ("add", "tech1"): [
        "TYPE chk = ris.ID - op1.ID;   // hidden inverse operation",
        "err = err || (chk != op2.ID);",
    ],
    ("add", "tech2"): [
        "TYPE chk = ris.ID - op2.ID;   // hidden inverse operation",
        "err = err || (chk != op1.ID);",
    ],
    ("add", "both"): [
        "TYPE chk1 = ris.ID - op1.ID;  // hidden inverse operations",
        "TYPE chk2 = ris.ID - op2.ID;",
        "err = err || (chk1 != op2.ID) || (chk2 != op1.ID);",
    ],
    ("sub", "tech1"): [
        "TYPE chk = ris.ID + op2.ID;   // hidden inverse operation",
        "err = err || (chk != op1.ID);",
    ],
    ("sub", "tech2"): [
        "TYPE chk = op2.ID - op1.ID;   // reversed difference",
        "err = err || ((ris.ID + chk) != 0);",
    ],
    ("sub", "both"): [
        "TYPE chk1 = ris.ID + op2.ID;",
        "TYPE chk2 = op2.ID - op1.ID;",
        "err = err || (chk1 != op1.ID) || ((ris.ID + chk2) != 0);",
    ],
    ("mul", "tech1"): [
        "TYPE chk = (-op1.ID) * op2.ID;  // hidden dual product",
        "err = err || ((ris.ID + chk) != 0);",
    ],
    ("mul", "tech2"): [
        "TYPE chk = op1.ID * (-op2.ID);  // hidden dual product",
        "err = err || ((ris.ID + chk) != 0);",
    ],
    ("mul", "both"): [
        "TYPE chk1 = (-op1.ID) * op2.ID;",
        "TYPE chk2 = op1.ID * (-op2.ID);",
        "err = err || ((ris.ID + chk1) != 0) || ((ris.ID + chk2) != 0);",
    ],
    ("div", "tech1"): [
        "TYPE rem = op1.ID % op2.ID;     // remainder correction",
        "TYPE chk = ris.ID * op2.ID + rem;",
        "err = err || (chk != op1.ID);",
    ],
    ("div", "tech2"): [
        "TYPE rem = op1.ID % op2.ID;     // remainder correction",
        "TYPE chk = ris.ID * op2.ID + rem;",
        "err = err || (chk != op1.ID) || (rem < 0 ? -rem : rem) >= (op2.ID < 0 ? -op2.ID : op2.ID);",
    ],
}


def emit_sck_interface(operators: Iterable[str] = ("add",)) -> str:
    """The ``SCK`` interface, as in Figure 1 (error bit + accessors).

    ``operators`` selects which operator prototypes are listed; the
    paper's figure limits itself to ``=`` and ``+`` "for clarity".
    """
    prototype_lines = []
    for operator in operators:
        symbol = _OP_SYMBOL.get(operator)
        if symbol is None:
            raise ReproError(f"no C++ symbol for operator {operator!r}")
        prototype_lines.append(
            f"    SCK<TYPE> operator{symbol}(const SCK<TYPE> &op2) const;"
        )
    prototypes = "\n".join(prototype_lines)
    return f"""template <class TYPE>
class SCK
{{
  private:
    TYPE ID;    // internal data
    bool E;     // error bit

  public:
    SCK() {{}}                       // empty constructor (synthesis)
    SCK(TYPE v) : ID(v), E(false) {{}}

    TYPE GetID() const   {{ return ID; }}
    bool GetError() const {{ return E; }}

    SCK<TYPE> &operator=(const SCK<TYPE> &src);
{prototypes}
}};
"""


def emit_sck_operator(operator: str = "add", technique: str = "tech1") -> str:
    """A self-checking operator body, as in Figure 2 for ``+``/tech1."""
    symbol = _OP_SYMBOL.get(operator)
    if symbol is None:
        raise ReproError(f"no C++ symbol for operator {operator!r}")
    try:
        body = _CHECK_BODY[(operator, technique)]
    except KeyError:
        raise ReproError(
            f"no emitter for operator {operator!r} technique {technique!r}"
        ) from None
    check = "\n".join(f"    {line}" for line in body)
    return f"""template <class TYPE>
SCK<TYPE> SCK<TYPE>::operator{symbol}(const SCK<TYPE> &op2) const
{{
    const SCK<TYPE> &op1 = *this;
    SCK<TYPE> ris;
    bool err = op1.E || op2.E;        // error propagation
    ris.ID = op1.ID {symbol} op2.ID;  // nominal operation
{check}
    ris.E = err;
    return ris;
}}
"""


def emit_sck_class(
    operators: Iterable[str] = ("add", "sub", "mul", "div"),
    technique: str = "tech1",
    techniques: Optional[dict] = None,
) -> str:
    """The complete class: interface plus every operator body.

    ``techniques`` may override the technique per operator, mirroring
    the checker library's trade-off selection.
    """
    operators = list(operators)
    parts = [emit_sck_interface(operators)]
    for operator in operators:
        chosen = (techniques or {}).get(operator, technique)
        if chosen not in available_techniques(operator):
            raise ReproError(
                f"technique {chosen!r} is not available for {operator!r}"
            )
        parts.append(emit_sck_operator(operator, chosen))
    return "\n".join(parts)
