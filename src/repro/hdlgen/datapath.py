"""Self-checking RTL datapath emitter.

Renders a scheduled, bound dataflow graph as synthesisable-style VHDL:
one process per control step (an FSM the size of the schedule), unit
instances per the binding, input multiplexers where units are shared,
comparator/OR error network, and the error latch.  This is the artefact
the paper's hardware branch produces after CoCentric -- regenerating it
makes the area/timing model's structural assumptions (muxes per shared
binding, fused checker comparators) inspectable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.codesign.allocation import Allocation

_OP_VHDL = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "mod",
}


def emit_datapath_rtl(allocation: Allocation, width: int = 16) -> str:
    """Emit the bound datapath as an FSM-plus-datapath VHDL sketch."""
    schedule = allocation.schedule
    graph = schedule.graph
    name = graph.name.replace("-", "_")
    states = schedule.length

    signals: List[str] = []
    for node in graph.nodes:
        if node.op == "const":
            continue
        if node.op == "cmpne":
            signals.append(f"  signal {node.name} : std_logic;")
        elif node.op == "or":
            signals.append(f"  signal {node.name} : std_logic;")
        elif node.op != "output":
            signals.append(
                f"  signal {node.name} : signed({width - 1} downto 0);"
            )

    # Per-state register-transfer actions.
    steps: Dict[int, List[str]] = {}
    for node in graph.nodes:
        if node.op in ("const",):
            continue
        cycle = schedule.start[node.name]
        action = _action_for(graph, allocation, node, width)
        if action:
            steps.setdefault(cycle, []).append(action)

    step_blocks: List[str] = []
    for cycle in range(states):
        actions = steps.get(cycle, ["null;"])
        body = "\n".join(f"          {a}" for a in actions)
        step_blocks.append(f"        when {cycle} =>\n{body}")
    fsm = "\n".join(step_blocks)

    sharing_notes = []
    for (unit, instance), degree in sorted(allocation.sharing_degree().items()):
        if degree > 1:
            ops = ", ".join(sorted(allocation.ops_on(unit, instance)))
            sharing_notes.append(
                f"--   {unit}[{instance}] shared by {degree} ops ({ops}):"
                f" input muxes inferred"
            )
    notes = "\n".join(sharing_notes) if sharing_notes else "--   (no shared units)"

    return f"""-- Self-checking datapath for {graph.name}
-- schedule: {states} control steps; binding:
{notes}
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity {name}_dp is
  port (
    clk, rst : in std_logic;
    {"; ".join(f"{n.name}_in : in signed({width - 1} downto 0)" for n in graph.inputs)};
    {"; ".join(f"{o.name}_out : out signed({width - 1} downto 0)" for o in graph.outputs if o.role == "nominal")};
    error_flag : out std_logic
  );
end entity {name}_dp;

architecture rtl of {name}_dp is
  signal state : integer range 0 to {states};
{chr(10).join(signals)}
  signal error_latch : std_logic := '0';
begin
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= 0;
        error_latch <= '0';
      else
      case state is
{fsm}
        when others => null;
      end case;
      if state = {states} then state <= 0; else state <= state + 1; end if;
      end if;
    end if;
  end process;
  error_flag <= error_latch;
end architecture rtl;
"""


def _action_for(graph, allocation: Allocation, node, width: int) -> str:
    if node.op == "input":
        return f"{node.name} <= {node.name}_in;"
    if node.op == "output":
        if node.role == "error":
            return f"error_latch <= error_latch or {node.args[0]};"
        return f"{node.name}_out <= {node.args[0]};"
    if node.op == "cmpne":
        left, right = (_operand(graph, a, width) for a in node.args)
        return f"{node.name} <= '1' when {left} /= {right} else '0';"
    if node.op == "or":
        return f"{node.name} <= {node.args[0]} or {node.args[1]};"
    if node.op == "neg":
        return f"{node.name} <= -{_operand(graph, node.args[0], width)};"
    symbol = _OP_VHDL[node.op]
    left, right = (_operand(graph, a, width) for a in node.args)
    unit = allocation.unit_of(node.name)
    tag = f"  -- on {unit[0]}[{unit[1]}]" if unit else ""
    if node.op == "mul":
        return f"{node.name} <= resize({left} {symbol} {right}, {width});{tag}"
    return f"{node.name} <= {left} {symbol} {right};{tag}"


def _operand(graph, name: str, width: int) -> str:
    node = graph.node(name)
    if node.op == "const":
        return f"to_signed({node.value}, {width})"
    return name
