"""Generators for the paper's figures and HDL artefacts.

* :mod:`repro.hdlgen.sck_class` -- emits the SystemC-Plus ``SCK`` class
  template: the interface of Figure 1 and the self-checking
  ``operator+`` of Figure 2, for any technique in the registry;
* :mod:`repro.hdlgen.flow_diagram` -- the reliable co-design flow of
  Figure 3 as ASCII/Graphviz;
* :mod:`repro.hdlgen.testarch` -- the Section 4.1 fault-injection test
  architecture as structural VHDL;
* :mod:`repro.hdlgen.datapath` -- a self-checking RTL datapath emitted
  from a scheduled and bound dataflow graph.
"""

from repro.hdlgen.sck_class import emit_sck_interface, emit_sck_operator, emit_sck_class
from repro.hdlgen.flow_diagram import emit_flow_ascii, emit_flow_dot
from repro.hdlgen.testarch import emit_test_architecture
from repro.hdlgen.datapath import emit_datapath_rtl

__all__ = [
    "emit_sck_interface",
    "emit_sck_operator",
    "emit_sck_class",
    "emit_flow_ascii",
    "emit_flow_dot",
    "emit_test_architecture",
    "emit_datapath_rtl",
]
