"""Execution backends for SCK arithmetic.

The overloaded operators delegate the nominal and checking computations
to a backend:

* :class:`IdealBackend` -- pure fixed-width Python integer arithmetic.
  Useful for functional development and as the "different functional
  unit" reference: it can never produce a wrong result, so any check
  mismatch observed against it reveals the other unit's fault.
* :class:`HardwareBackend` -- routes operations through a
  :class:`~repro.arch.alu.FaultableALU`, so injected faults corrupt
  results exactly as the cell-level datapath units would.

Both expose the same fixed-width *signed* operation set with C
truncation semantics for division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.alu import FaultableALU
from repro.arch.bitops import check_width
from repro.errors import SimulationError


class IdealBackend:
    """Fixed-width two's-complement integer arithmetic, never faulty."""

    def __init__(self, width: int = 16) -> None:
        self.width = check_width(width)

    # All operations return the exact (unwrapped) integer result; the
    # SCK layer applies the overflow policy.  Division follows C
    # semantics (truncation toward zero).
    def add(self, a: int, b: int) -> int:
        return a + b

    def sub(self, a: int, b: int) -> int:
        return a - b

    def neg(self, a: int) -> int:
        return -a

    def mul(self, a: int, b: int) -> int:
        return a * b

    def divmod(self, a: int, b: int) -> Tuple[int, int]:
        if b == 0:
            raise SimulationError("division by zero")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q, a - q * b

    def div(self, a: int, b: int) -> int:
        return self.divmod(a, b)[0]

    def mod(self, a: int, b: int) -> int:
        return self.divmod(a, b)[1]

    @property
    def is_faulty(self) -> bool:
        return False


@dataclass
class HardwareBackend:
    """Backend executing on cell-level datapath units.

    The ALU applies fixed-width wrap internally, so results returned
    here are already reduced; the SCK overflow policy then sees a
    value that is always in range (matching real hardware, where the
    separate overflow logic watches the carry/overflow flags instead).

    Attributes:
        width: operand width in bits.
        alu: the (possibly faulty) ALU; created fault-free by default.
    """

    width: int = 16
    alu: Optional[FaultableALU] = None
    cell_netlist: str = "xor3_majority"

    def __post_init__(self) -> None:
        check_width(self.width)
        if self.alu is None:
            self.alu = FaultableALU(self.width, self.cell_netlist)
        elif self.alu.width != self.width:
            raise SimulationError(
                f"ALU width {self.alu.width} != backend width {self.width}"
            )

    def add(self, a: int, b: int) -> int:
        return int(self.alu.add(a, b))

    def sub(self, a: int, b: int) -> int:
        return int(self.alu.sub(a, b))

    def neg(self, a: int) -> int:
        return int(self.alu.neg(a))

    def mul(self, a: int, b: int) -> int:
        return int(self.alu.mul(a, b))

    def divmod(self, a: int, b: int) -> Tuple[int, int]:
        q, r = self.alu.divmod(a, b)
        return int(q), int(r)

    def div(self, a: int, b: int) -> int:
        return self.divmod(a, b)[0]

    def mod(self, a: int, b: int) -> int:
        return self.divmod(a, b)[1]

    @property
    def is_faulty(self) -> bool:
        return self.alu.faulty_unit is not None
