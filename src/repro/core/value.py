"""The SCK self-checking value type.

Python counterpart of the paper's SystemC-Plus ``SCK<TYPE>`` class
template (Figures 1 and 2): a fixed-width integer with an associated
error bit ``E``.  Every arithmetic operator

1. computes the nominal result on the context backend,
2. transparently executes the hidden checking operation(s) of the
   technique selected for that operator,
3. raises the error bit on a mismatch, and
4. propagates the error bits of its operands into the result.

The class is immutable; operators return new instances.  ``GetID`` and
``GetError`` mirror the paper's method names; Pythonic ``value`` /
``error`` properties are the primary API.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.context import CheckEvent, SCKContext, current_context
from repro.core.techniques import get_checker
from repro.errors import ReproError, SimulationError

Number = Union[int, "SCK"]


class SCK:
    """A self-checking fixed-width integer value.

    Args:
        value: initial integer value (wrapped per the context's
            overflow policy).
        error: initial error bit (normally False; propagated copies of
            faulty values keep their flag).
        context: explicit context; defaults to the ambient one.
    """

    __slots__ = ("_value", "_error", "_ctx")

    def __init__(
        self,
        value: int = 0,
        error: bool = False,
        context: Optional[SCKContext] = None,
    ) -> None:
        if isinstance(value, SCK):
            context = context or value._ctx
            error = error or value._error
            value = value._value
        if not isinstance(value, (int,)) or isinstance(value, bool):
            raise ReproError(
                f"SCK holds integers, got {type(value).__name__}"
            )
        ctx = context or current_context()
        wrapped, overflowed = ctx.wrap(int(value))
        self._value = wrapped
        self._error = bool(error) or overflowed
        self._ctx = ctx

    # ------------------------------------------------------------------
    # Accessors (paper naming + Pythonic properties)
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """The internal data ``ID``."""
        return self._value

    @property
    def error(self) -> bool:
        """The error bit ``E``."""
        return self._error

    def GetID(self) -> int:  # noqa: N802 - paper API (Figure 1)
        """Paper-style accessor for the internal data."""
        return self._value

    def GetError(self) -> bool:  # noqa: N802 - paper API (Figure 1)
        """Paper-style accessor for the error bit."""
        return self._error

    @property
    def context(self) -> SCKContext:
        return self._ctx

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0

    def __repr__(self) -> str:
        flag = ", E" if self._error else ""
        return f"SCK({self._value}{flag})"

    def __hash__(self) -> int:
        return hash((self._value, self._error))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _coerce(self, other: Number) -> Tuple[int, bool]:
        if isinstance(other, SCK):
            if other._ctx is not self._ctx and other._ctx.width != self._ctx.width:
                raise ReproError(
                    "cannot mix SCK values from contexts of different widths"
                )
            return other._value, other._error
        if isinstance(other, bool) or not isinstance(other, int):
            return NotImplemented, False
        wrapped, _ = self._ctx.wrap(int(other))
        return wrapped, False

    def _result(self, value: int, error: bool) -> "SCK":
        wrapped, overflowed = self._ctx.wrap(value)
        out = SCK.__new__(SCK)
        out._value = wrapped
        out._error = error or overflowed
        out._ctx = self._ctx
        return out

    def _binary(self, operator: str, op1: int, op2: int, carry_error: bool) -> "SCK":
        ctx = self._ctx
        ctx.operations += 1
        if operator in ("div", "mod"):
            q, r = ctx.backend.divmod(op1, op2)
            ris = q if operator == "div" else r
            technique = ctx.techniques[operator]
            detected = get_checker(operator, technique)(ctx, op1, op2, q, r)
            ctx.record(CheckEvent(operator, technique, (op1, op2), ris, detected))
            return self._result(ris, carry_error or detected)
        compute = getattr(ctx.backend, operator)
        raw = compute(op1, op2)
        ris, overflowed = ctx.wrap(raw)
        technique = ctx.techniques[operator]
        if ctx.overflow_policy_name == "saturate" and ris != raw:
            # Saturation breaks the modular inverse identity; overflow
            # is "separately dealt with" (the policy already acted), so
            # the hidden check is skipped for this operation.
            detected = False
        else:
            detected = get_checker(operator, technique)(ctx, op1, op2, ris)
        ctx.record(CheckEvent(operator, technique, (op1, op2), ris, detected))
        return self._result(ris, carry_error or detected or overflowed)

    # ------------------------------------------------------------------
    # Overloaded arithmetic (the paper's contribution)
    # ------------------------------------------------------------------
    def __add__(self, other: Number) -> "SCK":
        op2, err = self._coerce(other)
        if op2 is NotImplemented:
            return NotImplemented
        return self._binary("add", self._value, op2, self._error or err)

    def __radd__(self, other: int) -> "SCK":
        op1, err = self._coerce(other)
        if op1 is NotImplemented:
            return NotImplemented
        return self._binary("add", op1, self._value, self._error or err)

    def __sub__(self, other: Number) -> "SCK":
        op2, err = self._coerce(other)
        if op2 is NotImplemented:
            return NotImplemented
        return self._binary("sub", self._value, op2, self._error or err)

    def __rsub__(self, other: int) -> "SCK":
        op1, err = self._coerce(other)
        if op1 is NotImplemented:
            return NotImplemented
        return self._binary("sub", op1, self._value, self._error or err)

    def __mul__(self, other: Number) -> "SCK":
        op2, err = self._coerce(other)
        if op2 is NotImplemented:
            return NotImplemented
        return self._binary("mul", self._value, op2, self._error or err)

    def __rmul__(self, other: int) -> "SCK":
        op1, err = self._coerce(other)
        if op1 is NotImplemented:
            return NotImplemented
        return self._binary("mul", op1, self._value, self._error or err)

    def _divide(self, operator: str, other: Number, reverse: bool = False) -> "SCK":
        operand, err = self._coerce(other)
        if operand is NotImplemented:
            return NotImplemented
        op1, op2 = (operand, self._value) if reverse else (self._value, operand)
        if op2 == 0:
            raise SimulationError("SCK division by zero")
        return self._binary(operator, op1, op2, self._error or err)

    def __truediv__(self, other: Number) -> "SCK":
        """Integer division with C truncation semantics.

        The paper's ``SCK<int>`` maps ``/`` onto the synthesisable
        integer divider, so ``/`` here is integer division (like C
        ``int / int``), not float division.
        """
        return self._divide("div", other)

    def __rtruediv__(self, other: int) -> "SCK":
        return self._divide("div", other, reverse=True)

    def __floordiv__(self, other: Number) -> "SCK":
        """Alias of :meth:`__truediv__` (C truncation, not Python floor)."""
        return self._divide("div", other)

    def __rfloordiv__(self, other: int) -> "SCK":
        return self._divide("div", other, reverse=True)

    def __mod__(self, other: Number) -> "SCK":
        """Remainder with C semantics (takes the dividend's sign)."""
        return self._divide("mod", other)

    def __rmod__(self, other: int) -> "SCK":
        return self._divide("mod", other, reverse=True)

    def __neg__(self) -> "SCK":
        ctx = self._ctx
        ctx.operations += 1
        raw = ctx.backend.neg(self._value)
        ris, overflowed = ctx.wrap(raw)
        technique = ctx.techniques["neg"]
        detected = get_checker("neg", technique)(ctx, self._value, ris)
        ctx.record(CheckEvent("neg", technique, (self._value,), ris, detected))
        return self._result(ris, self._error or detected or overflowed)

    def __pos__(self) -> "SCK":
        return self

    def __abs__(self) -> "SCK":
        return -self if self._value < 0 else self

    # ------------------------------------------------------------------
    # Comparisons: value semantics, like the underlying integer type.
    # ------------------------------------------------------------------
    def _cmp_operand(self, other: Number):
        if isinstance(other, SCK):
            return other._value
        if isinstance(other, bool) or not isinstance(other, int):
            return NotImplemented
        return int(other)

    def __eq__(self, other: object) -> bool:
        operand = self._cmp_operand(other)  # type: ignore[arg-type]
        if operand is NotImplemented:
            return NotImplemented
        return self._value == operand

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: Number) -> bool:
        operand = self._cmp_operand(other)
        if operand is NotImplemented:
            return NotImplemented
        return self._value < operand

    def __le__(self, other: Number) -> bool:
        operand = self._cmp_operand(other)
        if operand is NotImplemented:
            return NotImplemented
        return self._value <= operand

    def __gt__(self, other: Number) -> bool:
        operand = self._cmp_operand(other)
        if operand is NotImplemented:
            return NotImplemented
        return self._value > operand

    def __ge__(self, other: Number) -> bool:
        operand = self._cmp_operand(other)
        if operand is NotImplemented:
            return NotImplemented
        return self._value >= operand
