"""The SCK self-checking data type -- the paper's primary contribution.

An :class:`SCK` value behaves like a fixed-width integer whose arithmetic
operators *transparently* verify their own results with hidden inverse
operations and carry an error bit that propagates through every
computation, exactly as the paper's SystemC-Plus ``SCK<TYPE>`` class
template does via operator overloading.

Quick start::

    from repro.core import SCK, SCKContext

    with SCKContext(width=16) as ctx:
        a = SCK(1200)
        b = SCK(-34)
        c = a + b          # also computes c - b and compares with a
        assert not c.error
        assert c.value == 1166

Key pieces:

* :mod:`repro.core.value` -- the :class:`SCK` class itself;
* :mod:`repro.core.context` -- execution context: width, backend,
  technique policy, error log, allocation of check operations;
* :mod:`repro.core.techniques` -- the spec-level checking strategies
  (Table 1) applied by the overloaded operators;
* :mod:`repro.core.backends` -- ideal and hardware (cell-level faulty)
  execution backends;
* :mod:`repro.core.library` -- the extensible reliability library with
  cost / fault-coverage characterisation per technique;
* :mod:`repro.core.overflow` -- overflow policies (the paper handles
  overflow separately from the inverse-operation check).
"""

from repro.core.backends import HardwareBackend, IdealBackend
from repro.core.context import CheckEvent, SCKContext, current_context
from repro.core.library import CheckerDescriptor, CheckerLibrary, default_library
from repro.core.overflow import OVERFLOW_POLICIES
from repro.core.value import SCK

__all__ = [
    "SCK",
    "SCKContext",
    "current_context",
    "CheckEvent",
    "IdealBackend",
    "HardwareBackend",
    "CheckerLibrary",
    "CheckerDescriptor",
    "default_library",
    "OVERFLOW_POLICIES",
]
