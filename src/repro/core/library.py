"""The extensible reliability library.

The paper highlights that operator overloading yields "a library of
readily-available Self-Checking designs for the basic operators, each
one with a cost / fault coverage characterisation", from which the
designer picks the trade-off.  :class:`CheckerLibrary` is that registry:
each :class:`CheckerDescriptor` couples a technique with its measured
(or paper-published) coverage and its cost in extra operations, and the
selection helpers pick the cheapest technique meeting a coverage floor.

The co-design flow (:mod:`repro.codesign`) consumes the same descriptors
to size the hardware checkers it inserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.coverage.techniques import TECHNIQUES
from repro.errors import ReproError


@dataclass(frozen=True)
class CheckerDescriptor:
    """Cost / coverage characterisation of one checking technique.

    Attributes:
        operator: guarded operator (``add``, ``sub``, ``mul``, ``div``).
        technique: technique name (``tech1``, ``tech2``, ``both``).
        coverage_percent: worst-case (same-unit) fault coverage.
        extra_operations: hidden operations executed per nominal
            operation (the performance cost in a software mapping).
        extra_units: additional functional units a hardware mapping
            needs to run the checks concurrently (the area cost driver).
    """

    operator: str
    technique: str
    coverage_percent: float
    extra_operations: int
    extra_units: int

    def describe(self) -> str:
        return (
            f"{self.operator}/{self.technique}: {self.coverage_percent:.2f}% "
            f"coverage, +{self.extra_operations} ops, +{self.extra_units} units"
        )


class CheckerLibrary:
    """A registry of checker descriptors with trade-off queries."""

    def __init__(self, descriptors: Iterable[CheckerDescriptor] = ()) -> None:
        self._by_key: Dict[Tuple[str, str], CheckerDescriptor] = {}
        for descriptor in descriptors:
            self.register(descriptor)

    def register(self, descriptor: CheckerDescriptor) -> None:
        """Add or replace a descriptor."""
        self._by_key[(descriptor.operator, descriptor.technique)] = descriptor

    def get(self, operator: str, technique: str) -> CheckerDescriptor:
        try:
            return self._by_key[(operator, technique)]
        except KeyError:
            raise ReproError(
                f"no checker registered for {operator!r}/{technique!r}"
            ) from None

    def techniques_for(self, operator: str) -> List[CheckerDescriptor]:
        """All descriptors of ``operator``, cheapest first."""
        found = [d for (op, _), d in self._by_key.items() if op == operator]
        if not found:
            raise ReproError(f"no checkers registered for operator {operator!r}")
        return sorted(found, key=lambda d: (d.extra_operations, -d.coverage_percent))

    def select(
        self,
        operator: str,
        min_coverage: float = 0.0,
        max_extra_operations: Optional[int] = None,
    ) -> CheckerDescriptor:
        """Cheapest technique meeting the coverage floor.

        Raises :class:`~repro.errors.ReproError` when no registered
        technique satisfies the constraints, so infeasible reliability
        requirements fail loudly at design time.
        """
        candidates = [
            d
            for d in self.techniques_for(operator)
            if d.coverage_percent >= min_coverage
            and (
                max_extra_operations is None
                or d.extra_operations <= max_extra_operations
            )
        ]
        if not candidates:
            raise ReproError(
                f"no {operator!r} technique with coverage >= {min_coverage}%"
                + (
                    f" and <= {max_extra_operations} extra ops"
                    if max_extra_operations is not None
                    else ""
                )
            )
        return candidates[0]

    def plan(self, min_coverage: float = 0.0) -> Dict[str, str]:
        """Per-operator technique map meeting a uniform coverage floor."""
        operators = sorted({op for (op, _) in self._by_key})
        return {
            op: self.select(op, min_coverage=min_coverage).technique
            for op in operators
        }


#: Extra functional units per technique in a fully parallel HW mapping.
_EXTRA_UNITS = {
    ("add", "tech1"): 1,
    ("add", "tech2"): 1,
    ("add", "both"): 2,
    ("sub", "tech1"): 1,
    ("sub", "tech2"): 1,
    ("sub", "both"): 2,
    ("mul", "tech1"): 1,
    ("mul", "tech2"): 1,
    ("mul", "both"): 2,
    ("div", "tech1"): 1,
    ("div", "tech2"): 1,
}


def default_library() -> CheckerLibrary:
    """Library populated from the paper's Table 1 characterisation."""
    library = CheckerLibrary()
    for (operator, name), technique in TECHNIQUES.items():
        library.register(
            CheckerDescriptor(
                operator=operator,
                technique=name,
                coverage_percent=technique.paper_coverage,
                extra_operations=technique.extra_ops,
                extra_units=_EXTRA_UNITS.get((operator, name), 1),
            )
        )
    return library
