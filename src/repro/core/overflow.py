"""Overflow policies for SCK arithmetic.

The paper's inverse-operation check assumes modular (fixed-width)
arithmetic, "with the exception of overflows (which are separately dealt
with)".  This module provides that separate handling:

* ``"wrap"``      -- two's-complement wrap-around, silent (C semantics);
* ``"flag"``      -- wrap, but raise the value's error bit (an overflow
  is an erroneous result from the application's viewpoint);
* ``"raise"``     -- raise :class:`~repro.errors.OverflowPolicyError`;
* ``"saturate"``  -- clamp to the representable range, silent.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import OverflowPolicyError, ReproError


def _range_of(width: int) -> Tuple[int, int]:
    half = 1 << (width - 1)
    return -half, half - 1


def _wrap(value: int, width: int) -> Tuple[int, bool]:
    mask = (1 << width) - 1
    half = 1 << (width - 1)
    wrapped = value & mask
    if wrapped >= half:
        wrapped -= 1 << width
    return wrapped, wrapped != value


def apply_wrap(value: int, width: int) -> Tuple[int, bool]:
    """Silent wrap; overflow never sets the error bit."""
    wrapped, _ = _wrap(value, width)
    return wrapped, False


def apply_flag(value: int, width: int) -> Tuple[int, bool]:
    """Wrap, flagging the overflow through the error bit."""
    return _wrap(value, width)


def apply_raise(value: int, width: int) -> Tuple[int, bool]:
    """Raise on overflow."""
    wrapped, overflowed = _wrap(value, width)
    if overflowed:
        lo, hi = _range_of(width)
        raise OverflowPolicyError(
            f"value {value} outside [{lo}, {hi}] under 'raise' overflow policy"
        )
    return wrapped, False


def apply_saturate(value: int, width: int) -> Tuple[int, bool]:
    """Clamp to the representable range, silently."""
    lo, hi = _range_of(width)
    return min(max(value, lo), hi), False


OVERFLOW_POLICIES: Dict[str, Callable[[int, int], Tuple[int, bool]]] = {
    "wrap": apply_wrap,
    "flag": apply_flag,
    "raise": apply_raise,
    "saturate": apply_saturate,
}


def get_policy(name: str) -> Callable[[int, int], Tuple[int, bool]]:
    """Look up an overflow policy by name."""
    try:
        return OVERFLOW_POLICIES[name]
    except KeyError:
        raise ReproError(
            f"unknown overflow policy {name!r}; choose from {sorted(OVERFLOW_POLICIES)}"
        ) from None
