"""Spec-level checking strategies applied by the overloaded operators.

Each function computes the *hidden* checking operation(s) of one
technique (Table 1) for one nominal operation, returning True when a
mismatch -- i.e. an error -- is detected.  The checking computations run
on the context's check backend: with ``same_unit`` allocation that is
the very backend that produced the (possibly wrong) nominal result,
reproducing the paper's worst case; with ``different_unit`` it is a
dedicated fault-free unit.

All comparisons happen on wrapped (fixed-width) values, because that is
what the synthesised comparator sees.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.context import SCKContext
from repro.errors import ReproError

#: A checker maps (context, operands..., nominal result) -> detected.
Checker = Callable[..., bool]


def _w(ctx: SCKContext, value: int) -> int:
    wrapped, _ = ctx.wrap(value)
    return wrapped


# ----------------------------------------------------------------------
# Addition: ris = op1 + op2
# ----------------------------------------------------------------------
def add_tech1(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``op2' = ris - op1``; error when ``op2' != op2``."""
    op2p = _w(ctx, ctx.check_backend.sub(ris, op1))
    return op2p != _w(ctx, op2)


def add_tech2(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``op1' = ris - op2``; error when ``op1' != op1``."""
    op1p = _w(ctx, ctx.check_backend.sub(ris, op2))
    return op1p != _w(ctx, op1)


def add_both(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """Both subtractions; higher coverage at twice the check cost."""
    return add_tech1(ctx, op1, op2, ris) or add_tech2(ctx, op1, op2, ris)


# ----------------------------------------------------------------------
# Subtraction: ris = op1 - op2
# ----------------------------------------------------------------------
def sub_tech1(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``op1' = ris + op2``; error when ``op1' != op1``."""
    op1p = _w(ctx, ctx.check_backend.add(ris, op2))
    return op1p != _w(ctx, op1)


def sub_tech2(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``ris' = op2 - op1``; error when ``ris + ris' != 0``."""
    risp = _w(ctx, ctx.check_backend.sub(op2, op1))
    return _w(ctx, ris + risp) != 0


def sub_both(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    return sub_tech1(ctx, op1, op2, ris) or sub_tech2(ctx, op1, op2, ris)


# ----------------------------------------------------------------------
# Multiplication: ris = op1 * op2
# ----------------------------------------------------------------------
def mul_tech1(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``ris' = (-op1) * op2``; error when ``ris + ris' != 0``."""
    chk = ctx.check_backend
    risp = _w(ctx, chk.mul(_w(ctx, chk.neg(op1)), op2))
    return _w(ctx, ris + risp) != 0


def mul_tech2(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    """``ris' = op1 * (-op2)``; error when ``ris + ris' != 0``."""
    chk = ctx.check_backend
    risp = _w(ctx, chk.mul(op1, _w(ctx, chk.neg(op2))))
    return _w(ctx, ris + risp) != 0


def mul_both(ctx: SCKContext, op1: int, op2: int, ris: int) -> bool:
    return mul_tech1(ctx, op1, op2, ris) or mul_tech2(ctx, op1, op2, ris)


# ----------------------------------------------------------------------
# Division / modulo: (ris, rem) = divmod(op1, op2); C truncation.
# Both quotient and remainder come from the same (possibly faulty)
# divider, so the checker receives the pair.
# ----------------------------------------------------------------------
def div_tech1(ctx: SCKContext, op1: int, op2: int, ris: int, rem: int) -> bool:
    """``op1' = ris * op2 + rem``; error when ``op1' != op1``."""
    chk = ctx.check_backend
    op1p = _w(ctx, chk.add(_w(ctx, chk.mul(ris, op2)), rem))
    return op1p != _w(ctx, op1)


def div_tech2(ctx: SCKContext, op1: int, op2: int, ris: int, rem: int) -> bool:
    """Tech 1 plus the remainder precision check ``|rem| < |op2|`` with
    the C sign convention (remainder carries the dividend's sign)."""
    if div_tech1(ctx, op1, op2, ris, rem):
        return True
    if abs(rem) >= abs(op2):
        return True
    if rem != 0 and (rem < 0) != (op1 < 0):
        return True
    return False


# ----------------------------------------------------------------------
# Negation: ris = -op1
# ----------------------------------------------------------------------
def neg_tech1(ctx: SCKContext, op1: int, ris: int) -> bool:
    """``z = ris + op1``; error when ``z != 0``."""
    return _w(ctx, ctx.check_backend.add(ris, op1)) != 0


_CHECKERS: Dict[Tuple[str, str], Checker] = {
    ("add", "tech1"): add_tech1,
    ("add", "tech2"): add_tech2,
    ("add", "both"): add_both,
    ("sub", "tech1"): sub_tech1,
    ("sub", "tech2"): sub_tech2,
    ("sub", "both"): sub_both,
    ("mul", "tech1"): mul_tech1,
    ("mul", "tech2"): mul_tech2,
    ("mul", "both"): mul_both,
    ("div", "tech1"): div_tech1,
    ("div", "tech2"): div_tech2,
    ("mod", "tech1"): div_tech1,
    ("mod", "tech2"): div_tech2,
    ("neg", "tech1"): neg_tech1,
}


def get_checker(operator: str, technique: str) -> Checker:
    """Look up the spec-level checker for ``operator``/``technique``."""
    try:
        return _CHECKERS[(operator, technique)]
    except KeyError:
        raise ReproError(
            f"no checker registered for operator {operator!r} "
            f"technique {technique!r}"
        ) from None


def available_techniques(operator: str) -> Tuple[str, ...]:
    """Technique names registered for ``operator``, in definition order."""
    names = tuple(name for (op, name) in _CHECKERS if op == operator)
    if not names:
        raise ReproError(f"no techniques for operator {operator!r}")
    return names
