"""Execution context for SCK arithmetic.

A :class:`SCKContext` fixes everything the overloaded operators need:
operand width, execution backend, which checking technique guards each
operator, where the checking operations execute (same unit as the
nominal operation, or a different one -- the paper's Section 2.1
allocation discussion), the overflow policy, and the error log.

Contexts nest as context managers; :func:`current_context` returns the
innermost active one (a default 16-bit ideal context is created on first
use so the SCK type works out of the box).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.backends import HardwareBackend, IdealBackend
from repro.core.overflow import get_policy
from repro.errors import CheckError, ReproError

Backend = Union[IdealBackend, HardwareBackend]

#: Operators that may carry a checking technique.
CHECKED_OPERATORS = ("add", "sub", "mul", "div", "mod", "neg")

DEFAULT_TECHNIQUES: Dict[str, str] = {
    "add": "tech1",
    "sub": "tech1",
    "mul": "tech1",
    "div": "tech1",
    "mod": "tech1",
    "neg": "tech1",
}


@dataclass(frozen=True)
class CheckEvent:
    """One hidden-check execution, recorded in the context log."""

    operator: str
    technique: str
    operands: Tuple[int, ...]
    result: int
    detected: bool

    def describe(self) -> str:
        status = "ERROR DETECTED" if self.detected else "ok"
        return (
            f"{self.operator}({', '.join(map(str, self.operands))}) = "
            f"{self.result} [{self.technique}] {status}"
        )


class SCKContext:
    """Configuration + state scope for SCK computations.

    Args:
        width: operand width in bits (the synthesisable integer width).
        backend: ``"ideal"``, ``"hardware"`` or a backend instance.
        techniques: per-operator technique overrides, e.g.
            ``{"add": "both"}``; unknown operators are rejected.
        check_allocation: ``"same_unit"`` runs checking operations
            through the same backend (worst case -- a faulty unit checks
            itself); ``"different_unit"`` runs them on a dedicated
            fault-free unit (the multi-resource allocation that the
            paper shows achieves 100 % coverage).
        overflow: overflow policy name (see :mod:`repro.core.overflow`).
        strict: raise :class:`~repro.errors.CheckError` the moment a
            check detects an error, instead of only latching error bits.
    """

    _local = threading.local()

    def __init__(
        self,
        width: int = 16,
        backend: Union[str, Backend] = "ideal",
        techniques: Optional[Dict[str, str]] = None,
        check_allocation: str = "same_unit",
        overflow: str = "wrap",
        strict: bool = False,
    ) -> None:
        self.width = width
        if isinstance(backend, str):
            if backend == "ideal":
                backend = IdealBackend(width)
            elif backend == "hardware":
                backend = HardwareBackend(width)
            else:
                raise ReproError(
                    f"unknown backend {backend!r}; use 'ideal', 'hardware' "
                    f"or a backend instance"
                )
        if backend.width != width:
            raise ReproError(
                f"backend width {backend.width} != context width {width}"
            )
        self.backend: Backend = backend
        self.techniques = dict(DEFAULT_TECHNIQUES)
        for op, name in (techniques or {}).items():
            if op not in CHECKED_OPERATORS:
                raise ReproError(
                    f"cannot set technique for unknown operator {op!r}"
                )
            self.techniques[op] = name
        if check_allocation not in ("same_unit", "different_unit"):
            raise ReproError(
                f"check_allocation must be 'same_unit' or 'different_unit', "
                f"got {check_allocation!r}"
            )
        self.check_allocation = check_allocation
        self._check_backend: Backend = (
            backend if check_allocation == "same_unit" else IdealBackend(width)
        )
        self.overflow_policy_name = overflow
        self.overflow_policy = get_policy(overflow)
        self.strict = strict
        self.log: List[CheckEvent] = []
        self.operations = 0
        self.checks = 0
        self.errors_detected = 0

    # ------------------------------------------------------------------
    @property
    def check_backend(self) -> Backend:
        """Backend executing the hidden checking operations."""
        return self._check_backend

    def record(self, event: CheckEvent) -> None:
        """Log one check; updates counters and enforces strict mode."""
        self.log.append(event)
        self.checks += 1
        if event.detected:
            self.errors_detected += 1
            if self.strict:
                raise CheckError(f"self-check failed: {event.describe()}")

    def wrap(self, value: int) -> Tuple[int, bool]:
        """Apply the overflow policy; returns (value, overflow_flagged)."""
        return self.overflow_policy(value, self.width)

    def reset_log(self) -> None:
        """Clear the event log and counters (backend faults unaffected)."""
        self.log.clear()
        self.operations = 0
        self.checks = 0
        self.errors_detected = 0

    # ------------------------------------------------------------------
    # Context-manager protocol / ambient context
    # ------------------------------------------------------------------
    @classmethod
    def _stack(cls) -> List["SCKContext"]:
        if not hasattr(cls._local, "stack"):
            cls._local.stack = []
        return cls._local.stack

    def __enter__(self) -> "SCKContext":
        self._stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not self:
            raise ReproError("SCKContext exited out of order")
        stack.pop()

    def describe(self) -> str:
        return (
            f"SCKContext(width={self.width}, "
            f"backend={'hardware' if isinstance(self.backend, HardwareBackend) else 'ideal'}, "
            f"allocation={self.check_allocation}, overflow={self.overflow_policy_name}, "
            f"ops={self.operations}, checks={self.checks}, "
            f"errors={self.errors_detected})"
        )


def current_context() -> SCKContext:
    """The innermost active context (creating a default one if needed)."""
    stack = SCKContext._stack()
    if not stack:
        stack.append(SCKContext())
    return stack[-1]
