"""Vectorised array multiplier with a single faulty full-adder cell.

The unit models a ripple-row array multiplier truncated to the operand
width (C ``int`` semantics: ``n x n -> n`` bits, upper half discarded),
matching the paper's software-oriented integer model where ``a * b`` is
computed in fixed-width integers.  Row ``i`` adds the partial product
``(a & -bit_i(b)) << i`` into the running sum through a row of full-adder
cells; the faulty cell is identified by ``(row, column)``.

The full-precision (2n-bit) variant is available via ``full_width=True``
for callers that need the exact product (e.g. the divider check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.bitops import ArrayLike, broadcast_pair, check_width, mask_of
from repro.arch.cell import FullAdderCell
from repro.errors import FaultError, SimulationError


@dataclass
class ArrayMultiplierUnit:
    """An n-bit truncated array multiplier functional unit.

    Attributes:
        width: operand width in bits.
        faulty_cell: faulty full-adder behaviour, or None.
        fault_row: row of the faulty cell, in ``[1, width)``.
        fault_col: column of the faulty cell, in ``[0, width - fault_row)``.
    """

    width: int
    faulty_cell: Optional[FullAdderCell] = None
    fault_row: Optional[int] = None
    fault_col: Optional[int] = None

    def __post_init__(self) -> None:
        check_width(self.width)
        have = (self.faulty_cell is not None, self.fault_row is not None, self.fault_col is not None)
        if any(have) and not all(have):
            raise FaultError("faulty_cell, fault_row and fault_col must be given together")
        if self.fault_row is not None:
            if not (1 <= self.fault_row < self.width):
                raise FaultError(
                    f"fault_row {self.fault_row} outside [1, {self.width})"
                )
            if not (0 <= self.fault_col < self.width - self.fault_row):
                raise FaultError(
                    f"fault_col {self.fault_col} outside [0, {self.width - self.fault_row})"
                )

    # ------------------------------------------------------------------
    @property
    def is_faulty(self) -> bool:
        return self.faulty_cell is not None

    @property
    def mask(self) -> int:
        return mask_of(self.width)

    @staticmethod
    def cell_positions(width: int) -> List[Tuple[int, int]]:
        """All (row, column) cell positions of the truncated array."""
        return [
            (row, col)
            for row in range(1, width)
            for col in range(width - row)
        ]

    # ------------------------------------------------------------------
    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Truncated product ``(a * b) mod 2**width``.

        Vectorised over broadcastable NumPy operands.
        """
        a_arr, b_arr = broadcast_pair(a, b)
        if int(np.max(a_arr, initial=0)) > self.mask or int(
            np.max(b_arr, initial=0)
        ) > self.mask:
            raise SimulationError(
                f"operand exceeds {self.width}-bit range of this unit"
            )
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        one = np.uint64(1)
        two = np.uint64(2)
        n = self.width
        # Row 0: partial product enters the accumulator unchanged.
        b0 = (b_arr >> np.uint64(0)) & one
        product = np.where(b0.astype(bool), a_arr, np.uint64(0)).astype(np.uint64)
        if self.faulty_cell is not None:
            s_lut, c_lut = self.faulty_cell.luts()
        for row in range(1, n):
            row_width = n - row
            bi = (b_arr >> np.uint64(row)) & one
            pp = np.where(bi.astype(bool), a_arr, np.uint64(0)).astype(np.uint64)
            high = product >> np.uint64(row)
            acc = np.zeros(shape, dtype=np.uint64)
            carry = np.zeros(shape, dtype=np.uint64)
            for col in range(row_width):
                shift = np.uint64(col)
                xi = (high >> shift) & one
                yi = (pp >> shift) & one
                if self.fault_row == row and self.fault_col == col:
                    idx = (xi | (yi << one) | (carry << two)).astype(np.int64)
                    si = s_lut[idx]
                    ci = c_lut[idx]
                else:
                    si = xi ^ yi ^ carry
                    ci = (xi & yi) | (carry & (xi ^ yi))
                acc |= si << shift
                carry = ci
            low_mask = np.uint64((1 << row) - 1)
            product = (product & low_mask) | (acc << np.uint64(row))
        return product

    # ------------------------------------------------------------------
    def golden_mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Reference truncated product (never faulty)."""
        a_arr, b_arr = broadcast_pair(a, b)
        # uint64 multiplication wraps mod 2**64; mask down to unit width.
        return (a_arr * b_arr) & np.uint64(self.mask)
