"""Two's-complement bit manipulation helpers shared by the datapath units.

All units operate on unsigned bit patterns (NumPy ``uint64`` arrays or
Python ints); these helpers convert between bit patterns and signed
integer interpretations and build width masks.  Width is limited to 62
bits so intermediate ``uint64`` arithmetic cannot overflow.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import SimulationError

MAX_WIDTH = 62

ArrayLike = Union[int, np.ndarray]


def check_width(width: int) -> int:
    """Validate an operand width; returns it for chaining."""
    if not isinstance(width, (int, np.integer)):
        raise SimulationError(f"width must be an int, got {type(width).__name__}")
    if width < 1 or width > MAX_WIDTH:
        raise SimulationError(f"width must be in [1, {MAX_WIDTH}], got {width}")
    return int(width)


def mask_of(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    return (1 << check_width(width)) - 1


def to_unsigned(value: ArrayLike, width: int) -> ArrayLike:
    """Reduce a (possibly signed / out-of-range) value to ``width`` bits."""
    mask = mask_of(width)
    if isinstance(value, np.ndarray):
        return (value.astype(np.int64) & np.int64(mask)).astype(np.uint64)
    return int(value) & mask


def to_signed(value: ArrayLike, width: int) -> ArrayLike:
    """Interpret a ``width``-bit pattern as a two's-complement integer."""
    mask = mask_of(width)
    half = 1 << (width - 1)
    if isinstance(value, np.ndarray):
        v = value.astype(np.int64) & np.int64(mask)
        return np.where(v >= half, v - (np.int64(mask) + 1), v)
    v = int(value) & mask
    return v - (mask + 1) if v >= half else v


def bit_at(value: ArrayLike, index: int) -> ArrayLike:
    """Extract bit ``index`` of a value/array (0 = LSB)."""
    if isinstance(value, np.ndarray):
        return (value >> np.uint64(index)) & np.uint64(1)
    return (int(value) >> index) & 1


def ones_complement(value: ArrayLike, width: int) -> ArrayLike:
    """Bitwise complement limited to ``width`` bits (the paper's g fn)."""
    mask = mask_of(width)
    if isinstance(value, np.ndarray):
        return (~value) & np.uint64(mask)
    return (~int(value)) & mask


def as_u64(value: ArrayLike) -> np.ndarray:
    """Coerce to a ``uint64`` NumPy array (0-d for scalars)."""
    return np.asarray(value, dtype=np.uint64)


def broadcast_pair(a: ArrayLike, b: ArrayLike) -> tuple:
    """Coerce two operands to broadcast-compatible uint64 arrays."""
    a_arr = as_u64(a)
    b_arr = as_u64(b)
    try:
        np.broadcast_shapes(a_arr.shape, b_arr.shape)
    except ValueError as exc:
        raise SimulationError(f"operand shapes do not broadcast: {exc}") from exc
    return a_arr, b_arr
