"""A faultable ALU facade bundling the cell-level datapath units.

:class:`FaultableALU` is the integration point used by the SCK execution
backends (:mod:`repro.core.backends`) and the monoprocessor VM
(:mod:`repro.vm.machine`): it exposes integer operations at a fixed
width, optionally routing one operation class through a faulty unit.
This realises the paper's *single functional unit failure* model -- any
number of physical faults confined to one unit -- at the granularity the
specification-level operators see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.bitops import ArrayLike, check_width, to_signed, to_unsigned
from repro.arch.cell import FullAdderCell
from repro.arch.divider import RestoringDividerUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.errors import FaultError, SimulationError

#: Operation classes that map onto distinct functional units.
UNIT_CLASSES = ("adder", "multiplier", "divider")


@dataclass
class FaultableALU:
    """Fixed-width integer ALU with at most one faulty functional unit.

    The ALU owns one adder, one multiplier and one divider.  Injecting a
    fault replaces a single full-adder cell inside one of them.  All
    operations accept and return *signed* Python ints (or NumPy arrays),
    internally working on two's-complement bit patterns of ``width``
    bits, exactly like the fixed-width ``int`` arithmetic of the paper's
    software implementation.
    """

    width: int = 16
    cell_netlist: str = "xor3_majority"
    _adder: RippleCarryAdderUnit = field(init=False, repr=False)
    _multiplier: ArrayMultiplierUnit = field(init=False, repr=False)
    _divider: RestoringDividerUnit = field(init=False, repr=False)
    _fault_unit: Optional[str] = field(default=None, init=False)

    def __post_init__(self) -> None:
        check_width(self.width)
        self._adder = RippleCarryAdderUnit(self.width)
        self._multiplier = ArrayMultiplierUnit(self.width)
        self._divider = RestoringDividerUnit(self.width)

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def inject_fault(
        self,
        unit: str,
        cell: FullAdderCell,
        position: int = 0,
        column: int = 0,
    ) -> None:
        """Make one functional unit faulty.

        Args:
            unit: one of ``"adder"``, ``"multiplier"``, ``"divider"``.
            cell: the faulty full-adder behaviour.
            position: cell index (adder/divider chain position, or
                multiplier row; multiplier rows start at 1).
            column: multiplier column (ignored for the other units).
        """
        if unit not in UNIT_CLASSES:
            raise FaultError(f"unknown unit {unit!r}; choose from {UNIT_CLASSES}")
        self.clear_fault()
        if unit == "adder":
            self._adder = RippleCarryAdderUnit(self.width, cell, position)
        elif unit == "multiplier":
            self._multiplier = ArrayMultiplierUnit(self.width, cell, position, column)
        else:
            self._divider = RestoringDividerUnit(self.width, cell, position)
        self._fault_unit = unit

    def clear_fault(self) -> None:
        """Restore all units to fault-free behaviour."""
        self._adder = RippleCarryAdderUnit(self.width)
        self._multiplier = ArrayMultiplierUnit(self.width)
        self._divider = RestoringDividerUnit(self.width)
        self._fault_unit = None

    @property
    def faulty_unit(self) -> Optional[str]:
        """Name of the currently faulty unit, or None."""
        return self._fault_unit

    # ------------------------------------------------------------------
    # Signed fixed-width operations
    # ------------------------------------------------------------------
    def _u(self, value: ArrayLike) -> ArrayLike:
        return to_unsigned(value, self.width)

    def _s(self, value: ArrayLike) -> ArrayLike:
        return to_signed(value, self.width)

    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Signed fixed-width ``a + b`` through the (possibly faulty) adder."""
        result, _ = self._adder.add(self._u(a), self._u(b))
        return self._s(result)

    def sub(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Signed fixed-width ``a - b`` through the adder core."""
        result, _ = self._adder.sub(self._u(a), self._u(b))
        return self._s(result)

    def neg(self, a: ArrayLike) -> ArrayLike:
        """Signed fixed-width ``-a`` through the adder core."""
        return self._s(self._adder.neg(np.asarray(self._u(a), dtype=np.uint64)))

    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Signed fixed-width ``a * b`` (truncated, C semantics)."""
        return self._s(self._multiplier.mul(self._u(a), self._u(b)))

    def divmod(self, a: ArrayLike, b: ArrayLike):
        """Signed ``(a // b, a % b)`` with C truncation semantics.

        The magnitude division runs through the (possibly faulty)
        restoring divider; signs are applied outside the unit, as a
        hardware divider wrapper would.
        """
        a_s = self._s(a)
        b_s = self._s(b)
        if isinstance(a_s, np.ndarray) or isinstance(b_s, np.ndarray):
            a_arr = np.asarray(a_s, dtype=np.int64)
            b_arr = np.asarray(b_s, dtype=np.int64)
            if np.any(b_arr == 0):
                raise SimulationError("division by zero")
            q_mag, r_mag = self._divider.divmod(
                np.abs(a_arr).astype(np.uint64), np.abs(b_arr).astype(np.uint64)
            )
            q = q_mag.astype(np.int64)
            r = r_mag.astype(np.int64)
            sign_q = np.where((a_arr < 0) ^ (b_arr < 0), -1, 1)
            sign_r = np.where(a_arr < 0, -1, 1)
            return self._s(q * sign_q), self._s(r * sign_r)
        if b_s == 0:
            raise SimulationError("division by zero")
        q_mag, r_mag = self._divider.divmod(abs(a_s), abs(b_s))
        q = int(q_mag)
        r = int(r_mag)
        if (a_s < 0) != (b_s < 0):
            q = -q
        if a_s < 0:
            r = -r
        return self._s(q), self._s(r)

    def div(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Signed truncating division ``a / b``."""
        return self.divmod(a, b)[0]

    def mod(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Signed remainder with C semantics (sign of the dividend)."""
        return self.divmod(a, b)[1]

    # Logic operations never route through the faultable datapath units;
    # the paper's fault model targets arithmetic functional units, and
    # these are provided for completeness of the spec-level operators.
    def bit_and(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        return self._s(np.bitwise_and(self._u(a), self._u(b)) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else self._u(a) & self._u(b))

    def bit_or(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        return self._s(np.bitwise_or(self._u(a), self._u(b)) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else self._u(a) | self._u(b))

    def bit_xor(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        return self._s(np.bitwise_xor(self._u(a), self._u(b)) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else self._u(a) ^ self._u(b))
