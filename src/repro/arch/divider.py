"""Sequential restoring divider with a faulty cell in its subtractor core.

The divider iterates the classical restoring algorithm: the partial
remainder is shifted left one bit at a time and the divisor is
conditionally subtracted.  The subtraction runs through an internal
ripple-carry adder chain of ``width + 1`` cells (one guard bit), and a
single cell of that chain may be faulty -- so a hardware fault corrupts
*both* the quotient and the remainder in a correlated way, which is what
the paper's division checks (``op1' = ris * op2 + (op1 % op2)``) must
catch.

Only unsigned operands are supported (the paper's precision discussion
concerns the remainder correction, not signed semantics); division by
zero raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch.bitops import ArrayLike, broadcast_pair, check_width, mask_of
from repro.arch.cell import FullAdderCell
from repro.errors import FaultError, SimulationError


@dataclass
class RestoringDividerUnit:
    """An n-bit restoring divider functional unit.

    Attributes:
        width: operand width in bits.
        faulty_cell: faulty full-adder behaviour used inside the
            subtractor chain, or None.
        fault_position: index of the faulty cell in the internal
            ``width + 1``-bit chain (0 = LSB).
    """

    width: int
    faulty_cell: Optional[FullAdderCell] = None
    fault_position: Optional[int] = None

    def __post_init__(self) -> None:
        # The guard-bit chain needs width + 1 <= 64 uint64 lanes, which
        # check_width's generic 62-bit unit limit already guarantees --
        # no separate divider bound exists (the seed's width + 1 > 62
        # guard wrongly rejected width 62).
        check_width(self.width)
        if (self.faulty_cell is None) != (self.fault_position is None):
            raise FaultError("faulty_cell and fault_position must be given together")
        if self.fault_position is not None and not (
            0 <= self.fault_position <= self.width
        ):
            raise FaultError(
                f"fault_position {self.fault_position} outside [0, {self.width}]"
            )

    # ------------------------------------------------------------------
    @property
    def is_faulty(self) -> bool:
        return self.faulty_cell is not None

    @property
    def mask(self) -> int:
        return mask_of(self.width)

    def _chain_sub(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``a - b`` through the internal (width+1)-cell chain.

        Returns ``(difference, not_borrow)`` where ``not_borrow == 1``
        means ``a >= b`` in the fault-free case.
        """
        chain_width = self.width + 1
        # Complement within the chain width directly: ``ones_complement``
        # delegates to ``mask_of`` whose generic unit limit (62 bits)
        # would reject the 63-bit chain of a width-62 divider even
        # though the uint64 lanes hold it fine.
        chain_mask = np.uint64((1 << chain_width) - 1)
        nb = (~b) & chain_mask
        shape = np.broadcast_shapes(a.shape, nb.shape)
        total = np.zeros(shape, dtype=np.uint64)
        carry = np.ones(shape, dtype=np.uint64)  # +1 of the two's complement
        one = np.uint64(1)
        two = np.uint64(2)
        if self.faulty_cell is not None:
            s_lut, c_lut = self.faulty_cell.luts()
        for i in range(chain_width):
            shift = np.uint64(i)
            ai = (a >> shift) & one
            bi = (nb >> shift) & one
            if self.fault_position == i:
                idx = (ai | (bi << one) | (carry << two)).astype(np.int64)
                si = s_lut[idx]
                ci = c_lut[idx]
            else:
                si = ai ^ bi ^ carry
                ci = (ai & bi) | (carry & (ai ^ bi))
            total |= si << shift
            carry = ci
        return total, carry

    # ------------------------------------------------------------------
    def divmod(self, a: ArrayLike, b: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Restoring division; returns ``(quotient, remainder)``.

        Vectorised; every element of ``b`` must be non-zero.
        """
        a_arr, b_arr = broadcast_pair(a, b)
        if np.any(b_arr == 0):
            raise SimulationError("division by zero in RestoringDividerUnit")
        if int(np.max(a_arr, initial=0)) > self.mask or int(
            np.max(b_arr, initial=0)
        ) > self.mask:
            raise SimulationError(
                f"operand exceeds {self.width}-bit range of this unit"
            )
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        remainder = np.zeros(shape, dtype=np.uint64)
        quotient = np.zeros(shape, dtype=np.uint64)
        one = np.uint64(1)
        for k in range(self.width - 1, -1, -1):
            remainder = (remainder << one) | ((a_arr >> np.uint64(k)) & one)
            trial, not_borrow = self._chain_sub(remainder, b_arr)
            take = not_borrow.astype(bool)
            remainder = np.where(take, trial, remainder).astype(np.uint64)
            quotient |= not_borrow << np.uint64(k)
        # Keep results in unit range even under faults.
        mask = np.uint64(self.mask)
        return quotient & mask, remainder & mask

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Quotient only."""
        return self.divmod(a, b)[0]

    def mod(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Remainder only."""
        return self.divmod(a, b)[1]

    # ------------------------------------------------------------------
    def golden_divmod(self, a: ArrayLike, b: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Reference division (never faulty)."""
        a_arr, b_arr = broadcast_pair(a, b)
        if np.any(b_arr == 0):
            raise SimulationError("division by zero in RestoringDividerUnit")
        return a_arr // b_arr, a_arr % b_arr
