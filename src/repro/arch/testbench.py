"""Gate-level replicas of the paper's Table 2 test architecture.

The functional-level Table 2 evaluators model a faulty full-adder cell
as a truth-table (LUT) spliced into one position of an arithmetic unit,
and run the nominal operation *and* its checking operations through that
same faulty unit.  This module lowers the whole experiment to a single
flat gate-level netlist so the batched bit-parallel engine
(:mod:`repro.gates.engine`) can evaluate every fault case over
word-packed exhaustive operand sweeps:

* the unit's cell array is instantiated once per operation it performs
  (the nominal computation plus each on-unit checking operation) --
  combinational *replicas* of the same sequentially-reused hardware.
  For the restoring divider the replication axis is time: the unit
  reuses one subtractor chain for ``width`` quotient iterations, so the
  unrolled netlist instantiates the chain once per iteration;
* the checking comparisons (fault-free in the paper's model) are built
  from XOR/OR reduction gates next to the arrays, and the divider's
  reconstruction check ``q*b + r == a`` plus remainder-range check use
  fault-free multiplier/adder/comparator logic (different unit classes
  in the paper's model);
* a cell-level stuck-at fault at array position ``p`` translates to a
  *fault group*: the corresponding stuck-at site in every replica's
  position-``p`` cell instance, all injected in one engine matrix row
  (:meth:`repro.gates.engine.BitParallelEngine.run_fault_groups`).

Operand universes may be *masked*: the divider excludes zero divisors,
so its architecture reports per-word valid-lane masks
(:meth:`_Table2ArchitectureBase.valid_words`, built on
:func:`repro.gates.engine.exhaustive_field_mask`) that the sweep applies
before counting situations.

Because the LUT library is itself derived by exhaustively simulating the
same cell netlist under the same stuck-at universe, the flat gate-level
sweep is bit-identical to the functional LUT evaluation -- the property
the parity tests in ``tests/test_table2_exact.py`` and
``tests/test_testbench_muldiv.py`` pin down.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.lint import assert_clean
from repro.arch.cell import DEFAULT_CELL_NETLIST, cell_netlist
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.errors import SimulationError
from repro.gates.builders import (
    _fa_cell,
    instantiate_cell,
    restoring_divider_steps,
    truncated_multiplier_rows,
)
from repro.gates.cells import CellType
from repro.gates.engine import (
    ALL_ONES,
    LANES,
    exhaustive_field_mask,
    exhaustive_word_range,
    popcount_words,
)
from repro.gates.faults import FaultSite, StuckAtFault
from repro.gates.netlist import Netlist

#: Operators whose test architecture is a (chain of) full-adder cells
#: reused for every on-unit operation: Table 2's overloaded ``+`` and
#: the overloaded ``-`` that shares the same adder core.
CHAIN_OPERATORS = ("add", "sub")

#: Operators realised as 2-D cell arrays (the truncated ripple-row
#: multiplier) or unrolled sequential chains (the restoring divider).
ARRAY_OPERATORS = ("mul", "div")

#: Every operator with a gate-level Table 2 architecture.
GATE_OPERATORS = CHAIN_OPERATORS + ARRAY_OPERATORS


def _translate_cell_fault(
    cell: Netlist, tag: str, bindings: Mapping[str, str], fault: StuckAtFault
) -> List[StuckAtFault]:
    """Map a fault on the stand-alone cell onto instance ``tag``.

    Internal/output nets carry the instance prefix, so stems and
    branches translate one-to-one.  A *stem* on a cell primary input has
    no private flat net (the bound net is shared with other instances);
    it becomes the set of branch faults on every pin of this instance
    that reads the input -- electrically identical within the cell.
    """
    site = fault.site
    if site.net in cell.primary_inputs:
        bound = bindings[site.net]
        if site.is_stem:
            return [
                StuckAtFault(
                    FaultSite(bound, (f"{tag}_{gate.name}", pin)), fault.value
                )
                for gate, pin in cell.fanout(site.net)
            ]
        gate_name, pin = site.branch
        return [StuckAtFault(FaultSite(bound, (f"{tag}_{gate_name}", pin)), fault.value)]
    flat_net = f"{tag}_{site.net}"
    if site.is_stem:
        return [StuckAtFault(FaultSite(flat_net), fault.value)]
    gate_name, pin = site.branch
    return [StuckAtFault(FaultSite(flat_net, (f"{tag}_{gate_name}", pin)), fault.value)]


class _Table2ArchitectureBase:
    """Shared machinery of the per-operator Table 2 architectures.

    Subclasses implement :meth:`_build` (returning the flat netlist) and
    declare ``positions`` (the faulty-cell location axis),
    ``n_result_rows`` (how many leading output rows form the nominal
    result) and ``detect_rows`` (output row per netlist-emitted
    detection flag).  The base provides cell instantiation with fault
    translation bookkeeping, fault-free helper logic, and the packed
    operand-sweep interface the batched coverage sweep consumes.

    Attributes:
        operator: operator name (``add``/``sub``/``mul``/``div``).
        width: operand width in bits.
        cell_style: full-adder cell netlist style (see
            :mod:`repro.arch.cell`).
        netlist: the flat combinational netlist.  Primary inputs are
            ``a0..a{n-1}``, ``b0..b{n-1}`` plus the constants ``zero``
            and ``one``; primary outputs are the nominal result bits
            followed by one detection flag per technique.
        chains: per-replica instance tags; ``chains[c][p]`` names the
            position-``p`` cell of the ``c``-th copy of the faulty unit
            (for the divider, the ``c``-th unrolled iteration).
        positions: all faulty-cell positions, in fault-universe order.
    """

    operator: str

    def __init__(self, operator: str, width: int, cell_style: str) -> None:
        if width < 1:
            raise SimulationError(f"width must be >= 1, got {width}")
        self.operator = operator
        self.width = width
        self.cell_style = cell_style
        self.cell = cell_netlist(cell_style)
        self.chains: List = []
        self._bindings: Dict[str, Dict[str, str]] = {}
        self.positions: Sequence = self._position_axis()
        self._position_set = set(self.positions)
        self.netlist = self._build()
        self.netlist.validate()
        # Every shipped architecture must be structurally lint-clean
        # (no loops, floating or multiply-driven nets); catching a bad
        # builder here is much cheaper than debugging its campaigns.
        assert_clean(self.netlist)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _position_axis(self) -> Sequence:
        raise NotImplementedError

    def _build(self) -> Netlist:
        raise NotImplementedError

    def _cell(
        self, nl: Netlist, tag: str, a: str, b: str, cin: str
    ) -> Tuple[str, str]:
        """Instantiate one (potentially faulty) cell and record bindings."""
        bindings = {"a": a, "b": b, "cin": cin}
        netmap = instantiate_cell(nl, self.cell, tag, bindings)
        self._bindings[tag] = bindings
        return netmap["s"], netmap["cout"]

    def _invert(self, nl: Netlist, nets: List[str], prefix: str) -> List[str]:
        """Fault-free one's-complement (the paper's ``g``-function routing)."""
        out = []
        for i, net in enumerate(nets):
            inv = f"{prefix}{i}"
            nl.add_gate(CellType.NOT, [net], inv, name=f"inv_{inv}")
            out.append(inv)
        return out

    def _sum_chain(
        self, nl: Netlist, prefix: str, xs: List[str], ys: List[str], cin: str
    ) -> List[str]:
        """Fault-free ripple sum mod ``2**n`` (final carry dropped)."""
        carry = cin
        sums = []
        for i, (x, y) in enumerate(zip(xs, ys)):
            s, carry = _fa_cell(nl, f"{prefix}_p{i}", x, y, carry)
            sums.append(s)
        return sums

    def _negate(
        self, nl: Netlist, nets: List[str], prefix: str, zero: str, one: str
    ) -> List[str]:
        """Fault-free two's complement ``~x + 1`` mod ``2**n``."""
        inverted = self._invert(nl, nets, f"{prefix}_n")
        return self._sum_chain(nl, prefix, inverted, [zero] * len(nets), one)

    def _mismatch(
        self, nl: Netlist, name: str, got: List[str], want: List[str]
    ) -> str:
        """Fault-free comparator: 1 when any bit of ``got`` != ``want``."""
        bits = []
        for i, (g, w) in enumerate(zip(got, want)):
            net = f"{name}_x{i}"
            nl.add_gate(CellType.XOR, [g, w], net, name=f"cmp_{net}")
            bits.append(net)
        return self._any(nl, name, bits)

    def _any(self, nl: Netlist, name: str, bits: List[str]) -> str:
        if len(bits) == 1:
            nl.add_gate(CellType.BUF, bits, name, name=f"buf_{name}")
        else:
            nl.add_gate(CellType.OR, bits, name, name=f"or_{name}")
        return name

    # ------------------------------------------------------------------
    # Interfaces for the batched sweep
    # ------------------------------------------------------------------
    @property
    def n_vectors(self) -> int:
        """Size of the raw exhaustive operand space, ``2**(2*width)``."""
        return 1 << (2 * self.width)

    @property
    def n_words(self) -> int:
        """Packed words spanning the exhaustive sweep."""
        return max(1, self.n_vectors >> 6)

    @property
    def tail_mask(self) -> np.uint64:
        """Valid-lane mask of the final word (sub-word sweeps only)."""
        if self.n_vectors >= LANES:
            return ALL_ONES
        return np.uint64((1 << self.n_vectors) - 1)

    @property
    def n_result_rows(self) -> int:
        """Leading output rows that form the nominal result."""
        raise NotImplementedError

    @property
    def detect_rows(self) -> Dict[str, int]:
        """Output-row index of each technique's detection flag."""
        raise NotImplementedError

    def input_rows(self, word_lo: int, word_hi: int) -> np.ndarray:
        """Packed input words ``[word_lo, word_hi)`` of the operand sweep.

        Vector ``v`` drives ``a = v mod 2**width`` and
        ``b = v >> width`` -- the same enumeration the functional
        evaluators use -- with the ``zero``/``one`` constant rows
        appended in primary-input order.
        """
        span = word_hi - word_lo
        rows = np.empty((2 * self.width + 2, span), dtype=np.uint64)
        rows[: 2 * self.width] = exhaustive_word_range(
            2 * self.width, word_lo, word_hi
        )
        rows[2 * self.width] = 0
        rows[2 * self.width + 1] = ALL_ONES
        return rows

    def valid_words(
        self, word_lo: int, word_hi: int, rows: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Per-word valid-lane masks for ``[word_lo, word_hi)``.

        ``None`` means every lane is a real situation (bar the phantom
        lanes of a sub-word sweep, folded in here when the range covers
        the final word).  Masked universes -- the divider's zero-divisor
        exclusion -- override this with the actual operand predicate;
        callers that already hold the range's :meth:`input_rows` matrix
        pass it as ``rows`` so the mask derives from it instead of
        regenerating the sweep.
        """
        tail = self.tail_mask
        if tail == ALL_ONES or word_hi != self.n_words:
            return None
        masks = np.full(word_hi - word_lo, ALL_ONES, dtype=np.uint64)
        masks[-1] = tail
        return masks

    def valid_count(self, word_lo: int, word_hi: int) -> int:
        """Number of real situations in words ``[word_lo, word_hi)``."""
        return max(
            0,
            min(self.n_vectors, word_hi * LANES)
            - min(self.n_vectors, word_lo * LANES),
        )

    def test_space(self):
        """Constrained TPG universe of this architecture's netlist.

        The operand bits sweep, the ``zero``/``one`` rails are pinned
        and the divider's divisor field is required non-zero -- the
        same masked operand universe the coverage sweep classifies, so
        a :mod:`repro.tpg` compact set for the architecture exercises
        exactly the situations Table 2 counts.
        """
        from repro.tpg.dictionary import TestSpace

        nonzero = (self.width, 2 * self.width) if self.operator == "div" else None
        return TestSpace(
            self.netlist,
            tuple(self.netlist.primary_inputs[: 2 * self.width]),
            (("zero", 0), ("one", 1)),
            nonzero,
        )

    def fault_group(
        self, cell_fault: StuckAtFault, position
    ) -> Tuple[StuckAtFault, ...]:
        """Flat fault group for one Table 2 case.

        The cell-level ``cell_fault`` at array ``position`` is
        replicated into every copy of the faulty unit (the nominal array
        and each on-unit checking replica; for the divider, every
        unrolled iteration of the reused chain), matching the paper's
        model where the same broken hardware executes every operation.
        """
        if position not in self._position_set:
            raise SimulationError(
                f"no {self.operator} cell at position {position!r} (width {self.width})"
            )
        flat: List[StuckAtFault] = []
        for tags in self.chains:
            tag = tags[position]
            flat.extend(
                _translate_cell_fault(self.cell, tag, self._bindings[tag], cell_fault)
            )
        return tuple(flat)


class Table2Architecture(_Table2ArchitectureBase):
    """One chain operator's Table 2 experiment as a flat netlist.

    ``operator`` is ``"add"`` or ``"sub"``: the faulty unit is a ripple
    chain of ``width`` cells reused by the nominal operation and both
    on-unit checking operations (three replicas).
    """

    def __init__(
        self,
        operator: str,
        width: int,
        cell_style: str = DEFAULT_CELL_NETLIST,
    ) -> None:
        if operator not in CHAIN_OPERATORS:
            raise SimulationError(
                f"no chain Table 2 architecture for operator {operator!r}; "
                f"choose from {CHAIN_OPERATORS}"
            )
        super().__init__(operator, width, cell_style)

    def _position_axis(self) -> Sequence:
        return tuple(range(self.width))

    # ------------------------------------------------------------------
    def _chain(
        self, nl: Netlist, name: str, a_nets: List[str], b_nets: List[str], cin: str
    ) -> List[str]:
        """One replica of the cell chain; returns its sum nets."""
        tags: List[str] = []
        sums: List[str] = []
        carry = cin
        for i in range(self.width):
            tag = f"{name}_p{i}"
            s, carry = self._cell(nl, tag, a_nets[i], b_nets[i], carry)
            sums.append(s)
            tags.append(tag)
        self.chains.append(tags)
        return sums

    def _build(self) -> Netlist:
        n = self.width
        nl = Netlist(f"table2_{self.operator}_{self.cell_style}_{n}")
        a = [nl.add_input(f"a{i}") for i in range(n)]
        b = [nl.add_input(f"b{i}") for i in range(n)]
        zero = nl.add_input("zero")
        one = nl.add_input("one")
        if self.operator == "add":
            # Nominal ris = a + b through the (possibly faulty) unit.
            ris = self._chain(nl, "u0", a, b, zero)
            # Tech 1: op2' = ris - a on the same unit, compare against b.
            na = self._invert(nl, a, "na")
            q1 = self._chain(nl, "u1", ris, na, one)
            neq1 = self._mismatch(nl, "neq1", q1, b)
            # Tech 2: op1' = ris - b on the same unit, compare against a.
            nb = self._invert(nl, b, "nb")
            q2 = self._chain(nl, "u2", ris, nb, one)
            neq2 = self._mismatch(nl, "neq2", q2, a)
        else:  # sub
            # Nominal ris = a - b (ones'-complement b, carry-in 1).
            nb = self._invert(nl, b, "nb")
            ris = self._chain(nl, "u0", a, nb, one)
            # Tech 1: op1' = ris + op2 on the same unit, compare against a.
            q1 = self._chain(nl, "u1", ris, b, zero)
            neq1 = self._mismatch(nl, "neq1", q1, a)
            # Tech 2: ris' = op2 - op1 on the same unit; the fault-free
            # final summation ris + ris' must be all-zero (mod 2**n).
            na = self._invert(nl, a, "na")
            ris2 = self._chain(nl, "u2", b, na, one)
            sums = self._sum_chain(nl, "fsum", ris, ris2, zero)
            neq2 = self._any(nl, "nz", sums)
        for net in ris:
            nl.mark_output(net)
        nl.mark_output(neq1)
        nl.mark_output(neq2)
        return nl

    # ------------------------------------------------------------------
    @property
    def n_result_rows(self) -> int:
        return self.width

    @property
    def result_rows(self) -> range:
        """Output-row indices of the nominal result bits."""
        return range(self.width)

    @property
    def detect_rows(self) -> Dict[str, int]:
        return {"tech1": self.width, "tech2": self.width + 1}


class Table2MultiplierArchitecture(_Table2ArchitectureBase):
    """The truncated array multiplier's Table 2 experiment.

    The faulty unit is the ``n x n -> n`` ripple-row array
    (:class:`~repro.arch.multiplier.ArrayMultiplierUnit`); the fixed
    width makes ``op1*op2 + (-op1)*op2 == 0 (mod 2**n)``, so both
    checking products run through the same faulty array (three replicas)
    while the negations, final summations and zero tests are fault-free
    routing/comparator logic.  Faulty-cell positions are the array's
    ``(row, col)`` pairs, ``32 * n(n-1)/2`` cases in all.
    """

    def __init__(self, width: int, cell_style: str = DEFAULT_CELL_NETLIST) -> None:
        if width < 2:
            raise SimulationError(
                f"the multiplier array needs width >= 2, got {width}"
            )
        super().__init__("mul", width, cell_style)

    def _position_axis(self) -> Sequence:
        return tuple(ArrayMultiplierUnit.cell_positions(self.width))

    def _array(
        self, nl: Netlist, name: str, a_nets: List[str], b_nets: List[str], zero: str
    ) -> List[str]:
        """One replica of the faulty multiplier array; returns product nets."""
        tags: Dict[Tuple[int, int], str] = {}

        def cell(position: Tuple[int, int], x: str, y: str, cin: str):
            row, col = position
            tag = f"{name}_r{row}c{col}"
            tags[position] = tag
            return self._cell(nl, tag, x, y, cin)

        product = truncated_multiplier_rows(nl, name, a_nets, b_nets, zero, cell)
        self.chains.append(tags)
        return product

    def _build(self) -> Netlist:
        n = self.width
        nl = Netlist(f"table2_mul_{self.cell_style}_{n}")
        a = [nl.add_input(f"a{i}") for i in range(n)]
        b = [nl.add_input(f"b{i}") for i in range(n)]
        zero = nl.add_input("zero")
        one = nl.add_input("one")
        # Nominal ris = a * b through the (possibly faulty) array.
        ris = self._array(nl, "u0", a, b, zero)
        # Tech 1: ris1 = (-op1) * op2 on the same array; fault-free
        # final summation ris + ris1 must vanish mod 2**n.
        na = self._negate(nl, a, "nega", zero, one)
        ris1 = self._array(nl, "u1", na, b, zero)
        s1 = self._sum_chain(nl, "fs1", ris, ris1, zero)
        neq1 = self._any(nl, "neq1", s1)
        # Tech 2: ris2 = op1 * (-op2), same array, same zero test.
        nb = self._negate(nl, b, "negb", zero, one)
        ris2 = self._array(nl, "u2", a, nb, zero)
        s2 = self._sum_chain(nl, "fs2", ris, ris2, zero)
        neq2 = self._any(nl, "neq2", s2)
        for net in ris:
            nl.mark_output(net)
        nl.mark_output(neq1)
        nl.mark_output(neq2)
        return nl

    @property
    def n_result_rows(self) -> int:
        return self.width

    @property
    def detect_rows(self) -> Dict[str, int]:
        return {"tech1": self.width, "tech2": self.width + 1}


class Table2DividerArchitecture(_Table2ArchitectureBase):
    """The restoring divider's Table 2 experiment.

    The faulty unit is the ``width + 1``-cell subtractor chain inside
    :class:`~repro.arch.divider.RestoringDividerUnit`, reused once per
    quotient bit; the unrolled netlist instantiates it ``width`` times,
    so a faulty cell at chain position ``p`` becomes a fault group over
    every iteration's ``p``-th cell.  The checks run on *other* unit
    classes and are therefore fault-free: Tech 1 reconstructs
    ``q*b + r`` (truncated multiplier + adder) and compares against
    ``a``; Tech 2 additionally enforces the remainder range ``r < b``
    (the paper's precision-of-the-inverse-operation concern).

    Zero divisors are excluded from the operand universe:
    :meth:`valid_words` masks the ``b == 0`` lanes out of the sweep,
    leaving ``2**n * (2**n - 1)`` situations per fault case.
    """

    def __init__(self, width: int, cell_style: str = DEFAULT_CELL_NETLIST) -> None:
        super().__init__("div", width, cell_style)

    def _position_axis(self) -> Sequence:
        return tuple(range(self.width + 1))

    def _build(self) -> Netlist:
        n = self.width
        nl = Netlist(f"table2_div_{self.cell_style}_{n}")
        a = [nl.add_input(f"a{i}") for i in range(n)]
        b = [nl.add_input(f"b{i}") for i in range(n)]
        zero = nl.add_input("zero")
        one = nl.add_input("one")
        steps: Dict[int, Dict[int, str]] = {}

        def cell(position: Tuple[int, int], x: str, y: str, cin: str):
            step, index = position
            tag = f"u_s{step}_p{index}"
            steps.setdefault(step, {})[index] = tag
            return self._cell(nl, tag, x, y, cin)

        # Nominal q, r = a divmod b through the (possibly faulty) unit.
        q, r = restoring_divider_steps(nl, "u", a, b, zero, one, cell)
        # One chains entry per unrolled iteration of the reused chain.
        for step in sorted(steps):
            self.chains.append(steps[step])
        # Tech 1: fault-free reconstruction q*b + r, compared against a.
        prod = truncated_multiplier_rows(
            nl,
            "chk",
            q,
            b,
            zero,
            lambda pos, x, y, cin: _fa_cell(nl, f"chk_r{pos[0]}c{pos[1]}", x, y, cin),
        )
        recon = self._sum_chain(nl, "rec", prod, r, zero)
        neq1 = self._mismatch(nl, "neq1", recon, a)
        # Tech 2: also require r < b -- carry-out of r + ~b + 1 means
        # r >= b (fault-free magnitude comparator).
        nb = self._invert(nl, b, "genb")
        ge = one
        for i in range(n):
            _, ge = _fa_cell(nl, f"ge_p{i}", r[i], nb[i], ge)
        nl.add_gate(CellType.OR, [neq1, ge], "neq2", name="or_neq2")
        for net in q:
            nl.mark_output(net)
        for net in r:
            nl.mark_output(net)
        nl.mark_output(neq1)
        nl.mark_output("neq2")
        return nl

    @property
    def n_result_rows(self) -> int:
        return 2 * self.width

    @property
    def detect_rows(self) -> Dict[str, int]:
        return {"tech1": 2 * self.width, "tech2": 2 * self.width + 1}

    def valid_words(
        self, word_lo: int, word_hi: int, rows: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        if rows is not None:
            # The divisor field's rows are already packed; their OR is
            # exactly the b != 0 lane mask.
            masks = np.bitwise_or.reduce(rows[self.width : 2 * self.width], axis=0)
        else:
            masks = exhaustive_field_mask(
                2 * self.width, self.width, 2 * self.width, word_lo, word_hi
            )
        if masks.size and word_hi == self.n_words and self.tail_mask != ALL_ONES:
            masks[-1] &= self.tail_mask
        return masks

    def valid_count(self, word_lo: int, word_hi: int) -> int:
        return int(popcount_words(self.valid_words(word_lo, word_hi)))


@functools.lru_cache(maxsize=None)
def table2_architecture(
    operator: str, width: int, cell_style: str = DEFAULT_CELL_NETLIST
) -> _Table2ArchitectureBase:
    """Cached Table 2 architecture for ``(operator, width, style)``.

    Dispatches to the chain, multiplier or divider architecture; the
    cache keeps the compiled-netlist/engine caches hot across repeated
    evaluations (and across shard workers forked from a warm parent).
    """
    if operator in CHAIN_OPERATORS:
        return Table2Architecture(operator, width, cell_style)
    if operator == "mul":
        return Table2MultiplierArchitecture(width, cell_style)
    if operator == "div":
        return Table2DividerArchitecture(width, cell_style)
    raise SimulationError(
        f"no gate-level Table 2 architecture for operator {operator!r}; "
        f"choose from {GATE_OPERATORS}"
    )
