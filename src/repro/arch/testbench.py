"""Gate-level replicas of the paper's Table 2 test architecture.

The functional-level Table 2 evaluators model a faulty full-adder cell
as a truth-table (LUT) spliced into one position of an arithmetic unit,
and run the nominal operation *and* its checking operations through that
same faulty unit.  This module lowers the whole experiment to a single
flat gate-level netlist so the batched bit-parallel engine
(:mod:`repro.gates.engine`) can evaluate every fault case over
word-packed exhaustive operand sweeps:

* the unit's cell chain is instantiated once per operation it performs
  (the nominal computation plus each on-unit checking operation) --
  combinational *replicas* of the same sequentially-reused hardware;
* the checking comparisons (fault-free in the paper's model) are built
  from XOR/OR reduction gates next to the chains;
* a cell-level stuck-at fault at chain position ``p`` translates to a
  *fault group*: the corresponding stuck-at site in every replica's
  position-``p`` cell instance, all injected in one engine matrix row
  (:meth:`repro.gates.engine.BitParallelEngine.run_fault_groups`).

Because the LUT library is itself derived by exhaustively simulating the
same cell netlist under the same stuck-at universe, the flat gate-level
sweep is bit-identical to the functional LUT evaluation -- the property
the parity tests in ``tests/test_table2_exact.py`` pin down.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.arch.cell import DEFAULT_CELL_NETLIST, cell_netlist
from repro.errors import SimulationError
from repro.gates.builders import instantiate_cell
from repro.gates.cells import CellType
from repro.gates.engine import ALL_ONES, LANES, exhaustive_word_range
from repro.gates.faults import FaultSite, StuckAtFault
from repro.gates.netlist import Netlist

#: Operators whose test architecture is a (chain of) full-adder cells
#: reused for every on-unit operation: Table 2's overloaded ``+`` and
#: the overloaded ``-`` that shares the same adder core.
CHAIN_OPERATORS = ("add", "sub")


def _translate_cell_fault(
    cell: Netlist, tag: str, bindings: Mapping[str, str], fault: StuckAtFault
) -> List[StuckAtFault]:
    """Map a fault on the stand-alone cell onto instance ``tag``.

    Internal/output nets carry the instance prefix, so stems and
    branches translate one-to-one.  A *stem* on a cell primary input has
    no private flat net (the bound net is shared with other instances);
    it becomes the set of branch faults on every pin of this instance
    that reads the input -- electrically identical within the cell.
    """
    site = fault.site
    if site.net in cell.primary_inputs:
        bound = bindings[site.net]
        if site.is_stem:
            return [
                StuckAtFault(
                    FaultSite(bound, (f"{tag}_{gate.name}", pin)), fault.value
                )
                for gate, pin in cell.fanout(site.net)
            ]
        gate_name, pin = site.branch
        return [StuckAtFault(FaultSite(bound, (f"{tag}_{gate_name}", pin)), fault.value)]
    flat_net = f"{tag}_{site.net}"
    if site.is_stem:
        return [StuckAtFault(FaultSite(flat_net), fault.value)]
    gate_name, pin = site.branch
    return [StuckAtFault(FaultSite(flat_net, (f"{tag}_{gate_name}", pin)), fault.value)]


class Table2Architecture:
    """One operator's Table 2 experiment as a flat gate-level netlist.

    Attributes:
        operator: ``"add"`` or ``"sub"``.
        width: operand width in bits.
        cell_style: full-adder cell netlist style (see
            :mod:`repro.arch.cell`).
        netlist: the flat combinational netlist.  Primary inputs are
            ``a0..a{n-1}``, ``b0..b{n-1}`` plus the constants ``zero``
            and ``one``; primary outputs are the nominal result bits
            followed by one detection flag per technique.
        chains: per-replica instance tags, ``chains[c][p]`` naming the
            position-``p`` cell of the ``c``-th copy of the faulty unit.
    """

    def __init__(
        self,
        operator: str,
        width: int,
        cell_style: str = DEFAULT_CELL_NETLIST,
    ) -> None:
        if operator not in CHAIN_OPERATORS:
            raise SimulationError(
                f"no gate-level Table 2 architecture for operator {operator!r}; "
                f"choose from {CHAIN_OPERATORS}"
            )
        if width < 1:
            raise SimulationError(f"width must be >= 1, got {width}")
        self.operator = operator
        self.width = width
        self.cell_style = cell_style
        self.cell = cell_netlist(cell_style)
        self.chains: List[List[str]] = []
        self._bindings: Dict[str, Dict[str, str]] = {}
        self.netlist = self._build()
        self.netlist.validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _chain(
        self, nl: Netlist, name: str, a_nets: List[str], b_nets: List[str], cin: str
    ) -> List[str]:
        """One replica of the cell chain; returns its sum nets."""
        tags: List[str] = []
        sums: List[str] = []
        carry = cin
        for i in range(self.width):
            tag = f"{name}_p{i}"
            bindings = {"a": a_nets[i], "b": b_nets[i], "cin": carry}
            netmap = instantiate_cell(nl, self.cell, tag, bindings)
            self._bindings[tag] = bindings
            sums.append(netmap["s"])
            carry = netmap["cout"]
            tags.append(tag)
        self.chains.append(tags)
        return sums

    def _invert(self, nl: Netlist, nets: List[str], prefix: str) -> List[str]:
        """Fault-free one's-complement (the paper's ``g``-function routing)."""
        out = []
        for i, net in enumerate(nets):
            inv = f"{prefix}{i}"
            nl.add_gate(CellType.NOT, [net], inv, name=f"inv_{inv}")
            out.append(inv)
        return out

    def _mismatch(
        self, nl: Netlist, name: str, got: List[str], want: List[str]
    ) -> str:
        """Fault-free comparator: 1 when any bit of ``got`` != ``want``."""
        bits = []
        for i, (g, w) in enumerate(zip(got, want)):
            net = f"{name}_x{i}"
            nl.add_gate(CellType.XOR, [g, w], net, name=f"cmp_{net}")
            bits.append(net)
        return self._any(nl, name, bits)

    def _any(self, nl: Netlist, name: str, bits: List[str]) -> str:
        if len(bits) == 1:
            nl.add_gate(CellType.BUF, bits, name, name=f"buf_{name}")
        else:
            nl.add_gate(CellType.OR, bits, name, name=f"or_{name}")
        return name

    def _build(self) -> Netlist:
        n = self.width
        nl = Netlist(f"table2_{self.operator}_{self.cell_style}_{n}")
        a = [nl.add_input(f"a{i}") for i in range(n)]
        b = [nl.add_input(f"b{i}") for i in range(n)]
        zero = nl.add_input("zero")
        one = nl.add_input("one")
        if self.operator == "add":
            # Nominal ris = a + b through the (possibly faulty) unit.
            ris = self._chain(nl, "u0", a, b, zero)
            # Tech 1: op2' = ris - a on the same unit, compare against b.
            na = self._invert(nl, a, "na")
            q1 = self._chain(nl, "u1", ris, na, one)
            neq1 = self._mismatch(nl, "neq1", q1, b)
            # Tech 2: op1' = ris - b on the same unit, compare against a.
            nb = self._invert(nl, b, "nb")
            q2 = self._chain(nl, "u2", ris, nb, one)
            neq2 = self._mismatch(nl, "neq2", q2, a)
        else:  # sub
            # Nominal ris = a - b (ones'-complement b, carry-in 1).
            nb = self._invert(nl, b, "nb")
            ris = self._chain(nl, "u0", a, nb, one)
            # Tech 1: op1' = ris + op2 on the same unit, compare against a.
            q1 = self._chain(nl, "u1", ris, b, zero)
            neq1 = self._mismatch(nl, "neq1", q1, a)
            # Tech 2: ris' = op2 - op1 on the same unit; the fault-free
            # final summation ris + ris' must be all-zero (mod 2**n).
            na = self._invert(nl, a, "na")
            ris2 = self._chain(nl, "u2", b, na, one)
            ref = cell_netlist(self.cell_style)
            carry = zero
            sums = []
            for i in range(n):
                netmap = instantiate_cell(
                    nl, ref, f"fsum_p{i}", {"a": ris[i], "b": ris2[i], "cin": carry}
                )
                sums.append(netmap["s"])
                carry = netmap["cout"]
            neq2 = self._any(nl, "nz", sums)
        for net in ris:
            nl.mark_output(net)
        nl.mark_output(neq1)
        nl.mark_output(neq2)
        return nl

    # ------------------------------------------------------------------
    # Interfaces for the batched sweep
    # ------------------------------------------------------------------
    @property
    def n_vectors(self) -> int:
        """Size of the exhaustive operand space, ``2**(2*width)``."""
        return 1 << (2 * self.width)

    @property
    def n_words(self) -> int:
        """Packed words spanning the exhaustive sweep."""
        return max(1, self.n_vectors >> 6)

    @property
    def tail_mask(self) -> np.uint64:
        """Valid-lane mask of the final word (sub-word sweeps only)."""
        if self.n_vectors >= LANES:
            return ALL_ONES
        return np.uint64((1 << self.n_vectors) - 1)

    @property
    def result_rows(self) -> range:
        """Output-row indices of the nominal result bits."""
        return range(self.width)

    @property
    def detect_rows(self) -> Dict[str, int]:
        """Output-row index of each technique's detection flag."""
        return {"tech1": self.width, "tech2": self.width + 1}

    def input_rows(self, word_lo: int, word_hi: int) -> np.ndarray:
        """Packed input words ``[word_lo, word_hi)`` of the operand sweep.

        Vector ``v`` drives ``a = v mod 2**width`` and
        ``b = v >> width`` -- the same enumeration the functional
        evaluators use -- with the ``zero``/``one`` constant rows
        appended in primary-input order.
        """
        span = word_hi - word_lo
        rows = np.empty((2 * self.width + 2, span), dtype=np.uint64)
        rows[: 2 * self.width] = exhaustive_word_range(
            2 * self.width, word_lo, word_hi
        )
        rows[2 * self.width] = 0
        rows[2 * self.width + 1] = ALL_ONES
        return rows

    def fault_group(
        self, cell_fault: StuckAtFault, position: int
    ) -> Tuple[StuckAtFault, ...]:
        """Flat fault group for one Table 2 case.

        The cell-level ``cell_fault`` at chain ``position`` is replicated
        into every copy of the faulty unit (the nominal chain and each
        on-unit checking chain), matching the paper's model where the
        same broken hardware executes all three operations.
        """
        if not (0 <= position < self.width):
            raise SimulationError(
                f"position {position} outside [0, {self.width})"
            )
        flat: List[StuckAtFault] = []
        for tags in self.chains:
            tag = tags[position]
            flat.extend(
                _translate_cell_fault(self.cell, tag, self._bindings[tag], cell_fault)
            )
        return tuple(flat)


@functools.lru_cache(maxsize=None)
def table2_architecture(
    operator: str, width: int, cell_style: str = DEFAULT_CELL_NETLIST
) -> Table2Architecture:
    """Cached :class:`Table2Architecture` for ``(operator, width, style)``.

    The cache keeps the compiled-netlist/engine caches hot across
    repeated evaluations (and across shard workers forked from a warm
    parent).
    """
    return Table2Architecture(operator, width, cell_style)
