"""Cell-level faulty datapath units.

This package implements the paper's test architecture (Section 4.1): the
arithmetic units are composed of full-adder cells; fault injection
replaces exactly one cell's behaviour with a faulty truth table derived
from gate-level stuck-at simulation of the cell netlist
(:mod:`repro.gates`).  All operations are vectorised over NumPy arrays so
exhaustive coverage campaigns stay fast.

Public API:

* :class:`~repro.arch.cell.FullAdderCell` and
  :func:`~repro.arch.cell.faulty_cell_library` -- the 32-fault universe;
* :class:`~repro.arch.adders.RippleCarryAdderUnit` -- n-bit adder with an
  optional faulty cell, plus subtract/negate helpers built on it;
* :class:`~repro.arch.multiplier.ArrayMultiplierUnit` -- truncated array
  multiplier (C ``int`` semantics: n x n -> n bits);
* :class:`~repro.arch.divider.RestoringDividerUnit` -- sequential
  restoring divider reusing a (possibly faulty) adder core;
* :mod:`~repro.arch.bitops` -- two's-complement helpers.
"""

from repro.arch.bitops import mask_of, to_signed, to_unsigned
from repro.arch.cell import (
    CellFault,
    FullAdderCell,
    NUM_FA_FAULTS,
    faulty_cell_library,
    reference_cell,
)
from repro.arch.adders import RippleCarryAdderUnit
from repro.arch.multiplier import ArrayMultiplierUnit
from repro.arch.divider import RestoringDividerUnit
from repro.arch.alu import FaultableALU

__all__ = [
    "mask_of",
    "to_signed",
    "to_unsigned",
    "CellFault",
    "FullAdderCell",
    "NUM_FA_FAULTS",
    "faulty_cell_library",
    "reference_cell",
    "RippleCarryAdderUnit",
    "ArrayMultiplierUnit",
    "RestoringDividerUnit",
    "FaultableALU",
]
